"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_fraction,
    check_matrix,
    check_positive,
    check_probability_vector,
    check_rank,
    check_same_shape,
    check_vector,
)


class TestCheckMatrix:
    def test_accepts_2d(self):
        out = check_matrix([[1.0, 2.0], [3.0, 4.0]])
        assert out.shape == (2, 2)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_matrix([1.0, 2.0])

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            check_matrix(np.zeros((2, 2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_matrix([[1.0, np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            check_matrix([[np.inf, 1.0]])

    def test_rejects_empty_by_default(self):
        with pytest.raises(ValueError, match="empty"):
            check_matrix(np.zeros((0, 3)))

    def test_allows_empty_when_requested(self):
        out = check_matrix(np.zeros((0, 3)), allow_empty=True)
        assert out.shape == (0, 3)

    def test_name_in_message(self):
        with pytest.raises(ValueError, match="my_matrix"):
            check_matrix([1.0], name="my_matrix")


class TestCheckVector:
    def test_accepts_1d(self):
        out = check_vector([1, 2, 3])
        assert out.dtype == float

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            check_vector([[1, 2]])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_vector([np.nan])


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5) == 2.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValueError):
            check_positive(0.0)

    def test_accepts_zero_when_not_strict(self):
        assert check_positive(0.0, strict=False) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-1.0, strict=False)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive(True)

    def test_rejects_non_scalar(self):
        with pytest.raises(TypeError):
            check_positive([1.0])

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_positive(np.inf)


class TestCheckRank:
    def test_accepts_int(self):
        assert check_rank(3) == 3

    def test_accepts_integer_float(self):
        assert check_rank(4.0) == 4

    def test_rejects_fractional(self):
        with pytest.raises(TypeError):
            check_rank(2.5)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_rank(0)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_rank(True)

    def test_respects_upper_bound(self):
        with pytest.raises(ValueError):
            check_rank(10, d=5)

    def test_upper_bound_inclusive(self):
        assert check_rank(5, d=5) == 5


class TestCheckProbabilityVector:
    def test_accepts_valid(self):
        p = check_probability_vector([0.25, 0.75])
        np.testing.assert_allclose(p.sum(), 1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability_vector([-0.1, 1.1])

    def test_rejects_wrong_sum(self):
        with pytest.raises(ValueError):
            check_probability_vector([0.3, 0.3])


class TestCheckSameShape:
    def test_same_shape_passes(self):
        check_same_shape(np.zeros((2, 3)), np.ones((2, 3)))

    def test_different_shape_raises(self):
        with pytest.raises(ValueError):
            check_same_shape(np.zeros((2, 3)), np.zeros((3, 2)))


class TestCheckFraction:
    def test_accepts_half(self):
        assert check_fraction(0.5) == 0.5

    def test_accepts_one(self):
        assert check_fraction(1.0) == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_fraction(1.5)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_fraction(0.0)
