"""Tests for repro.distributed.network."""

import numpy as np
import pytest

from repro.distributed.network import BYTES_PER_WORD, Network


class TestNetworkBasics:
    def test_requires_at_least_one_server(self):
        with pytest.raises(ValueError):
            Network(0)

    def test_initial_counters_zero(self):
        net = Network(3)
        assert net.total_words == 0
        assert net.total_messages == 0

    def test_send_counts_words(self):
        net = Network(3)
        net.send(1, 0, np.zeros(10))
        assert net.total_words == 10
        assert net.total_messages == 1

    def test_send_returns_payload(self):
        net = Network(2)
        payload = np.arange(4)
        assert net.send(1, 0, payload) is payload

    def test_self_message_is_free(self):
        net = Network(2)
        net.send(1, 1, np.zeros(100))
        assert net.total_words == 0
        assert net.total_messages == 0

    def test_invalid_endpoints_raise(self):
        net = Network(2)
        with pytest.raises(ValueError):
            net.send(2, 0, 1.0)
        with pytest.raises(ValueError):
            net.send(0, -1, 1.0)

    def test_charge(self):
        net = Network(2)
        net.charge(0, 1, 17, tag="seeds")
        assert net.total_words == 17

    def test_charge_zero_words_no_message(self):
        net = Network(2)
        net.charge(0, 1, 0)
        assert net.total_messages == 0

    def test_charge_negative_raises(self):
        net = Network(2)
        with pytest.raises(ValueError):
            net.charge(0, 1, -1)


class TestBroadcastGather:
    def test_broadcast_charges_all_but_sender(self):
        net = Network(5)
        net.broadcast(0, np.zeros(3), tag="b")
        assert net.total_messages == 4
        assert net.total_words == 12

    def test_gather_counts_all_senders(self):
        net = Network(3)
        collected = net.gather(0, [np.zeros(2), np.zeros(2), np.zeros(2)], tag="g")
        assert len(collected) == 3
        # Sender 0 -> 0 is a free self-message.
        assert net.total_words == 4

    def test_gather_with_explicit_senders(self):
        net = Network(4)
        net.gather(0, [np.zeros(5), np.zeros(5)], senders=[2, 3])
        assert net.total_words == 10

    def test_gather_length_mismatch_raises(self):
        net = Network(3)
        with pytest.raises(ValueError):
            net.gather(0, [1.0], senders=[1, 2])


class TestAccounting:
    def test_words_by_tag(self):
        net = Network(3)
        net.send(1, 0, np.zeros(5), tag="alpha")
        net.send(2, 0, np.zeros(7), tag="beta")
        net.send(1, 0, np.zeros(2), tag="alpha")
        snapshot = net.snapshot()
        assert snapshot.words_by_tag == {"alpha": 7, "beta": 7}

    def test_direction_counters(self):
        net = Network(3)
        net.send(1, 0, np.zeros(4))
        net.send(0, 2, np.zeros(6))
        snapshot = net.snapshot()
        assert snapshot.words_to_coordinator == 4
        assert snapshot.words_from_coordinator == 6

    def test_snapshot_ratio(self):
        net = Network(2)
        net.send(1, 0, np.zeros(50))
        assert net.snapshot().ratio_to(200) == pytest.approx(0.25)

    def test_ratio_rejects_zero_input(self):
        net = Network(2)
        with pytest.raises(ValueError):
            net.snapshot().ratio_to(0)

    def test_total_bytes(self):
        net = Network(2)
        net.send(1, 0, np.zeros(3))
        assert net.snapshot().total_bytes == 3 * BYTES_PER_WORD

    def test_reset(self):
        net = Network(2, keep_messages=True)
        net.send(1, 0, np.zeros(3))
        net.reset()
        assert net.total_words == 0
        assert net.messages == []

    def test_words_since_checkpoint(self):
        net = Network(2)
        net.send(1, 0, np.zeros(3))
        checkpoint = net.total_words
        net.send(1, 0, np.zeros(8))
        assert net.words_since(checkpoint) == 8

    def test_words_since_future_raises(self):
        net = Network(2)
        with pytest.raises(ValueError):
            net.words_since(10)

    def test_keep_messages_flag(self):
        net = Network(2, keep_messages=True)
        net.send(1, 0, np.zeros(3), tag="x")
        assert len(net.messages) == 1
        assert net.messages[0].tag == "x"

    def test_messages_not_kept_by_default(self):
        net = Network(2)
        net.send(1, 0, np.zeros(3))
        assert net.messages == []
