"""Tests for the Frieze-Kannan-Vempala sampling step (Section III)."""

import numpy as np
import pytest

from repro.core.errors import additive_error
from repro.core.fkv import (
    fkv_projection,
    gram_estimate,
    practical_sample_count,
    theoretical_sample_count,
)
from repro.utils.linalg import is_projection_matrix, projection_rank, row_norms_squared


class TestSampleCounts:
    def test_theoretical_constant(self):
        assert theoretical_sample_count(1, 1.0, 1.0) == 1440

    def test_theoretical_scaling(self):
        assert theoretical_sample_count(2, 0.5) == pytest.approx(1440 * 4 / 0.25, abs=1)

    def test_practical_smaller_than_theoretical(self):
        assert practical_sample_count(5, 0.2) < theoretical_sample_count(5, 0.2)

    def test_practical_at_least_k_plus_one(self):
        assert practical_sample_count(10, 10.0) == 11

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            practical_sample_count(0, 0.5)
        with pytest.raises(ValueError):
            theoretical_sample_count(3, -1.0)


class TestFKVProjection:
    def _norm_sample(self, matrix, count, rng):
        norms = row_norms_squared(matrix)
        probs = norms / norms.sum()
        idx = rng.choice(matrix.shape[0], size=count, p=probs)
        return matrix[idx], probs[idx]

    def test_output_shapes_and_validity(self, low_rank_matrix, rng):
        rows, probs = self._norm_sample(low_rank_matrix, 80, rng)
        basis, projection, b_matrix = fkv_projection(rows, probs, 5)
        d = low_rank_matrix.shape[1]
        assert basis.shape == (d, 5)
        assert projection.shape == (d, d)
        assert b_matrix.shape == (80, d)
        assert is_projection_matrix(projection)
        assert projection_rank(projection) == 5

    def test_lemma2_additive_error_bound(self, low_rank_matrix, rng):
        """With enough samples the FKV projection achieves small additive error."""
        rows, probs = self._norm_sample(low_rank_matrix, 400, rng)
        _, projection, _ = fkv_projection(rows, probs, 5)
        assert additive_error(low_rank_matrix, projection, 5) < 0.1

    def test_more_samples_help(self, low_rank_matrix):
        errors = []
        for count in (20, 500):
            rng = np.random.default_rng(0)
            rows, probs = self._norm_sample(low_rank_matrix, count, rng)
            _, projection, _ = fkv_projection(rows, probs, 5)
            errors.append(additive_error(low_rank_matrix, projection, 5))
        assert errors[1] <= errors[0]

    def test_tolerates_approximate_probabilities(self, low_rank_matrix, rng):
        """Lemma 3: scaling by (1 +/- gamma)-approximate probabilities still works."""
        rows, probs = self._norm_sample(low_rank_matrix, 400, rng)
        noisy = probs * (1.0 + rng.uniform(-0.3, 0.3, size=probs.size))
        _, projection, _ = fkv_projection(rows, noisy, 5)
        assert additive_error(low_rank_matrix, projection, 5) < 0.15

    def test_k_larger_than_columns_raises(self, low_rank_matrix, rng):
        rows, probs = self._norm_sample(low_rank_matrix, 40, rng)
        with pytest.raises(ValueError):
            fkv_projection(rows, probs, low_rank_matrix.shape[1] + 1)


class TestGramEstimate:
    def test_concentrates_around_true_gram(self, low_rank_matrix, rng):
        norms = row_norms_squared(low_rank_matrix)
        probs = norms / norms.sum()
        estimates = []
        for seed in range(20):
            local = np.random.default_rng(seed)
            idx = local.choice(low_rank_matrix.shape[0], size=300, p=probs)
            estimates.append(gram_estimate(low_rank_matrix[idx], probs[idx]))
        mean_estimate = np.mean(estimates, axis=0)
        target = low_rank_matrix.T @ low_rank_matrix
        rel = np.linalg.norm(mean_estimate - target, "fro") / np.linalg.norm(target, "fro")
        assert rel < 0.1
