"""Wire-codec fuzzing: mutated and truncated buffers must fail *typed*.

Property under test: for any valid wire buffer, any truncation and any
single-byte mutation either still decodes (mutations inside the 8-byte-per-
word data section legitimately change values -- the word model carries no
checksums) or raises :class:`~repro.core.errors.WireFormatError`.  Never a
bare ``struct.error``, ``IndexError``, ``UnicodeDecodeError``,
``TypeError``, ``RecursionError`` -- and never a hang (each decode touches
at most the buffer's own bytes).

The corpus covers every node type the codec speaks: scalars, arrays of all
dtypes, sparse matrices, strings, messages, nested containers, and full
transport frames with tagged/untagged entries and request ids.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.core.errors import WireFormatError
from repro.distributed.message import Message
from repro.runtime import wire

#: Single-byte mutations attempted per corpus buffer.
MUTATIONS_PER_BUFFER = 400
#: Truncation points sampled per corpus buffer (plus the first/last 24).
TRUNCATIONS_PER_BUFFER = 120


def payload_corpus():
    rng = np.random.default_rng(2016)
    return [
        None,
        True,
        -17,
        3.25,
        np.float32(0.5),
        np.uint64(2**63),
        "an ascii string crossing words",
        np.arange(64, dtype=np.int64),
        rng.normal(size=(5, 7)),
        (rng.random(40) < 0.5),
        np.arange(24, dtype=np.uint16).reshape(2, 3, 4),
        sparse.random(13, 9, density=0.4, random_state=5, format="csr"),
        sparse.random(6, 20, density=0.2, random_state=6, format="coo"),
        Message(sender=2, receiver=0, payload=np.arange(9, dtype=float), tag="tables"),
        {"idx": np.arange(10), "nested": {"deep": [1, (2.0, "three"), None]}},
        [{1, 2, 3}, frozenset({"a", "b"}), [np.int8(-4), np.arange(3)]],
    ]


def frame_corpus():
    rng = np.random.default_rng(4242)
    return [
        wire.encode_frame("hello"),
        wire.encode_frame("shutdown", request_id=(1 << 63) + 5),
        wire.encode_frame(
            "sketch",
            {"num_buckets": 8, "depth": 3, "width": 16, "nonempty": [0, 2, 5],
             "token": 1, "threshold": 12, "session": "abc123", "tables_tag": "t"},
            [("hh:seeds", np.arange(6, dtype=np.int64)),
             ("hh:bucket:seeds", (rng.integers(0, 100, size=(3, 2)),
                                  rng.integers(0, 100, size=(3, 2)))),
             (None, np.arange(5))],
            request_id=77,
        ),
        wire.encode_frame(
            "values", {"tag": "collect"}, [("collect", rng.normal(size=40))]
        ),
        wire.encode_frame(
            "error", {"type": "RuntimeError", "message": "injected"}
        ),
    ]


def assert_decode_is_typed(decode, buf):
    """``decode(buf)`` must either succeed or raise WireFormatError."""
    try:
        decode(buf)
    except WireFormatError:
        pass
    # Any other exception type propagates and fails the test.


class TestPayloadFuzz:
    @pytest.mark.parametrize(
        "payload", payload_corpus(),
        ids=[type(p).__name__ + str(i) for i, p in enumerate(payload_corpus())],
    )
    def test_single_byte_mutations_stay_typed(self, payload):
        buf = wire.to_bytes(payload)
        rng = np.random.default_rng(len(buf))
        positions = rng.integers(0, len(buf), size=MUTATIONS_PER_BUFFER)
        values = rng.integers(0, 256, size=MUTATIONS_PER_BUFFER)
        for pos, value in zip(positions, values):
            mutated = bytearray(buf)
            mutated[pos] = value
            assert_decode_is_typed(wire.from_bytes, bytes(mutated))

    @pytest.mark.parametrize(
        "payload", payload_corpus(),
        ids=[type(p).__name__ + str(i) for i, p in enumerate(payload_corpus())],
    )
    def test_truncations_raise(self, payload):
        buf = wire.to_bytes(payload)
        rng = np.random.default_rng(len(buf) + 1)
        cuts = set(range(min(24, len(buf)))) | set(
            max(0, len(buf) - k) for k in range(1, 25)
        )
        cuts |= set(rng.integers(0, len(buf), size=TRUNCATIONS_PER_BUFFER).tolist())
        for cut in sorted(cuts):
            if cut == len(buf):
                continue
            with pytest.raises(WireFormatError):
                wire.from_bytes(buf[:cut])


class TestFrameFuzz:
    @pytest.mark.parametrize(
        "buf", frame_corpus(),
        ids=[f"frame{i}" for i in range(len(frame_corpus()))],
    )
    def test_single_byte_mutations_stay_typed(self, buf):
        rng = np.random.default_rng(len(buf) * 3)
        positions = rng.integers(0, len(buf), size=MUTATIONS_PER_BUFFER)
        values = rng.integers(0, 256, size=MUTATIONS_PER_BUFFER)
        for pos, value in zip(positions, values):
            mutated = bytearray(buf)
            mutated[pos] = value
            mutated = bytes(mutated)
            assert_decode_is_typed(wire.decode_frame, mutated)
            # The O(1) peek helpers obey the same contract.
            assert_decode_is_typed(wire.frame_request_id, mutated)
            assert_decode_is_typed(
                lambda b: wire.stamp_request_id(b, 9), mutated
            )

    @pytest.mark.parametrize(
        "buf", frame_corpus(),
        ids=[f"frame{i}" for i in range(len(frame_corpus()))],
    )
    def test_truncations_raise(self, buf):
        for cut in range(len(buf)):
            with pytest.raises(WireFormatError):
                wire.decode_frame(buf[:cut])

    def test_double_byte_mutations_stay_typed(self):
        """Pairs of mutations (framing + body) still fail typed."""
        buf = frame_corpus()[2]
        rng = np.random.default_rng(7)
        for _ in range(MUTATIONS_PER_BUFFER):
            mutated = bytearray(buf)
            for pos in rng.integers(0, len(buf), size=2):
                mutated[pos] = rng.integers(0, 256)
            assert_decode_is_typed(wire.decode_frame, bytes(mutated))

    def test_mutated_buffers_never_leak_untyped_across_seeds(self):
        """A denser sweep over one frame: every offset, a few values each."""
        buf = wire.encode_frame(
            "op", {"k": [1, "two", 3.0]}, [("t", np.arange(9))], request_id=3
        )
        for pos in range(len(buf)):
            for value in (0x00, 0x01, 0x7F, 0x80, 0xFF):
                mutated = bytearray(buf)
                mutated[pos] = value
                assert_decode_is_typed(wire.decode_frame, bytes(mutated))


class TestRequestIdSection:
    def test_roundtrip_and_peek(self):
        frame = wire.encode_frame("op", {"a": 1}, request_id=123456789)
        assert wire.frame_request_id(frame) == 123456789
        assert wire.decode_frame(frame).request_id == 123456789

    def test_stamp_preserves_everything_else(self):
        frame = wire.encode_frame(
            "op", {"a": 1}, [("t", np.arange(4))], request_id=1
        )
        stamped = wire.stamp_request_id(frame, 42)
        assert wire.frame_request_id(stamped) == 42
        original = wire.decode_frame(frame)
        decoded = wire.decode_frame(stamped)
        assert decoded.op == original.op and decoded.meta == original.meta
        np.testing.assert_array_equal(decoded.entry(0), original.entry(0))
        assert decoded.data_sections == original.data_sections
        # The id is framing: data-plane accounting is untouched.
        assert decoded.overhead_bytes == original.overhead_bytes

    def test_request_id_is_not_charged_words(self):
        _, sections_a, overhead_a = wire.encode_frame_with_stats("op", request_id=0)
        _, sections_b, overhead_b = wire.encode_frame_with_stats(
            "op", request_id=(1 << 64) - 1
        )
        assert sections_a == sections_b
        assert overhead_a == overhead_b

    def test_payload_buffers_are_rejected_by_peek(self):
        with pytest.raises(WireFormatError, match="kind"):
            wire.frame_request_id(wire.to_bytes(np.arange(8)))

    def test_out_of_range_ids_are_rejected(self):
        with pytest.raises(WireFormatError):
            wire.encode_frame("op", request_id=1 << 64)
        with pytest.raises(WireFormatError):
            wire.stamp_request_id(wire.encode_frame("op"), -1)
