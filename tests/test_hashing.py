"""Tests for repro.sketch.hashing."""

import numpy as np
import pytest

from repro.sketch import kernels
from repro.sketch.hashing import (
    MERSENNE_PRIME,
    KWiseHash,
    PairwiseHash,
    SignHash,
    SubsampleHash,
)


@pytest.fixture(autouse=True, params=sorted(kernels.known_providers()))
def kernel_provider(request):
    """Run every hashing test under each registered kernel provider.

    Unavailable providers (e.g. ``numba`` when the package is absent)
    skip with the recorded import-failure reason rather than erroring.
    """
    name = request.param
    if name not in kernels.available_providers():
        pytest.skip(
            f"kernel provider {name!r} unavailable: "
            f"{kernels.unavailable_reason(name)}"
        )
    with kernels.provider_override(name):
        yield name


class TestKWiseHash:
    def test_output_range(self):
        h = KWiseHash(4, 17, seed=0)
        values = h(np.arange(1000))
        assert values.min() >= 0
        assert values.max() < 17

    def test_deterministic(self):
        h = KWiseHash(3, 100, seed=5)
        np.testing.assert_array_equal(h(np.arange(50)), h(np.arange(50)))

    def test_different_seeds_differ(self):
        a = KWiseHash(2, 1000, seed=1)(np.arange(200))
        b = KWiseHash(2, 1000, seed=2)(np.arange(200))
        assert not np.array_equal(a, b)

    def test_scalar_input(self):
        h = KWiseHash(2, 10, seed=0)
        out = h(7)
        assert out.shape == (1,)

    def test_roughly_uniform(self):
        h = KWiseHash(2, 4, seed=3)
        values = h(np.arange(20000))
        counts = np.bincount(values, minlength=4)
        assert counts.min() > 0.8 * 20000 / 4

    def test_pairwise_collision_rate(self):
        """Pairwise independence: collision probability ~ 1/range."""
        range_size = 64
        h = PairwiseHash(range_size, seed=7)
        keys = np.arange(2000)
        values = h(keys)
        collisions = 0
        pairs = 0
        rng = np.random.default_rng(0)
        for _ in range(4000):
            i, j = rng.integers(0, len(keys), size=2)
            if i == j:
                continue
            pairs += 1
            collisions += values[i] == values[j]
        rate = collisions / pairs
        assert rate < 3.0 / range_size

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            KWiseHash(0, 10)
        with pytest.raises(ValueError):
            KWiseHash(2, 0)

    def test_word_count(self):
        assert KWiseHash(5, 10, seed=0).word_count() == 5

    def test_prime_is_large_enough(self):
        assert MERSENNE_PRIME > 2**30


class TestSignHash:
    def test_values(self):
        s = SignHash(seed=0)
        values = s(np.arange(500))
        assert set(np.unique(values)).issubset({-1, 1})

    def test_balanced(self):
        s = SignHash(seed=1)
        values = s(np.arange(20000))
        assert abs(values.mean()) < 0.05

    def test_deterministic(self):
        s = SignHash(seed=2)
        np.testing.assert_array_equal(s(np.arange(100)), s(np.arange(100)))


class TestSubsampleHash:
    def test_level_zero_keeps_everything(self):
        g = SubsampleHash(1024, seed=0)
        keep = g.level_predicate(0)
        assert keep(np.arange(500)).all()

    def test_levels_are_nested(self):
        g = SubsampleHash(1 << 16, seed=1)
        keys = np.arange(5000)
        previous = g.level_predicate(0)(keys)
        for level in range(1, 8):
            current = g.level_predicate(level)(keys)
            # Anything surviving level j survives level j-1 too.
            assert np.all(previous[current])
            previous = current

    def test_subsampling_rate(self):
        g = SubsampleHash(1 << 20, seed=2)
        keys = np.arange(40000)
        for level in (1, 2, 3):
            fraction = g.level_predicate(level)(keys).mean()
            assert fraction == pytest.approx(2.0**-level, rel=0.3)

    def test_negative_level_raises(self):
        with pytest.raises(ValueError):
            SubsampleHash(100, seed=0).level_predicate(-1)

    def test_small_domain_raises(self):
        with pytest.raises(ValueError):
            SubsampleHash(1)
