"""Kill a worker mid-protocol; the supervisor must restore it bit-identically.

The contract under test (the recovery half of the bit-identity invariant):
a supervised run in which a worker dies mid-protocol -- permanently, so the
supervisor must respawn it, restore its checkpoint and replay the journal
-- produces **bit-identical** draws, estimates and per-tag charged words to
an uninterrupted same-seed run, and the wire audit stays green (all
supervision and recovery traffic is uncharged control plane).

The light loopback kills run in tier-1; the TCP and multi-kill variants are
marked ``chaos`` (and ``tcp`` where sockets are involved) and run in the CI
chaos job under pytest-timeout.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import create_backend
from repro.core.errors import WorkerLostError
from repro.runtime.service import CoordinatorService, WorkerService
from repro.runtime.supervisor import WorkerSupervisor
from repro.runtime.transport import LoopbackTransport, TcpTransport, WorkerServer

from test_runtime_transport import (
    assert_same_draws,
    make_components,
    make_config,
    weight_fn,
)

#: After attach, every worker has served: hello (1), checkpoint (2).  The
#: sampling protocol's waves start at frame 3, so kill points >= 3 land
#: mid-protocol (subsample / sketch / collect waves).
FIRST_PROTOCOL_FRAME = 3


class KillableWorker:
    """A worker handler that dies permanently at a chosen received frame.

    ``kill_at=N`` raises *instead of* handling frame N (the request is
    lost); ``kill_after=N`` handles frame N first, then dies (the reply --
    e.g. an update ack -- is lost after the side effect was applied).  Both
    look like a died process: loopback callers see the raised
    ``ConnectionResetError`` directly, and a TCP :class:`WorkerServer` kills
    the connection when its handler raises.
    """

    def __init__(
        self,
        service: WorkerService,
        *,
        kill_at: int | None = None,
        kill_after: int | None = None,
    ) -> None:
        self.service = service
        self.kill_at = kill_at
        self.kill_after = kill_after
        self.calls = 0
        self.dead = False

    def handler(self, frame: bytes) -> bytes:
        self.calls += 1
        if self.dead or (self.kill_at is not None and self.calls >= self.kill_at):
            self.dead = True
            raise ConnectionResetError("worker killed")
        reply = self.service.handle_frame(frame)
        if self.kill_after is not None and self.calls >= self.kill_after:
            self.dead = True
            raise ConnectionResetError("worker killed after handling")
        return reply


class SupervisedHarness:
    """A supervised coordinator whose workers can be killed deterministically.

    One spawning closure serves construction and respawning (exactly like
    :class:`repro.backend.transport.TransportBackend`); replacements are
    healthy workers over the same original components.
    """

    def __init__(
        self,
        kind: str,
        *,
        seed: int = 42,
        servers: int = 4,
        support: int = 500,
        max_worker_restarts: int = 2,
        checkpoint_every: int = 1,
        timeout: float = 10.0,
    ) -> None:
        self.kind = kind
        self.dim, self.components = make_components(
            seed=seed, servers=servers, support=support
        )
        self.killables: list = [None] * (servers - 1)
        self.servers: list = []
        self._timeout = timeout

        def spawn(worker: int):
            killable = KillableWorker(
                WorkerService(*self.components[worker + 1], self.dim)
            )
            self.killables[worker] = killable
            if self.kind == "tcp":
                server = WorkerServer(killable.handler)
                self.servers.append(server)
                host, port = server.start()
                return TcpTransport(host, port, timeout=self._timeout)
            return LoopbackTransport(killable.handler)

        self.supervisor = WorkerSupervisor(
            spawn,
            max_worker_restarts=max_worker_restarts,
            checkpoint_every=checkpoint_every,
        )
        transports = [spawn(worker) for worker in range(servers - 1)]
        self.coordinator = CoordinatorService(
            transports, self.dim, self.components[0], supervisor=self.supervisor
        )

    def schedule_kill(self, worker: int, *, at=None, after=None) -> None:
        self.killables[worker].kill_at = at
        self.killables[worker].kill_after = after

    def close(self) -> None:
        self.coordinator.close()
        for server in self.servers:
            server.stop()

    def __enter__(self) -> "SupervisedHarness":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        self.close()


def run_sample(harness: SupervisedHarness, *, seed=3, draws=10):
    result = harness.coordinator.sample(
        weight_fn, draws, config=make_config(), seed=seed
    )
    words = dict(harness.coordinator.network.snapshot().words_by_tag)
    harness.coordinator.verify_wire_accounting()
    return result, words


TRANSPORTS = [
    pytest.param("loopback", id="loopback"),
    pytest.param("tcp", marks=[pytest.mark.tcp, pytest.mark.chaos], id="tcp"),
]


# --------------------------------------------------------------------------- #
# the acceptance criterion: kill mid-protocol, results bit-identical
# --------------------------------------------------------------------------- #
class TestKillMidProtocol:
    @pytest.mark.parametrize("kind", TRANSPORTS)
    def test_killed_worker_recovers_bit_identically(self, kind):
        with SupervisedHarness(kind) as clean:
            reference, reference_words = run_sample(clean)
        with SupervisedHarness(kind) as chaotic:
            chaotic.schedule_kill(1, at=FIRST_PROTOCOL_FRAME + 1)
            result, words = run_sample(chaotic)
            assert chaotic.supervisor.restarts == 1
            assert chaotic.killables[1].kill_at is None  # the replacement
        assert_same_draws(result, reference)
        assert words == reference_words

    def test_supervision_matches_unsupervised_run(self):
        """A supervised run with no failures changes nothing observable."""
        dim, components = make_components(seed=42, servers=4, support=500)
        workers = [WorkerService(idx, val, dim) for idx, val in components[1:]]
        plain = CoordinatorService(
            [LoopbackTransport(worker.handle_frame) for worker in workers],
            dim,
            components[0],
        )
        reference = plain.sample(weight_fn, 10, config=make_config(), seed=3)
        reference_words = dict(plain.network.snapshot().words_by_tag)
        plain.close()
        with SupervisedHarness("loopback") as harness:
            result, words = run_sample(harness)
        assert_same_draws(result, reference)
        assert words == reference_words

    @pytest.mark.parametrize("kind", TRANSPORTS)
    @pytest.mark.chaos
    @pytest.mark.parametrize("kill_frame_offset", [0, 1, 2, 3, 4])
    def test_kill_at_every_protocol_frame(self, kind, kill_frame_offset):
        """Sweep the kill point across the protocol's waves."""
        with SupervisedHarness(kind) as clean:
            reference, reference_words = run_sample(clean)
        with SupervisedHarness(kind) as chaotic:
            chaotic.schedule_kill(0, at=FIRST_PROTOCOL_FRAME + kill_frame_offset)
            result, words = run_sample(chaotic)
            assert chaotic.supervisor.restarts == 1
        assert_same_draws(result, reference)
        assert words == reference_words

    @pytest.mark.chaos
    def test_two_workers_killed_in_one_run(self):
        with SupervisedHarness("loopback") as clean:
            reference, reference_words = run_sample(clean)
        with SupervisedHarness("loopback") as chaotic:
            chaotic.schedule_kill(0, at=FIRST_PROTOCOL_FRAME)
            chaotic.schedule_kill(2, at=FIRST_PROTOCOL_FRAME + 2)
            result, words = run_sample(chaotic)
            assert chaotic.supervisor.restarts == 2
        assert_same_draws(result, reference)
        assert words == reference_words

    @pytest.mark.chaos
    def test_same_worker_killed_twice_within_budget(self):
        with SupervisedHarness("loopback", max_worker_restarts=2) as chaotic:
            chaotic.schedule_kill(1, at=FIRST_PROTOCOL_FRAME)
            original = chaotic.killables[1]
            chaotic.coordinator.sample(weight_fn, 4, config=make_config(), seed=11)
            assert chaotic.killables[1] is not original
            # The replacement gets its own kill once it is installed.
            chaotic.schedule_kill(1, at=chaotic.killables[1].calls + 2)
            result, words = run_sample(chaotic)
            assert chaotic.supervisor.restarts == 2
        with SupervisedHarness("loopback") as clean:
            clean.coordinator.sample(weight_fn, 4, config=make_config(), seed=11)
            reference, reference_words = run_sample(clean)
        assert_same_draws(result, reference)
        assert words == reference_words

    def test_kill_past_budget_surfaces_worker_lost(self):
        with SupervisedHarness("loopback", max_worker_restarts=0) as harness:
            harness.schedule_kill(0, at=FIRST_PROTOCOL_FRAME)
            with pytest.raises(WorkerLostError):
                harness.coordinator.sample(
                    weight_fn, 4, config=make_config(), seed=3
                )
            assert harness.supervisor.lost_workers == (0,)


# --------------------------------------------------------------------------- #
# streaming: kill between waves, checkpoints + journal must cover the stream
# --------------------------------------------------------------------------- #
def delta_batch(dim, servers, seed):
    rng = np.random.default_rng(seed)
    return [
        (
            rng.choice(dim, size=4, replace=False).astype(np.int64),
            rng.integers(1, 6, size=4).astype(float),
        )
        for _ in range(servers)
    ]


class TestStreamingRecovery:
    @pytest.mark.parametrize("kind", TRANSPORTS)
    def test_kill_between_delta_waves_preserves_stream(self, kind):
        def run(kill: bool):
            with SupervisedHarness(kind, checkpoint_every=2) as harness:
                servers = len(harness.components)
                harness.coordinator.apply_deltas(delta_batch(harness.dim, servers, 1))
                if kill:
                    # Die between the journaled wave and its checkpoint: the
                    # restore covers the previous checkpoint, the journal
                    # replays the un-checkpointed wave.
                    harness.killables[1].dead = True
                harness.coordinator.apply_deltas(delta_batch(harness.dim, servers, 2))
                state = harness.coordinator.sketch_state(4, 64, seed=9)
                result, words = run_sample(harness, seed=5)
                restarts = harness.supervisor.restarts
            return state, result, words, restarts

        state, result, words, restarts = run(kill=False)
        chaos_state, chaos_result, chaos_words, chaos_restarts = run(kill=True)
        assert restarts == 0 and chaos_restarts == 1
        assert state.equals(chaos_state)
        assert_same_draws(chaos_result, result)
        assert chaos_words == words

    @pytest.mark.chaos
    def test_long_stream_with_periodic_kills(self):
        def run(kill_every):
            with SupervisedHarness(
                "loopback", checkpoint_every=3, max_worker_restarts=10
            ) as harness:
                servers = len(harness.components)
                for wave in range(9):
                    if kill_every and wave and wave % kill_every == 0:
                        harness.killables[wave % len(harness.killables)].dead = True
                    harness.coordinator.apply_deltas(
                        delta_batch(harness.dim, servers, 100 + wave)
                    )
                state = harness.coordinator.sketch_state(4, 64, seed=9)
                result, words = run_sample(harness, seed=5)
                restarts = harness.supervisor.restarts
            return state, result, words, restarts

        state, result, words, _ = run(kill_every=0)
        chaos_state, chaos_result, chaos_words, restarts = run(kill_every=2)
        assert restarts > 0
        assert state.equals(chaos_state)
        assert_same_draws(chaos_result, result)
        assert chaos_words == words


# --------------------------------------------------------------------------- #
# backend level: supervise=True on the self-hosting backends
# --------------------------------------------------------------------------- #
class TestSupervisedBackends:
    def make_session(self, backend_kind, **kwargs):
        dim, components = make_components(seed=42, servers=4, support=500)
        backend = create_backend(backend_kind, supervise=True, **kwargs)
        return backend.session(components, dim), dim, components

    def test_supervised_loopback_backend_is_transparent(self):
        dim, components = make_components(seed=42, servers=4, support=500)
        with create_backend("loopback").session(components, dim) as plain:
            reference = plain.sample(weight_fn, 10, config=make_config(), seed=3)
            reference_words = dict(plain.network.snapshot().words_by_tag)
        session, _, _ = self.make_session("loopback")
        with session:
            assert session.supervisor is not None
            assert sorted(session.supervisor.checkpoints) == [0, 1, 2]
            result = session.sample(weight_fn, 10, config=make_config(), seed=3)
            words = dict(session.network.snapshot().words_by_tag)
            session.verify_accounting()
        assert_same_draws(result, reference)
        assert words == reference_words

    @pytest.mark.tcp
    @pytest.mark.chaos
    def test_supervised_tcp_backend_survives_server_stop(self):
        session, dim, components = self.make_session("tcp", max_worker_restarts=2)
        clean, _, _ = self.make_session("tcp")
        with clean:
            clean.apply_deltas(delta_batch(dim, len(components), 1))
            reference = clean.sample(weight_fn, 8, config=make_config(), seed=3)
            reference_words = dict(clean.network.snapshot().words_by_tag)
        with session:
            session.apply_deltas(delta_batch(dim, len(components), 1))
            # Stop one hosted server outright: the next wave's connection
            # dies, the supervisor spawns a replacement server + transport.
            session._servers[1].stop()
            result = session.sample(weight_fn, 8, config=make_config(), seed=3)
            words = dict(session.network.snapshot().words_by_tag)
            session.verify_accounting()
            assert session.supervisor.restarts == 1
        assert_same_draws(result, reference)
        assert words == reference_words
