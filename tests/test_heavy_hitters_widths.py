"""Additional coverage for HeavyHitters parameter selection and edge behaviour."""

import numpy as np
import pytest

from repro.sketch.heavy_hitters import _sketch_dimensions, distributed_heavy_hitters
from tests.test_heavy_hitters import split_across_servers
from tests.test_vector import make_vector


class TestSketchDimensions:
    def test_width_scales_with_b(self):
        _, narrow = _sketch_dimensions(4, 0.05, 6.0)
        _, wide = _sketch_dimensions(64, 0.05, 6.0)
        assert wide > narrow

    def test_depth_scales_with_delta(self):
        shallow, _ = _sketch_dimensions(8, 0.25, 6.0)
        deep, _ = _sketch_dimensions(8, 1e-4, 6.0)
        assert deep >= shallow

    def test_depth_capped(self):
        depth, _ = _sketch_dimensions(8, 1e-12, 6.0)
        assert depth <= 11

    def test_minimum_width(self):
        _, width = _sketch_dimensions(0.5, 0.1, 1.0)
        assert width >= 8


class TestHeavyHittersEdgeCases:
    def test_single_server_vector(self, rng):
        dense = rng.normal(size=150) * 0.1
        dense[11] = 60.0
        vector = make_vector([dense])
        result = distributed_heavy_hitters(vector, b=10, seed=0)
        # A single-server vector needs no table transfer at all.
        assert result.words_used == 0
        assert 11 in result.candidates

    def test_empty_candidate_restriction(self, rng):
        dense = rng.normal(size=100)
        vector = make_vector(split_across_servers(dense, 2, rng))
        result = distributed_heavy_hitters(
            vector, b=8, seed=1, candidate_indices=np.array([], dtype=np.int64)
        )
        assert result.candidates.size == 0

    def test_wider_sketch_no_fewer_true_positives(self, rng):
        dense = rng.normal(size=400) * 0.3
        heavy = [17, 200, 350]
        dense[heavy] = [25.0, -30.0, 28.0]
        found = {}
        for width_factor in (2.0, 10.0):
            vector = make_vector(split_across_servers(dense, 3, rng))
            result = distributed_heavy_hitters(
                vector, b=30, seed=2, width_factor=width_factor
            )
            found[width_factor] = len(set(heavy) & set(result.candidates.tolist()))
        assert found[10.0] >= found[2.0]
        assert found[10.0] == 3
