"""Fault injection: corrupted, truncated, dropped and delayed worker replies.

The contract under test: whatever a worker (or the network between) does to
a reply -- truncating it, replacing it with garbage, flipping a byte,
closing the connection mid-frame, lying about frame lengths, or simply
never answering -- the coordinator surfaces a **typed** error
(``WireFormatError``, ``WorkerProtocolError``, ``WorkerTimeoutError``) and
returns promptly.  It must never hang, deadlock, or leak a bare
``struct.error``/``IndexError``.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.core.errors import (
    WireFormatError,
    WorkerProtocolError,
    WorkerTimeoutError,
)
from repro.runtime import wire
from repro.runtime.service import CoordinatorService, WorkerService
from repro.runtime.transport import (
    LENGTH_PREFIX_BYTES,
    LoopbackTransport,
    TcpTransport,
    Transport,
    WorkerServer,
)

from test_chaos_recovery import SupervisedHarness, delta_batch, run_sample
from test_runtime_transport import (
    assert_same_draws,
    make_components,
    make_config,
    weight_fn,
)

#: Wall-clock ceiling for "the coordinator never hangs" assertions.
PROMPT_SECONDS = 30.0


# --------------------------------------------------------------------------- #
# test doubles
# --------------------------------------------------------------------------- #
class FaultyTransport(Transport):
    """Wraps an inner transport and corrupts replies per a fault schedule.

    ``faults`` maps 0-based request indices to a fault name; requests not in
    the map pass through untouched.  Fault names:

    * ``"truncate"`` -- drop the second half of the reply frame;
    * ``"garbage"``  -- replace the reply with 0xFF noise of the same length;
    * ``"flip"``     -- flip one byte in the middle of the reply;
    * ``"drop"``     -- raise ``ConnectionResetError`` instead of replying;
    * ``"delay"``    -- sleep ``delay`` seconds, then answer normally.
    """

    def __init__(self, inner: Transport, faults: dict, *, delay: float = 0.0) -> None:
        self._inner = inner
        self._faults = dict(faults)
        self._delay = delay
        self._count = 0

    def request(self, frame: bytes) -> bytes:
        index = self._count
        self._count += 1
        fault = self._faults.get(index)
        if fault == "drop":
            raise ConnectionResetError("injected connection loss")
        reply = self._inner.request(frame)
        if fault == "truncate":
            return reply[: max(1, len(reply) // 2)]
        if fault == "garbage":
            return b"\xff" * len(reply)
        if fault == "flip":
            # Flip a *framing* byte (the version field): a flipped byte in
            # the 8-byte-per-word float body would decode to a different
            # number -- the word model carries no checksums, by design --
            # while framing corruption must be detected structurally.
            mutated = bytearray(reply)
            mutated[4] ^= 0x40
            return bytes(mutated)
        if fault == "delay":
            time.sleep(self._delay)
        return reply

    def close(self) -> None:
        self._inner.close()


class FaultyWorkerServer:
    """A raw TCP server speaking deliberately broken length-prefixed frames.

    Modes (applied to every request after reading it in full):

    * ``"truncate_frame"``   -- announce N bytes, send N//2, close;
    * ``"garbage"``          -- valid prefix, 0xFF noise instead of a frame;
    * ``"oversized_prefix"`` -- announce a frame beyond MAX_FRAME_BYTES;
    * ``"lying_prefix"``     -- announce far more bytes than will ever come;
    * ``"close_mid_prefix"`` -- send half a length prefix, close;
    * ``"silent"``           -- read the request, never answer.
    """

    def __init__(self, mode: str) -> None:
        self._mode = mode
        self._sock = socket.create_server(("127.0.0.1", 0))
        self._sock.settimeout(0.2)
        self.port = self._sock.getsockname()[1]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _recv_exactly(self, conn: socket.socket, count: int) -> bytes:
        chunks = []
        remaining = count
        while remaining:
            chunk = conn.recv(remaining)
            if not chunk:
                raise ConnectionError("client went away")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with conn:
                try:
                    while not self._stop.is_set():
                        header = self._recv_exactly(conn, LENGTH_PREFIX_BYTES)
                        self._recv_exactly(conn, int.from_bytes(header, "big"))
                        if self._mode == "truncate_frame":
                            conn.sendall((64).to_bytes(8, "big") + b"\x00" * 32)
                            break
                        if self._mode == "garbage":
                            conn.sendall((32).to_bytes(8, "big") + b"\xff" * 32)
                        elif self._mode == "oversized_prefix":
                            conn.sendall(((1 << 40)).to_bytes(8, "big"))
                        elif self._mode == "lying_prefix":
                            conn.sendall((1 << 20).to_bytes(8, "big") + b"\x00" * 64)
                        elif self._mode == "close_mid_prefix":
                            conn.sendall(b"\x00\x00\x00")
                            break
                        elif self._mode == "silent":
                            continue
                        else:  # pragma: no cover - misconfigured test
                            raise AssertionError(f"unknown mode {self._mode}")
                except (ConnectionError, socket.timeout, OSError):
                    pass

    def stop(self) -> None:
        self._stop.set()
        self._sock.close()
        self._thread.join(timeout=5.0)


def faulty_coordinator(faults_per_worker, *, delay=0.0, concurrency=None):
    """A loopback coordinator whose worker transports inject faults."""
    dim, components = make_components(seed=20, servers=3, support=200)
    workers = [WorkerService(idx, val, dim) for idx, val in components[1:]]
    transports = [
        FaultyTransport(
            LoopbackTransport(worker.handle_frame),
            faults_per_worker.get(index, {}),
            delay=delay,
        )
        for index, worker in enumerate(workers)
    ]
    return (
        CoordinatorService(transports, dim, components[0], concurrency=concurrency),
        dim,
    )


def assert_prompt(start: float) -> None:
    assert time.perf_counter() - start < PROMPT_SECONDS, "coordinator hung"


# --------------------------------------------------------------------------- #
# loopback fault injection: codec-level corruption reaches typed errors
# --------------------------------------------------------------------------- #
class TestFaultyTransportLoopback:
    @pytest.mark.parametrize("fault", ["truncate", "garbage", "flip"])
    @pytest.mark.parametrize("concurrency", [1, None])
    def test_corrupted_reply_raises_typed_error(self, fault, concurrency):
        # Fault the second request (the handshake's hello is request 0) so
        # corruption lands mid-protocol, under both schedules.
        coordinator, _ = faulty_coordinator(
            {1: {1: fault}}, concurrency=concurrency
        )
        start = time.perf_counter()
        with pytest.raises((WireFormatError, WorkerProtocolError)):
            coordinator.sample(weight_fn, 5, config=make_config(), seed=0)
        assert_prompt(start)
        coordinator.close()

    def test_dropped_connection_surfaces(self):
        coordinator, _ = faulty_coordinator({0: {2: "drop"}})
        start = time.perf_counter()
        with pytest.raises(ConnectionError):
            coordinator.sample(weight_fn, 5, config=make_config(), seed=0)
        assert_prompt(start)
        coordinator.close()

    def test_corrupted_handshake_raises_before_protocol(self):
        dim, components = make_components(seed=21, servers=2, support=100)
        worker = WorkerService(*components[1], dim)
        transport = FaultyTransport(
            LoopbackTransport(worker.handle_frame), {0: "garbage"}
        )
        with pytest.raises(WireFormatError):
            CoordinatorService([transport], dim, components[0])

    def test_error_frames_surface_as_worker_protocol_error(self):
        """A worker that *reports* a fault (vs corrupting bytes) stays typed."""
        dim, components = make_components(seed=22, servers=2, support=100)

        def broken_handler(frame):
            decoded = wire.decode_frame(frame)
            if decoded.op == "hello":
                return WorkerService(*components[1], dim).handle_frame(frame)
            return wire.encode_frame(
                "error", {"type": "RuntimeError", "message": "disk on fire"}
            )

        coordinator = CoordinatorService(
            [LoopbackTransport(broken_handler)], dim, components[0]
        )
        with pytest.raises(WorkerProtocolError, match="disk on fire"):
            coordinator.sample(weight_fn, 5, config=make_config(), seed=0)
        coordinator.close()


# --------------------------------------------------------------------------- #
# TCP fault injection: socket-level corruption reaches typed errors
# --------------------------------------------------------------------------- #
@pytest.mark.tcp
class TestFaultyWorkerServerTcp:
    EXPECTATIONS = {
        "truncate_frame": WorkerProtocolError,
        "garbage": WireFormatError,
        "oversized_prefix": WireFormatError,
        "lying_prefix": WorkerTimeoutError,
        "close_mid_prefix": WorkerProtocolError,
        "silent": WorkerTimeoutError,
    }

    @pytest.mark.parametrize("mode", sorted(EXPECTATIONS))
    def test_broken_server_surfaces_typed_error(self, mode):
        server = FaultyWorkerServer(mode)
        try:
            transport = TcpTransport("127.0.0.1", server.port, timeout=2.0)
            start = time.perf_counter()
            with pytest.raises(self.EXPECTATIONS[mode]):
                transport.request(wire.encode_frame("hello"))
            assert_prompt(start)
            transport.close()
        finally:
            server.stop()

    def test_pipelined_wave_against_broken_server_stays_typed(self):
        server = FaultyWorkerServer("truncate_frame")
        try:
            transport = TcpTransport("127.0.0.1", server.port, timeout=2.0)
            start = time.perf_counter()
            with pytest.raises((WorkerProtocolError, WireFormatError)):
                transport.request_many(
                    [wire.encode_frame("op", {"i": i}) for i in range(4)]
                )
            assert_prompt(start)
            transport.close()
        finally:
            server.stop()

    def test_raising_handler_kills_connection_not_client(self):
        """A handler that raises (no error frame) must not strand the client."""

        def exploding_handler(frame):
            raise RuntimeError("handler bug")

        worker_server = WorkerServer(exploding_handler)
        host, port = worker_server.start()
        try:
            transport = TcpTransport(host, port, timeout=5.0)
            start = time.perf_counter()
            with pytest.raises((WorkerProtocolError, ConnectionError, OSError)):
                transport.request(wire.encode_frame("hello"))
            assert_prompt(start)
            transport.close()
        finally:
            worker_server.stop()

    def test_delayed_reply_times_out_typed_then_recovers(self):
        release = threading.Event()

        def slow_handler(frame):
            decoded = wire.decode_frame(frame)
            if decoded.meta.get("slow"):
                release.wait(timeout=10.0)
            return wire.encode_frame("ack", {"i": decoded.meta.get("i", -1)})

        worker_server = WorkerServer(slow_handler)
        host, port = worker_server.start()
        try:
            transport = TcpTransport(host, port, timeout=0.5)
            with pytest.raises(WorkerTimeoutError):
                transport.request(wire.encode_frame("op", {"slow": True, "i": 0}))
            release.set()
            # The transport recovers on a fresh connection.
            reply = transport.request(wire.encode_frame("op", {"i": 7}))
            assert wire.decode_frame(reply).meta["i"] == 7
            transport.close()
        finally:
            release.set()
            worker_server.stop()


class TestWorkerServiceFrameFaults:
    """The worker-side dispatcher answers malformed requests with error frames."""

    def make_worker(self):
        dim, components = make_components(seed=23, servers=2, support=100)
        return WorkerService(*components[1], dim)

    def test_garbage_request_returns_error_frame(self):
        worker = self.make_worker()
        reply = wire.decode_frame(worker.handle_frame(b"\xff" * 64))
        assert reply.op == "error"
        assert reply.meta["type"] == "WireFormatError"

    def test_truncated_request_returns_error_frame(self):
        worker = self.make_worker()
        valid = wire.encode_frame("hello")
        reply = wire.decode_frame(worker.handle_frame(valid[: len(valid) // 2]))
        assert reply.op == "error"
        assert reply.meta["type"] == "WireFormatError"

    def test_unknown_op_returns_error_frame(self):
        worker = self.make_worker()
        reply = wire.decode_frame(worker.handle_frame(wire.encode_frame("bogus")))
        assert reply.op == "error"
        assert reply.meta["type"] == "WorkerProtocolError"

    def test_sketch_with_wrong_meta_types_stays_typed(self):
        worker = self.make_worker()
        frame = wire.encode_frame(
            "sketch",
            {"num_buckets": 4, "depth": "not an int", "width": 8,
             "nonempty": [0], "tables_tag": "t", "token": None,
             "threshold": None, "session": ""},
            [("seeds", np.arange(3, dtype=np.int64)),
             ("bucket", (np.zeros((1, 2), dtype=np.int64),
                         np.zeros((1, 2), dtype=np.int64)))],
        )
        reply = wire.decode_frame(worker.handle_frame(frame))
        assert reply.op == "error"  # typed error frame, not a crashed worker


# --------------------------------------------------------------------------- #
# supervised failover during streaming ingestion: exactly-once deltas
# --------------------------------------------------------------------------- #
class TestApplyDeltasFailover:
    """A worker crash during ``apply_deltas`` must not lose or double a batch.

    Two crash points bracket the side effect: *before* the worker applies
    its shard (the request is lost) and *after* it applied but before the
    ack travelled back (the reply is lost).  In both cases the supervisor
    respawns the worker, restores the last checkpoint, replays the
    journalled wave, and the re-issued wave is deduplicated by sequence
    number -- every shard lands exactly once, on the replacement and on
    the surviving workers alike.
    """

    WORKER = 1

    def run_stream(self, crash=None):
        with SupervisedHarness("loopback", seed=31, servers=3, support=200) as h:
            servers = len(h.components)
            h.coordinator.apply_deltas(delta_batch(h.dim, servers, 7))
            target = h.killables[self.WORKER]
            if crash == "before_apply":
                h.schedule_kill(self.WORKER, at=target.calls + 1)
            elif crash == "after_apply":
                h.schedule_kill(self.WORKER, after=target.calls + 1)
            h.coordinator.apply_deltas(delta_batch(h.dim, servers, 8))
            worker = h.killables[self.WORKER].service
            idx, val = worker._component[:2]
            return {
                "component": (np.array(idx), np.array(val)),
                # Session IDs are per-run; the (seq, count, index_sum,
                # value_sum) fingerprints are what must match.
                "ledger": list(worker._applied_updates.values()),
                "state": h.coordinator.sketch_state(4, 64, seed=13),
                "run": run_sample(h, seed=17),
                "restarts": h.supervisor.restarts,
            }

    @pytest.mark.parametrize("crash", ["before_apply", "after_apply"])
    def test_crash_lands_each_delta_exactly_once(self, crash):
        clean = self.run_stream()
        chaotic = self.run_stream(crash)
        assert clean["restarts"] == 0 and chaotic["restarts"] == 1
        # The replacement worker's component matches the uninterrupted
        # worker entry for entry *and in order* (float folds are
        # order-sensitive) -- a lost shard or a double apply both fail here.
        np.testing.assert_array_equal(
            chaotic["component"][0], clean["component"][0]
        )
        np.testing.assert_array_equal(
            chaotic["component"][1], clean["component"][1]
        )
        # Same idempotency-ledger fingerprint: the replayed wave was
        # recognised by seq on the re-issue, not applied twice.
        assert chaotic["ledger"] == clean["ledger"]
        assert clean["state"].equals(chaotic["state"])
        draws, words = clean["run"]
        chaos_draws, chaos_words = chaotic["run"]
        assert_same_draws(chaos_draws, draws)
        assert chaos_words == words
