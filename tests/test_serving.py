"""Always-on serving: warm sessions, admission control, eviction recovery.

Covers the serving layer end to end:

* warm stream-keyed reuse -- the N-th identical submit is a cache hit that
  issues **zero** sketch waves (asserted from the span trace) and charges
  zero words (asserted from the ledger), bit-identical to the cold run;
* pool lifecycle -- LRU eviction, delta invalidation and re-keying;
* admission control -- pool-side and worker-side quotas raise a typed
  :class:`~repro.core.errors.AdmissionError` and never perturb a
  neighbouring tenant's session, results or audit;
* the session-eviction recovery path -- a shared worker LRU-evicting a
  session mid-protocol is healed by re-sending the retained subsample
  frame, with a ledger identical to an uninterrupted run;
* scoped subsample invalidation -- a neighbour's stream update extends
  (not wipes) cached restriction values, so in-flight protocols proceed
  without recovery;
* a multi-tenant soak (``--slow``): concurrent clients on one worker keep
  independent ledgers and reconciled cache counters.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import obs
from repro.backend import create_backend
from repro.backend.serving import ServingPool, ServingSession, stream_fingerprint
from repro.core.errors import AdmissionError
from repro.runtime import wire
from repro.runtime.service import CoordinatorService, WorkerService
from repro.runtime.transport import LoopbackTransport, Transport
from repro.sketch.hashing import SubsampleHash

from test_runtime_transport import (
    assert_same_draws,
    loopback_coordinator,
    make_components,
    make_config,
    weight_fn,
)


def serving_components(seed=5, dim=3000, servers=3, support=120):
    rng = np.random.default_rng(seed)
    components = []
    for _ in range(servers):
        idx = np.sort(rng.choice(dim, size=support, replace=False)).astype(np.int64)
        components.append((idx, rng.integers(-4, 5, size=support).astype(float)))
    return dim, components


class TestStreamFingerprint:
    def test_content_addressed(self):
        dim, components = serving_components()
        fp = stream_fingerprint(components, dim)
        assert fp == stream_fingerprint(
            [(idx.copy(), val.copy()) for idx, val in components], dim
        )
        # Any byte of any component changes the stream's identity.
        perturbed = [
            (idx, val) if server else (idx, val + (np.arange(val.size) == 0))
            for server, (idx, val) in enumerate(components)
        ]
        assert fp != stream_fingerprint(perturbed, dim)
        assert fp != stream_fingerprint(components, dim + 1)


class TestWarmPath:
    def test_warm_submit_issues_zero_sketch_waves_and_charges_nothing(self):
        dim, components = serving_components()
        with obs.capture() as telemetry:
            with create_backend("loopback").serving() as pool:
                session = pool.open(components, dim, tenant="acme")
                cold = session.submit("identity", 6, seed=3)
                ledger_cold = dict(session.network.snapshot().words_by_tag)
                frames_cold = session.session.network.frames_transported
                warm = session.submit("identity", 6, seed=3)
                # Same object, nothing moved, nothing charged.
                assert warm is cold
                assert dict(session.network.snapshot().words_by_tag) == ledger_cold
                assert session.session.network.frames_transported == frames_cold
                session.verify_accounting()
        submits = [
            span for span in telemetry.tracer.spans() if span.name == "serving:submit"
        ]
        assert [span.attributes["warm"] for span in submits] == [False, True]
        # Zero sketch waves after the first warm submit began -- the
        # Chrome-trace criterion, asserted on the span record itself.
        warm_start = submits[1].start_ns
        late_sketch = [
            span
            for span in telemetry.tracer.spans()
            if span.name == "wave:sketch" and span.start_ns >= warm_start
        ]
        assert late_sketch == []
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["serving.hits"] == 1
        assert counters["serving.misses"] == 1

    def test_warm_result_bit_identical_to_cold_pool(self):
        dim, components = serving_components(seed=6)
        with create_backend("loopback").serving() as pool:
            session = pool.open(components, dim)
            session.submit("identity", 5, seed=9)
            warm = session.submit("identity", 5, seed=9)
        with create_backend("loopback").serving() as pool:
            cold = pool.open(components, dim).submit("identity", 5, seed=9)
        assert_same_draws(warm, cold)

    def test_different_signature_runs_cold(self):
        dim, components = serving_components(seed=7)
        with create_backend("loopback").serving() as pool:
            session = pool.open(components, dim)
            a = session.submit("identity", 4, seed=1)
            b = session.submit("identity", 4, seed=2)
            assert a is not b
            assert session.misses == 2 and session.hits == 0

    def test_async_scatter_backend_serves_warm_identically(self):
        dim, components = serving_components(seed=8)
        with create_backend("loopback", async_scatter=True).serving() as pool:
            session = pool.open(components, dim, tenant="acme")
            cold = session.submit("identity", 5, seed=4)
            assert session.submit("identity", 5, seed=4) is cold
            session.verify_accounting()
        with create_backend("loopback").serving() as pool:
            reference = pool.open(components, dim).submit("identity", 5, seed=4)
        assert_same_draws(cold, reference)


class TestPoolLifecycle:
    def test_same_stream_same_tenant_reuses_the_session(self):
        dim, components = serving_components(seed=10)
        with create_backend("loopback").serving() as pool:
            first = pool.open(components, dim, tenant="a")
            again = pool.open(
                [(idx.copy(), val.copy()) for idx, val in components], dim, tenant="a"
            )
            assert again is first
            assert len(pool) == 1
            # Another tenant over the same bytes gets its own session: no
            # cross-tenant result sharing.
            other = pool.open(components, dim, tenant="b")
            assert other is not first

    def test_lru_eviction_closes_the_coldest_session(self):
        dim, _ = serving_components()
        streams = [serving_components(seed=20 + i)[1] for i in range(3)]
        with create_backend("loopback").serving(max_sessions=2) as pool:
            sessions = [pool.open(stream, dim) for stream in streams]
            assert len(pool) == 2
            # The evicted session's backend was closed; a fresh open over the
            # same bytes runs cold again.
            reopened = pool.open(streams[0], dim)
            assert reopened is not sessions[0]

    def test_deltas_invalidate_and_rekey(self):
        dim, components = serving_components(seed=11)
        deltas = [
            (np.zeros(0, dtype=np.int64), np.zeros(0)),
            (np.array([7, 9]), np.array([2.0, -1.0])),
            (np.zeros(0, dtype=np.int64), np.zeros(0)),
        ]
        appended = [
            (np.concatenate((idx, d_idx)), np.concatenate((val, d_val)))
            for (idx, val), (d_idx, d_val) in zip(components, deltas)
        ]
        with create_backend("loopback").serving() as pool:
            session = pool.open(components, dim)
            before = session.submit("identity", 5, seed=2)
            fingerprint = session.fingerprint
            session.apply_deltas(deltas)
            assert session.fingerprint != fingerprint
            after = session.submit("identity", 5, seed=2)
            assert after is not before
            # The pool now serves this session under the appended stream...
            assert pool.open(appended, dim) is session
            assert session.submit("identity", 5, seed=2) is after
            session.verify_accounting()
        # ...and the post-delta result equals a cold session over the
        # appended components (the streaming bit-identity contract).
        with create_backend("loopback").serving() as pool:
            cold = pool.open(appended, dim).submit("identity", 5, seed=2)
        assert_same_draws(after, cold)


class TestPoolAdmission:
    def test_per_tenant_quota_rejects_typed_without_touching_neighbours(self):
        dim, components = serving_components(seed=12)
        other = serving_components(seed=13)[1]
        third = serving_components(seed=14)[1]
        with obs.capture() as telemetry:
            with create_backend("loopback").serving(
                max_sessions_per_tenant=1
            ) as pool:
                session = pool.open(components, dim, tenant="acme")
                cold = session.submit("identity", 5, seed=1)
                with pytest.raises(AdmissionError, match="max_sessions_per_tenant"):
                    pool.open(other, dim, tenant="acme")
                # The neighbour's warm cache, results and audit are intact.
                assert pool.open(components, dim, tenant="acme") is session
                assert session.submit("identity", 5, seed=1) is cold
                session.verify_accounting()
                # A different tenant is still admitted.
                pool.open(third, dim, tenant="beta")
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["serving.admission.rejected"] == 1

    def test_max_tenants_quota(self):
        dim, components = serving_components(seed=15)
        other = serving_components(seed=16)[1]
        with create_backend("loopback").serving(max_tenants=1) as pool:
            pool.open(components, dim, tenant="acme")
            with pytest.raises(AdmissionError, match="max_tenants"):
                pool.open(other, dim, tenant="beta")
            # The resident tenant may keep opening sessions.
            pool.open(other, dim, tenant="acme")

    def test_quota_validation(self):
        backend = create_backend("loopback")
        with pytest.raises(ValueError, match="max_sessions"):
            ServingPool(backend, max_sessions=0)
        with pytest.raises(ValueError, match="max_tenants"):
            ServingPool(backend, max_tenants=0)
        with pytest.raises(ValueError, match="max_sessions_per_tenant"):
            ServingPool(backend, max_sessions_per_tenant=0)


class TestWorkerSideAdmission:
    def test_worker_quota_travels_back_typed(self):
        """A quota-enforcing worker refuses the second tenant's session with
        an error frame the coordinator re-raises as AdmissionError -- and the
        refused run never corrupts the admitted tenant's session."""
        dim, components = make_components(seed=30, servers=2)
        worker = WorkerService(*components[1], dim, max_tenants=1)
        first = CoordinatorService(
            [LoopbackTransport(worker.handle_frame)], dim, components[0],
            tenant="acme",
        )
        second = CoordinatorService(
            [LoopbackTransport(worker.handle_frame)], dim, components[0],
            tenant="beta",
        )
        draws = first.sample(weight_fn, 5, config=make_config(), seed=2)
        with pytest.raises(AdmissionError, match="beta"):
            second.sample(weight_fn, 5, config=make_config(), seed=2)
        # The admitted tenant is untouched: same seed reruns bit-identically
        # and both ledgers still pass the wire audit.
        rerun = first.sample(weight_fn, 5, config=make_config(), seed=2)
        assert_same_draws(draws, rerun)
        first.verify_wire_accounting()
        second.verify_wire_accounting()

    def test_untenanted_sessions_share_the_anonymous_quota_seat(self):
        dim, components = make_components(seed=31, servers=2)
        worker = WorkerService(*components[1], dim, max_sessions_per_tenant=1)
        first = CoordinatorService(
            [LoopbackTransport(worker.handle_frame)], dim, components[0]
        )
        second = CoordinatorService(
            [LoopbackTransport(worker.handle_frame)], dim, components[0]
        )
        first.sample(weight_fn, 5, config=make_config(), seed=2)
        with pytest.raises(AdmissionError):
            second.sample(weight_fn, 5, config=make_config(), seed=2)


class _EvictingTransport(Transport):
    """Adversarial neighbour: opens a foreign session right before each new
    restricted sketch frame, so a ``max_sessions=1`` worker evicts the
    victim's subsample cache between its ``subsample`` and ``sketch`` waves.
    A frame seen before (the coordinator's recovery retry) passes through
    untouched -- the attack models neighbour activity between waves, not an
    adversary racing every retry."""

    def __init__(self, handler, neighbour_frame: bytes) -> None:
        self._handler = handler
        self._neighbour_frame = neighbour_frame
        self._seen = set()
        self.evictions_triggered = 0

    def request(self, frame: bytes) -> bytes:
        frame = bytes(frame)
        decoded = wire.decode_frame(frame)
        if (
            decoded.op == "sketch"
            and decoded.meta.get("token") is not None
            and frame not in self._seen
        ):
            self._seen.add(frame)
            self._handler(self._neighbour_frame)
            self.evictions_triggered += 1
        return bytes(self._handler(frame))


def neighbour_subsample_frame(dim: int) -> bytes:
    coefficients = np.asarray(
        SubsampleHash(domain_scale=dim, seed=77).coefficients, dtype=np.int64
    )
    return wire.encode_frame(
        "subsample",
        {"token": 0, "domain_scale": dim, "session": "neighbour"},
        [("n:seeds", coefficients)],
    )


class TestEvictionRecovery:
    def test_session_eviction_mid_protocol_recovers_with_clean_ledger(self):
        """The two-tenant regression: a worker capped at one cached session
        evicts the victim before *every* restricted sketch wave, and the run
        still completes -- bit-identical, with a ledger (data AND control)
        equal to an uninterrupted run's."""
        dim, components = make_components(seed=32, servers=2)
        worker = WorkerService(*components[1], dim, max_sessions=1)
        adversarial = _EvictingTransport(
            worker.handle_frame, neighbour_subsample_frame(dim)
        )
        with obs.capture() as telemetry:
            coordinator = CoordinatorService([adversarial], dim, components[0])
            draws = coordinator.sample(weight_fn, 8, config=make_config(), seed=5)
            coordinator.verify_wire_accounting()
        assert adversarial.evictions_triggered > 0
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["coordinator.subsample.resends"] > 0

        clean, _ = loopback_coordinator(dim, components)
        reference = clean.sample(weight_fn, 8, config=make_config(), seed=5)
        assert_same_draws(draws, reference)
        assert (
            coordinator.network.snapshot().words_by_tag
            == clean.network.snapshot().words_by_tag
        )
        # Recovery traffic stays off the books entirely: even the uncharged
        # framing overhead matches a run where no eviction happened.
        assert (
            coordinator.network.control_overhead_bytes
            == clean.network.control_overhead_bytes
        )
        assert (
            coordinator.network.frames_transported
            == clean.network.frames_transported
        )

    def test_recovery_covers_restricted_estimates_end_to_end(self):
        dim, components = make_components(seed=33, servers=2)
        worker = WorkerService(*components[1], dim, max_sessions=1)
        adversarial = _EvictingTransport(
            worker.handle_frame, neighbour_subsample_frame(dim)
        )
        coordinator = CoordinatorService([adversarial], dim, components[0])
        estimate = coordinator.estimate(weight_fn, config=make_config(), seed=4)
        coordinator.verify_wire_accounting()
        clean, _ = loopback_coordinator(dim, components)
        reference = clean.estimate(weight_fn, config=make_config(), seed=4)
        assert estimate.z_total == reference.z_total


class TestScopedInvalidation:
    def test_neighbour_update_does_not_wipe_in_flight_restrictions(self):
        """S2 regression: a *different* session's stream update used to clear
        every cached subsample array, hard-failing in-flight protocols.  The
        refresh now extends the cached values in place: the victim's
        restricted sketch proceeds with zero recovery resends and zero
        invalidations."""
        from repro.sketch.countsketch import BatchedCountSketch, CountSketch
        from repro.sketch.hashing import PairwiseHash

        dim, components = make_components(seed=34, servers=2)
        worker = WorkerService(*components[1], dim)
        victim = CoordinatorService(
            [LoopbackTransport(worker.handle_frame)], dim, components[0]
        )
        neighbour = CoordinatorService(
            [LoopbackTransport(worker.handle_frame)], dim, components[0]
        )
        with obs.capture() as telemetry:
            restrictor = victim.vector().subsample_restrictor(
                SubsampleHash(domain_scale=dim, seed=0), tag="t"
            )
            # The neighbour streams a delta while the victim's restriction
            # is in flight.
            neighbour.apply_deltas(
                [
                    (np.zeros(0, dtype=np.int64), np.zeros(0)),
                    (np.array([3]), np.array([1.0])),
                ]
            )
            batched = BatchedCountSketch([CountSketch(3, 8, dim, seed=0)])
            tables = restrictor.restrict(1).batched_sketch_tables(
                batched,
                np.zeros(dim, dtype=np.int64),
                bucket_hash=PairwiseHash(1, seed=0),
                nonempty_buckets=[0],
                tag="t",
            )
        assert len(tables) == 2
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters.get("coordinator.subsample.resends", 0) == 0
        assert counters.get("worker.subsample.invalidations", 0) == 0

    def test_restore_still_counts_invalidations(self):
        """Checkpoint restore genuinely discards caches -- the invalidation
        counter must say so."""
        dim, components = make_components(seed=35, servers=2)
        worker = WorkerService(*components[1], dim)
        coordinator = CoordinatorService(
            [LoopbackTransport(worker.handle_frame)], dim, components[0]
        )
        coordinator.vector().subsample_restrictor(
            SubsampleHash(domain_scale=dim, seed=0), tag="t"
        )
        checkpoint = wire.decode_frame(
            worker.handle_frame(wire.encode_frame("checkpoint", {}))
        )
        with obs.capture() as telemetry:
            reply = wire.decode_frame(
                worker.handle_frame(
                    wire.encode_frame("restore", {}, [(None, checkpoint.entry(0))])
                )
            )
        assert reply.op == "ack"
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["worker.subsample.invalidations"] == 1


@pytest.mark.slow
class TestMultiTenantSoak:
    def test_concurrent_tenants_on_one_worker_stay_independent(self):
        """N concurrent clients (distinct local streams, one shared
        WorkerService under tight caches + quotas): every admitted client's
        draws and per-tag ledger match its solo run, every ledger passes the
        wire audit, and worker cache counters reconcile."""
        dim = 4000
        tenants = 4
        rounds = 3
        worker_dim, base = make_components(seed=40, dim=dim, servers=2)
        worker = WorkerService(
            *base[1], worker_dim, max_sessions=2, max_tenants=tenants
        )

        def local_component(tenant: int):
            rng = np.random.default_rng(100 + tenant)
            idx = np.sort(rng.choice(dim, size=200, replace=False)).astype(np.int64)
            return idx, rng.integers(-5, 6, size=200).astype(float)

        def solo_reference(tenant: int):
            solo_worker = WorkerService(*base[1], worker_dim)
            coordinator = CoordinatorService(
                [LoopbackTransport(solo_worker.handle_frame)],
                worker_dim,
                local_component(tenant),
                tenant=f"tenant-{tenant}",
            )
            draws = coordinator.sample(
                weight_fn, 6, config=make_config(), seed=tenant
            )
            return draws, dict(coordinator.network.snapshot().words_by_tag)

        references = [solo_reference(tenant) for tenant in range(tenants)]
        results = [None] * tenants
        errors = []

        def run(tenant: int):
            try:
                coordinator = CoordinatorService(
                    [LoopbackTransport(worker.handle_frame)],
                    worker_dim,
                    local_component(tenant),
                    tenant=f"tenant-{tenant}",
                )
                for _ in range(rounds):
                    draws = coordinator.sample(
                        weight_fn, 6, config=make_config(), seed=tenant
                    )
                coordinator.verify_wire_accounting()
                results[tenant] = (
                    draws, dict(coordinator.network.snapshot().words_by_tag)
                )
            except Exception as exc:  # noqa: BLE001 - reported by the main thread
                errors.append((tenant, exc))

        with obs.capture() as telemetry:
            threads = [
                threading.Thread(target=run, args=(tenant,))
                for tenant in range(tenants)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert errors == []
        for tenant in range(tenants):
            draws, ledger = results[tenant]
            reference_draws, reference_ledger = references[tenant]
            assert_same_draws(draws, reference_draws)
            # Per-tenant ledgers are independent: each equals a solo run
            # over that tenant's stream, times the repeat count per tag.
            assert ledger == {
                tag: rounds * words for tag, words in reference_ledger.items()
            }
        counters = telemetry.metrics.snapshot()["counters"]
        hits = counters.get("worker.subsample.hits", 0)
        misses = counters.get("worker.subsample.misses", 0)
        # Every restricted sketch either hit or missed; both add up over
        # all tenants and rounds (no request vanished or double-counted).
        assert hits + misses > 0

    def test_admission_rejection_during_soak_leaves_neighbours_intact(self):
        dim, components = make_components(seed=41, servers=2)
        worker = WorkerService(*components[1], dim, max_tenants=1)
        admitted = CoordinatorService(
            [LoopbackTransport(worker.handle_frame)], dim, components[0],
            tenant="resident",
        )
        baseline = admitted.sample(weight_fn, 6, config=make_config(), seed=1)
        rejected = []

        def intruder(index: int):
            coordinator = CoordinatorService(
                [LoopbackTransport(worker.handle_frame)], dim, components[0],
                tenant=f"intruder-{index}",
            )
            try:
                coordinator.sample(weight_fn, 6, config=make_config(), seed=1)
            except AdmissionError:
                rejected.append(index)

        threads = [threading.Thread(target=intruder, args=(i,)) for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(rejected) == [0, 1, 2]
        rerun = admitted.sample(weight_fn, 6, config=make_config(), seed=1)
        assert_same_draws(baseline, rerun)
        admitted.verify_wire_accounting()
