"""Tests for repro.distributed.message (word accounting of payloads)."""

import numpy as np
import pytest
from scipy import sparse

from repro.distributed.message import Message, payload_word_count


class TestPayloadWordCount:
    def test_none_is_free(self):
        assert payload_word_count(None) == 0

    def test_scalar_is_one_word(self):
        assert payload_word_count(3.14) == 1
        assert payload_word_count(7) == 1
        assert payload_word_count(np.float64(1.0)) == 1
        assert payload_word_count(True) == 1

    def test_array_costs_size(self):
        assert payload_word_count(np.zeros((3, 4))) == 12
        assert payload_word_count(np.zeros(7)) == 7

    def test_sparse_costs_two_per_nnz(self):
        mat = sparse.csr_matrix(np.eye(5))
        assert payload_word_count(mat) == 2 * 5 + 1

    def test_string_costs_eighth(self):
        assert payload_word_count("abcdefgh") == 1
        assert payload_word_count("abcdefghi") == 2
        assert payload_word_count("") == 0

    def test_list_sums_items(self):
        assert payload_word_count([1, 2.0, np.zeros(3)]) == 5

    def test_dict_includes_keys(self):
        assert payload_word_count({"k": 1.0}) == 1 + 1

    def test_tuple(self):
        assert payload_word_count((np.ones(2), np.ones(3))) == 5

    def test_unknown_type_raises(self):
        class Opaque:
            pass

        with pytest.raises(TypeError):
            payload_word_count(Opaque())

    def test_object_with_word_count_method(self):
        class Sized:
            def word_count(self):
                return 9

        assert payload_word_count(Sized()) == 9


class TestMessage:
    def test_word_count_computed(self):
        msg = Message(sender=1, receiver=0, payload=np.zeros(10))
        assert msg.words == 10

    def test_explicit_word_count_respected(self):
        msg = Message(sender=1, receiver=0, payload=None, words=5)
        assert msg.words == 5

    def test_direction_flags(self):
        to_cp = Message(sender=2, receiver=0, payload=1)
        from_cp = Message(sender=0, receiver=2, payload=1)
        assert to_cp.is_to_coordinator and not to_cp.is_broadcast_leg
        assert from_cp.is_broadcast_leg and not from_cp.is_to_coordinator

    def test_frozen(self):
        msg = Message(sender=1, receiver=0, payload=1)
        with pytest.raises(AttributeError):
            msg.sender = 2
