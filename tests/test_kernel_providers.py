"""Tests for the compiled-kernel provider registry (repro.sketch.kernels).

Provider *parity* (bit-identity of the kernels themselves) is asserted by
the provider-parametrized suites in ``test_hashing.py`` and
``test_vectorized_equivalence.py``; this file covers the registry
machinery: lookup/selection semantics, precedence surfaces (env var, API,
backend factory, CLI), the telemetry gauge, and the audited
fail-quietly-once contract of numba auto-detection.
"""

import logging
import sys

import numpy as np
import pytest

from repro import obs
from repro.backend import create_backend
from repro.sketch import engine, kernels


class TestRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in kernels.available_providers()
        assert kernels.get_provider("numpy").name == "numpy"
        assert kernels.unavailable_reason("numpy") == ""

    def test_known_providers_include_numba_even_when_absent(self):
        known = kernels.known_providers()
        assert "numpy" in known and "numba" in known

    def test_active_provider_is_available(self):
        assert kernels.active_provider_name() in kernels.available_providers()
        assert kernels.active_provider().name == kernels.active_provider_name()

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ValueError, match="unknown kernel provider"):
            kernels.get_provider("cython")

    def test_unavailable_name_raises_with_reason(self):
        if "numba" in kernels.available_providers():
            pytest.skip("numba installed: the unavailable path is not reachable")
        reason = kernels.unavailable_reason("numba")
        assert reason  # recorded at import-time detection
        with pytest.raises(ValueError, match="unavailable"):
            kernels.set_kernel_provider("numba")

    def test_register_rejects_anonymous_provider(self):
        class Anonymous(kernels.KernelProvider):
            name = ""
            stacked_hash_block = gathered_hash_block = None
            scatter_add = domain_cache_range = None
            __abstractmethods__ = frozenset()

        with pytest.raises(ValueError, match="non-empty name"):
            kernels.register_provider(Anonymous())

    def test_set_and_override_restore(self):
        before = kernels.active_provider_name()
        with kernels.provider_override("numpy") as provider:
            assert provider.name == "numpy"
            assert kernels.active_provider_name() == "numpy"
        assert kernels.active_provider_name() == before

    def test_override_restores_on_error(self):
        before = kernels.active_provider_name()
        with pytest.raises(RuntimeError):
            with kernels.provider_override("numpy"):
                raise RuntimeError("boom")
        assert kernels.active_provider_name() == before


class TestSelectionSurfaces:
    def test_engine_reexports(self):
        assert engine.kernel_provider() == kernels.active_provider_name()
        with engine.kernel_provider_override("numpy"):
            assert engine.kernel_provider() == "numpy"
        provider = engine.set_kernel_provider(kernels.active_provider_name())
        assert provider.name == kernels.active_provider_name()

    def test_engine_rejects_unknown(self):
        with pytest.raises(ValueError):
            engine.set_kernel_provider("not-a-provider")

    def test_create_backend_kernel_option(self):
        before = kernels.active_provider_name()
        try:
            backend = create_backend("local", kernel="numpy")
            assert kernels.active_provider_name() == "numpy"
            assert backend is not None
        finally:
            kernels.set_kernel_provider(before)

    def test_create_backend_rejects_unknown_kernel(self):
        with pytest.raises(ValueError):
            create_backend("local", kernel="not-a-provider")

    def test_env_var_initial_provider(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "numpy")
        assert kernels._initial_provider().name == "numpy"

    def test_env_var_fallback_logs_warning(self, monkeypatch, caplog):
        monkeypatch.setenv(kernels.ENV_VAR, "not-a-provider")
        with caplog.at_level(logging.WARNING, logger="repro.sketch.kernels"):
            provider = kernels._initial_provider()
        # Falls back to the best available provider instead of raising...
        assert provider.name in kernels.available_providers()
        # ...but says so: an env-var typo must not pass silently.
        assert any(kernels.ENV_VAR in rec.message for rec in caplog.records)

    def test_cli_kernel_flag_unknown_is_usage_error(self, capsys):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["figure1", "--kernel", "not-a-provider"])
        assert excinfo.value.code == 2  # argparse usage error, not a traceback

    def test_cli_kernel_flag_unavailable_is_usage_error(self, capsys):
        if "numba" in kernels.available_providers():
            pytest.skip("numba installed: the unavailable path is not reachable")
        from repro.experiments.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["figure1", "--kernel", "numba"])
        assert excinfo.value.code == 2
        assert "unavailable" in capsys.readouterr().err


class TestTelemetryGauge:
    def test_capture_records_active_provider(self):
        with obs.capture() as telemetry:
            snapshot = telemetry.metrics.snapshot()
        assert snapshot["gauges"]["kernel.provider"] == (
            kernels.active_provider_name()
        )

    def test_gauge_follows_set_kernel_provider(self):
        before = kernels.active_provider_name()
        with obs.capture() as telemetry:
            kernels.set_kernel_provider("numpy")
            try:
                assert telemetry.metrics.gauge("kernel.provider").value == "numpy"
            finally:
                kernels.set_kernel_provider(before)


class TestNumbaDetection:
    def test_detection_failure_logs_once_never_prints(
        self, monkeypatch, caplog, capsys
    ):
        """A broken/absent numba logs one structured record, prints nothing,
        raises nothing, and records the reason for ``unavailable_reason``."""
        # Force the provider import to fail even when numba is installed,
        # and keep the damage local: mutate copies of the registry state.
        monkeypatch.setitem(sys.modules, "numba", None)
        monkeypatch.delitem(
            sys.modules, "repro.sketch.kernels.numba_provider", raising=False
        )
        monkeypatch.setattr(kernels, "_UNAVAILABLE", dict(kernels._UNAVAILABLE))
        monkeypatch.setattr(kernels, "_PROVIDERS", dict(kernels._PROVIDERS))
        monkeypatch.setattr(kernels, "_NUMBA_LOGGED", False)
        with caplog.at_level(logging.INFO, logger="repro.sketch.kernels"):
            assert kernels._detect_numba() is False
            assert kernels._detect_numba() is False  # second call: no re-log
        records = [
            rec
            for rec in caplog.records
            if rec.name == "repro.sketch.kernels" and "numba" in rec.message
        ]
        assert len(records) == 1
        assert "falling back" in records[0].message
        assert kernels.unavailable_reason("numba")
        out = capsys.readouterr()
        assert out.out == "" and out.err == ""

    def test_package_reimport_is_silent_on_stdout(self, capsys):
        """Importing the package never prints, whatever numba's state."""
        import importlib

        importlib.import_module("repro.sketch.kernels")
        out = capsys.readouterr()
        assert out.out == "" and out.err == ""


class TestProviderSmoke:
    """One end-to-end draw per provider: selection really changes the engine
    used, and results stay bit-identical (the full parity matrix lives in
    the parametrized equivalence suites)."""

    @pytest.mark.parametrize("name", sorted(kernels.known_providers()))
    def test_sample_bit_identical_across_providers(self, name):
        if name not in kernels.available_providers():
            pytest.skip(
                f"kernel provider {name!r} unavailable: "
                f"{kernels.unavailable_reason(name)}"
            )
        from repro.backend.local import LocalSession
        from repro.sketch.z_heavy_hitters import ZHeavyHittersParams
        from repro.sketch.z_sampler import ZSamplerConfig

        rng = np.random.default_rng(11)
        dimension, components = 800, []
        for _ in range(3):
            idx = np.sort(rng.choice(dimension, size=120, replace=False)).astype(
                np.int64
            )
            components.append((idx, rng.integers(-5, 6, size=120).astype(float)))
        config = ZSamplerConfig(
            hh_params=ZHeavyHittersParams(b=8, repetitions=1, num_buckets=8),
            max_levels=5,
        )

        def run():
            session = LocalSession(components, dimension)
            try:
                draws = session.sample(np.abs, 10, config=config, seed=13)
                words = dict(session.network.snapshot().words_by_tag)
            finally:
                session.close()
            return draws, words

        with kernels.provider_override("numpy"):
            ref_draws, ref_words = run()
        with kernels.provider_override(name):
            got_draws, got_words = run()
        np.testing.assert_array_equal(got_draws.indices, ref_draws.indices)
        np.testing.assert_array_equal(
            got_draws.probabilities, ref_draws.probabilities
        )
        np.testing.assert_array_equal(got_draws.values, ref_draws.values)
        assert got_words == ref_words
