"""Transport + services: error paths, guards and the wire-accounting audit.

The bit-identity of transport-backed runs against the same-seed in-process
simulation (draws, estimates, per-tag words, bytes-per-word audit) is
asserted for every backend by the parametrized ``test_backend_matrix.py``
suite; this module keeps the service-level guard rails -- handshake
failures, worker error frames, restricted-vector restrictions and the
:class:`~repro.distributed.network.TransportNetwork` ledger checks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import DimensionMismatchError, WireAccountingError
from repro.distributed.network import TransportNetwork
from repro.runtime.service import (
    CoordinatorService,
    WorkerProtocolError,
    WorkerService,
    _rpc,
)
from repro.runtime.transport import LoopbackTransport, TcpTransport
from repro.sketch.z_sampler import ZSamplerConfig
from repro.sketch.z_heavy_hitters import ZHeavyHittersParams


def make_components(seed=42, dim=4000, servers=4, support=600):
    rng = np.random.default_rng(seed)
    components = []
    heavy = rng.choice(dim, size=10, replace=False)
    for server in range(servers):
        idx = np.sort(rng.choice(dim, size=support, replace=False)).astype(np.int64)
        val = rng.integers(-5, 6, size=support).astype(float)
        if server == 0:
            extra = np.setdiff1d(heavy, idx)
            idx = np.concatenate((idx, extra))
            val = np.concatenate((val, np.zeros(extra.size)))
            order = np.argsort(idx)
            idx, val = idx[order], val[order]
            val[np.isin(idx, heavy)] = 100.0
        components.append((idx, val))
    return dim, components


def make_config():
    return ZSamplerConfig(
        hh_params=ZHeavyHittersParams(b=8, repetitions=1, num_buckets=8),
        max_levels=5,
    )


def weight_fn(values):
    return np.abs(values)


def loopback_coordinator(dim, components, **kwargs):
    workers = [WorkerService(idx, val, dim) for idx, val in components[1:]]
    transports = [LoopbackTransport(worker.handle_frame) for worker in workers]
    return CoordinatorService(transports, dim, components[0], **kwargs), workers


def assert_same_draws(draws_a, draws_b):
    """Bit-identity of two SampleDraws (shared with the concurrency/matrix suites)."""
    np.testing.assert_array_equal(draws_a.indices, draws_b.indices)
    np.testing.assert_array_equal(draws_a.probabilities, draws_b.probabilities)
    np.testing.assert_array_equal(draws_a.values, draws_b.values)
    assert draws_a.estimate.z_total == draws_b.estimate.z_total
    assert draws_a.estimate.class_sizes == draws_b.estimate.class_sizes
    assert draws_a.estimate.member_values == draws_b.estimate.member_values
    assert draws_a.estimate.words_used == draws_b.estimate.words_used


class TestLoopbackServiceGuards:
    def test_control_overhead_tracked_separately(self):
        dim, components = make_components(seed=1)
        coordinator, _ = loopback_coordinator(dim, components)
        coordinator.sample(weight_fn, 10, config=make_config(), seed=3)
        coordinator.verify_wire_accounting()
        # Framing/metadata traffic exists but stays out of the data plane.
        assert coordinator.network.control_overhead_bytes > 0

    def test_naive_engine_is_rejected(self):
        from repro.sketch import engine

        dim, components = make_components(seed=2, servers=2)
        coordinator, _ = loopback_coordinator(dim, components)
        with engine.naive_reference():
            with pytest.raises(RuntimeError, match="fused"):
                coordinator.sample(weight_fn, 5, seed=0)

    def test_dimension_mismatch_handshake(self):
        dim, components = make_components(seed=3, servers=2)
        worker = WorkerService(*components[1], dim * 2)
        with pytest.raises(DimensionMismatchError, match="dimension"):
            CoordinatorService(
                [LoopbackTransport(worker.handle_frame)], dim, components[0]
            )

    def test_worker_error_surfaces(self):
        dim, components = make_components(seed=4, servers=2)
        coordinator, _ = loopback_coordinator(dim, components)
        with pytest.raises(WorkerProtocolError, match="unknown op"):
            _rpc(coordinator.network, coordinator._transports[0], "bogus")

    def test_sketch_without_subsample_cache_fails_cleanly(self):
        dim, components = make_components(seed=5, servers=2)
        coordinator, _ = loopback_coordinator(dim, components)
        vector = coordinator.vector()
        vector._restriction = (123, 10)
        from repro.sketch.countsketch import BatchedCountSketch, CountSketch
        from repro.sketch.hashing import PairwiseHash

        batched = BatchedCountSketch([CountSketch(3, 8, dim, seed=0)])
        with pytest.raises(WorkerProtocolError, match="subsample"):
            vector.batched_sketch_tables(
                batched,
                np.zeros(dim, dtype=np.int64),
                bucket_hash=PairwiseHash(1, seed=0),
                nonempty_buckets=[0],
                tag="t",
            )

    def test_remote_vector_guards(self):
        dim, components = make_components(seed=6, servers=2)
        coordinator, _ = loopback_coordinator(dim, components)
        vector = coordinator.vector()
        with pytest.raises(NotImplementedError):
            vector.local_component(1)
        with pytest.raises(NotImplementedError):
            vector.restrict(lambda idx: idx % 2 == 0)
        with pytest.raises(NotImplementedError):
            vector.support_size()
        # Server 0's own component stays accessible.
        idx, _ = vector.local_component(0)
        assert idx.size == components[0][0].size

    def test_collect_on_restricted_clone_raises(self):
        from repro.sketch.hashing import SubsampleHash

        dim, components = make_components(seed=7, servers=2)
        coordinator, _ = loopback_coordinator(dim, components)
        vector = coordinator.vector()
        restrictor = vector.subsample_restrictor(
            SubsampleHash(domain_scale=dim, seed=0), tag="t"
        )
        restricted = restrictor.restrict(1)
        with pytest.raises(NotImplementedError, match="base vector"):
            restricted.collect(np.arange(3))
        # The base vector still collects normally.
        assert vector.collect(np.arange(3), tag="t:verify").shape == (3,)


class TestStreamingWorkerOps:
    """The worker-side half of streaming ingestion (update / stream_sketch)."""

    def test_update_refreshes_collect_values(self):
        dim, components = make_components(seed=21, servers=3)
        coordinator, workers = loopback_coordinator(dim, components)
        target = int(components[1][0][0])
        before = coordinator.vector().collect([target], tag="t:verify")
        deltas = [(np.zeros(0, dtype=np.int64), np.zeros(0))] * 3
        deltas[1] = (np.array([target]), np.array([5.0]))
        coordinator.apply_deltas(deltas)
        after = coordinator.vector().collect([target], tag="t:verify")
        np.testing.assert_allclose(after - before, [5.0])
        # Delta shipment is control plane: no words were charged for it.
        words = coordinator.network.snapshot().words_by_tag
        assert set(words) == {"t:verify"}
        coordinator.verify_wire_accounting()

    def test_update_refreshes_subsample_tokens_in_place(self):
        """A delta batch *extends* cached subsample values instead of wiping
        them: a restricted sketch issued after the update succeeds and is
        bit-identical to a cold run over the post-update components."""
        from repro.sketch.countsketch import BatchedCountSketch, CountSketch
        from repro.sketch.hashing import PairwiseHash, SubsampleHash

        def run(pre_update_components, deltas):
            coordinator, _ = loopback_coordinator(dim, pre_update_components)
            vector = coordinator.vector()
            restrictor = vector.subsample_restrictor(
                SubsampleHash(domain_scale=dim, seed=0), tag="t"
            )
            if deltas is not None:
                coordinator.apply_deltas(deltas)
            batched = BatchedCountSketch([CountSketch(3, 8, dim, seed=0)])
            return restrictor.restrict(1).batched_sketch_tables(
                batched,
                np.zeros(dim, dtype=np.int64),
                bucket_hash=PairwiseHash(1, seed=0),
                nonempty_buckets=[0],
                tag="t",
            )

        dim, components = make_components(seed=22, servers=2)
        deltas = [
            (np.zeros(0, dtype=np.int64), np.zeros(0)),
            (np.array([3]), np.array([1.0])),
        ]
        warm = run(components, deltas)
        # Cold reference: a fresh worker already holding the post-update
        # component (subsample cached *after* the delta landed).
        updated = list(components)
        updated[1] = (
            np.concatenate((components[1][0], deltas[1][0])),
            np.concatenate((components[1][1], deltas[1][1])),
        )
        cold = run(updated, None)
        for warm_table, cold_table in zip(warm, cold):
            np.testing.assert_array_equal(warm_table, cold_table)

    def test_malformed_delta_rejected_before_shipping(self):
        dim, components = make_components(seed=23, servers=2)
        coordinator, _ = loopback_coordinator(dim, components)
        with pytest.raises(DimensionMismatchError, match="delta coordinates"):
            coordinator.apply_deltas(
                [
                    (np.zeros(0, dtype=np.int64), np.zeros(0)),
                    (np.array([dim + 1]), np.array([1.0])),
                ]
            )

    def test_worker_validates_its_own_delta_shard(self):
        """A worker trusts nobody: a raw `update` frame with out-of-range
        coordinates (bypassing the coordinator's check) answers with a typed
        error frame."""
        from repro.runtime import wire

        dim, components = make_components(seed=23, servers=2)
        worker = WorkerService(*components[1], dim)
        frame = wire.encode_frame(
            "update", {"tag": "t"},
            [(None, (np.array([dim + 7]), np.array([1.0])))],
        )
        reply = wire.decode_frame(worker.handle_frame(frame))
        assert reply.op == "error"
        assert reply.meta["type"] == "DimensionMismatchError"

    def test_update_retry_is_exactly_once(self):
        """A retried wave (same session/seq) must not double-apply: workers
        dedupe by the stamped sequence number."""
        from repro.runtime import wire

        dim, components = make_components(seed=25, servers=2)
        worker = WorkerService(*components[1], dim)
        delta = (np.array([3, 9]), np.array([2.0, -1.0]))
        frame = wire.encode_frame(
            "update", {"tag": "t", "session": "s", "seq": 1}, [(None, delta)]
        )
        first = wire.decode_frame(worker.handle_frame(frame))
        assert first.op == "ack" and first.meta["applied"] is True
        support_after = first.meta["support"]
        again = wire.decode_frame(worker.handle_frame(frame))
        assert again.op == "ack" and again.meta["applied"] is False
        assert again.meta["support"] == support_after
        # Same seq, different contents: a diverged stream fails loudly.
        diverged = wire.encode_frame(
            "update",
            {"tag": "t", "session": "s", "seq": 1},
            [(None, (np.array([4]), np.array([7.0])))],
        )
        reply = wire.decode_frame(worker.handle_frame(diverged))
        assert reply.op == "error"
        assert "different contents" in reply.meta["message"]

    def test_coordinator_retry_after_failed_wave_is_exactly_once(self):
        """Re-calling apply_deltas with the same batch after a failed wave
        (seq not advanced) leaves every worker single-applied."""
        dim, components = make_components(seed=26, servers=3)
        coordinator, _ = loopback_coordinator(dim, components)
        target = int(components[1][0][0])
        before = coordinator.vector().collect([target], tag="t:verify")
        deltas = [(np.zeros(0, dtype=np.int64), np.zeros(0))] * 3
        deltas[1] = (np.array([target]), np.array([5.0]))
        coordinator.apply_deltas(deltas)
        # Simulate a wave that reached the workers but whose success never
        # committed coordinator-side (e.g. a lost reply): the seq was not
        # advanced, so the retry re-sends the same seq.
        coordinator._delta_seq -= 1
        coordinator.apply_deltas(deltas)
        after = coordinator.vector().collect([target], tag="t:verify")
        np.testing.assert_allclose(after - before, [5.0])

    def test_stream_state_cache_knob_evicts_lru(self):
        """`max_stream_states` bounds the worker's stream cache like the
        other WorkerService knobs, with LRU eviction (reads refresh recency)."""
        from repro.runtime import wire
        from repro.sketch.countsketch import CountSketch

        dim, components = make_components(seed=26, servers=2)
        worker = WorkerService(*components[1], dim, max_stream_states=2)

        def stream_frame(stream, seed):
            state = CountSketch(3, 8, dim, seed=seed).export_state()
            return wire.encode_frame(
                "stream_sketch",
                {
                    "stream": stream, "session": "s",
                    "width": 8, "tables_tag": "t:tables",
                },
                [("t:seeds", (state.bucket_coeffs, state.sign_coeffs))],
            )

        for name, seed in (("a", 1), ("b", 2), ("c", 3)):
            reply = wire.decode_frame(worker.handle_frame(stream_frame(name, seed)))
            assert reply.op == "state"
        assert set(worker._stream_states) == {("s", "b"), ("s", "c")}
        # Re-serving "b" refreshes its recency: "c" is the next victim.
        worker.handle_frame(stream_frame("b", 2))
        worker.handle_frame(stream_frame("d", 4))
        assert set(worker._stream_states) == {("s", "b"), ("s", "d")}

    def test_stream_state_cache_knob_validates(self):
        dim, components = make_components(seed=26, servers=2)
        default = WorkerService(*components[1], dim)
        assert default._max_stream_states == WorkerService.MAX_STREAM_STATES
        with pytest.raises(ValueError, match="max_stream_states"):
            WorkerService(*components[1], dim, max_stream_states=0)

    def test_stream_state_coefficient_change_rebuilds(self):
        """A new seed under the same stream name must not merge into the old
        family -- the worker rebuilds from scratch instead of raising."""
        dim, components = make_components(seed=24, servers=2)
        coordinator, _ = loopback_coordinator(dim, components)
        first = coordinator.sketch_state(3, 32, seed=1, stream="s")
        second = coordinator.sketch_state(3, 32, seed=2, stream="s")
        assert not first.compatible_with(second)
        again = coordinator.sketch_state(3, 32, seed=2, stream="s")
        assert second.equals(again)
        coordinator.verify_wire_accounting()


class TestTransportNetworkAudit:
    def test_mismatch_raises(self):
        network = TransportNetwork(2)
        network.charge(0, 1, 10, tag="seeds")
        network.record_frame([("seeds", 72)], overhead_bytes=5)
        with pytest.raises(WireAccountingError, match="seeds"):
            network.verify_wire_accounting()

    def test_untransported_tag_raises(self):
        network = TransportNetwork(2)
        network.charge(0, 1, 3, tag="seeds")
        with pytest.raises(WireAccountingError):
            network.verify_wire_accounting()

    def test_reset_clears_ledger(self):
        network = TransportNetwork(2)
        network.record_frame([("t", 8)], overhead_bytes=2)
        network.reset()
        assert network.total_data_bytes == 0
        assert network.control_overhead_bytes == 0
        network.verify_wire_accounting()


@pytest.mark.tcp
class TestTcpTransport:
    def test_hosted_tcp_session_shuts_workers_down_on_close(self):
        from repro.backend import create_backend

        dim, components = make_components(seed=8, servers=3, support=300)
        session = create_backend("tcp").session(components, dim)
        servers = list(session._servers)
        assert servers
        session.sample(weight_fn, 8, config=make_config(), seed=17)
        session.verify_accounting()
        session.close()
        for server in servers:
            server.wait(timeout=10.0)
        # Idempotent: a second close must not raise.
        session.close()

    def test_connection_refused(self):
        with pytest.raises(OSError):
            TcpTransport("127.0.0.1", 1, timeout=2.0)

    def test_bind_failure_leaks_no_request_threads(self):
        """A port collision must fail `start()` cleanly: the request executor
        is only created after a successful bind, so the failed server owns
        no 'worker-server' threads the caller has no handle to stop."""
        import socket
        import threading

        from repro.runtime.transport import WorkerServer

        def request_threads():
            return {
                thread
                for thread in threading.enumerate()
                if thread.name.startswith("worker-server")
            }

        blocker = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        before = request_threads()
        try:
            server = WorkerServer(lambda frame: frame, port=port)
            with pytest.raises(OSError):
                server.start()
            server.wait(timeout=10.0)
            assert server._executor is None
            assert request_threads() - before == set()
        finally:
            blocker.close()
