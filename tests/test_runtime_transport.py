"""Transport + services: loopback/TCP runs vs the simulated LocalCluster run.

The load-bearing assertions: a transport-backed Z-sampling run must produce
**bit-identical** draws, probabilities, values and Z-estimates to the
same-seed in-process simulation, charge **identical** per-tag word counts,
and move exactly ``BYTES_PER_WORD`` bytes of data plane per charged word.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import DimensionMismatchError, WireAccountingError
from repro.distributed.network import BYTES_PER_WORD, Network, TransportNetwork
from repro.distributed.vector import DistributedVector
from repro.runtime.service import (
    CoordinatorService,
    WorkerProtocolError,
    WorkerService,
    _rpc,
)
from repro.runtime.transport import LoopbackTransport, TcpTransport, WorkerServer
from repro.sketch.z_heavy_hitters import ZHeavyHittersParams, z_heavy_hitters
from repro.sketch.z_sampler import ZSampler, ZSamplerConfig


def make_components(seed=42, dim=4000, servers=4, support=600):
    rng = np.random.default_rng(seed)
    components = []
    heavy = rng.choice(dim, size=10, replace=False)
    for server in range(servers):
        idx = np.sort(rng.choice(dim, size=support, replace=False)).astype(np.int64)
        val = rng.integers(-5, 6, size=support).astype(float)
        if server == 0:
            extra = np.setdiff1d(heavy, idx)
            idx = np.concatenate((idx, extra))
            val = np.concatenate((val, np.zeros(extra.size)))
            order = np.argsort(idx)
            idx, val = idx[order], val[order]
            val[np.isin(idx, heavy)] = 100.0
        components.append((idx, val))
    return dim, components


def make_config():
    return ZSamplerConfig(
        hh_params=ZHeavyHittersParams(b=8, repetitions=1, num_buckets=8),
        max_levels=5,
    )


def weight_fn(values):
    return np.abs(values)


def loopback_coordinator(dim, components, **kwargs):
    workers = [WorkerService(idx, val, dim) for idx, val in components[1:]]
    transports = [LoopbackTransport(worker.handle_frame) for worker in workers]
    return CoordinatorService(transports, dim, components[0], **kwargs), workers


def assert_same_draws(draws_a, draws_b):
    np.testing.assert_array_equal(draws_a.indices, draws_b.indices)
    np.testing.assert_array_equal(draws_a.probabilities, draws_b.probabilities)
    np.testing.assert_array_equal(draws_a.values, draws_b.values)
    assert draws_a.estimate.z_total == draws_b.estimate.z_total
    assert draws_a.estimate.class_sizes == draws_b.estimate.class_sizes
    assert draws_a.estimate.member_values == draws_b.estimate.member_values
    assert draws_a.estimate.words_used == draws_b.estimate.words_used


class TestLoopbackEquivalence:
    def test_sampling_matches_simulation_exactly(self):
        dim, components = make_components()
        config = make_config()

        network = Network(len(components))
        vector = DistributedVector(components, dim, network)
        simulated = ZSampler(weight_fn, config, seed=7).sample(vector, 20)
        simulated_log = network.snapshot()

        coordinator, _ = loopback_coordinator(dim, components)
        remote = coordinator.sample(weight_fn, 20, config=config, seed=7)
        remote_log = coordinator.network.snapshot()

        assert_same_draws(simulated, remote)
        assert remote_log.words_by_tag == simulated_log.words_by_tag
        assert remote_log.total_words == simulated_log.total_words

    def test_wire_bytes_are_eight_per_word(self):
        dim, components = make_components(seed=1)
        coordinator, _ = loopback_coordinator(dim, components)
        coordinator.sample(weight_fn, 10, config=make_config(), seed=3)
        ledger = coordinator.verify_wire_accounting()
        log = coordinator.network.snapshot()
        assert coordinator.network.total_data_bytes == BYTES_PER_WORD * log.total_words
        for tag, words in log.words_by_tag.items():
            assert ledger[tag] == BYTES_PER_WORD * words
        # Control traffic exists but is tracked separately from the data plane.
        assert coordinator.network.control_overhead_bytes > 0

    def test_z_heavy_hitters_matches_simulation(self):
        dim, components = make_components(seed=9)
        params = ZHeavyHittersParams(b=8, repetitions=2, num_buckets=8)

        network = Network(len(components))
        vector = DistributedVector(components, dim, network)
        simulated = z_heavy_hitters(vector, params, seed=11)

        coordinator, _ = loopback_coordinator(dim, components)
        remote = coordinator.z_heavy_hitters(params, seed=11)
        np.testing.assert_array_equal(simulated, remote)
        assert coordinator.network.snapshot().words_by_tag == network.snapshot().words_by_tag
        coordinator.verify_wire_accounting()

    def test_estimate_matches_simulation(self):
        dim, components = make_components(seed=13)
        config = make_config()

        network = Network(len(components))
        vector = DistributedVector(components, dim, network)
        from repro.sketch.z_estimator import ZEstimator

        estimator = ZEstimator(
            weight_fn,
            epsilon=config.epsilon,
            hh_params=config.hh_params,
            max_levels=config.max_levels,
            min_level_count=config.min_level_count,
            seed=21,
        )
        simulated = estimator.estimate(vector)

        coordinator, _ = loopback_coordinator(dim, components)
        remote = coordinator.estimate(weight_fn, config=config, seed=21)
        assert remote.z_total == simulated.z_total
        assert remote.class_sizes == simulated.class_sizes
        assert remote.words_used == simulated.words_used

    def test_naive_engine_is_rejected(self):
        from repro.sketch import engine

        dim, components = make_components(seed=2, servers=2)
        coordinator, _ = loopback_coordinator(dim, components)
        with engine.naive_reference():
            with pytest.raises(RuntimeError, match="fused"):
                coordinator.sample(weight_fn, 5, seed=0)

    def test_dimension_mismatch_handshake(self):
        dim, components = make_components(seed=3, servers=2)
        worker = WorkerService(*components[1], dim * 2)
        with pytest.raises(DimensionMismatchError, match="dimension"):
            CoordinatorService(
                [LoopbackTransport(worker.handle_frame)], dim, components[0]
            )

    def test_worker_error_surfaces(self):
        dim, components = make_components(seed=4, servers=2)
        coordinator, _ = loopback_coordinator(dim, components)
        with pytest.raises(WorkerProtocolError, match="unknown op"):
            _rpc(coordinator.network, coordinator._transports[0], "bogus")

    def test_sketch_without_subsample_cache_fails_cleanly(self):
        dim, components = make_components(seed=5, servers=2)
        coordinator, _ = loopback_coordinator(dim, components)
        vector = coordinator.vector()
        vector._restriction = (123, 10)
        from repro.sketch.countsketch import BatchedCountSketch, CountSketch
        from repro.sketch.hashing import PairwiseHash

        batched = BatchedCountSketch([CountSketch(3, 8, dim, seed=0)])
        with pytest.raises(WorkerProtocolError, match="subsample"):
            vector.batched_sketch_tables(
                batched,
                np.zeros(dim, dtype=np.int64),
                bucket_hash=PairwiseHash(1, seed=0),
                nonempty_buckets=[0],
                tag="t",
            )

    def test_remote_vector_guards(self):
        dim, components = make_components(seed=6, servers=2)
        coordinator, _ = loopback_coordinator(dim, components)
        vector = coordinator.vector()
        with pytest.raises(NotImplementedError):
            vector.local_component(1)
        with pytest.raises(NotImplementedError):
            vector.restrict(lambda idx: idx % 2 == 0)
        with pytest.raises(NotImplementedError):
            vector.support_size()
        # Server 0's own component stays accessible.
        idx, _ = vector.local_component(0)
        assert idx.size == components[0][0].size

    def test_collect_on_restricted_clone_raises(self):
        from repro.sketch.hashing import SubsampleHash

        dim, components = make_components(seed=7, servers=2)
        coordinator, _ = loopback_coordinator(dim, components)
        vector = coordinator.vector()
        restrictor = vector.subsample_restrictor(
            SubsampleHash(domain_scale=dim, seed=0), tag="t"
        )
        restricted = restrictor.restrict(1)
        with pytest.raises(NotImplementedError, match="base vector"):
            restricted.collect(np.arange(3))
        # The base vector still collects normally.
        assert vector.collect(np.arange(3), tag="t:verify").shape == (3,)


class TestTransportNetworkAudit:
    def test_mismatch_raises(self):
        network = TransportNetwork(2)
        network.charge(0, 1, 10, tag="seeds")
        network.record_frame([("seeds", 72)], overhead_bytes=5)
        with pytest.raises(WireAccountingError, match="seeds"):
            network.verify_wire_accounting()

    def test_untransported_tag_raises(self):
        network = TransportNetwork(2)
        network.charge(0, 1, 3, tag="seeds")
        with pytest.raises(WireAccountingError):
            network.verify_wire_accounting()

    def test_reset_clears_ledger(self):
        network = TransportNetwork(2)
        network.record_frame([("t", 8)], overhead_bytes=2)
        network.reset()
        assert network.total_data_bytes == 0
        assert network.control_overhead_bytes == 0
        network.verify_wire_accounting()


@pytest.mark.tcp
class TestTcpTransport:
    def test_tcp_run_matches_simulation_and_shuts_down(self):
        dim, components = make_components(seed=8, servers=3, support=300)
        config = make_config()

        network = Network(len(components))
        vector = DistributedVector(components, dim, network)
        simulated = ZSampler(weight_fn, config, seed=17).sample(vector, 8)

        workers = [WorkerService(idx, val, dim) for idx, val in components[1:]]
        servers = [
            WorkerServer(
                worker.handle_frame,
                stop_check=lambda worker=worker: worker.shutdown_requested,
            )
            for worker in workers
        ]
        transports = []
        try:
            for server in servers:
                host, port = server.start()
                transports.append(TcpTransport(host, port, timeout=30.0))
            coordinator = CoordinatorService(transports, dim, components[0])
            remote = coordinator.sample(weight_fn, 8, config=config, seed=17)
            assert_same_draws(simulated, remote)
            assert (
                coordinator.network.snapshot().words_by_tag
                == network.snapshot().words_by_tag
            )
            coordinator.verify_wire_accounting()
            coordinator.shutdown_workers()
            for server in servers:
                server.wait(timeout=10.0)
            coordinator.close()
        finally:
            for server in servers:
                server.stop()

    def test_connection_refused(self):
        with pytest.raises(OSError):
            TcpTransport("127.0.0.1", 1, timeout=2.0)
