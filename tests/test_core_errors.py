"""Tests for repro.core.errors."""

import numpy as np
import pytest

from repro.core.errors import (
    DimensionMismatchError,
    ReproError,
    additive_error,
    approximation_report,
    predicted_additive_error,
    relative_error,
    residual_norm_squared,
)
from repro.utils.linalg import svd_rank_k_projection


class TestExceptionHierarchy:
    def test_dimension_mismatch_is_catchable_as_legacy_types(self):
        """Pre-existing callers catch ValueError or IndexError; the dedicated
        exception must keep satisfying both."""
        assert issubclass(DimensionMismatchError, ReproError)
        assert issubclass(DimensionMismatchError, ValueError)
        assert issubclass(DimensionMismatchError, IndexError)

    def test_cluster_shape_mismatch_raises_dimension_error(self):
        from repro.distributed.cluster import LocalCluster

        with pytest.raises(DimensionMismatchError, match="server 1: \\(4, 3\\)"):
            LocalCluster([np.zeros((3, 4)), np.zeros((4, 3))])

    def test_cluster_network_size_mismatch_raises_dimension_error(self):
        from repro.distributed.cluster import LocalCluster
        from repro.distributed.network import Network

        with pytest.raises(DimensionMismatchError, match="different number"):
            LocalCluster([np.zeros((2, 2))], network=Network(3))

    def test_vector_component_count_mismatch_raises_dimension_error(self):
        from repro.distributed.network import Network
        from repro.distributed.vector import DistributedVector

        with pytest.raises(DimensionMismatchError, match="number of servers"):
            DistributedVector([(np.array([0]), np.array([1.0]))], 4, Network(2))

    def test_vector_out_of_dimension_names_the_server(self):
        """Regression: a server holding coordinates beyond the declared
        dimension must fail at construction with a message naming it, not
        deep inside a later numpy gather."""
        from repro.distributed.network import Network
        from repro.distributed.vector import DistributedVector

        components = [
            (np.array([0, 1]), np.array([1.0, 2.0])),
            (np.array([9]), np.array([3.0])),
        ]
        with pytest.raises(DimensionMismatchError, match="server 1"):
            DistributedVector(components, 6, Network(2))

    def test_vector_mask_shape_mismatch_raises_dimension_error(self):
        from repro.distributed.network import Network
        from repro.distributed.vector import DistributedVector

        vector = DistributedVector(
            [(np.array([0, 2]), np.array([1.0, 2.0]))], 4, Network(1)
        )
        with pytest.raises(DimensionMismatchError, match="server 0"):
            vector.restrict_by_masks([np.ones(5, dtype=bool)])


class TestResidualNorm:
    def test_zero_for_full_projection(self, small_matrix):
        d = small_matrix.shape[1]
        assert residual_norm_squared(small_matrix, np.eye(d)) == pytest.approx(0.0)

    def test_full_for_zero_projection(self, small_matrix):
        d = small_matrix.shape[1]
        assert residual_norm_squared(small_matrix, np.zeros((d, d))) == pytest.approx(
            float(np.sum(small_matrix**2))
        )

    def test_wrong_projection_shape_raises(self, small_matrix):
        with pytest.raises(ValueError):
            residual_norm_squared(small_matrix, np.eye(3))


class TestAdditiveError:
    def test_zero_for_optimal_projection(self, low_rank_matrix):
        _, projection = svd_rank_k_projection(low_rank_matrix, 5)
        assert additive_error(low_rank_matrix, projection, 5) == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_random_projection(self, low_rank_matrix, rng):
        basis, _ = np.linalg.qr(rng.normal(size=(low_rank_matrix.shape[1], 5)))
        projection = basis @ basis.T
        assert additive_error(low_rank_matrix, projection, 5) > 0

    def test_at_most_one(self, low_rank_matrix):
        d = low_rank_matrix.shape[1]
        assert additive_error(low_rank_matrix, np.zeros((d, d)), 3) <= 1.0

    def test_zero_matrix_raises(self):
        with pytest.raises(ValueError):
            additive_error(np.zeros((5, 4)), np.eye(4), 2)


class TestRelativeError:
    def test_one_for_optimal_projection(self, low_rank_matrix):
        _, projection = svd_rank_k_projection(low_rank_matrix, 4)
        assert relative_error(low_rank_matrix, projection, 4) == pytest.approx(1.0)

    def test_at_least_one(self, low_rank_matrix, rng):
        basis, _ = np.linalg.qr(rng.normal(size=(low_rank_matrix.shape[1], 4)))
        projection = basis @ basis.T
        assert relative_error(low_rank_matrix, projection, 4) >= 1.0 - 1e-9

    def test_exactly_low_rank_matrix(self, rng):
        """When A has rank <= k the optimal error is 0; a perfect projection
        reports 1.0 and an imperfect one reports infinity."""
        exact = rng.normal(size=(30, 3)) @ rng.normal(size=(3, 10))
        _, perfect = svd_rank_k_projection(exact, 3)
        assert relative_error(exact, perfect, 3) == 1.0
        assert relative_error(exact, np.zeros((10, 10)), 3) == float("inf")


class TestPrediction:
    def test_formula(self):
        assert predicted_additive_error(3, 100) == pytest.approx(0.09)
        assert predicted_additive_error(15, 100) == pytest.approx(2.25)

    def test_monotone_in_k(self):
        assert predicted_additive_error(6, 50) > predicted_additive_error(3, 50)

    def test_monotone_in_r(self):
        assert predicted_additive_error(5, 200) < predicted_additive_error(5, 50)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            predicted_additive_error(3, 0)
        with pytest.raises(ValueError):
            predicted_additive_error(0, 10)


class TestApproximationReport:
    def test_keys(self, low_rank_matrix):
        _, projection = svd_rank_k_projection(low_rank_matrix, 4)
        report = approximation_report(low_rank_matrix, projection, 4)
        assert {
            "residual_norm_squared",
            "best_rank_k_norm_squared",
            "frobenius_norm_squared",
            "additive_error",
            "relative_error",
            "captured_fraction",
        } == set(report)

    def test_consistency_between_metrics(self, low_rank_matrix, rng):
        basis, _ = np.linalg.qr(rng.normal(size=(low_rank_matrix.shape[1], 4)))
        projection = basis @ basis.T
        report = approximation_report(low_rank_matrix, projection, 4)
        assert report["additive_error"] == pytest.approx(
            additive_error(low_rank_matrix, projection, 4)
        )
        assert report["relative_error"] == pytest.approx(
            relative_error(low_rank_matrix, projection, 4)
        )
        assert 0.0 <= report["captured_fraction"] <= 1.0
