"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import (
    choice_from_weights,
    ensure_rng,
    random_signs,
    sample_without_replacement,
    spawn_rngs,
)


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).random(5)
        b = ensure_rng(2).random(5)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(3)
        assert isinstance(ensure_rng(seq), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_streams_are_independent(self):
        streams = spawn_rngs(0, 3)
        draws = [s.random(10) for s in streams]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_deterministic_from_seed(self):
        a = [s.random(4) for s in spawn_rngs(9, 3)]
        b = [s.random(4) for s in spawn_rngs(9, 3)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(0)
        streams = spawn_rngs(gen, 2)
        assert len(streams) == 2
        assert all(isinstance(s, np.random.Generator) for s in streams)


class TestRandomSigns:
    def test_values_are_plus_minus_one(self):
        signs = random_signs(ensure_rng(0), 100)
        assert set(np.unique(signs)).issubset({-1, 1})

    def test_roughly_balanced(self):
        signs = random_signs(ensure_rng(0), 10000)
        assert abs(signs.mean()) < 0.05


class TestSampleWithoutReplacement:
    def test_distinct(self):
        sample = sample_without_replacement(ensure_rng(0), 50, 20)
        assert len(set(sample.tolist())) == 20

    def test_range(self):
        sample = sample_without_replacement(ensure_rng(0), 10, 10)
        assert sorted(sample.tolist()) == list(range(10))

    def test_too_many_raises(self):
        with pytest.raises(ValueError):
            sample_without_replacement(ensure_rng(0), 5, 6)


class TestChoiceFromWeights:
    def test_single_draw_in_range(self):
        idx = choice_from_weights(ensure_rng(0), [1.0, 2.0, 3.0])
        assert idx in {0, 1, 2}

    def test_zero_weight_never_drawn(self):
        rng = ensure_rng(0)
        draws = choice_from_weights(rng, [0.0, 1.0, 0.0], size=200)
        assert set(np.unique(draws)) == {1}

    def test_proportionality(self):
        rng = ensure_rng(0)
        draws = choice_from_weights(rng, [1.0, 9.0], size=20000)
        frequency = np.mean(draws == 1)
        assert 0.85 < frequency < 0.95

    def test_negative_weight_raises(self):
        with pytest.raises(ValueError):
            choice_from_weights(ensure_rng(0), [1.0, -1.0])

    def test_all_zero_raises(self):
        with pytest.raises(ValueError):
            choice_from_weights(ensure_rng(0), [0.0, 0.0])

    def test_non_vector_raises(self):
        with pytest.raises(ValueError):
            choice_from_weights(ensure_rng(0), [[1.0, 2.0]])
