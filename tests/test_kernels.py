"""Tests for the Gaussian kernel and random Fourier features (Section VI-A)."""

import numpy as np
import pytest

from repro.core import DistributedPCA
from repro.distributed import row_partition
from repro.kernels import (
    RandomFourierFeatures,
    distributed_rff_cluster,
    gaussian_kernel_matrix,
    gaussian_kernel_value,
    rff_row_norm_concentration,
)
from repro.kernels.rff import CosineFeatureFunction


class TestGaussianKernel:
    def test_value_of_identical_points(self):
        x = np.array([1.0, -2.0, 0.5])
        assert gaussian_kernel_value(x, x) == pytest.approx(1.0)

    def test_value_decreases_with_distance(self):
        x = np.zeros(3)
        near = gaussian_kernel_value(x, np.array([0.1, 0.0, 0.0]))
        far = gaussian_kernel_value(x, np.array([3.0, 0.0, 0.0]))
        assert near > far

    def test_bandwidth_effect(self):
        x = np.zeros(2)
        y = np.ones(2)
        assert gaussian_kernel_value(x, y, bandwidth=5.0) > gaussian_kernel_value(x, y, bandwidth=0.5)

    def test_matrix_symmetric_with_unit_diagonal(self, rng):
        points = rng.normal(size=(20, 4))
        gram = gaussian_kernel_matrix(points)
        np.testing.assert_allclose(gram, gram.T, atol=1e-12)
        np.testing.assert_allclose(np.diag(gram), 1.0)

    def test_matrix_positive_semidefinite(self, rng):
        points = rng.normal(size=(15, 3))
        gram = gaussian_kernel_matrix(points)
        eigenvalues = np.linalg.eigvalsh(gram)
        assert eigenvalues.min() > -1e-9

    def test_cross_matrix_shape(self, rng):
        a = rng.normal(size=(6, 3))
        b = rng.normal(size=(9, 3))
        assert gaussian_kernel_matrix(a, b).shape == (6, 9)

    def test_dimension_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            gaussian_kernel_matrix(rng.normal(size=(4, 3)), rng.normal(size=(4, 5)))


class TestRandomFourierFeatures:
    def test_transform_shape_and_range(self, rng):
        features = RandomFourierFeatures(5, 40, seed=0)
        out = features.transform(rng.normal(size=(30, 5)))
        assert out.shape == (30, 40)
        assert np.all(np.abs(out) <= np.sqrt(2.0) + 1e-12)

    def test_kernel_approximation(self, rng):
        """E[phi(x)^T phi(y) / d] = K(x, y): check the empirical average."""
        features = RandomFourierFeatures(4, 3000, bandwidth=1.0, seed=1)
        x = rng.normal(size=4)
        y = rng.normal(size=4) * 0.5
        estimate = features.kernel_estimate(x, y)
        exact = gaussian_kernel_value(x, y)
        assert estimate == pytest.approx(exact, abs=0.08)

    def test_wrong_dimension_raises(self, rng):
        features = RandomFourierFeatures(5, 10, seed=0)
        with pytest.raises(ValueError):
            features.transform(rng.normal(size=(3, 4)))

    def test_parameter_word_count(self):
        features = RandomFourierFeatures(5, 10, seed=0)
        assert features.parameter_word_count() == 5 * 10 + 10

    def test_row_norm_concentration(self, rng):
        """Section VI-A: every expanded row has squared norm ~ d."""
        features = RandomFourierFeatures(8, 200, seed=2)
        expanded = features.transform(rng.normal(size=(100, 8)))
        stats = rff_row_norm_concentration(expanded)
        assert 0.6 < stats["min_ratio"]
        assert stats["max_ratio"] < 1.6
        assert stats["mean_ratio"] == pytest.approx(1.0, abs=0.15)


class TestDistributedRFFCluster:
    def test_global_matrix_is_expansion_of_sum(self, rng):
        raw = rng.normal(size=(60, 6))
        raw_locals = [np.asarray(m.todense()) for m in row_partition(raw, 3, seed=0)]
        features = RandomFourierFeatures(6, 32, seed=1)
        cluster = distributed_rff_cluster(raw_locals, features)
        np.testing.assert_allclose(
            cluster.materialize_global(), features.transform(raw), atol=1e-8
        )

    def test_function_is_cosine(self, rng):
        raw_locals = [rng.normal(size=(10, 4))]
        features = RandomFourierFeatures(4, 8, seed=0)
        cluster = distributed_rff_cluster(raw_locals, features)
        assert isinstance(cluster.function, CosineFeatureFunction)

    def test_broadcast_charged(self, rng):
        raw = rng.normal(size=(20, 4))
        raw_locals = [np.asarray(m.todense()) for m in row_partition(raw, 4, seed=0)]
        features = RandomFourierFeatures(4, 8, seed=0)
        cluster = distributed_rff_cluster(raw_locals, features)
        assert cluster.network.total_words == 3  # one seed word per worker

    def test_broadcast_charge_optional(self, rng):
        raw_locals = [rng.normal(size=(10, 4))]
        features = RandomFourierFeatures(4, 8, seed=0)
        cluster = distributed_rff_cluster(raw_locals, features, charge_broadcast=False)
        assert cluster.network.total_words == 0

    def test_uniform_sampling_pca_end_to_end(self, rng):
        """The full Section VI-A pipeline: RFF expansion + uniform sampling PCA."""
        raw = np.vstack(
            [rng.normal(loc=c, scale=0.3, size=(40, 5)) for c in (-2.0, 0.0, 2.0)]
        )
        raw_locals = [np.asarray(m.todense()) for m in row_partition(raw, 5, seed=0)]
        features = RandomFourierFeatures(5, 64, bandwidth=2.0, seed=1)
        cluster = distributed_rff_cluster(raw_locals, features)
        result = DistributedPCA(k=6, num_samples=90, seed=2).fit(cluster)
        report = result.evaluate(cluster.materialize_global())
        assert report["additive_error"] < 0.12
        assert result.communication_ratio < 1.0
