"""The sharded backend: shard-group facade, live rebalancing, kill recovery.

The bit-identity half of the contract (same-seed sharded runs == the plain
simulation in draws, estimates, candidates and per-tag words) is exercised
for free by ``test_backend_matrix.py``, whose parametrized suite picks the
``sharded`` backend up from the registry.  This module tests what the
matrix cannot: the :class:`~repro.runtime.state.ShardedWorkerCheckpoint`
payload format, the facade's guard rails, and the *live rebalancing* path
-- support migrating between shards mid-session, with and without a shard
killed in the middle of the migration (marked ``chaos``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import available_backends, create_backend
from repro.backend.sharded import ShardedBackend, ShardGroupTransport
from repro.core.errors import WireFormatError
from repro.distributed.network import Network
from repro.distributed.partition import ShardAssignment
from repro.distributed.vector import DistributedVector
from repro.runtime import wire
from repro.runtime.service import WorkerService
from repro.runtime.state import (
    ShardedWorkerCheckpoint,
    WorkerCheckpoint,
    checkpoint_from_payload,
)
from repro.runtime.transport import LoopbackTransport
from repro.sketch.z_sampler import ZSampler

from test_runtime_transport import assert_same_draws, make_config, weight_fn


def skewed_components(seed=5, dim=1200, servers=4, support=150):
    """Integer components whose support crowds the first quarter of the
    domain -- the uniform shard map puts everything on shard 0."""
    rng = np.random.default_rng(seed)
    components = []
    for _ in range(servers):
        idx = np.sort(
            rng.choice(dim // 4, size=support, replace=False)
        ).astype(np.int64)
        val = rng.integers(-5, 6, size=support).astype(float)
        components.append((idx, val))
    return dim, components


def simulated_reference(components, dim, run):
    """Run ``run(vector)`` on the plain in-process simulation."""
    network = Network(len(components))
    vector = DistributedVector(components, dim, network)
    return run(vector), network.snapshot()


def balanced_plan(components, dim, shards):
    """A per-worker balanced assignment over each worker's own support."""
    return {
        worker: ShardAssignment.balanced(dim, shards, idx)
        for worker, (idx, _) in enumerate(components[1:])
    }


# --------------------------------------------------------------------------- #
# ShardedWorkerCheckpoint payloads
# --------------------------------------------------------------------------- #
class TestShardedWorkerCheckpoint:
    def make(self, dim=40, shards=2, session="s"):
        assignment = ShardAssignment.uniform(dim, shards)
        idx = np.array([3, 7, 21, 30], dtype=np.int64)
        val = np.array([1.0, -2.0, 4.0, 0.5])
        pieces = [
            WorkerCheckpoint(
                dimension=dim,
                indices=piece_idx,
                values=piece_val,
                session=session,
            )
            for piece_idx, piece_val in assignment.split(idx, val)
        ]
        return ShardedWorkerCheckpoint(assignment=assignment, shards=pieces)

    def test_concatenates_shard_views(self):
        checkpoint = self.make()
        assert checkpoint.dimension == 40
        assert checkpoint.session == "s"
        assert checkpoint.support == 4
        np.testing.assert_array_equal(np.sort(checkpoint.indices), [3, 7, 21, 30])

    def test_round_trips_through_bytes(self):
        checkpoint = self.make()
        restored = ShardedWorkerCheckpoint.from_bytes(checkpoint.to_bytes())
        assert restored.equals(checkpoint)
        assert restored.assignment.same_as(checkpoint.assignment)

    def test_checkpoint_from_payload_dispatches_on_label(self):
        sharded = self.make()
        assert isinstance(
            checkpoint_from_payload(sharded._as_payload()), ShardedWorkerCheckpoint
        )
        flat = sharded.shards[0]
        assert isinstance(checkpoint_from_payload(flat._as_payload()), WorkerCheckpoint)
        with pytest.raises(WireFormatError):
            checkpoint_from_payload(("not-a-checkpoint", 1, 2))

    def test_shard_count_must_match_assignment(self):
        checkpoint = self.make()
        with pytest.raises(ValueError):
            ShardedWorkerCheckpoint(
                assignment=checkpoint.assignment, shards=checkpoint.shards[:1]
            )


# --------------------------------------------------------------------------- #
# facade guard rails
# --------------------------------------------------------------------------- #
def make_group(dim=60, shards=2):
    assignment = ShardAssignment.uniform(dim, shards)
    idx = np.arange(0, dim, 3, dtype=np.int64)
    val = np.ones(idx.size)
    transports = [
        LoopbackTransport(
            WorkerService(piece_idx, piece_val, dim, name=f"shard-{k}").handle_frame
        )
        for k, (piece_idx, piece_val) in enumerate(assignment.split(idx, val))
    ]
    return ShardGroupTransport(transports, assignment, name="server-1")


class TestShardGroupGuards:
    def test_transport_count_must_match_assignment(self):
        with pytest.raises(ValueError, match="2 shards"):
            ShardGroupTransport(
                [LoopbackTransport(lambda frame: frame)],
                ShardAssignment.uniform(10, 2),
            )

    def test_restore_rejects_unsharded_checkpoint(self):
        group = make_group()
        flat = WorkerCheckpoint(
            dimension=60,
            indices=np.array([1], dtype=np.int64),
            values=np.array([1.0]),
            session="s",
        )
        reply = wire.decode_frame(
            group.request(
                wire.encode_frame("restore", {"session": "s"}, [(None, flat._as_payload())])
            )
        )
        assert reply.op == "error"
        assert "sharded checkpoints only" in reply.meta["message"]

    def test_restore_rejects_mismatched_shard_count(self):
        group = make_group(shards=2)
        wide = ShardAssignment.uniform(60, 3)
        idx = np.arange(0, 60, 3, dtype=np.int64)
        checkpoint = ShardedWorkerCheckpoint(
            assignment=wide,
            shards=[
                WorkerCheckpoint(
                    dimension=60, indices=piece_idx, values=piece_val, session="s"
                )
                for piece_idx, piece_val in wide.split(idx, np.ones(idx.size))
            ],
        )
        reply = wire.decode_frame(
            group.request(
                wire.encode_frame(
                    "restore", {"session": "s"}, [(None, checkpoint._as_payload())]
                )
            )
        )
        assert reply.op == "error"
        assert "3 shards" in reply.meta["message"]

    def test_unknown_op_is_a_typed_error_frame(self):
        group = make_group()
        reply = wire.decode_frame(group.request(wire.encode_frame("frobnicate", {})))
        assert reply.op == "error"
        assert "unknown op" in reply.meta["message"]

    def test_rebalance_validates_shape(self):
        group = make_group(dim=60, shards=2)
        with pytest.raises(ValueError, match="3 shards"):
            group.rebalance(ShardAssignment.uniform(60, 3))
        with pytest.raises(ValueError, match="dimension 90"):
            group.rebalance(ShardAssignment.uniform(90, 2))

    def test_rebalance_moves_support_between_shards(self):
        # All support in [0, 30): uniform puts it on shard 0, the balanced
        # map splits it 10/10.
        dim = 60
        assignment = ShardAssignment.uniform(dim, 2)
        idx = np.arange(20, dtype=np.int64)
        val = np.ones(20)
        transports = [
            LoopbackTransport(
                WorkerService(piece_idx, piece_val, dim).handle_frame
            )
            for piece_idx, piece_val in assignment.split(idx, val)
        ]
        group = ShardGroupTransport(transports, assignment)
        assert group.shard_supports() == [20, 0]
        group.rebalance(ShardAssignment.balanced(dim, 2, idx))
        assert group.shard_supports() == [10, 10]
        # The collect seam still sees every stored pair exactly once.
        reply = wire.decode_frame(
            group.request(
                wire.encode_frame(
                    "collect", {"session": "", "tag": "t"}, [("q", idx)]
                )
            )
        )
        np.testing.assert_array_equal(reply.entry(0), val)


# --------------------------------------------------------------------------- #
# live rebalancing inside a session
# --------------------------------------------------------------------------- #
class TestShardedSessionRebalance:
    def test_sharded_backend_is_registered(self):
        assert "sharded" in available_backends()

    def test_rebalance_mid_session_stays_bit_identical(self):
        dim, components = skewed_components()
        config = make_config()
        shards = 3

        def protocol(run_sample):
            first = run_sample(20, 7)
            second = run_sample(12, 9)
            return first, second

        (sim_first, sim_second), sim_log = simulated_reference(
            components,
            dim,
            lambda v: protocol(
                lambda n, seed: ZSampler(weight_fn, config, seed=seed).sample(v, n)
            ),
        )

        backend = ShardedBackend(shards=shards)
        with backend.session(components, dim) as session:
            first = session.sample(weight_fn, 20, config=config, seed=7)
            before = session.shard_supports()
            session.rebalance(balanced_plan(components, dim, shards))
            after = session.shard_supports()
            second = session.sample(weight_fn, 12, config=config, seed=9)
            words = session.network.snapshot().words_by_tag
            session.verify_accounting()

        assert_same_draws(sim_first, first)
        assert_same_draws(sim_second, second)
        # Rebalancing is pure control plane: the charged ledger is identical.
        assert words == sim_log.words_by_tag
        # The skew really moved: everything sat on shard 0, now it is spread.
        for worker in before:
            assert before[worker][0] == sum(before[worker])
            assert max(after[worker]) < sum(after[worker])

    def test_rebalance_same_map_is_a_noop_and_bad_worker_rejected(self):
        dim, components = skewed_components(servers=2)
        backend = ShardedBackend(shards=2)
        with backend.session(components, dim) as session:
            session.rebalance({0: ShardAssignment.uniform(dim, 2)})
            with pytest.raises(ValueError, match="no worker 5"):
                session.rebalance({5: ShardAssignment.uniform(dim, 2)})

    def test_supervised_rebalance_checkpoints_the_new_layout(self):
        dim, components = skewed_components(servers=3)
        shards = 2
        backend = ShardedBackend(shards=shards, supervise=True)
        with backend.session(components, dim) as session:
            plan = balanced_plan(components, dim, shards)
            session.rebalance(plan)
            checkpoints = session.supervisor.checkpoints
            for worker, assignment in plan.items():
                assert isinstance(checkpoints[worker], ShardedWorkerCheckpoint)
                assert checkpoints[worker].assignment.same_as(assignment)


# --------------------------------------------------------------------------- #
# degraded estimates on a supervised sharded session
# --------------------------------------------------------------------------- #
class TestShardedDegradedEstimate:
    def test_stale_ok_answers_from_sharded_checkpoints(self):
        """Losing a shard group for good degrades ``estimate(stale_ok=True)``
        instead of raising: the answer is computed locally over the
        checkpointed (shard-concatenated) components, flagged stale, and
        equals the plain simulation's estimate over the same components."""
        from repro.core.errors import WorkerLostError
        from repro.runtime.supervisor import DegradedEstimate
        from repro.sketch.z_estimator import ZEstimator

        dim, components = skewed_components(seed=21, servers=3)
        config = make_config()
        backend = ShardedBackend(shards=2, supervise=True, max_worker_restarts=0)
        with backend.session(components, dim) as session:
            group = session._transports[1]
            assert isinstance(group, ShardGroupTransport)
            group._shards[0] = KillableShard(group._shards[0], kill_at=1)

            with pytest.raises(WorkerLostError):
                session.estimate(weight_fn, config=config, seed=9)
            degraded = session.estimate(
                weight_fn, config=config, seed=9, stale_ok=True
            )
            assert isinstance(degraded, DegradedEstimate)
            assert degraded.stale
            assert degraded.lost_workers == (1,)
            assert "WorkerLostError" in degraded.cause

        # No deltas ran, so the handshake checkpoints hold the initial
        # components: the degraded answer equals the simulated estimator.
        reference = ZEstimator(
            weight_fn,
            epsilon=config.epsilon,
            hh_params=config.hh_params,
            num_levels=config.num_levels,
            max_levels=config.max_levels,
            min_level_count=config.min_level_count,
            seed=9,
        ).estimate(DistributedVector(components, dim, Network(len(components))))
        assert degraded.estimate.z_total == reference.z_total
        assert degraded.estimate.class_sizes == reference.class_sizes


# --------------------------------------------------------------------------- #
# a shard killed mid-migration (chaos)
# --------------------------------------------------------------------------- #
class KillableShard:
    """Wraps one shard transport; dies permanently at received frame N."""

    def __init__(self, inner, kill_at):
        self.inner = inner
        self.kill_at = kill_at
        self.calls = 0
        self.dead = False

    def request(self, frame):
        self.calls += 1
        if self.dead or self.calls >= self.kill_at:
            self.dead = True
            raise ConnectionResetError("shard killed mid-migration")
        return self.inner.request(frame)

    def probe(self, frame):
        return not self.dead and self.inner.probe(frame)

    def close(self):
        self.inner.close()


@pytest.mark.chaos
class TestRebalanceUnderKill:
    @pytest.mark.parametrize("kill_at", [1, 2, 3])
    def test_shard_killed_during_migration_rolls_back_and_retries(self, kill_at):
        """Kill worker 0's second shard at frame ``kill_at`` of the rebalance
        (anchor checkpoint, migration snapshot, restore/ship, ...): the
        supervisor respawns the whole group from the pre-migration anchor,
        the migration retries, and draws / estimates / per-tag words stay
        bit-identical to the plain simulation with a green wire audit."""
        dim, components = skewed_components(seed=8)
        config = make_config()
        shards = 2

        def protocol(vector):
            first = ZSampler(weight_fn, config, seed=3).sample(vector, 16)
            second = ZSampler(weight_fn, config, seed=13).sample(vector, 10)
            return first, second

        (sim_first, sim_second), sim_log = simulated_reference(
            components, dim, protocol
        )

        backend = ShardedBackend(shards=shards, supervise=True)
        with backend.session(components, dim) as session:
            first = session.sample(weight_fn, 16, config=config, seed=3)

            group = session._transports[0]
            assert isinstance(group, ShardGroupTransport)
            group._shards[1] = KillableShard(group._shards[1], kill_at)

            session.rebalance(balanced_plan(components, dim, shards))
            assert session.supervisor.restarts == 1
            # The respawned group carries the *balanced* layout forward.
            after = session.shard_supports()
            assert max(after[0]) < sum(after[0])

            second = session.sample(weight_fn, 10, config=config, seed=13)
            words = session.network.snapshot().words_by_tag
            session.verify_accounting()

        assert_same_draws(sim_first, first)
        assert_same_draws(sim_second, second)
        assert words == sim_log.words_by_tag
