"""Tests for the logging helpers."""

import logging

from repro.utils.logging import configure_logging, get_logger


class TestGetLogger:
    def test_prefixes_library_name(self):
        logger = get_logger("sampling")
        assert logger.name == "repro.sampling"

    def test_already_prefixed_name_unchanged(self):
        logger = get_logger("repro.core.pca")
        assert logger.name == "repro.core.pca"

    def test_same_name_returns_same_logger(self):
        assert get_logger("x") is get_logger("x")


class TestConfigureLogging:
    def test_attaches_single_handler(self):
        root = logging.getLogger("repro")
        original_handlers = list(root.handlers)
        try:
            root.handlers.clear()
            configure_logging(logging.DEBUG)
            configure_logging(logging.WARNING)
            assert len(root.handlers) == 1
            assert root.level == logging.WARNING
        finally:
            root.handlers[:] = original_handlers

    def test_library_loggers_propagate_to_root(self):
        child = get_logger("experiments.runner")
        assert child.propagate
