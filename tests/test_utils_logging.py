"""Tests for the logging helpers."""

import logging

from repro.utils.logging import configure_logging, get_logger


class TestGetLogger:
    def test_prefixes_library_name(self):
        logger = get_logger("sampling")
        assert logger.name == "repro.sampling"

    def test_already_prefixed_name_unchanged(self):
        logger = get_logger("repro.core.pca")
        assert logger.name == "repro.core.pca"

    def test_same_name_returns_same_logger(self):
        assert get_logger("x") is get_logger("x")


class TestConfigureLogging:
    def test_attaches_single_handler(self):
        root = logging.getLogger("repro")
        original_handlers = list(root.handlers)
        try:
            root.handlers.clear()
            configure_logging(logging.DEBUG)
            configure_logging(logging.WARNING)
            assert len(root.handlers) == 1
            assert root.level == logging.WARNING
        finally:
            root.handlers[:] = original_handlers

    def test_repeated_calls_update_the_existing_handler_level(self):
        """A second configure_logging call must re-level the handler it
        already attached, not only the logger -- otherwise lowering the
        level (WARNING -> DEBUG) is silently filtered by the old handler."""
        root = logging.getLogger("repro")
        original_handlers = list(root.handlers)
        try:
            root.handlers.clear()
            configure_logging(logging.WARNING)
            configure_logging(logging.DEBUG)
            assert len(root.handlers) == 1
            assert root.level == logging.DEBUG
            assert root.handlers[0].level == logging.DEBUG
        finally:
            root.handlers[:] = original_handlers

    def test_library_loggers_propagate_to_root(self):
        child = get_logger("experiments.runner")
        assert child.propagate
