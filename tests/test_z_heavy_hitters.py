"""Tests for Z-HeavyHitters (Algorithm 2)."""

import numpy as np
import pytest

from repro.functions import HuberPsi
from repro.sketch.z_heavy_hitters import ZHeavyHittersParams, recommended_b, z_heavy_hitters
from tests.test_heavy_hitters import split_across_servers
from tests.test_vector import make_vector


class TestParams:
    def test_default_buckets_capped(self):
        params = ZHeavyHittersParams(b=100)
        assert params.resolved_buckets() <= 32

    def test_explicit_buckets_respected(self):
        assert ZHeavyHittersParams(num_buckets=5).resolved_buckets() == 5

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            ZHeavyHittersParams(num_buckets=0).resolved_buckets()

    def test_recommended_b_grows_with_dimension(self):
        assert recommended_b(0.2, 1 << 20) > recommended_b(0.2, 1 << 8)

    def test_recommended_b_grows_as_epsilon_shrinks(self):
        assert recommended_b(0.05, 1000) > recommended_b(0.5, 1000)

    def test_recommended_b_validation(self):
        with pytest.raises(ValueError):
            recommended_b(0.0, 10)
        with pytest.raises(ValueError):
            recommended_b(0.1, 0)


class TestZHeavyHitters:
    def test_finds_l2_heavy_coordinate(self, rng):
        dense = rng.normal(size=300) * 0.1
        dense[42] = 80.0
        vector = make_vector(split_across_servers(dense, 3, rng))
        params = ZHeavyHittersParams(b=8, repetitions=1, num_buckets=8)
        candidates = z_heavy_hitters(vector, params, seed=0)
        assert 42 in candidates

    def test_finds_z_heavy_but_not_l2_heavy_coordinate(self, rng):
        """The case motivating Algorithm 2: a coordinate heavy under a capped
        weight (Huber) but dwarfed in F_2 by a few huge coordinates."""
        weight = HuberPsi(2.0).sampling_weight
        dense = np.zeros(512)
        # A few enormous coordinates dominate F_2 but their Huber weight is
        # capped at 4, so they do not dominate Z.
        dense[:3] = 1000.0
        # Many moderate coordinates near the cap carry the Z mass; one group
        # of coordinates at exactly the cap is what we must find.
        moderate = np.arange(10, 100)
        dense[moderate] = 2.0
        vector = make_vector(split_across_servers(dense, 3, rng))
        params = ZHeavyHittersParams(b=64, repetitions=2, num_buckets=16)
        candidates = set(z_heavy_hitters(vector, params, seed=1).tolist())
        z_total = weight(dense).sum()
        truly_heavy = {i for i in moderate if weight(dense[i : i + 1])[0] >= z_total / 64}
        # The bucketing must recover a solid fraction of the Z-heavy group
        # (each one is a candidate with constant probability per repetition).
        recovered = len(candidates & truly_heavy)
        assert recovered >= 0.5 * len(truly_heavy)

    def test_zero_vector_returns_nothing(self):
        vector = make_vector([np.zeros(64), np.zeros(64)])
        params = ZHeavyHittersParams(b=4, repetitions=1, num_buckets=4)
        assert z_heavy_hitters(vector, params, seed=0).size == 0

    def test_output_sorted_unique(self, rng):
        dense = rng.normal(size=200)
        dense[[3, 50, 120]] = [30.0, -40.0, 25.0]
        vector = make_vector(split_across_servers(dense, 2, rng))
        params = ZHeavyHittersParams(b=8, repetitions=2, num_buckets=8)
        candidates = z_heavy_hitters(vector, params, seed=2)
        assert np.all(np.diff(candidates) > 0)

    def test_communication_scales_with_buckets(self, rng):
        dense = rng.normal(size=256)
        results = []
        for buckets in (4, 16):
            vector = make_vector(split_across_servers(dense, 3, rng))
            before = vector.network.total_words
            params = ZHeavyHittersParams(b=8, repetitions=1, num_buckets=buckets)
            z_heavy_hitters(vector, params, seed=3)
            results.append(vector.network.total_words - before)
        assert results[1] > results[0]

    def test_more_repetitions_more_communication(self, rng):
        dense = rng.normal(size=256)
        words = []
        for reps in (1, 3):
            vector = make_vector(split_across_servers(dense, 3, rng))
            before = vector.network.total_words
            params = ZHeavyHittersParams(b=8, repetitions=reps, num_buckets=8)
            z_heavy_hitters(vector, params, seed=4)
            words.append(vector.network.total_words - before)
        assert words[1] > words[0]
