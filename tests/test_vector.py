"""Tests for repro.distributed.vector (DistributedVector)."""

import numpy as np
import pytest

from repro.distributed import LocalCluster, entrywise_partition
from repro.distributed.network import Network
from repro.distributed.vector import DistributedVector
from repro.sketch.countsketch import CountSketch


def make_vector(local_dense_vectors, network=None):
    """Build a DistributedVector from dense per-server vectors."""
    dimension = len(local_dense_vectors[0])
    network = network or Network(len(local_dense_vectors))
    components = []
    for vec in local_dense_vectors:
        vec = np.asarray(vec, dtype=float)
        idx = np.nonzero(vec)[0]
        components.append((idx, vec[idx]))
    return DistributedVector(components, dimension, network)


@pytest.fixture
def simple_vector():
    return make_vector(
        [
            [1.0, 0.0, 2.0, 0.0, 0.0, 0.0],
            [0.0, 3.0, -1.0, 0.0, 0.0, 0.5],
            [0.0, 0.0, 0.0, 0.0, 4.0, 0.0],
        ]
    )


class TestConstruction:
    def test_dimension_and_servers(self, simple_vector):
        assert simple_vector.dimension == 6
        assert simple_vector.num_servers == 3

    def test_exact_sum(self, simple_vector):
        np.testing.assert_allclose(
            simple_vector.exact_sum(), [1.0, 3.0, 1.0, 0.0, 4.0, 0.5]
        )

    def test_support_size(self, simple_vector):
        assert simple_vector.support_size() == 5

    def test_mismatched_components_raise(self):
        net = Network(2)
        with pytest.raises(ValueError):
            DistributedVector([(np.array([0]), np.array([1.0]))], 4, net)

    def test_out_of_range_index_raises(self):
        net = Network(1)
        with pytest.raises(IndexError):
            DistributedVector([(np.array([10]), np.array([1.0]))], 4, net)

    def test_invalid_dimension(self):
        net = Network(1)
        with pytest.raises(ValueError):
            DistributedVector([(np.array([], dtype=int), np.array([]))], 0, net)

    def test_from_cluster_entries(self, low_rank_matrix):
        cluster = LocalCluster(entrywise_partition(low_rank_matrix, 3, seed=0))
        vector = DistributedVector.from_cluster_entries(cluster)
        assert vector.dimension == low_rank_matrix.size
        np.testing.assert_allclose(
            vector.exact_sum(), low_rank_matrix.ravel(), atol=1e-8
        )


class TestRestrict:
    def test_restriction_zeroes_out_rest(self, simple_vector):
        restricted = simple_vector.restrict(lambda idx: idx < 3)
        expected = np.array([1.0, 3.0, 1.0, 0.0, 0.0, 0.0])
        np.testing.assert_allclose(restricted.exact_sum(), expected)

    def test_restriction_is_free(self, simple_vector):
        before = simple_vector.network.total_words
        simple_vector.restrict(lambda idx: idx % 2 == 0)
        assert simple_vector.network.total_words == before

    def test_empty_restriction(self, simple_vector):
        restricted = simple_vector.restrict(lambda idx: np.zeros(idx.shape, dtype=bool))
        np.testing.assert_allclose(restricted.exact_sum(), np.zeros(6))


class TestCollect:
    def test_values_match_sum(self, simple_vector):
        values = simple_vector.collect([0, 2, 5])
        np.testing.assert_allclose(values, [1.0, 1.0, 0.5])

    def test_collect_zero_coordinate(self, simple_vector):
        np.testing.assert_allclose(simple_vector.collect([3]), [0.0])

    def test_communication_cost(self, simple_vector):
        before = simple_vector.network.total_words
        simple_vector.collect([0, 1, 2])
        # Two worker servers each send 3 values.
        assert simple_vector.network.total_words - before == 2 * 3

    def test_empty_query(self, simple_vector):
        assert simple_vector.collect([]).size == 0

    def test_out_of_range_raises(self, simple_vector):
        with pytest.raises(IndexError):
            simple_vector.collect([6])


class TestMergedSketch:
    def test_merged_sketch_equals_sketch_of_sum(self, simple_vector):
        sketch = CountSketch(depth=3, width=8, domain=6, seed=0)
        merged = simple_vector.merged_sketch(sketch)
        direct = sketch.sketch_dense(simple_vector.exact_sum())
        np.testing.assert_allclose(merged, direct, atol=1e-10)

    def test_sketch_communication(self, simple_vector):
        sketch = CountSketch(depth=3, width=8, domain=6, seed=0)
        before = simple_vector.network.total_words
        simple_vector.merged_sketch(sketch)
        assert simple_vector.network.total_words - before == 2 * 3 * 8
