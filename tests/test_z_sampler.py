"""Tests for the Z-sampler (Algorithm 4)."""

import numpy as np
import pytest

from repro.functions import HuberPsi, Identity
from repro.sketch.exact import (
    empirical_distribution,
    exact_z_distribution,
    total_variation_distance,
)
from repro.sketch.z_heavy_hitters import ZHeavyHittersParams
from repro.sketch.z_sampler import ZSampler, ZSamplerConfig
from tests.test_heavy_hitters import split_across_servers
from tests.test_vector import make_vector


def small_config(**overrides):
    defaults = dict(
        epsilon=0.25,
        hh_params=ZHeavyHittersParams(b=16, repetitions=2, num_buckets=8),
        max_levels=8,
        min_level_count=2,
    )
    defaults.update(overrides)
    return ZSamplerConfig(**defaults)


class TestZSamplerBasics:
    def test_sample_count_and_types(self, rng):
        dense = np.zeros(200)
        dense[[3, 40, 150]] = [30.0, 20.0, -25.0]
        vector = make_vector(split_across_servers(dense, 3, rng))
        sampler = ZSampler(Identity().sampling_weight, small_config(), seed=0)
        draws = sampler.sample(vector, 25)
        assert draws.indices.shape == (25,)
        assert draws.probabilities.shape == (25,)
        assert draws.values.shape == (25,)
        assert np.all(draws.probabilities > 0)
        assert np.all(draws.probabilities <= 1.0 + 1e-9)

    def test_sampled_values_are_exact(self, rng):
        dense = np.zeros(150)
        dense[[10, 60]] = [15.0, -12.0]
        vector = make_vector(split_across_servers(dense, 2, rng))
        sampler = ZSampler(Identity().sampling_weight, small_config(), seed=1)
        draws = sampler.sample(vector, 10)
        for idx, value in zip(draws.indices, draws.values):
            assert value == pytest.approx(dense[idx], abs=1e-6)

    def test_invalid_count(self, rng):
        dense = np.zeros(50)
        dense[1] = 5.0
        vector = make_vector(split_across_servers(dense, 2, rng))
        sampler = ZSampler(Identity().sampling_weight, small_config(), seed=0)
        with pytest.raises(ValueError):
            sampler.sample(vector, 0)

    def test_zero_vector_raises(self):
        vector = make_vector([np.zeros(64), np.zeros(64)])
        sampler = ZSampler(Identity().sampling_weight, small_config(), seed=0)
        with pytest.raises(RuntimeError):
            sampler.sample(vector, 5)

    def test_estimate_reuse(self, rng):
        dense = np.zeros(100)
        dense[[4, 9]] = [10.0, 20.0]
        vector = make_vector(split_across_servers(dense, 2, rng))
        sampler = ZSampler(Identity().sampling_weight, small_config(), seed=0)
        estimate = sampler.estimate(vector)
        before = vector.network.total_words
        draws = sampler.sample(vector, 30, estimate=estimate)
        # Reusing the estimate avoids re-running the sketching protocol.
        assert vector.network.total_words == before
        assert draws.estimate is estimate


class TestZSamplerDistribution:
    def test_concentrated_distribution_matches_exact(self, rng):
        """When a handful of coordinates carry the z-mass, the sampler's
        empirical distribution is close to the exact one in TV distance."""
        dense = np.zeros(300)
        heavy = np.array([5, 77, 150, 260])
        dense[heavy] = [40.0, 25.0, -35.0, 20.0]
        vector = make_vector(split_across_servers(dense, 3, rng))
        weight = Identity().sampling_weight
        sampler = ZSampler(weight, small_config(), seed=3)
        draws = sampler.sample(vector, 2000)
        exact = exact_z_distribution(vector, weight)
        empirical = empirical_distribution(draws.indices, vector.dimension)
        assert total_variation_distance(exact, empirical) < 0.25

    def test_heavier_coordinates_sampled_more(self, rng):
        dense = np.zeros(200)
        dense[10] = 100.0
        dense[20] = 10.0
        vector = make_vector(split_across_servers(dense, 2, rng))
        sampler = ZSampler(Identity().sampling_weight, small_config(), seed=4)
        draws = sampler.sample(vector, 500)
        count_heavy = int(np.sum(draws.indices == 10))
        count_light = int(np.sum(draws.indices == 20))
        assert count_heavy > count_light

    def test_huber_weight_flattens_outlier_dominance(self, rng):
        """Under the Huber weight a single enormous entry must NOT absorb all
        the samples (as it would under the squared-value weight)."""
        dense = np.zeros(256)
        dense[0] = 1e5
        others = np.arange(50, 150)
        dense[others] = 3.0
        vector = make_vector(split_across_servers(dense, 2, rng))
        huber = HuberPsi(2.0)
        sampler = ZSampler(
            huber.sampling_weight,
            small_config(hh_params=ZHeavyHittersParams(b=64, repetitions=2, num_buckets=16)),
            seed=5,
        )
        draws = sampler.sample(vector, 400)
        fraction_outlier = np.mean(draws.indices == 0)
        # The outlier carries weight 4 out of ~404, i.e. about 1%.
        assert fraction_outlier < 0.2

    def test_reported_probability_tracks_weight(self, rng):
        dense = np.zeros(128)
        dense[[7, 90]] = [50.0, 5.0]
        vector = make_vector(split_across_servers(dense, 2, rng))
        weight = Identity().sampling_weight
        sampler = ZSampler(weight, small_config(), seed=6)
        draws = sampler.sample(vector, 200)
        z_total = weight(dense).sum()
        for idx, prob in zip(draws.indices, draws.probabilities):
            true_probability = weight(dense[idx : idx + 1])[0] / z_total
            assert prob == pytest.approx(true_probability, rel=0.6)


class TestCoordinateInjection:
    def test_injection_enabled_still_samples(self, rng):
        dense = np.zeros(200)
        dense[rng.choice(200, 40, replace=False)] = rng.uniform(1, 3, size=40)
        vector = make_vector(split_across_servers(dense, 2, rng))
        sampler = ZSampler(
            Identity().sampling_weight, small_config(use_injection=True), seed=7
        )
        draws = sampler.sample(vector, 50)
        assert draws.indices.shape == (50,)
        # Injected (virtual) coordinates are never returned.
        assert np.all(dense[draws.indices] != 0)

    def test_failures_counted_with_injection(self, rng):
        dense = np.zeros(200)
        dense[rng.choice(200, 60, replace=False)] = rng.uniform(0.5, 1.5, size=60)
        vector = make_vector(split_across_servers(dense, 2, rng))
        sampler = ZSampler(
            Identity().sampling_weight, small_config(use_injection=True), seed=8
        )
        draws = sampler.sample(vector, 100)
        assert draws.failures >= 0
