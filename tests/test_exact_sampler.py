"""Tests for the centralized reference samplers in repro.sketch.exact."""

import numpy as np
import pytest

from repro.functions import HuberPsi
from repro.sketch.exact import (
    empirical_distribution,
    exact_z_distribution,
    exact_z_sample,
    total_variation_distance,
)
from tests.test_vector import make_vector


@pytest.fixture
def vector(rng):
    dense = np.zeros(50)
    dense[[1, 10, 30]] = [2.0, -4.0, 1.0]
    parts = [dense * 0.4, dense * 0.6]
    return make_vector(parts)


class TestExactDistribution:
    def test_distribution_sums_to_one(self, vector):
        p = exact_z_distribution(vector, lambda x: np.asarray(x) ** 2)
        assert p.sum() == pytest.approx(1.0)

    def test_proportional_to_weight(self, vector):
        p = exact_z_distribution(vector, lambda x: np.asarray(x) ** 2)
        assert p[10] == pytest.approx(16.0 / 21.0)
        assert p[1] == pytest.approx(4.0 / 21.0)

    def test_huber_weight(self, vector):
        huber = HuberPsi(3.0)
        p = exact_z_distribution(vector, huber.sampling_weight)
        # -4 is clipped to weight 9.
        assert p[10] == pytest.approx(9.0 / (9.0 + 4.0 + 1.0))

    def test_all_zero_raises(self):
        zero = make_vector([np.zeros(10), np.zeros(10)])
        with pytest.raises(ValueError):
            exact_z_distribution(zero, lambda x: np.asarray(x) ** 2)

    def test_negative_weight_raises(self, vector):
        with pytest.raises(ValueError):
            exact_z_distribution(vector, lambda x: -np.abs(np.asarray(x)))


class TestExactSample:
    def test_sample_shapes(self, vector):
        idx, probs = exact_z_sample(vector, lambda x: np.asarray(x) ** 2, 40, seed=0)
        assert idx.shape == (40,)
        assert probs.shape == (40,)

    def test_only_supported_coordinates(self, vector):
        idx, _ = exact_z_sample(vector, lambda x: np.asarray(x) ** 2, 200, seed=1)
        assert set(np.unique(idx)).issubset({1, 10, 30})

    def test_invalid_count(self, vector):
        with pytest.raises(ValueError):
            exact_z_sample(vector, lambda x: np.asarray(x) ** 2, 0)


class TestDistanceHelpers:
    def test_tv_zero_for_identical(self):
        p = np.array([0.25, 0.75])
        assert total_variation_distance(p, p) == 0.0

    def test_tv_one_for_disjoint(self):
        assert total_variation_distance(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 1.0

    def test_tv_shape_mismatch(self):
        with pytest.raises(ValueError):
            total_variation_distance(np.ones(2) / 2, np.ones(3) / 3)

    def test_empirical_distribution(self):
        emp = empirical_distribution(np.array([0, 0, 1, 2]), 4)
        np.testing.assert_allclose(emp, [0.5, 0.25, 0.25, 0.0])

    def test_empirical_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_distribution(np.array([], dtype=int), 4)
