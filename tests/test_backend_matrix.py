"""The backend-matrix equivalence suite: one contract, every engine.

Replaces the per-path equivalence copies that used to live in
``test_vectorized_equivalence.py`` (the multiprocessing sampler run),
``test_runtime_transport.py`` (loopback/TCP vs simulation) and the mp
backend tests: a single parametrized suite asserts, for every registered
execution backend (``local``/``mp``/``loopback``/``tcp`` -- ``tcp`` behind
the socket marker, or via ``pytest --backend tcp``):

* same-seed **bit-identity** of draws, probabilities, values, Z-estimates
  and Z-HeavyHitters candidates against the plain in-process simulation;
* **identical per-tag words**, and a per-tag byte ledger equal to
  ``BYTES_PER_WORD`` bytes per word (really audited on the wire for the
  transport backends);
* streaming: ``apply_deltas`` + the merge-layer state refresh bit-identical
  to a from-scratch run over the appended components for integer-weighted
  streams.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import available_backends, create_backend
from repro.distributed.network import BYTES_PER_WORD, Network
from repro.distributed.vector import DistributedVector
from repro.sketch.countsketch import CountSketch
from repro.sketch.z_heavy_hitters import ZHeavyHittersParams, z_heavy_hitters
from repro.sketch.z_sampler import ZSampler, ZSamplerConfig

DIMENSION = 4000
SERVERS = 4
SUPPORT = 500


def make_components(seed=42, dim=DIMENSION, servers=SERVERS, support=SUPPORT):
    """Integer-valued per-server components with a few planted heavy hitters."""
    rng = np.random.default_rng(seed)
    components = []
    heavy = rng.choice(dim, size=10, replace=False)
    for server in range(servers):
        idx = np.sort(rng.choice(dim, size=support, replace=False)).astype(np.int64)
        val = rng.integers(-5, 6, size=support).astype(float)
        if server == 0:
            extra = np.setdiff1d(heavy, idx)
            idx = np.concatenate((idx, extra))
            val = np.concatenate((val, np.zeros(extra.size)))
            order = np.argsort(idx)
            idx, val = idx[order], val[order]
            val[np.isin(idx, heavy)] = 100.0
        components.append((idx, val))
    return components


def make_deltas(seed, dim=DIMENSION, servers=SERVERS, size=60):
    """One integer delta shard per server."""
    rng = np.random.default_rng(seed)
    deltas = []
    for _ in range(servers):
        idx = np.sort(rng.choice(dim, size=size, replace=False)).astype(np.int64)
        deltas.append((idx, rng.integers(-4, 5, size=size).astype(float)))
    return deltas


def appended(components, *delta_rounds):
    """The from-scratch components after every delta round."""
    out = []
    for server, (idx, val) in enumerate(components):
        pieces_idx, pieces_val = [idx], [val]
        for deltas in delta_rounds:
            pieces_idx.append(deltas[server][0])
            pieces_val.append(deltas[server][1])
        out.append((np.concatenate(pieces_idx), np.concatenate(pieces_val)))
    return out


def make_config():
    return ZSamplerConfig(
        hh_params=ZHeavyHittersParams(b=8, repetitions=1, num_buckets=8),
        max_levels=5,
    )


def weight_fn(values):
    return np.abs(values)


from test_runtime_transport import assert_same_draws  # noqa: E402 - shared helper


@pytest.fixture
def session(backend_name):
    """An open session of the parametrized backend over the shared workload."""
    components = make_components()
    with create_backend(backend_name).session(components, DIMENSION) as open_session:
        yield open_session


def simulated_reference(components, run, dim=DIMENSION):
    """Run ``run(vector)`` on the plain in-process simulation."""
    network = Network(len(components))
    vector = DistributedVector(components, dim, network)
    result = run(vector)
    return result, network.snapshot()


class TestBackendRegistry:
    def test_all_engines_registered(self):
        assert set(available_backends()) >= {"local", "mp", "loopback", "tcp"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            create_backend("carrier-pigeon")


class TestBackendMatrixEquivalence:
    """Same seed, same bits -- draws, estimates, candidates, words, bytes."""

    def test_sampling_bit_identical_to_simulation(self, session):
        components = make_components()
        config = make_config()
        simulated, sim_log = simulated_reference(
            components, lambda v: ZSampler(weight_fn, config, seed=7).sample(v, 20)
        )

        draws = session.sample(weight_fn, 20, config=config, seed=7)
        log = session.network.snapshot()

        assert_same_draws(simulated, draws)
        assert log.words_by_tag == sim_log.words_by_tag
        assert log.total_words == sim_log.total_words

    def test_z_heavy_hitters_bit_identical_to_simulation(self, session):
        components = make_components()
        params = ZHeavyHittersParams(b=8, repetitions=2, num_buckets=8)
        simulated, sim_log = simulated_reference(
            components, lambda v: z_heavy_hitters(v, params, seed=11)
        )

        candidates = session.z_heavy_hitters(params, seed=11)
        np.testing.assert_array_equal(simulated, candidates)
        assert session.network.snapshot().words_by_tag == sim_log.words_by_tag

    def test_estimate_bit_identical_to_simulation(self, session):
        from repro.sketch.z_estimator import ZEstimator

        components = make_components()
        config = make_config()

        def run(vector):
            estimator = ZEstimator(
                weight_fn,
                epsilon=config.epsilon,
                hh_params=config.hh_params,
                max_levels=config.max_levels,
                min_level_count=config.min_level_count,
                seed=21,
            )
            return estimator.estimate(vector)

        simulated, sim_log = simulated_reference(components, run)
        estimate = session.estimate(weight_fn, config=config, seed=21)

        assert estimate.z_total == simulated.z_total
        assert estimate.class_sizes == simulated.class_sizes
        assert estimate.member_values == simulated.member_values
        assert estimate.words_used == simulated.words_used
        assert session.network.snapshot().words_by_tag == sim_log.words_by_tag

    def test_bytes_are_eight_per_word_for_every_tag(self, session):
        session.sample(weight_fn, 10, config=make_config(), seed=3)
        ledger = session.verify_accounting()
        log = session.network.snapshot()
        assert set(ledger) == set(log.words_by_tag)
        for tag, words in log.words_by_tag.items():
            assert ledger[tag] == BYTES_PER_WORD * words


class TestStreamingDeltaMatrix:
    """apply_deltas + merge-layer refresh == from scratch, on every backend."""

    def test_protocols_after_deltas_match_from_scratch(self, session):
        components = make_components()
        d1, d2 = make_deltas(101), make_deltas(102)
        config = make_config()

        session.apply_deltas(d1)
        session.apply_deltas(d2)
        draws = session.sample(weight_fn, 12, config=config, seed=9)
        words = session.network.snapshot().words_by_tag
        session.verify_accounting()

        fresh, fresh_log = simulated_reference(
            appended(components, d1, d2),
            lambda v: ZSampler(weight_fn, config, seed=9).sample(v, 12),
        )
        assert_same_draws(fresh, draws)
        assert words == fresh_log.words_by_tag

    def test_incremental_sketch_state_matches_from_scratch(self, session):
        """The cached stream state is refreshed by sketching only the deltas
        (merge layer), yet stays bit-identical to a from-scratch export."""
        components = make_components()
        deltas = make_deltas(103)

        primed = session.sketch_state(5, 64, seed=42, stream="matrix")
        session.apply_deltas(deltas)
        refreshed = session.sketch_state(5, 64, seed=42, stream="matrix")
        session.verify_accounting()

        sketch = CountSketch(5, 64, DIMENSION, seed=42)
        scratch_states = [
            sketch.export_state(sketch.sketch(idx, val))
            for idx, val in appended(components, deltas)
        ]
        from repro.runtime.state import CountSketchState

        scratch = CountSketchState.merge_all(scratch_states)
        assert refreshed.equals(scratch)
        assert not primed.equals(scratch)  # the deltas actually changed it

    def test_sketch_state_words_identical_across_backends(self, session, backend_name):
        """Every backend charges the same seeds/tables words for an export."""
        session.sketch_state(5, 64, seed=1, stream="acct")
        words = session.network.snapshot().words_by_tag
        sketch = CountSketch(5, 64, DIMENSION, seed=1)
        workers = SERVERS - 1
        assert words == {
            "stream_sketch:acct:seeds": workers * sketch.seed_word_count(),
            "stream_sketch:acct:tables": workers * sketch.table_word_count(),
        }

    def test_malformed_deltas_rejected(self, session):
        from repro.core.errors import DimensionMismatchError

        with pytest.raises(DimensionMismatchError, match="one delta component"):
            session.apply_deltas([(np.zeros(0, dtype=np.int64), np.zeros(0))])
        bad = [
            (np.array([DIMENSION + 5]), np.array([1.0]))
        ] + [(np.zeros(0, dtype=np.int64), np.zeros(0))] * (SERVERS - 1)
        with pytest.raises(DimensionMismatchError, match="delta coordinates"):
            session.apply_deltas(bad)
