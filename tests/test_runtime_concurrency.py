"""Concurrent pipelined coordinator: bit-identity, pipelining, soak runs.

The load-bearing guarantee: the scatter schedule only moves wall-clock
time.  Draws, probabilities, estimates and the per-tag word/byte ledgers of
a pipelined run (``concurrency > 1``) are **bit-identical** to the
sequential worker-by-worker schedule (``concurrency=1``) and to the
in-process simulation -- including when N coordinators hammer one shared
worker set at once (the soak tests).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.errors import WorkerTimeoutError
from repro.distributed.network import Network
from repro.distributed.vector import DistributedVector
from repro.runtime import wire
from repro.runtime.service import CoordinatorService, WorkerService
from repro.runtime.transport import (
    LatencyTransport,
    LoopbackTransport,
    TcpTransport,
    WorkerServer,
    scatter_requests,
)
from repro.sketch.z_heavy_hitters import ZHeavyHittersParams
from repro.sketch.z_sampler import ZSampler, ZSamplerConfig

from test_runtime_transport import (
    assert_same_draws,
    make_components,
    make_config,
    weight_fn,
)


def shared_workers(dim, components):
    return [WorkerService(idx, val, dim) for idx, val in components[1:]]


def coordinator_over(workers, dim, local, *, concurrency=None, delay=0.0, **kwargs):
    transports = [LoopbackTransport(worker.handle_frame) for worker in workers]
    if delay:
        transports = [LatencyTransport(t, delay) for t in transports]
    return CoordinatorService(
        transports, dim, local, concurrency=concurrency, **kwargs
    )


class TestPipelinedEquivalence:
    """concurrency=N and concurrency=1 are the same protocol, bit for bit."""

    def test_sample_bit_identical_across_schedules(self):
        dim, components = make_components()
        config = make_config()

        network = Network(len(components))
        vector = DistributedVector(components, dim, network)
        simulated = ZSampler(weight_fn, config, seed=7).sample(vector, 20)
        simulated_log = network.snapshot()

        runs = {}
        for concurrency in (1, 2, None):  # None = all workers in flight
            workers = shared_workers(dim, components)
            coordinator = coordinator_over(
                workers, dim, components[0], concurrency=concurrency
            )
            runs[concurrency] = (
                coordinator.sample(weight_fn, 20, config=config, seed=7),
                coordinator.network.snapshot(),
                coordinator.verify_wire_accounting(),
            )
            coordinator.close()

        for concurrency, (draws, log, ledger) in runs.items():
            assert_same_draws(simulated, draws)
            assert log.words_by_tag == simulated_log.words_by_tag
            assert log.total_words == simulated_log.total_words
        # The byte ledgers agree across schedules, tag by tag.
        assert runs[1][2] == runs[2][2] == runs[None][2]

    def test_z_heavy_hitters_and_estimate_bit_identical(self):
        dim, components = make_components(seed=9)
        params = ZHeavyHittersParams(b=8, repetitions=2, num_buckets=8)
        config = make_config()

        results = {}
        for concurrency in (1, None):
            workers = shared_workers(dim, components)
            coordinator = coordinator_over(
                workers, dim, components[0], concurrency=concurrency
            )
            hh = coordinator.z_heavy_hitters(params, seed=11)
            estimate = coordinator.estimate(weight_fn, config=config, seed=21)
            coordinator.verify_wire_accounting()
            results[concurrency] = (hh, estimate, coordinator.network.snapshot())
            coordinator.close()

        np.testing.assert_array_equal(results[1][0], results[None][0])
        assert results[1][1].z_total == results[None][1].z_total
        assert results[1][1].class_sizes == results[None][1].class_sizes
        assert results[1][1].words_used == results[None][1].words_used
        assert results[1][2].words_by_tag == results[None][2].words_by_tag

    def test_latency_pipelining_actually_overlaps(self):
        """With a simulated RTT, one wave over w workers beats w round-trips."""
        dim, components = make_components(seed=3, servers=4, support=200)
        delay = 0.01

        def run(concurrency):
            workers = shared_workers(dim, components)
            coordinator = coordinator_over(
                workers, dim, components[0],
                concurrency=concurrency, delay=delay,
            )
            start = time.perf_counter()
            draws = coordinator.sample(weight_fn, 5, config=make_config(), seed=2)
            elapsed = time.perf_counter() - start
            coordinator.verify_wire_accounting()
            coordinator.close()
            return draws, elapsed

        sequential_draws, sequential_time = run(1)
        pipelined_draws, pipelined_time = run(None)
        assert_same_draws(sequential_draws, pipelined_draws)
        # 3 workers x ~dozens of waves: the sequential path pays every
        # worker's RTT, the pipelined path one RTT per wave.  Demand a
        # conservative 1.5x so a loaded machine cannot flake the test.
        assert sequential_time > 1.5 * pipelined_time, (
            f"pipelining gained only {sequential_time / pipelined_time:.2f}x "
            f"({sequential_time:.3f}s -> {pipelined_time:.3f}s)"
        )


class TestScatterAndRequestMany:
    def test_scatter_requests_orders_and_broadcasts(self):
        seen = []

        def handler(tag):
            def handle(frame):
                seen.append(tag)
                decoded = wire.decode_frame(frame)
                return wire.encode_frame("ack", {"from": tag, "echo": decoded.op})
            return handle

        transports = [LoopbackTransport(handler(i)) for i in range(3)]
        frame = wire.encode_frame("ping")
        replies = [wire.decode_frame(r) for r in scatter_requests(transports, frame)]
        assert [r.meta["from"] for r in replies] == [0, 1, 2]
        assert all(r.meta["echo"] == "ping" for r in replies)
        assert sorted(seen) == [0, 1, 2]

    def test_scatter_requests_rejects_mismatched_lengths(self):
        transports = [LoopbackTransport(lambda f: f)]
        with pytest.raises(ValueError, match="transports"):
            scatter_requests(transports, [b"a", b"b"])

    def test_request_many_loopback_is_serial_and_ordered(self):
        calls = []

        def handle(frame):
            decoded = wire.decode_frame(frame)
            calls.append(decoded.meta["i"])
            return wire.encode_frame("ack", {"i": decoded.meta["i"]})

        transport = LoopbackTransport(handle)
        frames = [wire.encode_frame("op", {"i": i}) for i in range(5)]
        replies = transport.request_many(frames)
        assert [wire.decode_frame(r).meta["i"] for r in replies] == list(range(5))
        assert calls == list(range(5))


@pytest.mark.tcp
class TestTcpPipelining:
    def make_echo_server(self, *, sleep_for=None, concurrency=4):
        def handle(frame):
            decoded = wire.decode_frame(frame)
            if sleep_for is not None:
                time.sleep(sleep_for(decoded.meta))
            return wire.encode_frame("ack", {"i": decoded.meta["i"]})

        server = WorkerServer(handle, concurrency=concurrency)
        host, port = server.start()
        return server, host, port

    def test_out_of_order_replies_are_matched_by_request_id(self):
        # The first request is the slowest: its reply arrives last, and the
        # id matching must still return replies in request order.
        server, host, port = self.make_echo_server(
            sleep_for=lambda meta: 0.2 if meta["i"] == 0 else 0.0
        )
        try:
            transport = TcpTransport(host, port, timeout=10.0)
            frames = [wire.encode_frame("op", {"i": i}) for i in range(4)]
            start = time.perf_counter()
            replies = transport.request_many(frames)
            elapsed = time.perf_counter() - start
            assert [wire.decode_frame(r).meta["i"] for r in replies] == [0, 1, 2, 3]
            # Pipelined: the whole wave costs ~the slowest request, not the sum.
            assert elapsed < 0.75
            transport.close()
        finally:
            server.stop()

    def test_interleaved_connections_share_one_server(self):
        server, host, port = self.make_echo_server(
            sleep_for=lambda meta: 0.05, concurrency=8
        )
        try:
            transports = [TcpTransport(host, port, timeout=10.0) for _ in range(3)]
            results = [None] * len(transports)

            def client(k):
                frames = [
                    wire.encode_frame("op", {"i": k * 100 + i}) for i in range(4)
                ]
                replies = transports[k].request_many(frames)
                results[k] = [wire.decode_frame(r).meta["i"] for r in replies]

            threads = [
                threading.Thread(target=client, args=(k,))
                for k in range(len(transports))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            for k, got in enumerate(results):
                assert got == [k * 100 + i for i in range(4)]
            for transport in transports:
                transport.close()
        finally:
            server.stop()

    def test_per_request_timeout_is_typed_and_poisons_connection(self):
        server, host, port = self.make_echo_server(
            sleep_for=lambda meta: 5.0 if meta["i"] == 1 else 0.0
        )
        try:
            transport = TcpTransport(host, port, timeout=0.5)
            frames = [wire.encode_frame("op", {"i": i}) for i in range(3)]
            with pytest.raises(WorkerTimeoutError, match="did not answer"):
                transport.request_many(frames)
            # Poisoned means the old socket is dead: the next request runs on
            # a FRESH connection and the late reply to the timed-out request
            # can never be mis-delivered to it.
            reply = transport.request(wire.encode_frame("op", {"i": 9}))
            assert wire.decode_frame(reply).meta["i"] == 9
            transport.close()
        finally:
            server.stop()

    def test_retries_reconnect_after_connection_loss(self):
        server, host, port = self.make_echo_server()
        try:
            transport = TcpTransport(host, port, timeout=10.0, retries=2)
            assert (
                wire.decode_frame(transport.request(wire.encode_frame("op", {"i": 1})))
                .meta["i"] == 1
            )
            # Kill the server side of the connection, then restart serving on
            # a NEW server socket bound to the same handler: the transport
            # must reconnect-and-resend transparently.
            server.stop()
            server2 = WorkerServer(
                lambda frame: wire.encode_frame(
                    "ack", {"i": wire.decode_frame(frame).meta["i"]}
                ),
                port=port,
            )
            server2.start()
            try:
                reply = transport.request(wire.encode_frame("op", {"i": 2}))
                assert wire.decode_frame(reply).meta["i"] == 2
            finally:
                transport.close()
                server2.stop()
        finally:
            server.stop()


class TestSessionIsolation:
    def test_colliding_tokens_from_two_clients_do_not_cross(self):
        """Two coordinators both use token 0; sessions keep the caches apart."""
        dim, components = make_components(seed=5, servers=3, support=200)
        workers = shared_workers(dim, components)
        config = make_config()

        # Serial references on private workers.
        expected = {}
        for seed in (1, 2):
            private = shared_workers(dim, components)
            coordinator = coordinator_over(private, dim, components[0], concurrency=1)
            expected[seed] = coordinator.sample(weight_fn, 6, config=config, seed=seed)
            coordinator.close()

        # Interleave the two clients' protocols against the SHARED workers:
        # client A registers its subsample cache (token 0), then client B
        # registers ITS token 0, then both keep going.  Without session
        # namespacing B would overwrite A's cached g values.
        coordinator_a = coordinator_over(workers, dim, components[0], concurrency=1)
        coordinator_b = coordinator_over(workers, dim, components[0], concurrency=1)
        draws = {}
        thread_a = threading.Thread(
            target=lambda: draws.__setitem__(
                1, coordinator_a.sample(weight_fn, 6, config=config, seed=1)
            )
        )
        thread_b = threading.Thread(
            target=lambda: draws.__setitem__(
                2, coordinator_b.sample(weight_fn, 6, config=config, seed=2)
            )
        )
        thread_a.start(); thread_b.start()
        thread_a.join(timeout=60.0); thread_b.join(timeout=60.0)
        assert set(draws) == {1, 2}
        assert_same_draws(draws[1], expected[1])
        assert_same_draws(draws[2], expected[2])
        coordinator_a.verify_wire_accounting()
        coordinator_b.verify_wire_accounting()
        coordinator_a.close(); coordinator_b.close()

    def test_session_caches_are_lru_capped(self):
        dim, components = make_components(seed=6, servers=2, support=100)
        worker = WorkerService(*components[1], dim)
        coefficients = np.arange(16, dtype=np.int64)
        for session in range(worker.MAX_SESSIONS + 5):
            frame = wire.encode_frame(
                "subsample",
                {"token": 0, "domain_scale": dim, "session": f"s{session}"},
                [("t:seeds", coefficients)],
            )
            reply = wire.decode_frame(worker.handle_frame(frame))
            assert reply.op == "ack"
        assert len(worker._subsample_g) <= worker.MAX_SESSIONS


def run_soak(dim, components, make_transports, clients, draws, cleanup=None):
    """N concurrent clients against one shared worker set, checked bit-exact."""
    config = make_config()

    expected = {}
    for seed in range(clients):
        private = shared_workers(dim, components)
        coordinator = coordinator_over(private, dim, components[0], concurrency=1)
        expected[seed] = (
            coordinator.sample(weight_fn, draws, config=config, seed=seed),
            coordinator.network.snapshot().words_by_tag,
        )
        coordinator.close()

    barrier = threading.Barrier(clients)
    outcomes: dict = {}

    def client(seed):
        try:
            coordinator = CoordinatorService(
                make_transports(), dim, components[0]
            )
            barrier.wait(timeout=30.0)
            result = coordinator.sample(weight_fn, draws, config=config, seed=seed)
            ledger = coordinator.verify_wire_accounting()
            outcomes[seed] = (
                result, coordinator.network.snapshot().words_by_tag, ledger
            )
            coordinator.close()
        except BaseException as exc:  # noqa: BLE001 - surfaces in the assert below
            outcomes[seed] = exc

    threads = [threading.Thread(target=client, args=(seed,)) for seed in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    try:
        for seed in range(clients):
            outcome = outcomes.get(seed)
            assert not isinstance(outcome, BaseException), f"client {seed}: {outcome!r}"
            assert outcome is not None, f"client {seed} never finished"
            result, words_by_tag, _ = outcome
            assert_same_draws(result, expected[seed][0])
            assert words_by_tag == expected[seed][1]
    finally:
        if cleanup is not None:
            cleanup()


class TestSoak:
    def test_loopback_soak_small(self):
        """Tier-1 sized soak: 3 concurrent clients over shared loopback workers."""
        dim, components = make_components(seed=12, servers=3, support=200)
        workers = shared_workers(dim, components)
        run_soak(
            dim,
            components,
            lambda: [LoopbackTransport(w.handle_frame) for w in workers],
            clients=3,
            draws=5,
        )

    @pytest.mark.slow
    def test_loopback_soak_heavy(self):
        dim, components = make_components(seed=13)
        workers = shared_workers(dim, components)
        run_soak(
            dim,
            components,
            lambda: [LoopbackTransport(w.handle_frame) for w in workers],
            clients=6,
            draws=16,
        )

    @pytest.mark.tcp
    @pytest.mark.slow
    def test_tcp_soak(self):
        """N submit-style clients over real sockets against one worker set."""
        dim, components = make_components(seed=14, servers=3, support=300)
        workers = shared_workers(dim, components)
        servers = [WorkerServer(w.handle_frame, concurrency=8) for w in workers]
        addresses = [server.start() for server in servers]

        def make_transports():
            return [
                TcpTransport(host, port, timeout=60.0)
                for host, port in addresses
            ]

        run_soak(
            dim,
            components,
            make_transports,
            clients=4,
            draws=8,
            cleanup=lambda: [server.stop() for server in servers],
        )
