"""Tests for repro.sketch.countsketch."""

import numpy as np
import pytest

from repro.sketch.countsketch import CountSketch


@pytest.fixture
def sketch():
    return CountSketch(depth=5, width=64, domain=500, seed=0)


@pytest.fixture
def sparse_vector(rng):
    vector = np.zeros(500)
    support = rng.choice(500, size=40, replace=False)
    vector[support] = rng.normal(size=40) * 3
    return vector


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CountSketch(0, 8, 10)
        with pytest.raises(ValueError):
            CountSketch(3, 0, 10)
        with pytest.raises(ValueError):
            CountSketch(3, 8, 0)

    def test_table_shape(self, sketch):
        assert sketch.empty_table().shape == (5, 64)

    def test_word_counts(self, sketch):
        assert sketch.table_word_count() == 5 * 64
        assert sketch.seed_word_count() > 0


class TestSketching:
    def test_sketch_of_zero_vector_is_zero(self, sketch):
        table = sketch.sketch(np.array([], dtype=int), np.array([]))
        assert np.all(table == 0)

    def test_dense_and_sparse_agree(self, sketch, sparse_vector):
        idx = np.nonzero(sparse_vector)[0]
        table_sparse = sketch.sketch(idx, sparse_vector[idx])
        table_dense = sketch.sketch_dense(sparse_vector)
        np.testing.assert_allclose(table_sparse, table_dense)

    def test_linearity(self, sketch, rng):
        """sketch(u + v) = sketch(u) + sketch(v): the property enabling distribution."""
        u = rng.normal(size=500)
        v = rng.normal(size=500)
        np.testing.assert_allclose(
            sketch.sketch_dense(u + v),
            sketch.sketch_dense(u) + sketch.sketch_dense(v),
            atol=1e-9,
        )

    def test_scaling(self, sketch, sparse_vector):
        np.testing.assert_allclose(
            sketch.sketch_dense(3.0 * sparse_vector),
            3.0 * sketch.sketch_dense(sparse_vector),
            atol=1e-9,
        )

    def test_merge(self, sketch, rng):
        parts = [rng.normal(size=500) for _ in range(4)]
        merged = CountSketch.merge([sketch.sketch_dense(p) for p in parts])
        np.testing.assert_allclose(merged, sketch.sketch_dense(np.sum(parts, axis=0)), atol=1e-9)

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            CountSketch.merge([])

    def test_out_of_domain_raises(self, sketch):
        with pytest.raises(IndexError):
            sketch.sketch(np.array([600]), np.array([1.0]))

    def test_mismatched_lengths_raise(self, sketch):
        with pytest.raises(ValueError):
            sketch.sketch(np.array([1, 2]), np.array([1.0]))

    def test_wrong_dense_shape_raises(self, sketch):
        with pytest.raises(ValueError):
            sketch.sketch_dense(np.zeros(10))


class TestQueries:
    def test_point_query_recovers_dominant_coordinate(self, rng):
        sketch = CountSketch(depth=7, width=128, domain=1000, seed=1)
        vector = rng.normal(size=1000) * 0.2
        vector[123] = 50.0
        table = sketch.sketch_dense(vector)
        estimate = sketch.estimate(table, np.array([123]))[0]
        assert estimate == pytest.approx(50.0, rel=0.1)

    def test_point_query_error_bounded(self, rng):
        sketch = CountSketch(depth=7, width=256, domain=2000, seed=2)
        vector = rng.normal(size=2000)
        table = sketch.sketch_dense(vector)
        estimates = sketch.estimate(table, np.arange(2000))
        errors = np.abs(estimates - vector)
        # CountSketch error is O(|v|_2 / sqrt(width)) per coordinate.
        bound = 4 * np.linalg.norm(vector) / np.sqrt(256)
        assert np.percentile(errors, 95) < bound

    def test_estimate_all_matches_estimate(self, sketch, sparse_vector):
        table = sketch.sketch_dense(sparse_vector)
        all_estimates = sketch.estimate_all(table, block=100)
        direct = sketch.estimate(table, np.arange(500))
        np.testing.assert_allclose(all_estimates, direct)

    def test_f2_estimate(self, rng):
        sketch = CountSketch(depth=9, width=512, domain=3000, seed=3)
        vector = rng.normal(size=3000)
        table = sketch.sketch_dense(vector)
        f2 = float(np.sum(vector**2))
        assert sketch.f2_estimate(table) == pytest.approx(f2, rel=0.25)

    def test_estimate_table_shape_mismatch(self, sketch):
        with pytest.raises(ValueError):
            sketch.estimate(np.zeros((2, 2)), np.array([0]))

    def test_f2_table_shape_mismatch(self, sketch):
        with pytest.raises(ValueError):
            sketch.f2_estimate(np.zeros((2, 2)))
