"""Wire codec + mergeable sketch state: round trips, word parity, merge laws."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.core.errors import SketchCompatibilityError, WireFormatError
from repro.distributed.message import Message, payload_word_count
from repro.distributed.network import BYTES_PER_WORD, Network
from repro.distributed.vector import DistributedVector
from repro.runtime import wire
from repro.runtime.state import (
    BatchedSketchState,
    CountSketchState,
    HeavyHitterSummary,
    ZEstimateState,
)
from repro.sketch.countsketch import BatchedCountSketch, CountSketch
from repro.sketch.z_estimator import ZEstimator
from repro.sketch.z_heavy_hitters import ZHeavyHittersParams


def roundtrip(payload):
    return wire.from_bytes(wire.to_bytes(payload))


def assert_payload_equal(actual, expected):
    """Deep equality that understands numpy arrays and scipy sparse."""
    if isinstance(expected, np.ndarray):
        assert isinstance(actual, np.ndarray)
        assert actual.dtype == expected.dtype
        assert actual.shape == expected.shape
        np.testing.assert_array_equal(actual, expected)
        return
    if sparse.issparse(expected):
        assert sparse.issparse(actual)
        assert actual.format == expected.format
        assert actual.shape == expected.shape
        assert (actual != expected).nnz == 0
        return
    if isinstance(expected, dict):
        assert set(actual) == set(expected)
        for key in expected:
            assert_payload_equal(actual[key], expected[key])
        return
    if isinstance(expected, (list, tuple)):
        assert type(actual) is type(expected)
        assert len(actual) == len(expected)
        for a, e in zip(actual, expected):
            assert_payload_equal(a, e)
        return
    if isinstance(expected, np.generic):
        assert isinstance(actual, np.generic)
        assert actual.dtype == expected.dtype
        assert actual == expected
        return
    assert type(actual) is type(expected)
    assert actual == expected


SCALARS = [
    None,
    True,
    False,
    0,
    -17,
    2**62,
    -(2**62),
    3.25,
    float("inf"),
    np.float64(1.5),
    np.float32(0.25),
    np.int64(-9),
    np.int32(7),
    np.uint64(2**63),
    np.int8(-4),
    np.bool_(True),
    "",
    "abc",
    "exactly-8",
    "a longer ascii string crossing several words",
]


class TestPayloadRoundTrip:
    @pytest.mark.parametrize("payload", SCALARS, ids=[repr(s) for s in SCALARS])
    def test_scalars(self, payload):
        assert_payload_equal(roundtrip(payload), payload)

    @pytest.mark.parametrize(
        "dtype",
        [np.float64, np.float32, np.int64, np.int32, np.int16, np.int8,
         np.uint64, np.uint32, np.uint16, np.uint8, np.bool_],
    )
    def test_array_dtypes(self, dtype):
        rng = np.random.default_rng(3)
        if np.dtype(dtype) == np.bool_:
            array = rng.random(37) < 0.5
        elif np.dtype(dtype).kind == "f":
            array = rng.normal(size=37).astype(dtype)
        else:
            info = np.iinfo(dtype)
            array = rng.integers(info.min, info.max, size=37, dtype=dtype, endpoint=True)
        assert_payload_equal(roundtrip(array), array)

    def test_array_shapes(self):
        for shape in [(0,), (), (3, 4), (2, 3, 4)]:
            array = np.arange(int(np.prod(shape)), dtype=np.int64).reshape(shape)
            assert_payload_equal(roundtrip(array), array)

    def test_uint64_full_range(self):
        array = np.array([0, 1, 2**63, 2**64 - 1], dtype=np.uint64)
        assert_payload_equal(roundtrip(array), array)

    @pytest.mark.parametrize("fmt", ["csr", "csc", "coo"])
    def test_sparse(self, fmt):
        matrix = sparse.random(13, 9, density=0.3, random_state=5, format=fmt)
        assert_payload_equal(roundtrip(matrix), matrix)

    def test_containers(self):
        payload = {
            "arrays": [np.arange(4), np.eye(2)],
            "tuple": (1, 2.0, "three", None),
            "nested": {"inner": {7: np.int64(7)}},
            3: "int keys work",
        }
        assert_payload_equal(roundtrip(payload), payload)
        assert roundtrip({1, 2, 3}) == {1, 2, 3}
        assert roundtrip(frozenset({"a", "b"})) == frozenset({"a", "b"})

    def test_message(self):
        message = Message(
            sender=3, receiver=0, payload=np.arange(5, dtype=float), tag="tables"
        )
        decoded = roundtrip(message)
        assert decoded.sender == 3 and decoded.receiver == 0
        assert decoded.tag == "tables"
        assert decoded.words == message.words
        np.testing.assert_array_equal(decoded.payload, message.payload)

    def test_charge_message_preserves_words(self):
        message = Message(sender=0, receiver=2, payload=None, tag="seeds", words=12)
        decoded = roundtrip(message)
        assert decoded.payload is None and decoded.words == 12

    def test_randomized_payloads(self):
        rng = np.random.default_rng(11)
        for trial in range(25):
            payload = {
                "idx": rng.integers(0, 1000, size=rng.integers(0, 50)),
                "val": rng.normal(size=rng.integers(0, 50)).astype(
                    rng.choice([np.float64, np.float32])
                ),
                "scalar": float(rng.normal()),
                "trial": int(trial),
            }
            assert_payload_equal(roundtrip(payload), payload)


class TestWordParity:
    """The wire data section is exactly 8 bytes per accounted word."""

    @pytest.mark.parametrize("payload", SCALARS, ids=[repr(s) for s in SCALARS])
    def test_scalar_words(self, payload):
        assert wire.wire_word_count(payload) == payload_word_count(payload)
        assert wire.payload_data_bytes(payload) == BYTES_PER_WORD * payload_word_count(payload)

    def test_structured_words(self):
        rng = np.random.default_rng(2)
        payloads = [
            rng.normal(size=(5, 7)),
            rng.integers(0, 100, size=33),
            sparse.random(20, 10, density=0.2, random_state=1, format="csr"),
            {"key": np.arange(6), "other": [1.0, 2.0, (3, 4)]},
            [np.int8(1), np.arange(3, dtype=np.int8)],
        ]
        for payload in payloads:
            words = payload_word_count(payload)
            assert wire.wire_word_count(payload) == words
            assert wire.payload_data_bytes(payload) == BYTES_PER_WORD * words

    def test_message_words_cover_payload(self):
        message = Message(sender=1, receiver=0, payload=np.arange(9), tag="t")
        assert wire.wire_word_count(message) == 9


class TestWireErrors:
    def test_bad_magic(self):
        with pytest.raises(WireFormatError, match="magic"):
            wire.from_bytes(b"XXXX" + wire.to_bytes(1)[4:])

    def test_bad_version(self):
        buf = bytearray(wire.to_bytes(1))
        buf[4] = 99
        with pytest.raises(WireFormatError, match="version"):
            wire.from_bytes(bytes(buf))

    def test_trailing_bytes(self):
        with pytest.raises(WireFormatError, match="trailing"):
            wire.from_bytes(wire.to_bytes(1) + b"\x00")

    def test_truncated(self):
        with pytest.raises(WireFormatError, match="truncated"):
            wire.from_bytes(wire.to_bytes(np.arange(100))[:-8])

    def test_non_ascii_string(self):
        with pytest.raises(WireFormatError, match="ASCII"):
            wire.to_bytes("héllo")

    def test_oversized_int(self):
        with pytest.raises(WireFormatError, match="64-bit"):
            wire.to_bytes(2**80)

    def test_unsupported_type(self):
        with pytest.raises(WireFormatError, match="cannot encode"):
            wire.to_bytes(object())

    def test_payload_is_not_a_frame(self):
        with pytest.raises(WireFormatError, match="kind"):
            wire.decode_frame(wire.to_bytes(1))


class TestFrames:
    def test_roundtrip_and_sections(self):
        table = np.arange(12, dtype=float).reshape(3, 4)
        query = np.arange(7, dtype=np.int64)
        buf, sections, overhead = wire.encode_frame_with_stats(
            "sketch",
            {"depth": 3, "nested": [1, 2]},
            [("hh:tables", table), (None, query), ("hh:seeds", np.arange(6))],
        )
        frame = wire.decode_frame(buf)
        assert frame.op == "sketch"
        assert frame.meta["depth"] == 3
        assert [tag for tag, _ in frame.entries] == ["hh:tables", None, "hh:seeds"]
        assert_payload_equal(frame.entry(0), table)
        assert_payload_equal(frame.entry(1), query)
        # Tagged sections carry exactly 8 bytes per payload word; the
        # untagged control entry and all framing land in the overhead.
        assert frame.data_sections == [("hh:tables", 96), ("hh:seeds", 48)]
        assert sections == frame.data_sections
        assert frame.data_bytes == 144
        assert frame.total_bytes == len(buf)
        assert frame.overhead_bytes == overhead == len(buf) - 144

    def test_empty_frame(self):
        frame = wire.decode_frame(wire.encode_frame("ping"))
        assert frame.op == "ping" and frame.meta == {} and frame.entries == []


def _integer_component(rng, domain, size):
    idx = np.sort(rng.choice(domain, size=size, replace=False)).astype(np.int64)
    val = rng.integers(-50, 51, size=size).astype(float)
    return idx, val


class TestCountSketchState:
    DOMAIN = 600

    def make_sketch(self, seed=0):
        return CountSketch(depth=5, width=32, domain=self.DOMAIN, seed=seed)

    def test_export_roundtrip_randomized(self):
        rng = np.random.default_rng(0)
        for trial in range(10):
            sketch = self.make_sketch(seed=trial)
            idx, val = _integer_component(rng, self.DOMAIN, 80)
            state = sketch.export_state(sketch.sketch(idx, val))
            decoded = CountSketchState.from_bytes(state.to_bytes())
            assert decoded.equals(state)

    def test_merge_equals_concatenated_sketch(self):
        """Disjoint shards merge bit-identically to one sketching pass."""
        rng = np.random.default_rng(1)
        sketch = self.make_sketch()
        coords = rng.permutation(self.DOMAIN)[:300]
        values = rng.integers(-50, 51, size=300).astype(float)
        shards = [(coords[:100], values[:100]), (coords[100:180], values[100:180]),
                  (coords[180:], values[180:])]
        states = [sketch.export_state(sketch.sketch(i, v)) for i, v in shards]
        merged = CountSketchState.merge_all(states)
        concatenated = sketch.sketch(
            np.concatenate([i for i, _ in shards]),
            np.concatenate([v for _, v in shards]),
        )
        np.testing.assert_array_equal(merged.table, concatenated)

    def test_merge_associative_and_commutative(self):
        rng = np.random.default_rng(2)
        sketch = self.make_sketch()
        states = [
            sketch.export_state(sketch.sketch(*_integer_component(rng, self.DOMAIN, 60)))
            for _ in range(3)
        ]
        a, b, c = states
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        np.testing.assert_array_equal(left.table, right.table)
        np.testing.assert_array_equal(a.merge(b).table, b.merge(a).table)

    def test_mismatched_coefficients_raise(self):
        state_a = self.make_sketch(seed=1).export_state()
        state_b = self.make_sketch(seed=2).export_state()
        with pytest.raises(SketchCompatibilityError, match="coefficients"):
            state_a.merge(state_b)

    def test_mismatched_geometry_raises(self):
        state_a = self.make_sketch().export_state()
        other = CountSketch(depth=5, width=64, domain=self.DOMAIN, seed=0)
        with pytest.raises(SketchCompatibilityError, match="geometries"):
            state_a.merge(other.export_state())

    def test_merge_wrong_type_raises(self):
        with pytest.raises(SketchCompatibilityError):
            self.make_sketch().export_state().merge("not a state")

    def test_from_coefficients_is_bit_identical(self):
        rng = np.random.default_rng(3)
        original = self.make_sketch(seed=9)
        rebuilt = CountSketch.from_coefficients(
            original._bucket_coeffs.astype(np.int64),
            original._sign_coeffs.astype(np.int64),
            original.domain,
            original.width,
        )
        idx, val = _integer_component(rng, self.DOMAIN, 90)
        table = original.sketch(idx, val)
        np.testing.assert_array_equal(rebuilt.sketch(idx, val), table)
        query = np.arange(0, self.DOMAIN, 7, dtype=np.int64)
        np.testing.assert_array_equal(
            rebuilt.estimate(table, query), original.estimate(table, query)
        )
        assert rebuilt.seed_word_count() == original.seed_word_count()

    def test_state_word_count_feeds_payload_accounting(self):
        state = self.make_sketch().export_state()
        assert payload_word_count(state) == state.word_count()


class TestBatchedSketchState:
    DOMAIN = 400

    def make_batched(self, seed=0):
        return BatchedCountSketch(
            [CountSketch(depth=3, width=16, domain=self.DOMAIN, seed=seed * 100 + b)
             for b in range(6)]
        )

    def test_roundtrip_and_member(self):
        rng = np.random.default_rng(4)
        batched = self.make_batched()
        idx, val = _integer_component(rng, self.DOMAIN, 70)
        assignment = rng.integers(0, 6, size=self.DOMAIN)
        tables = batched.sketch_assigned(idx, val, assignment[idx])
        state = batched.export_state(tables)
        decoded = BatchedSketchState.from_bytes(state.to_bytes())
        assert decoded.equals(state)
        member = state.member_state(2)
        np.testing.assert_array_equal(member.table, tables[2])
        assert member.make_sketch().width == batched.width

    def test_merge_equals_concatenated(self):
        rng = np.random.default_rng(5)
        batched = self.make_batched()
        assignment = rng.integers(0, 6, size=self.DOMAIN)
        shard_a = _integer_component(rng, self.DOMAIN, 60)
        shard_b = _integer_component(rng, self.DOMAIN, 60)
        state_a = batched.export_state(
            batched.sketch_assigned(*shard_a, assignment[shard_a[0]])
        )
        state_b = batched.export_state(
            batched.sketch_assigned(*shard_b, assignment[shard_b[0]])
        )
        merged = state_a.merge(state_b)
        concat_idx = np.concatenate([shard_a[0], shard_b[0]])
        concat_val = np.concatenate([shard_a[1], shard_b[1]])
        np.testing.assert_array_equal(
            merged.tables,
            batched.sketch_assigned(concat_idx, concat_val, assignment[concat_idx]),
        )

    def test_mismatch_raises(self):
        with pytest.raises(SketchCompatibilityError):
            self.make_batched(seed=0).export_state().merge(
                self.make_batched(seed=1).export_state()
            )

    def test_from_coefficients_rebuilds_family(self):
        batched = self.make_batched()
        rebuilt = BatchedCountSketch.from_coefficients(
            batched._bucket_coeffs.astype(np.int64),
            batched._sign_coeffs.astype(np.int64),
            batched.domain,
            batched.width,
        )
        rng = np.random.default_rng(6)
        idx, val = _integer_component(rng, self.DOMAIN, 50)
        assignment = rng.integers(0, 6, size=self.DOMAIN)
        np.testing.assert_array_equal(
            rebuilt.sketch_assigned(idx, val, assignment[idx]),
            batched.sketch_assigned(idx, val, assignment[idx]),
        )


class TestHeavyHitterSummary:
    DOMAIN = 500

    def test_shard_merge_matches_concatenated_extraction(self):
        rng = np.random.default_rng(7)
        sketch = CountSketch(depth=5, width=64, domain=self.DOMAIN, seed=3)
        dense = np.zeros(self.DOMAIN)
        heavy = rng.choice(self.DOMAIN, size=6, replace=False)
        dense[heavy] = 500.0
        noise_idx = rng.choice(self.DOMAIN, size=200, replace=False)
        dense[noise_idx] += rng.integers(-3, 4, size=200)
        support = np.flatnonzero(dense)
        values = dense[support]
        # Two disjoint time slices of the same stream.
        half = support.size // 2
        shards = [(support[:half], values[:half]), (support[half:], values[half:])]
        summaries = [
            HeavyHitterSummary.build(sketch, sketch.sketch(i, v), b=16.0)
            for i, v in shards
        ]
        merged = summaries[0].merge(summaries[1])
        direct = HeavyHitterSummary.build(
            sketch, sketch.sketch(support, values), b=16.0
        )
        np.testing.assert_array_equal(merged.state.table, direct.state.table)
        assert merged.f2_estimate == direct.f2_estimate
        # Exact candidate parity comes from re-extracting over the domain.
        np.testing.assert_array_equal(
            merged.extract().candidates, direct.candidates
        )
        assert set(heavy) <= set(direct.candidates.tolist())

    def test_roundtrip(self):
        sketch = CountSketch(depth=3, width=16, domain=100, seed=1)
        idx = np.arange(0, 100, 5, dtype=np.int64)
        summary = HeavyHitterSummary.build(
            sketch, sketch.sketch(idx, np.ones(idx.size) * 9), b=4.0
        )
        decoded = HeavyHitterSummary.from_bytes(summary.to_bytes())
        assert decoded.equals(summary)

    def test_threshold_mismatch_raises(self):
        sketch = CountSketch(depth=3, width=16, domain=100, seed=1)
        summary = HeavyHitterSummary.build(sketch, sketch.empty_table(), b=4.0)
        other = HeavyHitterSummary.build(sketch, sketch.empty_table(), b=8.0)
        with pytest.raises(SketchCompatibilityError, match="b="):
            summary.merge(other)


class TestZEstimateState:
    def test_export_roundtrip(self):
        rng = np.random.default_rng(8)
        dim = 800
        components = []
        for server in range(3):
            idx = np.sort(rng.choice(dim, size=150, replace=False)).astype(np.int64)
            val = rng.integers(-4, 5, size=150).astype(float)
            if server == 0:
                val[:5] = 300.0
            components.append((idx, val))
        vector = DistributedVector(components, dim, Network(3))
        estimator = ZEstimator(
            np.abs,
            hh_params=ZHeavyHittersParams(b=8, repetitions=1, num_buckets=8),
            max_levels=4,
            seed=5,
        )
        estimate = estimator.estimate(vector)
        state = estimate.export_state()
        decoded = ZEstimateState.from_bytes(state.to_bytes())
        assert decoded.equals(state)
        rebuilt = decoded.to_estimate()
        assert rebuilt.z_total == estimate.z_total
        assert rebuilt.class_sizes == estimate.class_sizes
        assert rebuilt.member_values == estimate.member_values
        assert set(rebuilt.class_members) == set(estimate.class_members)
        for klass in estimate.class_members:
            np.testing.assert_array_equal(
                rebuilt.class_members[klass], estimate.class_members[klass]
            )
        # The rebuilt subsample hash evaluates identically.
        keys = np.arange(50, dtype=np.int64)
        np.testing.assert_array_equal(
            rebuilt.subsample_hash(keys), estimate.subsample_hash(keys)
        )
