"""Tests for the constructive lower-bound reductions (Theorems 4, 6 and 8)."""

import numpy as np
import pytest

from repro.lowerbounds.problems import (
    disjointness_instance,
    gap_hamming_instance,
    linf_instance,
)
from repro.lowerbounds.reductions import (
    DisjointnessReduction,
    GapHammingReduction,
    LInfinityReduction,
    exact_rank_k_solver,
    theorem4_bound_bits,
    theorem6_bound_bits,
    theorem8_bound_bits,
)
from repro.utils.linalg import is_projection_matrix


class TestBoundFormulas:
    def test_theorem4_grows_with_n(self):
        assert theorem4_bound_bits(10_000, 64, 2.0, 0.1) > theorem4_bound_bits(100, 64, 2.0, 0.1)

    def test_theorem6_is_nd(self):
        assert theorem6_bound_bits(100, 50) == 5000

    def test_theorem8_grows_as_epsilon_shrinks(self):
        assert theorem8_bound_bits(0.01) > theorem8_bound_bits(0.1)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            theorem8_bound_bits(0.0)
        with pytest.raises(ValueError):
            theorem4_bound_bits(0, 10, 2.0, 0.1)


class TestExactSolver:
    def test_returns_projection(self, small_matrix):
        projection = exact_rank_k_solver(small_matrix, 3)
        assert is_projection_matrix(projection)


class TestGapHammingReduction:
    def test_gadget_shapes(self):
        reduction = GapHammingReduction(epsilon=0.2, k=3)
        x, y = gap_hamming_instance(0.2, positive_correlation=True, seed=0)
        a1, a2 = reduction.build_matrices(x, y)
        assert a1.shape == (x.size + 3, 4)
        assert a2.shape == a1.shape

    def test_gadget_column_zero_holds_inputs(self):
        reduction = GapHammingReduction(epsilon=0.2, k=2)
        x, y = gap_hamming_instance(0.2, positive_correlation=True, seed=1)
        a1, a2 = reduction.build_matrices(x, y)
        np.testing.assert_allclose(a1[: x.size, 0], x * 0.2)
        np.testing.assert_allclose(a2[: y.size, 0], y * 0.2)

    def test_decides_positive_case(self):
        reduction = GapHammingReduction(epsilon=0.1, k=2)
        x, y = gap_hamming_instance(0.1, positive_correlation=True, seed=2)
        assert reduction.decide(x, y) is True

    def test_decides_negative_case(self):
        reduction = GapHammingReduction(epsilon=0.1, k=2)
        x, y = gap_hamming_instance(0.1, positive_correlation=False, seed=3)
        assert reduction.decide(x, y) is False

    @pytest.mark.parametrize("epsilon", [0.08, 0.1, 0.15])
    def test_high_accuracy_across_epsilon(self, epsilon):
        reduction = GapHammingReduction(epsilon=epsilon, k=2)
        assert reduction.verify(trials=12, seed=4) >= 0.9

    def test_accuracy_with_larger_k(self):
        assert GapHammingReduction(epsilon=0.1, k=4).verify(trials=10, seed=5) >= 0.9

    def test_mismatched_inputs_raise(self):
        reduction = GapHammingReduction(epsilon=0.2, k=2)
        with pytest.raises(ValueError):
            reduction.build_matrices(np.ones(10), np.ones(11))

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            GapHammingReduction(epsilon=1.5)


class TestDisjointnessReduction:
    def test_instance_length(self):
        assert DisjointnessReduction(8, 4).instance_length == 32

    def test_gadget_rank_at_most_k(self):
        reduction = DisjointnessReduction(8, 4, k=3)
        x, y = disjointness_instance(32, intersecting=True, seed=0)
        block1 = (1.0 - x).reshape(8, 4)
        block2 = (1.0 - y).reshape(8, 4)
        a1, a2 = reduction.build_matrices(block1, block2)
        aggregated = np.maximum(a1, a2)
        assert np.linalg.matrix_rank(aggregated) <= 3

    def test_decides_intersecting_max(self):
        reduction = DisjointnessReduction(10, 5, k=3, aggregation="max")
        x, y = disjointness_instance(50, intersecting=True, seed=1)
        assert reduction.decide(x, y) is True

    def test_decides_disjoint_max(self):
        reduction = DisjointnessReduction(10, 5, k=3, aggregation="max")
        x, y = disjointness_instance(50, intersecting=False, seed=2)
        assert reduction.decide(x, y) is False

    @pytest.mark.parametrize("aggregation", ["max", "huber"])
    def test_accuracy_both_aggregations(self, aggregation):
        reduction = DisjointnessReduction(12, 6, k=3, aggregation=aggregation)
        assert reduction.verify(trials=10, seed=3) >= 0.9

    def test_wrong_instance_length_raises(self):
        reduction = DisjointnessReduction(4, 4)
        with pytest.raises(ValueError):
            reduction.decide(np.zeros(10), np.zeros(10))

    def test_k_must_be_at_least_three(self):
        with pytest.raises(ValueError):
            DisjointnessReduction(4, 4, k=2)

    def test_invalid_aggregation(self):
        with pytest.raises(ValueError):
            DisjointnessReduction(4, 4, aggregation="median")


class TestLInfinityReduction:
    def test_gap_bound_positive(self):
        reduction = LInfinityReduction(16, 8, k=3, p=2.0)
        assert reduction.gap_bound() >= 2

    def test_gap_bound_shrinks_with_p(self):
        coarse = LInfinityReduction(64, 8, k=3, p=1.5).gap_bound()
        fine = LInfinityReduction(64, 8, k=3, p=4.0).gap_bound()
        assert fine <= coarse

    def test_decides_far_instance(self):
        reduction = LInfinityReduction(16, 8, k=3, p=2.0)
        x, y = linf_instance(128, reduction.gap_bound(), has_far_coordinate=True, seed=0)
        assert reduction.decide(x, y) is True

    def test_decides_near_instance(self):
        reduction = LInfinityReduction(16, 8, k=3, p=2.0)
        x, y = linf_instance(128, reduction.gap_bound(), has_far_coordinate=False, seed=1)
        assert reduction.decide(x, y) is False

    @pytest.mark.parametrize("p", [1.5, 2.0, 3.0])
    def test_accuracy_across_p(self, p):
        reduction = LInfinityReduction(16, 8, k=3, p=p)
        assert reduction.verify(trials=10, seed=2) >= 0.9

    def test_p_must_exceed_one(self):
        with pytest.raises(ValueError):
            LInfinityReduction(8, 4, p=1.0)

    def test_wrong_instance_length(self):
        reduction = LInfinityReduction(8, 4)
        with pytest.raises(ValueError):
            reduction.decide(np.zeros(10), np.zeros(10))
