"""Tests for the Z-estimator (Algorithm 3)."""

import numpy as np
import pytest

from repro.functions import HuberPsi, Identity
from repro.sketch.z_estimator import ZEstimator
from repro.sketch.z_heavy_hitters import ZHeavyHittersParams
from tests.test_heavy_hitters import split_across_servers
from tests.test_vector import make_vector


def default_estimator(weight_fn, **kwargs):
    params = kwargs.pop("hh_params", ZHeavyHittersParams(b=16, repetitions=1, num_buckets=8))
    return ZEstimator(weight_fn, hh_params=params, seed=kwargs.pop("seed", 0), **kwargs)


class TestZEstimate:
    def test_z_total_on_concentrated_vector(self, rng):
        """When a few coordinates carry nearly all the weight, Zhat is accurate."""
        dense = np.zeros(400)
        dense[[7, 90, 333]] = [50.0, -70.0, 40.0]
        dense[rng.choice(400, 30, replace=False)] += rng.normal(scale=0.01, size=30)
        vector = make_vector(split_across_servers(dense, 3, rng))
        weight = Identity().sampling_weight
        estimate = default_estimator(weight).estimate(vector)
        true_z = weight(dense).sum()
        assert estimate.z_total == pytest.approx(true_z, rel=0.35)

    def test_z_total_order_of_magnitude_on_spread_vector(self, rng):
        """With weight spread over many coordinates the level-set estimation
        must still land within a small constant factor of the truth."""
        dense = np.zeros(512)
        support = rng.choice(512, size=256, replace=False)
        dense[support] = rng.uniform(1.0, 2.0, size=256)
        vector = make_vector(split_across_servers(dense, 4, rng))
        weight = Identity().sampling_weight
        estimator = default_estimator(
            weight, hh_params=ZHeavyHittersParams(b=16, repetitions=2, num_buckets=16)
        )
        estimate = estimator.estimate(vector)
        true_z = weight(dense).sum()
        assert 0.2 * true_z <= estimate.z_total <= 3.0 * true_z

    def test_class_sizes_never_exceed_truth_wildly(self, rng):
        dense = np.zeros(256)
        dense[:64] = 2.0  # one class of size exactly 64
        vector = make_vector(split_across_servers(dense, 2, rng))
        weight = Identity().sampling_weight
        estimator = default_estimator(
            weight, hh_params=ZHeavyHittersParams(b=16, repetitions=2, num_buckets=16)
        )
        estimate = estimator.estimate(vector)
        klass = estimate.class_of(4.0)  # z = 2^2
        assert estimate.class_sizes.get(klass, 0.0) <= 64 * 2.5

    def test_member_values_are_exact(self, rng):
        dense = np.zeros(200)
        dense[[5, 30]] = [10.0, -20.0]
        vector = make_vector(split_across_servers(dense, 3, rng))
        estimate = default_estimator(Identity().sampling_weight).estimate(vector)
        for coordinate, value in estimate.member_values.items():
            assert value == pytest.approx(dense[coordinate], abs=1e-6)

    def test_recovered_coordinates_subset_of_support(self, rng):
        dense = np.zeros(300)
        support = rng.choice(300, size=20, replace=False)
        dense[support] = rng.uniform(5, 10, size=20)
        vector = make_vector(split_across_servers(dense, 2, rng))
        estimate = default_estimator(Identity().sampling_weight).estimate(vector)
        recovered = set(estimate.recovered_coordinates().tolist())
        # All recovered coordinates carry genuinely nonzero weight.
        assert all(abs(dense[c]) > 1e-3 for c in recovered)

    def test_huber_weight_declasses_outliers(self, rng):
        """Under the Huber weight, enormous entries fall into the same class
        as entries at the clipping threshold."""
        huber = HuberPsi(2.0)
        dense = np.zeros(256)
        dense[0] = 1e6
        dense[1] = 2.5
        vector = make_vector(split_across_servers(dense, 2, rng))
        estimate = default_estimator(huber.sampling_weight).estimate(vector)
        if 0 in estimate.member_values and 1 in estimate.member_values:
            class_outlier = estimate.class_of(float(huber.sampling_weight(np.array([1e6]))[0]))
            class_capped = estimate.class_of(float(huber.sampling_weight(np.array([2.5]))[0]))
            assert class_outlier == class_capped

    def test_words_used_reported(self, rng):
        dense = rng.normal(size=128)
        vector = make_vector(split_across_servers(dense, 3, rng))
        before = vector.network.total_words
        estimate = default_estimator(Identity().sampling_weight).estimate(vector)
        assert estimate.words_used == vector.network.total_words - before
        assert estimate.words_used > 0

    def test_num_levels_zero_uses_only_direct_pass(self, rng):
        dense = np.zeros(128)
        dense[3] = 40.0
        vector = make_vector(split_across_servers(dense, 2, rng))
        estimator = ZEstimator(
            Identity().sampling_weight,
            hh_params=ZHeavyHittersParams(b=8, repetitions=1, num_buckets=4),
            num_levels=0,
            seed=0,
        )
        estimate = estimator.estimate(vector)
        assert estimate.levels_used == 0
        assert 3 in estimate.member_values

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            ZEstimator(Identity().sampling_weight, epsilon=0.0)

    def test_class_of_rejects_nonpositive(self, rng):
        dense = np.zeros(64)
        dense[1] = 5.0
        vector = make_vector(split_across_servers(dense, 2, rng))
        estimate = default_estimator(Identity().sampling_weight).estimate(vector)
        with pytest.raises(ValueError):
            estimate.class_of(0.0)
