"""Tests for repro.distributed.server."""

import numpy as np
import pytest
from scipy import sparse

from repro.distributed.server import Server


@pytest.fixture
def dense_server(rng):
    return Server(1, rng.normal(size=(20, 6)))


@pytest.fixture
def sparse_server(rng):
    dense = rng.normal(size=(20, 6))
    dense[dense < 0.5] = 0.0
    return Server(2, sparse.csr_matrix(dense))


class TestServerBasics:
    def test_shape(self, dense_server):
        assert dense_server.shape == (20, 6)

    def test_coordinator_flag(self, rng):
        assert Server(0, rng.normal(size=(2, 2))).is_coordinator
        assert not Server(1, rng.normal(size=(2, 2))).is_coordinator

    def test_negative_id_raises(self):
        with pytest.raises(ValueError):
            Server(-1, np.zeros((2, 2)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            Server(0, np.zeros(5))

    def test_sparse_flag(self, dense_server, sparse_server):
        assert not dense_server.is_sparse
        assert sparse_server.is_sparse

    def test_stored_words_dense(self, dense_server):
        assert dense_server.stored_words() == 120

    def test_stored_words_sparse(self, sparse_server):
        assert sparse_server.stored_words() == 2 * sparse_server.local_matrix.nnz + 1


class TestLocalRows:
    def test_dense_rows(self, dense_server):
        rows = dense_server.local_rows([0, 3, 3])
        np.testing.assert_allclose(rows[0], dense_server.local_matrix[0])
        np.testing.assert_allclose(rows[1], rows[2])

    def test_sparse_rows_dense_output(self, sparse_server):
        rows = sparse_server.local_rows([1, 2])
        assert isinstance(rows, np.ndarray)
        assert rows.shape == (2, 6)

    def test_out_of_range_raises(self, dense_server):
        with pytest.raises(IndexError):
            dense_server.local_rows([25])

    def test_2d_indices_raise(self, dense_server):
        with pytest.raises(ValueError):
            dense_server.local_rows([[1, 2]])


class TestLocalEntries:
    def test_matches_flat(self, dense_server):
        flat = dense_server.local_matrix.ravel()
        values = dense_server.local_entries([0, 7, 119])
        np.testing.assert_allclose(values, flat[[0, 7, 119]])

    def test_sparse_entries(self, sparse_server):
        dense = np.asarray(sparse_server.local_matrix.todense())
        values = sparse_server.local_entries([5, 50])
        np.testing.assert_allclose(values, dense.ravel()[[5, 50]])

    def test_out_of_range_raises(self, dense_server):
        with pytest.raises(IndexError):
            dense_server.local_entries([200])


class TestFlatViews:
    def test_flat_dense_roundtrip(self, dense_server):
        np.testing.assert_allclose(
            dense_server.flat_dense(), dense_server.local_matrix.ravel()
        )

    def test_flat_nonzero_consistent_dense(self, dense_server):
        idx, values = dense_server.flat_nonzero()
        reconstructed = np.zeros(120)
        reconstructed[idx] = values
        np.testing.assert_allclose(reconstructed, dense_server.flat_dense())

    def test_flat_nonzero_consistent_sparse(self, sparse_server):
        idx, values = sparse_server.flat_nonzero()
        reconstructed = np.zeros(120)
        reconstructed[idx] = values
        np.testing.assert_allclose(reconstructed, sparse_server.flat_dense())

    def test_flat_nonzero_sorted(self, sparse_server):
        idx, _ = sparse_server.flat_nonzero()
        assert np.all(np.diff(idx) > 0)


class TestRowNorms:
    def test_dense_matches_manual(self, dense_server):
        manual = (dense_server.local_matrix**2).sum(axis=1)
        np.testing.assert_allclose(dense_server.local_row_norms_squared(), manual)

    def test_sparse_matches_dense(self, sparse_server):
        dense = np.asarray(sparse_server.local_matrix.todense())
        np.testing.assert_allclose(
            sparse_server.local_row_norms_squared(), (dense**2).sum(axis=1)
        )


class TestTransform:
    def test_dense_transform(self, dense_server):
        squared = dense_server.transform(lambda x: x**2)
        np.testing.assert_allclose(squared.local_matrix, dense_server.local_matrix**2)

    def test_sparse_transform_preserving_zero(self, sparse_server):
        cubed = sparse_server.transform(lambda x: x**3)
        dense = np.asarray(sparse_server.local_matrix.todense())
        np.testing.assert_allclose(np.asarray(cubed.local_matrix.todense()), dense**3)

    def test_sparse_transform_not_preserving_zero_raises(self, sparse_server):
        with pytest.raises(ValueError):
            sparse_server.transform(lambda x: x + 1.0)

    def test_transform_returns_new_server(self, dense_server):
        out = dense_server.transform(lambda x: x)
        assert out is not dense_server
        assert out.server_id == dense_server.server_id
