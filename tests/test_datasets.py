"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    caltech_like_patch_codes,
    clustered_gaussian,
    forest_cover_like,
    inject_outliers,
    isolet_like,
    kddcup_like,
    low_rank_plus_noise,
    pnorm_pooling_cluster,
    power_law_rows,
    scenes_like_patch_codes,
)
from repro.functions.softmax import generalized_mean
from repro.utils.linalg import row_norms_squared


class TestLowRankPlusNoise:
    def test_shape(self):
        assert low_rank_plus_noise(50, 20, 5, seed=0).shape == (50, 20)

    def test_spectrum_dominated_by_signal_rank(self):
        data = low_rank_plus_noise(200, 60, 6, noise_level=0.05, seed=1)
        s = np.linalg.svd(data, compute_uv=False)
        assert s[5] / s[0] > 3 * s[6] / s[0]

    def test_noise_level_zero_gives_exact_rank(self):
        data = low_rank_plus_noise(40, 30, 4, noise_level=0.0, seed=2)
        assert np.linalg.matrix_rank(data, tol=1e-8) == 4

    def test_deterministic(self):
        np.testing.assert_allclose(
            low_rank_plus_noise(20, 10, 3, seed=5), low_rank_plus_noise(20, 10, 3, seed=5)
        )

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            low_rank_plus_noise(10, 10, 2, singular_value_decay=1.5)


class TestPowerLawRows:
    def test_heavy_tailed_row_norms(self):
        data = power_law_rows(300, 20, exponent=1.5, seed=0)
        norms = np.sort(row_norms_squared(data))[::-1]
        # The top 10% of rows carry most of the Frobenius mass.
        assert norms[:30].sum() > 0.75 * norms.sum()

    def test_shape(self):
        assert power_law_rows(40, 7, seed=1).shape == (40, 7)


class TestClusteredGaussian:
    def test_shape(self):
        assert clustered_gaussian(100, 10, 4, seed=0).shape == (100, 10)

    def test_cluster_structure_visible_in_spectrum(self):
        data = clustered_gaussian(400, 30, 5, cluster_spread=0.1, center_scale=5.0, seed=1)
        centered = data - data.mean(axis=0)
        s = np.linalg.svd(centered, compute_uv=False)
        # ~4 directions separate 5 clusters; they dominate the within-cluster noise.
        assert s[3] > 5 * s[5]


class TestUciLike:
    def test_forest_cover_shape_and_standardisation(self):
        data = forest_cover_like(500, seed=0)
        assert data.shape == (500, 54)
        np.testing.assert_allclose(data.mean(axis=0), 0.0, atol=1e-8)

    def test_kddcup_shape_and_standardisation(self):
        data = kddcup_like(600, seed=0)
        assert data.shape == (600, 41)
        np.testing.assert_allclose(data.std(axis=0), 1.0, atol=1e-6)

    def test_kddcup_imbalance(self):
        """Most rows belong to one dominant cluster."""
        data = kddcup_like(800, normal_fraction=0.85, seed=1)
        centered = data - data.mean(axis=0)
        s = np.linalg.svd(centered, compute_uv=False)
        assert s[0] > s[10]

    def test_isolet_shape_and_spectrum(self):
        data = isolet_like(400, 150, signal_rank=20, seed=0)
        assert data.shape == (400, 150)
        s = np.linalg.svd(data, compute_uv=False)
        # Meaningful decay in the first ~20 singular values (rank 3..15 PCA is sensible).
        assert s[15] > 0.05 * s[0]
        assert s[30] < 0.6 * s[0]

    def test_invalid_normal_fraction(self):
        with pytest.raises(ValueError):
            kddcup_like(100, normal_fraction=1.5)


class TestInjectOutliers:
    def test_number_and_magnitude(self, small_matrix):
        corrupted, positions = inject_outliers(small_matrix, 10, magnitude=1e5, seed=0)
        assert positions.size == 10
        assert np.all(np.abs(corrupted.flat[positions]) == 1e5)

    def test_original_untouched(self, small_matrix):
        copy = small_matrix.copy()
        inject_outliers(small_matrix, 5, seed=0)
        np.testing.assert_array_equal(small_matrix, copy)

    def test_unaffected_entries_preserved(self, small_matrix):
        corrupted, positions = inject_outliers(small_matrix, 5, seed=1)
        mask = np.ones(small_matrix.size, dtype=bool)
        mask[positions] = False
        np.testing.assert_allclose(corrupted.flat[mask], small_matrix.flat[mask])

    def test_relative_magnitude(self, small_matrix):
        corrupted, positions = inject_outliers(
            small_matrix, 3, magnitude=100.0, relative=True, seed=2
        )
        expected = 100.0 * np.max(np.abs(small_matrix))
        assert np.all(np.abs(corrupted.flat[positions]) == pytest.approx(expected))

    def test_too_many_outliers_raises(self, small_matrix):
        with pytest.raises(ValueError):
            inject_outliers(small_matrix, small_matrix.size + 1)

    def test_zero_outliers(self, small_matrix):
        corrupted, positions = inject_outliers(small_matrix, 0, seed=0)
        assert positions.size == 0
        np.testing.assert_array_equal(corrupted, small_matrix)


class TestPatchCodes:
    def test_caltech_structure(self):
        ds = caltech_like_patch_codes(num_images=80, num_servers=6, seed=0)
        assert ds.num_servers == 6
        assert ds.num_images == 80
        assert ds.codebook_size == 256
        for local in ds.local_counts:
            assert local.shape == (80, 256)
            assert np.all(local >= 0)
            assert np.all(local == np.round(local))

    def test_every_image_has_patches(self):
        ds = scenes_like_patch_codes(num_images=60, num_servers=5, seed=1)
        totals = ds.global_sum_pooled().sum(axis=1)
        assert np.all(totals >= 1)

    def test_scenes_defaults_differ_from_caltech(self):
        caltech = caltech_like_patch_codes(num_images=50, seed=0)
        scenes = scenes_like_patch_codes(num_images=50, seed=0)
        assert caltech.num_servers == 50
        assert scenes.num_servers == 10

    def test_codebook_reuse_within_class(self):
        """Images reuse a characteristic subset of codewords, giving the pooled
        matrix meaningful low-rank structure."""
        ds = caltech_like_patch_codes(num_images=150, num_servers=5, num_classes=8, seed=2)
        pooled = ds.global_sum_pooled()
        s = np.linalg.svd(pooled, compute_uv=False)
        energy_top10 = np.sum(s[:10] ** 2) / np.sum(s**2)
        assert energy_top10 > 0.5


class TestPnormPoolingCluster:
    @pytest.mark.parametrize("p", [1.0, 2.0, 20.0])
    def test_global_matrix_is_gm_of_locals(self, p):
        ds = caltech_like_patch_codes(num_images=40, num_servers=4, seed=0)
        cluster = pnorm_pooling_cluster(ds, p)
        expected = generalized_mean(np.stack(ds.local_counts), p, axis=0)
        np.testing.assert_allclose(cluster.materialize_global(), expected, atol=1e-8)

    def test_average_pooling_matches_mean(self):
        ds = scenes_like_patch_codes(num_images=30, num_servers=3, seed=1)
        cluster = pnorm_pooling_cluster(ds, 1.0)
        np.testing.assert_allclose(
            cluster.materialize_global(), np.mean(ds.local_counts, axis=0), atol=1e-8
        )

    def test_cluster_server_count(self):
        ds = caltech_like_patch_codes(num_images=25, num_servers=7, seed=2)
        assert pnorm_pooling_cluster(ds, 2.0).num_servers == 7
