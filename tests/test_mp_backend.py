"""Tests for the multiprocess execution backend."""

import numpy as np
import pytest

from repro.distributed.mp_backend import (
    MultiprocessBackend,
    SerialBackend,
    SketchProcessPool,
    batched_component_sketch_task,
    local_countsketch_task,
    local_frobenius_task,
    local_row_norms_task,
    local_rows_task,
    parallel_aggregate_rows,
    polynomial_hash_values_task,
)
from repro.distributed.network import Network
from repro.distributed.vector import DistributedVector
from repro.sketch.countsketch import BatchedCountSketch, CountSketch
from repro.sketch.hashing import KWiseHash, SubsampleHash
from repro.utils.linalg import frobenius_norm_squared


class TestPredefinedTasks:
    def test_row_norms_dense_and_sparse_agree(self, sparse_cluster, identity_cluster):
        for cluster in (sparse_cluster, identity_cluster):
            for server in cluster.servers:
                np.testing.assert_allclose(
                    local_row_norms_task(server.local_matrix),
                    server.local_row_norms_squared(),
                    atol=1e-9,
                )

    def test_local_rows_task(self, identity_cluster):
        server = identity_cluster.servers[1]
        np.testing.assert_allclose(
            local_rows_task(server.local_matrix, [0, 3]), server.local_rows([0, 3])
        )

    def test_frobenius_task(self, identity_cluster):
        server = identity_cluster.servers[2]
        assert local_frobenius_task(server.local_matrix) == pytest.approx(
            frobenius_norm_squared(np.asarray(server.local_matrix))
        )

    def test_countsketch_task_matches_direct_sketch(self, sparse_cluster):
        server = sparse_cluster.servers[1]
        table = local_countsketch_task(server.local_matrix, depth=3, width=16, seed=7)
        n, d = server.shape
        sketch = CountSketch(3, 16, n * d, seed=7)
        np.testing.assert_allclose(table, sketch.sketch_dense(server.flat_dense()), atol=1e-9)


class TestBackends:
    def test_serial_backend_order(self, identity_cluster):
        results = SerialBackend().map_servers(identity_cluster, local_frobenius_task)
        assert len(results) == identity_cluster.num_servers

    def test_multiprocess_matches_serial(self, identity_cluster):
        serial = SerialBackend().map_servers(identity_cluster, local_row_norms_task)
        parallel = MultiprocessBackend(processes=2).map_servers(
            identity_cluster, local_row_norms_task
        )
        for a, b in zip(serial, parallel):
            np.testing.assert_allclose(a, b)

    def test_single_process_shortcut(self, identity_cluster):
        results = MultiprocessBackend(processes=1).map_servers(
            identity_cluster, local_frobenius_task
        )
        assert len(results) == identity_cluster.num_servers

    def test_invalid_process_count(self):
        with pytest.raises(ValueError):
            MultiprocessBackend(processes=0)

    def test_task_arguments_forwarded(self, identity_cluster):
        results = MultiprocessBackend(processes=2).map_servers(
            identity_cluster, local_rows_task, args=(np.array([1, 2]),)
        )
        assert all(block.shape == (2, identity_cluster.num_columns) for block in results)


class TestParallelAggregateRows:
    def test_matches_serial_aggregate(self, identity_cluster, low_rank_matrix):
        rows = parallel_aggregate_rows(
            identity_cluster, [0, 5, 9], backend=MultiprocessBackend(processes=2)
        )
        np.testing.assert_allclose(rows, low_rank_matrix[[0, 5, 9]], atol=1e-8)

    def test_charges_network_like_serial(self, identity_cluster):
        before = identity_cluster.network.total_words
        parallel_aggregate_rows(
            identity_cluster, [1, 2], backend=MultiprocessBackend(processes=2)
        )
        used = identity_cluster.network.total_words - before
        assert used == (identity_cluster.num_servers - 1) * 2 * identity_cluster.num_columns

    def test_apply_function_false(self, sparse_cluster, low_rank_matrix):
        rows = parallel_aggregate_rows(
            sparse_cluster,
            [3],
            backend=MultiprocessBackend(processes=2),
            apply_function=False,
        )
        np.testing.assert_allclose(rows, low_rank_matrix[[3]], atol=1e-8)


class TestSketchProcessPool:
    def make_vector(self, dimension=500, servers=3, seed=5):
        rng = np.random.default_rng(seed)
        components = []
        for _ in range(servers):
            idx = np.sort(rng.choice(dimension, size=120, replace=False)).astype(
                np.int64
            )
            components.append((idx, rng.normal(size=120)))
        return DistributedVector(components, dimension, Network(servers))

    def make_batched(self, dimension=500, num_buckets=4):
        sketches = [CountSketch(3, 32, dimension, seed=900 + b) for b in range(num_buckets)]
        return BatchedCountSketch(sketches)

    def test_worker_sketch_task_matches_in_process(self):
        vector = self.make_vector()
        batched = self.make_batched()
        rng = np.random.default_rng(6)
        assignment = rng.integers(0, batched.num_buckets, size=vector.dimension)
        idx, val = vector.local_component(1)
        direct = batched.sketch_assigned(idx, val, assignment[idx])
        from_task = batched_component_sketch_task(
            idx, val, assignment[idx].astype(np.int64),
            batched._bucket_coeffs, batched._sign_coeffs,
            batched.num_buckets, batched.depth, batched.width,
        )
        np.testing.assert_array_equal(direct, from_task)

    def test_worker_hash_task_matches_kwise_hash(self):
        hash_fn = KWiseHash(16, 997, seed=8)
        keys = np.arange(400, dtype=np.int64)
        np.testing.assert_array_equal(
            polynomial_hash_values_task(keys, hash_fn.coefficients, 997),
            hash_fn(keys),
        )
        assert polynomial_hash_values_task(
            np.zeros(0, dtype=np.int64), hash_fn.coefficients, 997
        ).size == 0

    def test_pool_batched_sketches_match_serial(self):
        vector = self.make_vector()
        batched = self.make_batched()
        rng = np.random.default_rng(9)
        assignment = rng.integers(0, batched.num_buckets, size=vector.dimension)
        expected = []
        for server in range(vector.num_servers):
            idx, val = vector.local_component(server)
            expected.append(batched.sketch_assigned(idx, val, assignment[idx]))
        pool = SketchProcessPool(processes=2)
        try:
            results = pool.batched_sketches(vector, batched, assignment)
        finally:
            pool.close()
        for got, want in zip(results, expected):
            np.testing.assert_array_equal(got, want)

    def test_pool_subsample_values_match_serial(self):
        vector = self.make_vector()
        subsample = SubsampleHash(domain_scale=500, seed=10)
        pool = SketchProcessPool(processes=2)
        try:
            results = pool.subsample_values(vector, subsample)
        finally:
            pool.close()
        for server in range(vector.num_servers):
            idx, _ = vector.local_component(server)
            np.testing.assert_array_equal(results[server], subsample(idx))

    def test_pool_close_is_idempotent(self):
        pool = SketchProcessPool(processes=1)
        assert pool.starmap(local_frobenius_task, [(np.ones((2, 2)),)]) == [4.0]
        pool.close()
        pool.close()

    def test_invalid_process_count(self):
        with pytest.raises(ValueError):
            SketchProcessPool(processes=0)

    def test_engine_pool_restored_after_context(self):
        from repro.sketch import engine

        assert engine.parallel_pool() is None
        with engine.multiprocess_execution(processes=2) as pool:
            assert engine.parallel_pool() is pool
        assert engine.parallel_pool() is None

    def test_vector_bound_pool_wins_over_engine_global(self):
        """The mp backend binds its pool per vector; restrictions inherit it."""
        vector = self.make_vector()
        pool = SketchProcessPool(processes=1)
        try:
            vector.bind_worker_pool(pool)
            assert vector._active_pool() is pool
            restricted = vector.restrict(lambda idx: idx % 2 == 0)
            assert restricted._active_pool() is pool
            appended = vector.apply_deltas(
                [(np.zeros(0, dtype=np.int64), np.zeros(0))] * vector.num_servers
            )
            assert appended._active_pool() is pool
        finally:
            pool.close()


class TestSharedMemoryCaches:
    """Shared-memory domain caches and component publishing (bit-identical)."""

    DOMAIN = 700

    def make_vector(self, servers=3, seed=15):
        rng = np.random.default_rng(seed)
        components = []
        for _ in range(servers):
            idx = np.sort(rng.choice(self.DOMAIN, size=150, replace=False)).astype(
                np.int64
            )
            components.append((idx, rng.normal(size=150)))
        return DistributedVector(components, self.DOMAIN, Network(servers))

    def make_batched(self, num_buckets=4, seed_base=700):
        sketches = [
            CountSketch(3, 16, self.DOMAIN, seed=seed_base + b)
            for b in range(num_buckets)
        ]
        return BatchedCountSketch(sketches)

    def test_pool_built_domain_cache_is_bit_identical(self):
        rng = np.random.default_rng(16)
        assignment = rng.integers(0, 4, size=self.DOMAIN)
        serial = self.make_batched()
        assert serial.build_domain_cache(assignment)
        pooled = self.make_batched()
        pool = SketchProcessPool(processes=2)
        try:
            assert pool.build_domain_cache_shared(pooled, assignment.astype(np.int64))
        finally:
            pool.close()
        np.testing.assert_array_equal(pooled._flat_cache, serial._flat_cache)
        np.testing.assert_array_equal(pooled._sign_cache, serial._sign_cache)
        assert getattr(pooled, "_shm_cache_names", None) is not None

    def test_fully_shared_sketch_path_matches_serial(self):
        from repro.sketch.hashing import PairwiseHash

        vector = self.make_vector()
        rng = np.random.default_rng(17)
        bucket_hash = PairwiseHash(4, rng)
        assignment = bucket_hash(np.arange(self.DOMAIN, dtype=np.int64))
        serial_batched = self.make_batched()
        serial_batched.build_domain_cache(assignment)
        expected = []
        for server in range(vector.num_servers):
            idx, val = vector.local_component(server)
            expected.append(serial_batched.sketch_assigned(idx, val, assignment[idx]))

        pooled_batched = self.make_batched()
        pool = SketchProcessPool(processes=2)
        try:
            assert pool.build_domain_cache_shared(pooled_batched, assignment)
            results = pool.batched_sketches(
                vector, pooled_batched, assignment, bucket_hash=bucket_hash
            )
            # Component segments are published once and reused.
            names_first = pool._shared_components(vector)
            names_second = pool._shared_components(vector)
            assert names_first is names_second
            repeat = pool.batched_sketches(
                vector, pooled_batched, assignment, bucket_hash=bucket_hash
            )
        finally:
            pool.close()
        for server in range(vector.num_servers):
            np.testing.assert_array_equal(results[server], expected[server])
            np.testing.assert_array_equal(repeat[server], expected[server])

    def test_subsample_values_shared_path(self):
        vector = self.make_vector()
        subsample = SubsampleHash(domain_scale=self.DOMAIN, seed=18)
        pool = SketchProcessPool(processes=2)
        try:
            results = pool.subsample_values(vector, subsample)
        finally:
            pool.close()
        for server in range(vector.num_servers):
            idx, _ = vector.local_component(server)
            np.testing.assert_array_equal(results[server], subsample(idx))

    def test_empty_component_round_trips(self):
        empty = (np.zeros(0, dtype=np.int64), np.zeros(0))
        rng = np.random.default_rng(19)
        idx = np.sort(rng.choice(self.DOMAIN, size=50, replace=False)).astype(np.int64)
        vector = DistributedVector(
            [empty, (idx, rng.normal(size=50))], self.DOMAIN, Network(2)
        )
        subsample = SubsampleHash(domain_scale=self.DOMAIN, seed=20)
        pool = SketchProcessPool(processes=2)
        try:
            results = pool.subsample_values(vector, subsample)
        finally:
            pool.close()
        assert results[0].size == 0
        np.testing.assert_array_equal(results[1], subsample(idx))


class TestBatchedDispatch:
    """Batched per-process dispatch: O(processes) round-trips, same bits.

    ``SketchProcessPool.starmap_batched`` chunks all servers' payloads into
    one submission per worker process instead of one per server.  These
    tests pin the contract: results (and therefore draws and per-tag words)
    are bit-identical to the per-server path, and the batched pool performs
    strictly fewer IPC task submissions whenever servers > processes.
    """

    SERVERS = 8
    DIMENSION = 900

    def make_vector(self, seed=21):
        rng = np.random.default_rng(seed)
        components = []
        for _ in range(self.SERVERS):
            idx = np.sort(
                rng.choice(self.DIMENSION, size=150, replace=False)
            ).astype(np.int64)
            components.append((idx, rng.normal(size=150)))
        return DistributedVector(components, self.DIMENSION, Network(self.SERVERS))

    def make_batched(self, num_buckets=4):
        sketches = [
            CountSketch(3, 32, self.DIMENSION, seed=930 + b)
            for b in range(num_buckets)
        ]
        return BatchedCountSketch(sketches)

    def run_both(self, op):
        """``{batch_dispatch: (result, submissions)}`` for the same op."""
        results = {}
        for batch in (False, True):
            pool = SketchProcessPool(processes=2, batch_dispatch=batch)
            try:
                results[batch] = (op(pool), pool.submissions)
            finally:
                pool.close()
        return results

    def test_batched_sketches_bit_identical_fewer_submissions(self):
        vector = self.make_vector()
        batched = self.make_batched()
        rng = np.random.default_rng(22)
        assignment = rng.integers(0, batched.num_buckets, size=vector.dimension)
        out = self.run_both(
            lambda pool: pool.batched_sketches(vector, batched, assignment)
        )
        (per_server, per_server_subs), (chunked, chunked_subs) = out[False], out[True]
        assert len(chunked) == self.SERVERS
        for got, want in zip(chunked, per_server):
            np.testing.assert_array_equal(got, want)
        assert chunked_subs < per_server_subs
        # One submission per worker process, not per server.
        assert chunked_subs == 2
        assert per_server_subs == self.SERVERS

    def test_subsample_values_bit_identical_fewer_submissions(self):
        vector = self.make_vector(seed=23)
        subsample = SubsampleHash(domain_scale=self.DIMENSION, seed=24)
        out = self.run_both(lambda pool: pool.subsample_values(vector, subsample))
        (per_server, per_server_subs), (chunked, chunked_subs) = out[False], out[True]
        for got, want in zip(chunked, per_server):
            np.testing.assert_array_equal(got, want)
        assert chunked_subs < per_server_subs

    def test_starmap_batched_preserves_payload_order(self):
        pool = SketchProcessPool(processes=2, batch_dispatch=True)
        keys = [np.arange(40 * (i + 1), dtype=np.int64) for i in range(7)]
        hash_fn = KWiseHash(16, 997, seed=26)
        payloads = [(k, hash_fn.coefficients, 997) for k in keys]
        try:
            results = pool.starmap_batched(polynomial_hash_values_task, payloads)
        finally:
            pool.close()
        assert len(results) == len(payloads)
        for got, k in zip(results, keys):
            np.testing.assert_array_equal(got, hash_fn(k))

    def test_single_payload_runs_inline_without_submission(self):
        pool = SketchProcessPool(processes=2, batch_dispatch=True)
        hash_fn = KWiseHash(16, 997, seed=27)
        keys = np.arange(64, dtype=np.int64)
        try:
            results = pool.starmap_batched(
                polynomial_hash_values_task, [(keys, hash_fn.coefficients, 997)]
            )
            assert pool.submissions == 0
        finally:
            pool.close()
        np.testing.assert_array_equal(results[0], hash_fn(keys))

    def test_session_draws_and_words_identical_across_dispatch_modes(self):
        from repro.backend.local import LocalSession
        from repro.sketch.z_heavy_hitters import ZHeavyHittersParams
        from repro.sketch.z_sampler import ZSamplerConfig

        rng = np.random.default_rng(25)
        components = []
        for _ in range(self.SERVERS):
            idx = np.sort(
                rng.choice(self.DIMENSION, size=150, replace=False)
            ).astype(np.int64)
            components.append((idx, rng.integers(-5, 6, size=150).astype(float)))
        config = ZSamplerConfig(
            hh_params=ZHeavyHittersParams(b=8, repetitions=1, num_buckets=8),
            max_levels=5,
        )
        outputs = {}
        for batch in (False, True):
            pool = SketchProcessPool(processes=2, batch_dispatch=batch)
            session = LocalSession(components, self.DIMENSION, pool=pool)
            try:
                draws = session.sample(np.abs, 12, config=config, seed=7)
                words = dict(session.network.snapshot().words_by_tag)
            finally:
                session.close()
            outputs[batch] = (draws, words, pool.submissions)
        per_server, batched = outputs[False], outputs[True]
        from test_runtime_transport import assert_same_draws

        assert_same_draws(batched[0], per_server[0])
        assert batched[1] == per_server[1]
        assert batched[2] < per_server[2]
