"""Tests for the multiprocess execution backend."""

import numpy as np
import pytest

from repro.distributed.mp_backend import (
    MultiprocessBackend,
    SerialBackend,
    local_countsketch_task,
    local_frobenius_task,
    local_row_norms_task,
    local_rows_task,
    parallel_aggregate_rows,
)
from repro.sketch.countsketch import CountSketch
from repro.utils.linalg import frobenius_norm_squared


class TestPredefinedTasks:
    def test_row_norms_dense_and_sparse_agree(self, sparse_cluster, identity_cluster):
        for cluster in (sparse_cluster, identity_cluster):
            for server in cluster.servers:
                np.testing.assert_allclose(
                    local_row_norms_task(server.local_matrix),
                    server.local_row_norms_squared(),
                    atol=1e-9,
                )

    def test_local_rows_task(self, identity_cluster):
        server = identity_cluster.servers[1]
        np.testing.assert_allclose(
            local_rows_task(server.local_matrix, [0, 3]), server.local_rows([0, 3])
        )

    def test_frobenius_task(self, identity_cluster):
        server = identity_cluster.servers[2]
        assert local_frobenius_task(server.local_matrix) == pytest.approx(
            frobenius_norm_squared(np.asarray(server.local_matrix))
        )

    def test_countsketch_task_matches_direct_sketch(self, sparse_cluster):
        server = sparse_cluster.servers[1]
        table = local_countsketch_task(server.local_matrix, depth=3, width=16, seed=7)
        n, d = server.shape
        sketch = CountSketch(3, 16, n * d, seed=7)
        np.testing.assert_allclose(table, sketch.sketch_dense(server.flat_dense()), atol=1e-9)


class TestBackends:
    def test_serial_backend_order(self, identity_cluster):
        results = SerialBackend().map_servers(identity_cluster, local_frobenius_task)
        assert len(results) == identity_cluster.num_servers

    def test_multiprocess_matches_serial(self, identity_cluster):
        serial = SerialBackend().map_servers(identity_cluster, local_row_norms_task)
        parallel = MultiprocessBackend(processes=2).map_servers(
            identity_cluster, local_row_norms_task
        )
        for a, b in zip(serial, parallel):
            np.testing.assert_allclose(a, b)

    def test_single_process_shortcut(self, identity_cluster):
        results = MultiprocessBackend(processes=1).map_servers(
            identity_cluster, local_frobenius_task
        )
        assert len(results) == identity_cluster.num_servers

    def test_invalid_process_count(self):
        with pytest.raises(ValueError):
            MultiprocessBackend(processes=0)

    def test_task_arguments_forwarded(self, identity_cluster):
        results = MultiprocessBackend(processes=2).map_servers(
            identity_cluster, local_rows_task, args=(np.array([1, 2]),)
        )
        assert all(block.shape == (2, identity_cluster.num_columns) for block in results)


class TestParallelAggregateRows:
    def test_matches_serial_aggregate(self, identity_cluster, low_rank_matrix):
        rows = parallel_aggregate_rows(
            identity_cluster, [0, 5, 9], backend=MultiprocessBackend(processes=2)
        )
        np.testing.assert_allclose(rows, low_rank_matrix[[0, 5, 9]], atol=1e-8)

    def test_charges_network_like_serial(self, identity_cluster):
        before = identity_cluster.network.total_words
        parallel_aggregate_rows(
            identity_cluster, [1, 2], backend=MultiprocessBackend(processes=2)
        )
        used = identity_cluster.network.total_words - before
        assert used == (identity_cluster.num_servers - 1) * 2 * identity_cluster.num_columns

    def test_apply_function_false(self, sparse_cluster, low_rank_matrix):
        rows = parallel_aggregate_rows(
            sparse_cluster,
            [3],
            backend=MultiprocessBackend(processes=2),
            apply_function=False,
        )
        np.testing.assert_allclose(rows, low_rank_matrix[[3]], atol=1e-8)
