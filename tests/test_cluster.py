"""Tests for repro.distributed.cluster."""

import numpy as np
import pytest

from repro.distributed import LocalCluster, arbitrary_partition, entrywise_partition
from repro.distributed.network import Network
from repro.functions import HuberPsi, Identity


class TestConstruction:
    def test_basic_properties(self, identity_cluster, low_rank_matrix):
        assert identity_cluster.num_servers == 4
        assert identity_cluster.shape == low_rank_matrix.shape
        assert identity_cluster.num_rows == low_rank_matrix.shape[0]
        assert identity_cluster.num_columns == low_rank_matrix.shape[1]

    def test_empty_cluster_raises(self):
        with pytest.raises(ValueError):
            LocalCluster([])

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            LocalCluster([rng.normal(size=(3, 4)), rng.normal(size=(4, 3))])

    def test_rejects_1d_locals(self):
        with pytest.raises(ValueError):
            LocalCluster([np.zeros(5)])

    def test_network_created_automatically(self, identity_cluster):
        assert isinstance(identity_cluster.network, Network)
        assert identity_cluster.network.num_servers == 4

    def test_mismatched_network_raises(self, low_rank_matrix):
        with pytest.raises(ValueError):
            LocalCluster(
                arbitrary_partition(low_rank_matrix, 3, seed=0), network=Network(5)
            )

    def test_total_input_words_dense(self, identity_cluster, low_rank_matrix):
        assert identity_cluster.total_input_words() == 4 * low_rank_matrix.size

    def test_total_input_words_sparse_smaller(self, sparse_cluster, low_rank_matrix):
        # An entrywise split of a dense matrix stores each entry once (plus
        # index overhead) so the total is about 2x the entries, not 4x.
        assert sparse_cluster.total_input_words() < 3 * low_rank_matrix.size


class TestMaterialization:
    def test_identity_sum(self, identity_cluster, low_rank_matrix):
        np.testing.assert_allclose(
            identity_cluster.materialize_global(), low_rank_matrix, atol=1e-8
        )

    def test_sum_vs_global_with_function(self, low_rank_matrix):
        cluster = LocalCluster(
            arbitrary_partition(low_rank_matrix, 3, seed=1), HuberPsi(0.5)
        )
        summed = cluster.materialize_sum()
        np.testing.assert_allclose(summed, low_rank_matrix, atol=1e-8)
        np.testing.assert_allclose(
            cluster.materialize_global(), np.clip(low_rank_matrix, -0.5, 0.5), atol=1e-8
        )

    def test_materialization_cached(self, identity_cluster):
        first = identity_cluster.materialize_global()
        second = identity_cluster.materialize_global()
        assert first is second

    def test_materialization_not_charged(self, identity_cluster):
        before = identity_cluster.network.total_words
        identity_cluster.materialize_global()
        assert identity_cluster.network.total_words == before


class TestAggregateRows:
    def test_values_match_global(self, identity_cluster, low_rank_matrix):
        rows = identity_cluster.aggregate_rows([0, 5, 5, 17])
        np.testing.assert_allclose(rows, low_rank_matrix[[0, 5, 5, 17]], atol=1e-8)

    def test_function_applied(self, low_rank_matrix):
        cluster = LocalCluster(
            arbitrary_partition(low_rank_matrix, 3, seed=1), HuberPsi(0.3)
        )
        rows = cluster.aggregate_rows([2, 4])
        np.testing.assert_allclose(rows, np.clip(low_rank_matrix[[2, 4]], -0.3, 0.3), atol=1e-8)

    def test_function_skipped_when_requested(self, low_rank_matrix):
        cluster = LocalCluster(
            arbitrary_partition(low_rank_matrix, 3, seed=1), HuberPsi(0.3)
        )
        rows = cluster.aggregate_rows([2, 4], apply_function=False)
        np.testing.assert_allclose(rows, low_rank_matrix[[2, 4]], atol=1e-8)

    def test_communication_charged(self, identity_cluster, low_rank_matrix):
        before = identity_cluster.network.total_words
        identity_cluster.aggregate_rows([1, 2, 3])
        used = identity_cluster.network.total_words - before
        # 3 workers (CP is free) x 3 rows x d words.
        assert used == 3 * 3 * low_rank_matrix.shape[1]

    def test_sparse_cluster_cheaper(self, sparse_cluster):
        before = sparse_cluster.network.total_words
        sparse_cluster.aggregate_rows([1, 2, 3])
        used = sparse_cluster.network.total_words - before
        # Dense rows are shipped even for sparse locals (the gather payload is
        # a dense row block), so the cost matches the dense case.
        assert used == 3 * 3 * sparse_cluster.num_columns

    def test_invalid_indices_shape(self, identity_cluster):
        with pytest.raises(ValueError):
            identity_cluster.aggregate_rows([[1, 2]])


class TestAggregateEntries:
    def test_values_match_global(self, identity_cluster, low_rank_matrix):
        flat = [0, 13, 77]
        values = identity_cluster.aggregate_entries(flat)
        np.testing.assert_allclose(values, low_rank_matrix.ravel()[flat], atol=1e-8)

    def test_communication_charged(self, identity_cluster):
        before = identity_cluster.network.total_words
        identity_cluster.aggregate_entries([0, 1, 2, 3])
        assert identity_cluster.network.total_words - before == 3 * 4


class TestDerivedClusters:
    def test_transform_locally(self, low_rank_matrix):
        cluster = LocalCluster(arbitrary_partition(low_rank_matrix, 3, seed=1))
        doubled = cluster.transform_locally(lambda x: 2 * x)
        np.testing.assert_allclose(
            doubled.materialize_sum(), 2 * low_rank_matrix, atol=1e-8
        )

    def test_transform_shares_network(self, identity_cluster):
        derived = identity_cluster.transform_locally(lambda x: x)
        assert derived.network is identity_cluster.network

    def test_with_function(self, identity_cluster, low_rank_matrix):
        clipped = identity_cluster.with_function(HuberPsi(0.2))
        np.testing.assert_allclose(
            clipped.materialize_global(), np.clip(low_rank_matrix, -0.2, 0.2), atol=1e-8
        )

    def test_with_function_shares_network(self, identity_cluster):
        derived = identity_cluster.with_function(Identity())
        assert derived.network is identity_cluster.network

    def test_gather_from_servers_charges_workers_only(self, identity_cluster):
        before = identity_cluster.network.total_words
        payloads = identity_cluster.gather_from_servers(
            lambda server: np.zeros(5), tag="test"
        )
        assert len(payloads) == 4
        assert identity_cluster.network.total_words - before == 3 * 5

    def test_broadcast_from_coordinator(self, identity_cluster):
        before = identity_cluster.network.total_words
        identity_cluster.broadcast_from_coordinator(np.zeros(7), tag="bcast")
        assert identity_cluster.network.total_words - before == 3 * 7
