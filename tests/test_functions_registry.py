"""Tests for the entrywise-function registry."""

import pytest

from repro.functions import available_functions, make_function
from repro.functions.base import EntrywiseFunction
from repro.functions.mestimators import HuberPsi
from repro.functions.registry import register_function
from repro.functions.softmax import GeneralizedMeanFunction


class TestMakeFunction:
    def test_all_registered_names_instantiable(self):
        defaults = {"abs_power": {"exponent": 2.0},
                    "signed_power": {"exponent": 2.0},
                    "generalized_mean": {"p": 2.0},
                    "softmax": {"p": 2.0}}
        for name in available_functions():
            fn = make_function(name, **defaults.get(name, {}))
            assert isinstance(fn, EntrywiseFunction)

    def test_case_insensitive(self):
        assert isinstance(make_function("HUBER"), HuberPsi)

    def test_kwargs_forwarded(self):
        fn = make_function("huber", threshold=4.5)
        assert fn.threshold == 4.5

    def test_softmax_alias(self):
        fn = make_function("softmax", p=5.0)
        assert isinstance(fn, GeneralizedMeanFunction)
        assert fn.p == 5.0

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown"):
            make_function("does_not_exist")


class TestRegisterFunction:
    def test_register_and_use(self):
        class Cubed(EntrywiseFunction):
            name = "cubed_test_fn"

            def apply(self, x):
                return x**3

        register_function("cubed_test_fn", Cubed)
        assert "cubed_test_fn" in available_functions()
        assert isinstance(make_function("cubed_test_fn"), Cubed)

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError):
            register_function("huber", HuberPsi)
