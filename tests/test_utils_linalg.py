"""Tests for repro.utils.linalg."""

import numpy as np
import pytest

from repro.utils.linalg import (
    best_rank_k,
    best_rank_k_error,
    column_space_projector,
    frobenius_norm_squared,
    gram_difference_norm,
    is_projection_matrix,
    orthonormal_columns,
    projection_from_basis,
    projection_rank,
    row_norms_squared,
    scaled_row_sample_matrix,
    spectral_norm,
    svd_rank_k_projection,
    top_k_right_singular_vectors,
)


class TestNorms:
    def test_frobenius_matches_numpy(self, small_matrix):
        assert frobenius_norm_squared(small_matrix) == pytest.approx(
            np.linalg.norm(small_matrix, "fro") ** 2
        )

    def test_frobenius_zero_matrix(self):
        assert frobenius_norm_squared(np.zeros((3, 4))) == 0.0

    def test_row_norms_sum_to_frobenius(self, small_matrix):
        assert row_norms_squared(small_matrix).sum() == pytest.approx(
            frobenius_norm_squared(small_matrix)
        )

    def test_row_norms_shape(self, small_matrix):
        assert row_norms_squared(small_matrix).shape == (small_matrix.shape[0],)

    def test_row_norms_rejects_vector(self):
        with pytest.raises(ValueError):
            row_norms_squared(np.ones(5))

    def test_spectral_norm_of_identity(self):
        assert spectral_norm(np.eye(4)) == pytest.approx(1.0)

    def test_spectral_le_frobenius(self, small_matrix):
        assert spectral_norm(small_matrix) <= np.sqrt(frobenius_norm_squared(small_matrix)) + 1e-9


class TestTopKSingularVectors:
    def test_orthonormal(self, low_rank_matrix):
        v = top_k_right_singular_vectors(low_rank_matrix, 5)
        assert orthonormal_columns(v)

    def test_shape(self, low_rank_matrix):
        v = top_k_right_singular_vectors(low_rank_matrix, 3)
        assert v.shape == (low_rank_matrix.shape[1], 3)

    def test_k_too_large_raises(self, small_matrix):
        with pytest.raises(ValueError):
            top_k_right_singular_vectors(small_matrix, small_matrix.shape[1] + 1)

    def test_captures_dominant_direction(self):
        rng = np.random.default_rng(0)
        direction = rng.normal(size=10)
        direction /= np.linalg.norm(direction)
        data = np.outer(rng.normal(size=50), direction)
        v = top_k_right_singular_vectors(data, 1)
        assert abs(float(v[:, 0] @ direction)) == pytest.approx(1.0, abs=1e-8)


class TestProjection:
    def test_projection_from_basis_is_projection(self, low_rank_matrix):
        v = top_k_right_singular_vectors(low_rank_matrix, 4)
        p = projection_from_basis(v)
        assert is_projection_matrix(p)

    def test_projection_rank_equals_k(self, low_rank_matrix):
        v, p = svd_rank_k_projection(low_rank_matrix, 4)
        assert projection_rank(p) == 4
        assert v.shape[1] == 4

    def test_is_projection_rejects_non_square(self):
        assert not is_projection_matrix(np.ones((2, 3)))

    def test_is_projection_rejects_non_idempotent(self):
        assert not is_projection_matrix(2 * np.eye(3))

    def test_identity_is_projection(self):
        assert is_projection_matrix(np.eye(5))

    def test_column_space_projector(self, small_matrix):
        p = column_space_projector(small_matrix[:, :3])
        assert is_projection_matrix(p)
        # It must fix the columns it was built from.
        np.testing.assert_allclose(p @ small_matrix[:, :3], small_matrix[:, :3], atol=1e-8)


class TestBestRankK:
    def test_exact_for_low_rank(self, rng):
        exact = rng.normal(size=(30, 4)) @ rng.normal(size=(4, 20))
        approx = best_rank_k(exact, 4)
        np.testing.assert_allclose(approx, exact, atol=1e-8)

    def test_error_matches_singular_values(self, small_matrix):
        s = np.linalg.svd(small_matrix, compute_uv=False)
        for k in (1, 3, 5):
            assert best_rank_k_error(small_matrix, k) == pytest.approx(np.sum(s[k:] ** 2))

    def test_error_zero_when_k_exceeds_rank(self, rng):
        exact = rng.normal(size=(20, 3)) @ rng.normal(size=(3, 10))
        assert best_rank_k_error(exact, 9) == pytest.approx(0.0, abs=1e-8)

    def test_best_rank_k_is_optimal(self, low_rank_matrix):
        """No projection of the same rank does better (Eckart-Young)."""
        k = 3
        optimal = best_rank_k_error(low_rank_matrix, k)
        rng = np.random.default_rng(5)
        random_basis, _ = np.linalg.qr(rng.normal(size=(low_rank_matrix.shape[1], k)))
        random_proj = random_basis @ random_basis.T
        random_error = frobenius_norm_squared(low_rank_matrix - low_rank_matrix @ random_proj)
        assert optimal <= random_error + 1e-9


class TestScaledRowSampleMatrix:
    def test_scaling(self):
        rows = np.array([[2.0, 0.0], [0.0, 3.0]])
        probs = np.array([0.5, 0.25])
        b = scaled_row_sample_matrix(rows, probs)
        np.testing.assert_allclose(b[0], rows[0] / np.sqrt(2 * 0.5))
        np.testing.assert_allclose(b[1], rows[1] / np.sqrt(2 * 0.25))

    def test_unbiased_gram_estimate(self, low_rank_matrix, rng):
        """E[B^T B] ~ A^T A when rows are drawn with the reported probabilities."""
        norms = row_norms_squared(low_rank_matrix)
        probs = norms / norms.sum()
        estimates = []
        for seed in range(30):
            local_rng = np.random.default_rng(seed)
            idx = local_rng.choice(low_rank_matrix.shape[0], size=200, p=probs)
            b = scaled_row_sample_matrix(low_rank_matrix[idx], probs[idx])
            estimates.append(b.T @ b)
        mean_estimate = np.mean(estimates, axis=0)
        target = low_rank_matrix.T @ low_rank_matrix
        assert np.linalg.norm(mean_estimate - target, "fro") / np.linalg.norm(target, "fro") < 0.1

    def test_zero_probability_raises(self):
        with pytest.raises(ValueError):
            scaled_row_sample_matrix(np.ones((2, 2)), np.array([0.0, 1.0]))

    def test_wrong_length_raises(self):
        with pytest.raises(ValueError):
            scaled_row_sample_matrix(np.ones((2, 2)), np.array([1.0]))


class TestGramDifference:
    def test_zero_for_identical(self, small_matrix):
        assert gram_difference_norm(small_matrix, small_matrix) == pytest.approx(0.0)

    def test_positive_for_different(self, small_matrix):
        other = small_matrix + 1.0
        assert gram_difference_norm(small_matrix, other) > 0

    def test_column_mismatch_raises(self):
        with pytest.raises(ValueError):
            gram_difference_norm(np.ones((2, 3)), np.ones((2, 4)))
