"""End-to-end integration tests: the paper's three applications at small scale.

Each test runs the complete pipeline -- dataset generation, partitioning /
local transformation, distributed sampling, Algorithm 1, evaluation against
the centrally materialised global matrix -- and asserts the qualitative
claims of the evaluation section.
"""

import numpy as np
import pytest

from repro.core import DistributedPCA, ExactNormSampler, GeneralizedZRowSampler
from repro.core.errors import predicted_additive_error
from repro.datasets import (
    caltech_like_patch_codes,
    forest_cover_like,
    inject_outliers,
    isolet_like,
    pnorm_pooling_cluster,
)
from repro.distributed import LocalCluster, entrywise_partition, row_partition
from repro.functions import HuberPsi
from repro.kernels import RandomFourierFeatures, distributed_rff_cluster
from repro.sketch.z_heavy_hitters import ZHeavyHittersParams
from repro.sketch.z_sampler import ZSamplerConfig
from repro.utils.linalg import best_rank_k, frobenius_norm_squared


def z_config():
    return ZSamplerConfig(
        hh_params=ZHeavyHittersParams(b=8, repetitions=1, num_buckets=8),
        max_levels=8,
        min_level_count=2,
    )


class TestRFFApplication:
    """Section VI-A / Figure 1 panels 1-2 at miniature scale."""

    @pytest.fixture(scope="class")
    def rff_cluster(self):
        raw = forest_cover_like(num_rows=600, seed=0)
        raw_locals = [np.asarray(m.todense()) for m in row_partition(raw, 8, seed=1)]
        features = RandomFourierFeatures(raw.shape[1], 64, bandwidth=1.5, seed=2)
        return distributed_rff_cluster(raw_locals, features)

    def test_additive_error_small_and_below_prediction(self, rff_cluster):
        k, r = 6, 200
        result = DistributedPCA(k=k, num_samples=r, seed=3).fit(rff_cluster)
        report = result.evaluate(rff_cluster.materialize_global())
        assert report["additive_error"] < 0.1
        assert report["additive_error"] < predicted_additive_error(k, r)

    def test_communication_is_sublinear_in_input(self, rff_cluster):
        result = DistributedPCA(k=6, num_samples=120, seed=4).fit(rff_cluster)
        assert result.communication_ratio < 0.5

    def test_relative_error_close_to_one(self, rff_cluster):
        result = DistributedPCA(k=3, num_samples=250, seed=5).fit(rff_cluster)
        report = result.evaluate(rff_cluster.materialize_global())
        assert report["relative_error"] < 1.2


class TestPoolingApplication:
    """Section VI-B / Figure 1 Caltech & Scenes panels at miniature scale."""

    @pytest.fixture(scope="class")
    def patch_codes(self):
        return caltech_like_patch_codes(num_images=150, num_servers=8, seed=0)

    @pytest.mark.parametrize("p", [1.0, 2.0, 20.0])
    def test_pnorm_pooling_pca(self, patch_codes, p):
        cluster = pnorm_pooling_cluster(patch_codes, p)
        sampler = GeneralizedZRowSampler(config=z_config())
        result = DistributedPCA(k=6, num_samples=60, sampler=sampler, seed=1).fit(cluster)
        report = result.evaluate(cluster.materialize_global())
        assert report["additive_error"] < 0.3
        assert result.is_valid_projection()

    def test_z_sampler_competitive_with_oracle(self, patch_codes):
        """The distributed sampler should land within a modest factor of the
        exact-norm oracle on the same workload."""
        cluster = pnorm_pooling_cluster(patch_codes, 2.0)
        global_matrix = cluster.materialize_global()
        oracle = DistributedPCA(
            k=6, num_samples=60, sampler=ExactNormSampler(), seed=2
        ).fit(cluster)
        distributed = DistributedPCA(
            k=6, num_samples=60, sampler=GeneralizedZRowSampler(config=z_config()), seed=2
        ).fit(cluster)
        oracle_error = oracle.evaluate(global_matrix)["additive_error"]
        distributed_error = distributed.evaluate(global_matrix)["additive_error"]
        assert distributed_error < oracle_error + 0.15


class TestRobustPCAApplication:
    """Section VI-C / Figure 1 isolet panel at miniature scale."""

    @pytest.fixture(scope="class")
    def corrupted_setup(self):
        clean = isolet_like(num_rows=300, num_features=80, seed=0)
        corrupted, positions = inject_outliers(clean, 30, magnitude=1e4, seed=1)
        locals_ = entrywise_partition(corrupted, 6, seed=2)
        threshold = 3.0 * float(np.std(clean))
        return clean, corrupted, locals_, threshold

    def test_huber_pca_recovers_clean_subspace(self, corrupted_setup):
        clean, corrupted, locals_, threshold = corrupted_setup
        k = 6

        def captured_clean_energy(projection):
            return frobenius_norm_squared(clean @ projection) / frobenius_norm_squared(
                best_rank_k(clean, k)
            )

        robust_cluster = LocalCluster(locals_, HuberPsi(threshold))
        robust = DistributedPCA(
            k=k, num_samples=150, sampler=GeneralizedZRowSampler(config=z_config()), seed=3
        ).fit(robust_cluster)

        naive_cluster = LocalCluster(locals_)
        naive = DistributedPCA(
            k=k, num_samples=150, sampler=ExactNormSampler(), seed=3
        ).fit(naive_cluster)

        assert captured_clean_energy(robust.projection) > captured_clean_energy(naive.projection)
        assert captured_clean_energy(robust.projection) > 0.5

    def test_huber_threshold_caps_global_matrix(self, corrupted_setup):
        _, corrupted, locals_, threshold = corrupted_setup
        cluster = LocalCluster(locals_, HuberPsi(threshold))
        assert np.max(np.abs(cluster.materialize_global())) <= threshold + 1e-9

    def test_additive_error_against_psi_matrix(self, corrupted_setup):
        _, _, locals_, threshold = corrupted_setup
        cluster = LocalCluster(locals_, HuberPsi(threshold))
        result = DistributedPCA(
            k=6, num_samples=150, sampler=GeneralizedZRowSampler(config=z_config()), seed=4
        ).fit(cluster)
        report = result.evaluate(cluster.materialize_global())
        assert report["additive_error"] < 0.25


class TestHospitalScenario:
    """The paper's motivating example: per-hospital partial records aggregated
    by softmax across servers."""

    def test_gm_cluster_pca_close_to_pca_of_true_records(self, rng):
        from repro.distributed import duplicate_records_partition
        from repro.functions import GeneralizedMeanFunction

        truth = np.abs(rng.normal(size=(200, 30))) + 0.1
        truth[:, :5] *= 6.0  # a few dominant indicators
        locals_ = duplicate_records_partition(truth, 5, seed=0, noise_scale=0.05)
        fn = GeneralizedMeanFunction(20.0)
        cluster = fn.build_cluster(locals_)
        result = DistributedPCA(
            k=5,
            num_samples=120,
            sampler=GeneralizedZRowSampler(config=z_config()),
            seed=1,
        ).fit(cluster)
        # The projection learned from the softmax aggregation captures most of
        # the energy of the *true* records.
        captured = frobenius_norm_squared(truth @ result.projection)
        optimal = frobenius_norm_squared(best_rank_k(truth, 5))
        assert captured / optimal > 0.8
