"""Property-based tests (hypothesis) for the core invariants of the library."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.errors import additive_error, relative_error
from repro.distributed.message import payload_word_count
from repro.distributed.network import Network
from repro.distributed.partition import (
    arbitrary_partition,
    entrywise_partition,
    exact_split_check,
    row_partition,
)
from repro.functions import FairPsi, HuberPsi, L1L2Psi, generalized_mean
from repro.sketch import engine
from repro.sketch.countsketch import CountSketch
from repro.sketch.hashing import (
    MERSENNE_PRIME,
    KWiseHash,
    PairwiseHash,
    SignHash,
    SubsampleHash,
    _mersenne_exact,
    _mersenne_fold,
    _polynomial_hash,
    gathered_polynomial_hash,
    stacked_polynomial_hash,
)
from repro.utils.linalg import (
    best_rank_k_error,
    frobenius_norm_squared,
    is_projection_matrix,
    projection_from_basis,
    row_norms_squared,
    svd_rank_k_projection,
    top_k_right_singular_vectors,
)

# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
finite_floats = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False, width=64
)


def small_matrices(min_rows=2, max_rows=12, min_cols=2, max_cols=8):
    return st.tuples(
        st.integers(min_rows, max_rows), st.integers(min_cols, max_cols)
    ).flatmap(lambda shape: arrays(np.float64, shape, elements=finite_floats))


small_vectors = st.lists(finite_floats, min_size=1, max_size=40).map(np.array)


# --------------------------------------------------------------------------- #
# linear algebra invariants
# --------------------------------------------------------------------------- #
class TestLinalgProperties:
    @given(small_matrices())
    @settings(max_examples=40, deadline=None)
    def test_row_norms_sum_to_frobenius(self, matrix):
        assert np.isclose(
            row_norms_squared(matrix).sum(), frobenius_norm_squared(matrix), rtol=1e-9, atol=1e-6
        )

    @given(small_matrices(min_rows=3, min_cols=3), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_svd_projection_is_projection_of_rank_k(self, matrix, k):
        k = min(k, min(matrix.shape))
        basis, projection = svd_rank_k_projection(matrix, k)
        assert is_projection_matrix(projection, atol=1e-6)
        assert basis.shape == (matrix.shape[1], k)

    @given(small_matrices(min_rows=4, min_cols=4), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_best_rank_k_error_decreases_in_k(self, matrix, k):
        k = min(k, min(matrix.shape) - 1)
        assert best_rank_k_error(matrix, k + 1) <= best_rank_k_error(matrix, k) + 1e-8

    @given(small_matrices(min_rows=4, min_cols=4), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_projection_never_increases_frobenius_norm(self, matrix, k):
        k = min(k, matrix.shape[1])
        v = top_k_right_singular_vectors(matrix, k)
        projected = matrix @ projection_from_basis(v)
        total = frobenius_norm_squared(matrix)
        assert frobenius_norm_squared(projected) <= total * (1 + 1e-9) + 1e-6

    @given(small_matrices(min_rows=4, min_cols=4), st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_matrix_pythagorean_theorem(self, matrix, k):
        """||A||_F^2 = ||AP||_F^2 + ||A - AP||_F^2 for any projection P."""
        k = min(k, matrix.shape[1])
        _, projection = svd_rank_k_projection(matrix, k)
        total = frobenius_norm_squared(matrix)
        captured = frobenius_norm_squared(matrix @ projection)
        residual = frobenius_norm_squared(matrix - matrix @ projection)
        assert np.isclose(total, captured + residual, rtol=1e-6, atol=1e-4)

    @given(small_matrices(min_rows=4, min_cols=4), st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_error_metrics_bounds(self, matrix, k):
        if frobenius_norm_squared(matrix) < 1e-12:
            return
        k = min(k, min(matrix.shape))
        _, projection = svd_rank_k_projection(matrix, k)
        assert additive_error(matrix, projection, k) <= 1e-6
        rel = relative_error(matrix, projection, k)
        assert rel == 1.0 or np.isclose(rel, 1.0, rtol=1e-6) or rel == float("inf")


# --------------------------------------------------------------------------- #
# partition invariants
# --------------------------------------------------------------------------- #
class TestPartitionProperties:
    @given(small_matrices(min_rows=3, min_cols=3), st.integers(1, 6), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_partition_sums_exactly(self, matrix, servers, seed):
        locals_ = arbitrary_partition(matrix, servers, seed=seed)
        assert len(locals_) == servers
        assert exact_split_check(matrix, locals_, atol=1e-6)

    @given(small_matrices(min_rows=3, min_cols=3), st.integers(1, 6), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_row_partition_sums_exactly(self, matrix, servers, seed):
        locals_ = row_partition(matrix, servers, seed=seed)
        assert exact_split_check(matrix, locals_, atol=1e-8)

    @given(small_matrices(min_rows=3, min_cols=3), st.integers(1, 6), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_entrywise_partition_sums_exactly(self, matrix, servers, seed):
        locals_ = entrywise_partition(matrix, servers, seed=seed)
        assert exact_split_check(matrix, locals_, atol=1e-8)


# --------------------------------------------------------------------------- #
# entrywise function invariants
# --------------------------------------------------------------------------- #
class TestFunctionProperties:
    @given(small_vectors, st.floats(0.1, 10.0))
    @settings(max_examples=50, deadline=None)
    def test_huber_is_bounded_and_odd(self, values, threshold):
        fn = HuberPsi(threshold)
        out = fn(values)
        assert np.all(np.abs(out) <= threshold + 1e-12)
        np.testing.assert_allclose(fn(-values), -out, atol=1e-9)

    @given(small_vectors)
    @settings(max_examples=50, deadline=None)
    def test_l1l2_bounded_by_sqrt2(self, values):
        out = L1L2Psi()(values)
        assert np.all(np.abs(out) < np.sqrt(2) + 1e-9)

    @given(small_vectors, st.floats(0.1, 10.0))
    @settings(max_examples=50, deadline=None)
    def test_fair_bounded_by_scale(self, values, scale):
        out = FairPsi(scale)(values)
        assert np.all(np.abs(out) <= scale + 1e-9)

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(2, 6), st.integers(1, 10)),
            elements=st.floats(0.0, 100.0, allow_nan=False),
        ),
        st.floats(1.0, 30.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_generalized_mean_between_mean_and_max(self, values, p):
        gm = generalized_mean(values, p, axis=0)
        mean = np.mean(values, axis=0)
        maximum = np.max(values, axis=0)
        assert np.all(gm >= mean - 1e-8)
        assert np.all(gm <= maximum + 1e-8)

    @given(small_vectors, st.floats(0.1, 10.0))
    @settings(max_examples=50, deadline=None)
    def test_psi_functions_shrink_magnitude(self, values, parameter):
        """Every Table-I psi satisfies |psi(x)| <= |x| (influence capping)."""
        for fn in (HuberPsi(parameter), L1L2Psi(), FairPsi(parameter)):
            assert np.all(np.abs(fn(values)) <= np.abs(values) + 1e-9)


# --------------------------------------------------------------------------- #
# sketching invariants
# --------------------------------------------------------------------------- #
class TestSketchProperties:
    @given(
        st.lists(finite_floats, min_size=4, max_size=64),
        st.lists(finite_floats, min_size=4, max_size=64),
        st.integers(0, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_countsketch_linearity(self, u_values, v_values, seed):
        size = min(len(u_values), len(v_values))
        u = np.array(u_values[:size])
        v = np.array(v_values[:size])
        sketch = CountSketch(depth=3, width=16, domain=size, seed=seed)
        np.testing.assert_allclose(
            sketch.sketch_dense(u + v),
            sketch.sketch_dense(u) + sketch.sketch_dense(v),
            rtol=1e-9,
            atol=1e-6,
        )

    @given(st.integers(1, 5), st.integers(2, 64), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_kwise_hash_range(self, independence, range_size, seed):
        h = KWiseHash(independence, range_size, seed=seed)
        values = h(np.arange(200))
        assert values.min() >= 0
        assert values.max() < range_size

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_countsketch_f2_nonnegative(self, seed):
        sketch = CountSketch(depth=3, width=8, domain=32, seed=seed)
        rng = np.random.default_rng(seed)
        table = sketch.sketch_dense(rng.normal(size=32))
        assert sketch.f2_estimate(table) >= 0


# --------------------------------------------------------------------------- #
# Mersenne-fold hash family invariants
# --------------------------------------------------------------------------- #
class TestMersenneHashFamilyProperties:
    """Range bounds, fold congruences, stacked/scalar agreement and
    pairwise-independence empirics of the ``GF(2^31 - 1)`` hash substrate."""

    @given(
        st.lists(st.integers(0, 2**63 - 1), min_size=1, max_size=64),
    )
    @settings(max_examples=50, deadline=None)
    def test_mersenne_fold_is_congruent_and_bounded(self, raw_values):
        values = np.array(raw_values, dtype=np.uint64)
        folded = _mersenne_fold(values)
        assert np.all(folded <= np.uint64(MERSENNE_PRIME + 8))
        np.testing.assert_array_equal(
            folded % np.uint64(MERSENNE_PRIME), values % np.uint64(MERSENNE_PRIME)
        )
        exact = _mersenne_exact(_mersenne_fold(values))
        assert np.all(exact < np.uint64(MERSENNE_PRIME))
        np.testing.assert_array_equal(exact, values % np.uint64(MERSENNE_PRIME))

    @given(
        st.lists(st.integers(0, 2**31 - 2), min_size=1, max_size=40),
        st.integers(1, 6),
        st.integers(1, 6),
        st.integers(0, 2**32),
    )
    @settings(max_examples=40, deadline=None)
    def test_stacked_agrees_with_scalar_evaluation(
        self, raw_keys, num_hashes, degree_plus_one, seed
    ):
        """One stacked Horner pass == per-polynomial %-division evaluation."""
        keys = np.array(raw_keys, dtype=np.int64)
        rng = np.random.default_rng(seed)
        coeffs = rng.integers(
            0, MERSENNE_PRIME, size=(num_hashes, degree_plus_one), dtype=np.int64
        )
        reference = np.stack([_polynomial_hash(keys, c) for c in coeffs])
        np.testing.assert_array_equal(
            stacked_polynomial_hash(keys, coeffs), reference
        )

    @given(
        st.lists(st.integers(0, 2**31 - 2), min_size=1, max_size=24),
        st.integers(2, 5),
        st.integers(0, 2**32),
    )
    @settings(max_examples=30, deadline=None)
    def test_gathered_agrees_with_selected_family(self, raw_keys, families, seed):
        """Per-key family gather == evaluating each key's own family alone."""
        keys = np.array(raw_keys, dtype=np.int64)
        rng = np.random.default_rng(seed)
        coeffs = rng.integers(
            0, MERSENNE_PRIME, size=(families, 3, 4), dtype=np.int64
        )
        selector = rng.integers(0, families, size=keys.size)
        gathered = gathered_polynomial_hash(keys, coeffs, selector)
        for family in range(families):
            member = selector == family
            if not member.any():
                continue
            np.testing.assert_array_equal(
                gathered[:, member],
                stacked_polynomial_hash(keys[member], coeffs[family]),
            )

    @given(
        st.integers(1, 6),
        st.sampled_from([2, 3, 8, 100, 1024, 12345]),
        st.integers(0, 2**32),
        st.lists(st.integers(0, 2**31 - 2), min_size=1, max_size=32),
    )
    @settings(max_examples=40, deadline=None)
    def test_kwise_hash_outputs_bounded_under_both_engines(
        self, independence, range_size, seed, raw_keys
    ):
        keys = np.array(raw_keys, dtype=np.int64)
        hash_fn = KWiseHash(independence, range_size, seed=seed)
        fused = hash_fn(keys)
        assert fused.min() >= 0 and fused.max() < range_size
        with engine.naive_reference():
            naive = hash_fn(keys)
        np.testing.assert_array_equal(fused, naive)

    @given(st.integers(0, 2**31 - 2), st.integers(0, 2**31 - 2))
    @settings(max_examples=25, deadline=None, derandomize=True)
    def test_pairwise_independence_collision_empirics(self, x, y):
        """Over a family of seeded pairwise hashes, any two distinct keys
        collide with frequency ~ 1/m (here m=8; 256 seeds, ~5 sigma slack).

        Derandomised so the empirical counts are fully deterministic.
        """
        if x == y:
            y = (y + 1) % (2**31 - 2)
        keys = np.array([x, y], dtype=np.int64)
        range_size = 8
        collisions = 0
        for seed in range(256):
            out = PairwiseHash(range_size, seed=seed)(keys)
            collisions += int(out[0] == out[1])
        frequency = collisions / 256
        assert abs(frequency - 1.0 / range_size) < 0.11

    @given(st.integers(0, 2**31 - 2))
    @settings(max_examples=25, deadline=None, derandomize=True)
    def test_sign_hash_is_balanced_over_the_family(self, key):
        """sigma(key) in {-1, +1}, with mean ~ 0 across 256 seeded hashes."""
        keys = np.array([key], dtype=np.int64)
        total = 0
        for seed in range(256):
            sign = int(SignHash(seed=seed)(keys)[0])
            assert sign in (-1, 1)
            total += sign
        assert abs(total) / 256 < 0.2

    @given(st.integers(1, 30), st.integers(0, 2**32))
    @settings(max_examples=30, deadline=None)
    def test_subsample_levels_nest(self, level, seed):
        """Level j+1 survivors are a subset of level j survivors."""
        subsample = SubsampleHash(domain_scale=4096, seed=seed)
        keys = np.arange(512, dtype=np.int64)
        level = min(level, 12)
        outer = subsample.level_predicate(level)(keys)
        inner = subsample.level_predicate(level + 1)(keys)
        assert np.all(outer[inner])


# --------------------------------------------------------------------------- #
# communication accounting invariants
# --------------------------------------------------------------------------- #
class TestNetworkProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 50)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_total_words_is_sum_of_messages(self, transfers):
        net = Network(4)
        expected = 0
        for sender, receiver, size in transfers:
            net.send(sender, receiver, np.zeros(size))
            if sender != receiver:
                expected += size
        assert net.total_words == expected

    @given(st.lists(st.one_of(st.floats(allow_nan=False, allow_infinity=False),
                              st.integers(-1000, 1000)), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_payload_word_count_nonnegative_and_additive(self, items):
        total = payload_word_count(items)
        assert total == sum(payload_word_count(item) for item in items)
        assert total >= 0
