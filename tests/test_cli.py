"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure1_defaults(self):
        args = build_parser().parse_args(["figure1"])
        assert args.scale == "small"
        assert args.trials == 1
        assert args.panels is None

    def test_figure_panel_and_k_arguments(self):
        args = build_parser().parse_args(
            ["figure2", "--panels", "forest_cover", "isolet", "--k", "3", "9"]
        )
        assert args.panels == ["forest_cover", "isolet"]
        assert args.k == [3, 9]

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure1", "--scale", "enormous"])


class TestCommands:
    def test_list_panels(self, capsys):
        assert main(["list-panels"]) == 0
        out = capsys.readouterr().out
        assert "forest_cover" in out
        assert "isolet" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "huber" in out

    def test_lowerbounds(self, capsys):
        assert main(["lowerbounds", "--trials", "4"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 8" in out
        assert "Theorem 6" in out
        assert "Theorem 4" in out

    def test_figure1_single_panel(self, capsys, tmp_path):
        csv_path = tmp_path / "points.csv"
        exit_code = main(
            [
                "figure1",
                "--panels",
                "forest_cover",
                "--k",
                "3",
                "6",
                "--csv",
                str(csv_path),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Figure 1 panel: ForestCover" in out
        assert "prediction" in out
        assert csv_path.exists()
        assert csv_path.read_text().startswith("panel,")

    def test_figure2_single_panel(self, capsys):
        assert main(["figure2", "--panels", "forest_cover", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2 panel: ForestCover" in out
        assert "relative error" in out
