"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure1_defaults(self):
        args = build_parser().parse_args(["figure1"])
        assert args.scale == "small"
        assert args.trials == 1
        assert args.panels is None

    def test_figure_panel_and_k_arguments(self):
        args = build_parser().parse_args(
            ["figure2", "--panels", "forest_cover", "isolet", "--k", "3", "9"]
        )
        assert args.panels == ["forest_cover", "isolet"]
        assert args.k == [3, 9]

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure1", "--scale", "enormous"])

    def test_backend_flag_parses(self):
        args = build_parser().parse_args(["figure1", "--backend", "mp"])
        assert args.backend == "mp"
        assert build_parser().parse_args(["figure2"]).backend is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure1", "--backend", "smoke-signals"])


class TestCommands:
    def test_list_panels(self, capsys):
        assert main(["list-panels"]) == 0
        out = capsys.readouterr().out
        assert "forest_cover" in out
        assert "isolet" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "huber" in out

    def test_lowerbounds(self, capsys):
        assert main(["lowerbounds", "--trials", "4"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 8" in out
        assert "Theorem 6" in out
        assert "Theorem 4" in out

    def test_figure1_single_panel(self, capsys, tmp_path):
        csv_path = tmp_path / "points.csv"
        exit_code = main(
            [
                "figure1",
                "--panels",
                "forest_cover",
                "--k",
                "3",
                "6",
                "--csv",
                str(csv_path),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Figure 1 panel: ForestCover" in out
        assert "prediction" in out
        assert csv_path.exists()
        assert csv_path.read_text().startswith("panel,")

    def test_figure2_single_panel(self, capsys):
        assert main(["figure2", "--panels", "forest_cover", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2 panel: ForestCover" in out
        assert "relative error" in out

    def test_figure1_backend_selection_is_bit_identical(self, capsys):
        """--backend loopback runs the Z-sampling phase over the runtime
        services; the regenerated panel must match the default exactly."""
        argv = ["figure1", "--panels", "caltech_p2", "--k", "3"]
        assert main(argv) == 0
        default_out = capsys.readouterr().out
        assert main(argv + ["--backend", "loopback"]) == 0
        loopback_out = capsys.readouterr().out
        assert loopback_out == default_out


class TestRuntimeCommands:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--server", "1"])
        assert args.server == 1
        assert args.num_servers == 4
        assert args.port == 0

    def test_submit_parser(self):
        args = build_parser().parse_args(
            ["submit", "--workers", "h:1", "h:2", "h:3", "--draws", "5"]
        )
        assert args.workers == ["h:1", "h:2", "h:3"]
        assert args.draws == 5
        assert args.function == "identity"

    def test_concurrency_knobs_parse(self):
        serve_args = build_parser().parse_args(["serve", "--server", "2"])
        assert serve_args.concurrency == 8  # requests served in parallel
        submit_args = build_parser().parse_args(
            ["submit", "--workers", "h:1", "h:2", "h:3",
             "--concurrency", "1", "--timeout", "5.5", "--retries", "2"]
        )
        assert submit_args.concurrency == 1
        assert submit_args.timeout == 5.5
        assert submit_args.retries == 2
        # Default: pipeline over all workers.
        assert (
            build_parser().parse_args(["submit", "--workers", "h:1"]).concurrency
            is None
        )

    def test_serve_rejects_coordinator_index(self):
        with pytest.raises(SystemExit):
            main(["serve", "--server", "0"])

    def test_submit_rejects_wrong_worker_count(self):
        with pytest.raises(SystemExit):
            main(["submit", "--workers", "h:1", "--num-servers", "4"])

    def test_telemetry_flags_parse(self):
        args = build_parser().parse_args(
            ["submit", "--transport", "loopback",
             "--trace", "t.json", "--metrics", "m.txt",
             "--metrics-format", "text"]
        )
        assert args.transport == "loopback"
        assert args.trace == "t.json"
        assert args.metrics == "m.txt"
        assert args.metrics_format == "text"
        # Defaults: tcp transport, no telemetry exports.
        default = build_parser().parse_args(["submit", "--workers", "h:1"])
        assert default.transport == "tcp"
        assert default.trace is None and default.metrics is None

    def test_tcp_submit_requires_workers(self):
        with pytest.raises(SystemExit, match="--workers is required"):
            main(["submit"])

    def test_loopback_submit_rejects_workers(self):
        with pytest.raises(SystemExit, match="self-hosts its workers"):
            main(["submit", "--transport", "loopback", "--workers", "h:1"])

    def test_loopback_submit_with_trace_and_metrics(self, capsys, tmp_path):
        """Self-hosted loopback submit: verified against the simulation,
        trace and metrics exported, per-tag word counters == the ledger."""
        import json

        from repro.obs.export import spans_from_chrome_trace, wave_critical_path

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        code = main(
            ["submit", "--transport", "loopback", "--verify-local",
             "--num-servers", "3", "--dimension", "3000", "--support", "300",
             "--draws", "6",
             "--trace", str(trace_path), "--metrics", str(metrics_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "bit-identical draws" in out
        assert "trace:" in out and "metrics:" in out

        spans = spans_from_chrome_trace(trace_path.read_text())
        assert any(span.name == "handshake" for span in spans)
        waves = wave_critical_path(spans)
        assert waves and all(wave["workers"] <= 2 for wave in waves)

        metrics = json.loads(metrics_path.read_text())
        words = {
            name[len("words."):]: value
            for name, value in metrics["counters"].items()
            if name.startswith("words.") and name != "words.total"
        }
        # The printed per-tag ledger lines and the exported counters agree.
        for tag, count in words.items():
            assert f"{tag}: {count} words" in out
        assert metrics["counters"]["words.total"] == sum(words.values())

    def test_loopback_submit_metrics_text_format(self, capsys, tmp_path):
        metrics_path = tmp_path / "metrics.txt"
        code = main(
            ["submit", "--transport", "loopback",
             "--num-servers", "3", "--dimension", "2000", "--support", "200",
             "--draws", "4",
             "--metrics", str(metrics_path), "--metrics-format", "text"]
        )
        capsys.readouterr()
        assert code == 0
        text = metrics_path.read_text()
        assert any(line.startswith("words.total ") for line in text.splitlines())

    @pytest.mark.tcp
    def test_submit_against_tcp_workers(self, capsys):
        from repro.experiments.workloads import runtime_vector_components
        from repro.runtime.service import WorkerService
        from repro.runtime.transport import WorkerServer

        num_servers, dimension, support, seed = 3, 2000, 300, 4
        components = runtime_vector_components(
            num_servers, dimension, support, seed=seed
        )
        workers = [
            WorkerService(idx, val, dimension) for idx, val in components[1:]
        ]
        servers = [
            WorkerServer(
                worker.handle_frame,
                stop_check=lambda worker=worker: worker.shutdown_requested,
            )
            for worker in workers
        ]
        try:
            addresses = [server.start() for server in servers]
            exit_code = main(
                [
                    "submit",
                    "--workers",
                    *[f"{host}:{port}" for host, port in addresses],
                    "--num-servers", str(num_servers),
                    "--dimension", str(dimension),
                    "--support", str(support),
                    "--seed", str(seed),
                    "--draws", "6",
                    "--verify-local",
                    "--shutdown",
                ]
            )
            out = capsys.readouterr().out
            assert exit_code == 0
            assert "bit-identical draws" in out
            assert "wire audit" in out
        finally:
            for server in servers:
                server.stop()

    def test_serve_subsample_cache_knob_parses(self):
        args = build_parser().parse_args(
            ["serve", "--server", "1", "--subsample-cache-size", "2"]
        )
        assert args.subsample_cache_size == 2
        assert (
            build_parser().parse_args(["serve", "--server", "1"]).subsample_cache_size
            is None
        )

    def test_serve_stream_cache_knob_parses(self):
        args = build_parser().parse_args(
            ["serve", "--server", "1", "--stream-cache-size", "3"]
        )
        assert args.stream_cache_size == 3
        assert (
            build_parser().parse_args(["serve", "--server", "1"]).stream_cache_size
            is None
        )

    def test_serving_flags_parse(self):
        submit_args = build_parser().parse_args(
            ["submit", "--transport", "loopback", "--session-reuse", "3",
             "--tenant", "acme", "--async-scatter"]
        )
        assert submit_args.session_reuse == 3
        assert submit_args.tenant == "acme"
        assert submit_args.async_scatter is True
        serve_args = build_parser().parse_args(
            ["serve", "--server", "1", "--max-sessions", "2",
             "--max-tenants", "1", "--max-sessions-per-tenant", "1"]
        )
        assert serve_args.max_sessions == 2
        assert serve_args.max_tenants == 1
        assert serve_args.max_sessions_per_tenant == 1
        # Defaults: one submit, anonymous tenant, blocking scatter, no quotas.
        default = build_parser().parse_args(["submit", "--workers", "h:1"])
        assert default.session_reuse == 1
        assert default.tenant == ""
        assert default.async_scatter is False

    def test_async_scatter_excludes_supervised_tcp(self):
        with pytest.raises(SystemExit, match="mutually"):
            main(
                ["submit", "--workers", "h:1", "--num-servers", "2",
                 "--async-scatter", "--max-worker-restarts", "1"]
            )

    def test_admission_error_maps_to_exit_code_9(self):
        from repro.core.errors import AdmissionError
        from repro.experiments.cli import typed_exit_code

        assert typed_exit_code(AdmissionError("tenant refused")) == 9

    def test_loopback_submit_session_reuse_reports_warm_submits(self, capsys):
        """`--session-reuse N` serves N-1 warm submits over one session:
        the report says so, and the warm submits moved zero frames and
        charged zero words -- with the result still verified bit-identical
        against the local simulation."""
        code = main(
            ["submit", "--transport", "loopback", "--verify-local",
             "--session-reuse", "3", "--tenant", "acme",
             "--num-servers", "3", "--dimension", "2000", "--support", "200",
             "--draws", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "serving: 3 submits over one warm session (1 cold, 2 warm)" in out
        assert "moved 0 frames and charged 0 words" in out
        assert "bit-identical draws" in out

    def test_loopback_submit_async_scatter_verifies_locally(self, capsys):
        code = main(
            ["submit", "--transport", "loopback", "--verify-local",
             "--async-scatter",
             "--num-servers", "3", "--dimension", "2000", "--support", "200",
             "--draws", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "bit-identical draws" in out

    def test_typed_errors_map_to_distinct_exit_codes(self):
        from repro.core.errors import (
            SketchCompatibilityError,
            WireFormatError,
            WorkerProtocolError,
            WorkerTimeoutError,
        )
        from repro.experiments.cli import typed_exit_code

        codes = [
            typed_exit_code(WorkerTimeoutError("late")),
            typed_exit_code(WireFormatError("garbage")),
            typed_exit_code(SketchCompatibilityError("mismatch")),
            typed_exit_code(WorkerProtocolError("bad frame")),
        ]
        assert all(isinstance(code, int) and code != 0 for code in codes)
        assert len(set(codes)) == len(codes)  # distinct per error type
        assert typed_exit_code(RuntimeError("untyped")) is None

    @pytest.mark.tcp
    def test_submit_surfaces_typed_exit_code_not_traceback(self, capsys):
        """A worker answering garbage surfaces the WireFormatError exit code."""
        from repro.experiments.cli import typed_exit_code
        from repro.core.errors import WireFormatError
        from repro.runtime.service import WorkerService
        from repro.runtime.transport import WorkerServer

        # A "worker" that answers every frame with bytes that are not a
        # wire frame at all.
        server = WorkerServer(lambda frame: b"this is not a frame")
        try:
            host, port = server.start()
            exit_code = main(
                [
                    "submit",
                    "--workers", f"{host}:{port}",
                    "--num-servers", "2",
                    "--dimension", "500",
                    "--support", "50",
                    "--draws", "2",
                    "--timeout", "5",
                ]
            )
        finally:
            server.stop()
        err = capsys.readouterr().err
        assert exit_code == typed_exit_code(WireFormatError(""))
        assert "WireFormatError" in err
        assert "Traceback" not in err

    def test_supervision_knobs_parse(self):
        args = build_parser().parse_args(
            ["submit", "--workers", "h:1", "h:2", "h:3",
             "--backoff", "0.5", "--max-worker-restarts", "2",
             "--checkpoint-every", "3"]
        )
        assert args.backoff == 0.5
        assert args.max_worker_restarts == 2
        assert args.checkpoint_every == 3
        defaults = build_parser().parse_args(["submit", "--workers", "h:1"])
        assert defaults.backoff == 0.0
        assert defaults.max_worker_restarts == 0  # supervision off by default
        assert defaults.checkpoint_every == 1

    def test_worker_loss_maps_to_exit_code_8(self):
        from repro.core.errors import (
            RecoveryError,
            SketchCompatibilityError,
            WireFormatError,
            WorkerLostError,
            WorkerProtocolError,
            WorkerTimeoutError,
        )
        from repro.experiments.cli import typed_exit_code

        assert typed_exit_code(WorkerLostError("gone")) == 8
        # A failed recovery is a worker loss, not a generic protocol error.
        assert typed_exit_code(RecoveryError("restore failed")) == 8
        others = {
            typed_exit_code(WorkerTimeoutError("late")),
            typed_exit_code(WireFormatError("garbage")),
            typed_exit_code(SketchCompatibilityError("mismatch")),
            typed_exit_code(WorkerProtocolError("bad frame")),
        }
        assert 8 not in others

    def _start_workers(self, handler_factory, num_servers, dimension, support, seed):
        from repro.experiments.workloads import runtime_vector_components
        from repro.runtime.service import WorkerService
        from repro.runtime.transport import WorkerServer

        components = runtime_vector_components(
            num_servers, dimension, support, seed=seed
        )
        workers = [
            WorkerService(idx, val, dimension) for idx, val in components[1:]
        ]
        servers = [
            WorkerServer(handler_factory(index, worker))
            for index, worker in enumerate(workers)
        ]
        return servers, [server.start() for server in servers]

    @pytest.mark.tcp
    @pytest.mark.chaos
    def test_submit_recovers_flaky_worker_and_reports_it(self, capsys):
        """One worker drops its connection mid-protocol (twice: the wave and
        the recovery probe); with ``--max-worker-restarts`` the supervisor
        reconnects, restores the checkpoint and the run still verifies
        bit-identical against the local simulation."""
        from repro.runtime import wire

        def handler_factory(index, worker):
            if index != 1:
                return worker.handle_frame
            state = {"kills": 0, "armed": False}

            def flaky(frame):
                if not state["armed"] and wire.decode_frame(frame).op == "subsample":
                    state["armed"] = True
                    state["kills"] = 2  # the wave request, then the probe
                if state["kills"] > 0:
                    state["kills"] -= 1
                    raise ConnectionResetError("flaky worker")
                return worker.handle_frame(frame)

            return flaky

        servers, addresses = self._start_workers(handler_factory, 3, 2000, 300, 4)
        try:
            exit_code = main(
                [
                    "submit",
                    "--workers", *[f"{host}:{port}" for host, port in addresses],
                    "--num-servers", "3",
                    "--dimension", "2000",
                    "--support", "300",
                    "--seed", "4",
                    "--draws", "6",
                    "--timeout", "5",
                    "--max-worker-restarts", "1",
                    "--verify-local",
                ]
            )
            out = capsys.readouterr().out
            assert exit_code == 0
            assert "bit-identical draws" in out
            assert "supervision: recovered 1 worker restart(s)" in out
        finally:
            for server in servers:
                server.stop()

    @pytest.mark.tcp
    @pytest.mark.chaos
    def test_submit_exits_8_when_worker_is_unrecoverable(self, capsys):
        """A worker that keeps killing every connection exhausts recovery and
        the CLI exits with the typed worker-loss code, no traceback."""
        from repro.runtime import wire

        def handler_factory(index, worker):
            if index != 1:
                return worker.handle_frame
            state = {"armed": False}

            def doomed(frame):
                if not state["armed"] and wire.decode_frame(frame).op == "subsample":
                    state["armed"] = True
                if state["armed"]:
                    raise ConnectionResetError("worker is gone")
                return worker.handle_frame(frame)

            return doomed

        servers, addresses = self._start_workers(handler_factory, 3, 2000, 300, 4)
        try:
            exit_code = main(
                [
                    "submit",
                    "--workers", *[f"{host}:{port}" for host, port in addresses],
                    "--num-servers", "3",
                    "--dimension", "2000",
                    "--support", "300",
                    "--seed", "4",
                    "--draws", "6",
                    "--timeout", "5",
                    "--max-worker-restarts", "1",
                ]
            )
        finally:
            for server in servers:
                server.stop()
        err = capsys.readouterr().err
        assert exit_code == 8
        assert "Traceback" not in err

    def test_runtime_workload_is_deterministic(self):
        from repro.experiments.workloads import runtime_vector_components

        first = runtime_vector_components(3, 1000, 100, seed=9)
        second = runtime_vector_components(3, 1000, 100, seed=9)
        for (idx_a, val_a), (idx_b, val_b) in zip(first, second):
            import numpy as np

            np.testing.assert_array_equal(idx_a, idx_b)
            np.testing.assert_array_equal(val_a, val_b)
