"""Tests for repro.distributed.partition."""

import numpy as np
import pytest
from scipy import sparse

from repro.distributed.partition import (
    ShardAssignment,
    arbitrary_partition,
    duplicate_records_partition,
    entrywise_partition,
    exact_split_check,
    row_partition,
)
from repro.functions.softmax import generalized_mean


class TestRowPartition:
    def test_sum_recovers_matrix(self, small_matrix):
        locals_ = row_partition(small_matrix, 5, seed=0)
        assert exact_split_check(small_matrix, locals_)

    def test_returns_sparse(self, small_matrix):
        locals_ = row_partition(small_matrix, 3, seed=0)
        assert all(sparse.issparse(m) for m in locals_)

    def test_each_row_on_one_server(self, small_matrix):
        locals_ = row_partition(small_matrix, 4, seed=1)
        nonzero_rows = np.zeros(small_matrix.shape[0])
        for local in locals_:
            dense = np.asarray(local.todense())
            nonzero_rows += (np.abs(dense).sum(axis=1) > 0).astype(int)
        # A row with all-zero data may be "nowhere", but never on two servers.
        assert np.all(nonzero_rows <= 1)

    def test_single_server(self, small_matrix):
        locals_ = row_partition(small_matrix, 1, seed=0)
        np.testing.assert_allclose(np.asarray(locals_[0].todense()), small_matrix)

    def test_invalid_server_count(self, small_matrix):
        with pytest.raises(ValueError):
            row_partition(small_matrix, 0)


class TestArbitraryPartition:
    def test_sum_recovers_matrix(self, small_matrix):
        locals_ = arbitrary_partition(small_matrix, 6, seed=0)
        assert exact_split_check(small_matrix, locals_)

    def test_shares_are_dense(self, small_matrix):
        locals_ = arbitrary_partition(small_matrix, 3, seed=0)
        assert all(isinstance(m, np.ndarray) for m in locals_)

    def test_single_server_copy(self, small_matrix):
        locals_ = arbitrary_partition(small_matrix, 1, seed=0)
        np.testing.assert_allclose(locals_[0], small_matrix)
        assert locals_[0] is not small_matrix

    def test_shares_look_nothing_like_original(self, low_rank_matrix):
        """The individual shares should not reveal the low-rank structure."""
        locals_ = arbitrary_partition(low_rank_matrix, 3, seed=0, share_scale=2.0)
        s = np.linalg.svd(low_rank_matrix, compute_uv=False)
        share_s = np.linalg.svd(locals_[0], compute_uv=False)
        original_decay = s[5] / s[0]
        share_decay = share_s[5] / share_s[0]
        assert share_decay > original_decay * 5

    def test_determinism(self, small_matrix):
        a = arbitrary_partition(small_matrix, 4, seed=9)
        b = arbitrary_partition(small_matrix, 4, seed=9)
        for x, y in zip(a, b):
            np.testing.assert_allclose(x, y)


class TestEntrywisePartition:
    def test_sum_recovers_matrix(self, small_matrix):
        locals_ = entrywise_partition(small_matrix, 4, seed=0)
        assert exact_split_check(small_matrix, locals_)

    def test_supports_are_disjoint(self, small_matrix):
        locals_ = entrywise_partition(small_matrix, 4, seed=0)
        coverage = np.zeros(small_matrix.shape)
        for local in locals_:
            coverage += (np.abs(np.asarray(local.todense())) > 0).astype(int)
        assert np.all(coverage <= 1)

    def test_sparse_output(self, small_matrix):
        locals_ = entrywise_partition(small_matrix, 2, seed=0)
        assert all(sparse.issparse(m) for m in locals_)


class TestDuplicateRecordsPartition:
    @pytest.fixture
    def nonneg(self, rng):
        return np.abs(rng.normal(size=(25, 8))) + 0.1

    def test_every_entry_observed_somewhere(self, nonneg):
        locals_ = duplicate_records_partition(nonneg, 4, seed=0)
        observed = np.zeros(nonneg.shape, dtype=bool)
        for local in locals_:
            observed |= local > 0
        assert observed.all()

    def test_observations_never_exceed_truth(self, nonneg):
        locals_ = duplicate_records_partition(nonneg, 4, seed=0, noise_scale=0.1)
        for local in locals_:
            assert np.all(local <= nonneg + 1e-12)

    def test_max_approaches_truth(self, nonneg):
        locals_ = duplicate_records_partition(nonneg, 6, seed=0, noise_scale=0.05)
        recovered = np.max(locals_, axis=0)
        assert np.all(recovered >= nonneg * 0.95 - 1e-12)

    def test_gm_large_p_close_to_truth(self, nonneg):
        """The motivating scenario: GM_p across servers ~ the true value."""
        locals_ = duplicate_records_partition(nonneg, 5, seed=0, noise_scale=0.05)
        gm = generalized_mean(np.stack(locals_), p=20, axis=0)
        relative_gap = np.abs(gm - nonneg) / nonneg
        assert np.median(relative_gap) < 0.25

    def test_rejects_negative_matrix(self, rng):
        with pytest.raises(ValueError):
            duplicate_records_partition(rng.normal(size=(5, 5)), 3)

    def test_invalid_probability(self, nonneg):
        with pytest.raises(ValueError):
            duplicate_records_partition(nonneg, 3, observation_probability=0.0)

    def test_invalid_noise(self, nonneg):
        with pytest.raises(ValueError):
            duplicate_records_partition(nonneg, 3, noise_scale=1.0)


class TestShardAssignment:
    def test_uniform_covers_every_coordinate_once(self):
        assignment = ShardAssignment.uniform(100, 4)
        assert assignment.num_shards == 4
        dest = assignment.shard_of(np.arange(100))
        assert dest.min() == 0 and dest.max() == 3
        counts = np.bincount(dest, minlength=4)
        assert counts.tolist() == [25, 25, 25, 25]

    def test_single_shard_is_the_identity_map(self):
        assignment = ShardAssignment.uniform(50, 1)
        assert assignment.num_shards == 1
        assert np.all(assignment.shard_of(np.arange(50)) == 0)

    def test_balanced_equalises_skewed_support(self):
        # All support crowded into the first tenth of the domain: the
        # uniform map would put everything on shard 0.
        rng = np.random.default_rng(3)
        support = np.sort(rng.choice(100, size=80, replace=False)).astype(np.int64)
        uniform = ShardAssignment.uniform(1000, 4)
        assert np.all(uniform.shard_of(support) == 0)
        balanced = ShardAssignment.balanced(1000, 4, support)
        counts = np.bincount(balanced.shard_of(support), minlength=4)
        assert counts.tolist() == [20, 20, 20, 20]

    def test_balanced_of_empty_support_falls_back_to_uniform(self):
        empty = np.zeros(0, dtype=np.int64)
        assert ShardAssignment.balanced(60, 3, empty).same_as(
            ShardAssignment.uniform(60, 3)
        )

    def test_balanced_rejects_out_of_range_support(self):
        with pytest.raises(ValueError, match="support indices"):
            ShardAssignment.balanced(10, 2, np.array([3, 10]))

    def test_split_preserves_order_and_duplicates(self):
        # Duplicated coordinates (legal in the sparse-sum representation)
        # must all land in the same shard, in their original array order --
        # float scatter-adds are order-sensitive.
        assignment = ShardAssignment.uniform(10, 2)
        idx = np.array([7, 2, 7, 0, 9, 2], dtype=np.int64)
        val = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        (idx0, val0), (idx1, val1) = assignment.split(idx, val)
        np.testing.assert_array_equal(idx0, [2, 0, 2])
        np.testing.assert_array_equal(val0, [2.0, 4.0, 6.0])
        np.testing.assert_array_equal(idx1, [7, 7, 9])
        np.testing.assert_array_equal(val1, [1.0, 3.0, 5.0])

    def test_split_pieces_reassemble_the_component(self):
        rng = np.random.default_rng(11)
        idx = rng.integers(0, 500, size=200).astype(np.int64)
        val = rng.normal(size=200)
        assignment = ShardAssignment.balanced(500, 3, idx)
        pieces = assignment.split(idx, val)
        assert sum(piece_idx.size for piece_idx, _ in pieces) == idx.size
        dense = np.zeros(500)
        np.add.at(dense, idx, val)
        merged = np.zeros(500)
        for piece_idx, piece_val in pieces:
            np.add.at(merged, piece_idx, piece_val)
        np.testing.assert_array_equal(merged, dense)

    def test_payload_round_trips(self):
        assignment = ShardAssignment.balanced(300, 4, np.arange(17, 60))
        restored = ShardAssignment.from_payload(assignment._as_payload())
        assert restored.same_as(assignment)
        with pytest.raises(ValueError, match="shard assignment"):
            ShardAssignment.from_payload(("something-else", 300, []))

    def test_invalid_boundaries_are_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            ShardAssignment(10, [7, 3])
        with pytest.raises(ValueError, match="non-decreasing"):
            ShardAssignment(10, [5, 12])
        with pytest.raises(ValueError):
            ShardAssignment.uniform(10, 0)
        with pytest.raises(ValueError):
            ShardAssignment(0, [])


class TestExactSplitCheck:
    def test_detects_bad_split(self, small_matrix):
        locals_ = arbitrary_partition(small_matrix, 3, seed=0)
        locals_[0] = locals_[0] + 1.0
        assert not exact_split_check(small_matrix, locals_)

    def test_empty_list(self, small_matrix):
        assert not exact_split_check(small_matrix, [])
