"""The telemetry subsystem: tracer, metrics, exporters, no-interference.

Three layers of contract:

* the instruments themselves -- span nesting across context managers and
  threads, exact nearest-rank percentiles, kind-collision guards, the
  shared no-op span on the disabled path;
* the exporters -- a Chrome-trace document round-trips back into the same
  span tree (ids, parents, attributes), and the per-wave critical path is
  reconstructible from a re-loaded trace;
* **no interference** -- with a capture active, every backend's draws,
  probabilities and per-tag charged words are bit-identical to an
  untraced run, the wire audit stays green, and the capture's ``words.*``
  counters equal the session ledger exactly (observation only: the ledger
  is the source of truth, telemetry merely mirrors it).
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.backend import create_backend
from repro.obs.export import (
    chrome_trace,
    metrics_text,
    spans_from_chrome_trace,
    wave_critical_path,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import Tracer

from test_backend_matrix import make_components, make_config, weight_fn
from test_runtime_transport import assert_same_draws

DIMENSION = 4000


@pytest.fixture(autouse=True)
def _fresh_telemetry_state():
    """Never leak an active capture into (or out of) a test."""
    obs.disable()
    yield
    obs.disable()


# --------------------------------------------------------------------------- #
# tracer
# --------------------------------------------------------------------------- #
class TestTracer:
    def test_nested_spans_record_parent_child(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        spans = tracer.spans()
        assert [span.name for span in spans] == ["inner", "outer"]
        assert spans[1].parent_id is None
        assert all(span.duration_ns >= 0 for span in spans)

    def test_attributes_from_kwargs_and_set_attribute(self):
        tracer = Tracer()
        with tracer.span("wave:sketch", op="sketch", workers=3) as span:
            span.set_attribute("attempt", 2)
        (finished,) = tracer.spans()
        assert finished.attributes == {"op": "sketch", "workers": 3, "attempt": 2}

    def test_exception_is_recorded_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.spans()
        assert span.attributes["error"] == "RuntimeError"
        assert span.end_ns is not None

    def test_explicit_parent_crosses_threads(self):
        """Pool threads get no implicit stack; parent_id is passed by hand."""
        tracer = Tracer()
        child_parent = {}

        with tracer.span("wave") as wave:

            def worker():
                # The new thread has no open spans of its own...
                assert tracer.current_id() is None
                with tracer.span("worker:request", parent_id=wave.span_id) as req:
                    child_parent["parent"] = req.parent_id

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()

        assert child_parent["parent"] == wave.span_id
        assert len(tracer) == 2

    def test_span_ids_are_unique_and_increasing(self):
        tracer = Tracer()
        for _ in range(5):
            with tracer.span("s"):
                pass
        ids = [span.span_id for span in tracer.spans()]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5


# --------------------------------------------------------------------------- #
# metrics
# --------------------------------------------------------------------------- #
class TestMetrics:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("words.total")
        counter.add(5)
        counter.add(7)
        assert registry.counter("words.total").value == 12
        with pytest.raises(ValueError):
            counter.add(-1)

    def test_gauge_is_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("queue.depth").set(4)
        registry.gauge("queue.depth").set(2)
        assert registry.gauge("queue.depth").value == 2

    def test_histogram_percentiles_are_exact_nearest_rank(self):
        histogram = Histogram("wave.seconds.sketch")
        for value in range(1, 101):  # 1..100
            histogram.observe(float(value))
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["min"] == 1.0 and summary["max"] == 100.0
        # Nearest-rank on the sorted window (no interpolation): rank
        # round(q/100 * 99) -- 50 -> index 50, 95 -> 94, 99 -> 98.
        assert summary["p50"] == 51.0
        assert summary["p95"] == 95.0
        assert summary["p99"] == 99.0
        assert summary["mean"] == pytest.approx(50.5)

    def test_histogram_window_bounds_memory_but_not_lifetime_stats(self):
        histogram = Histogram("h", max_samples=10)
        for value in range(100):
            histogram.observe(float(value))
        summary = histogram.summary()
        assert summary["count"] == 100  # lifetime
        assert summary["min"] == 0.0 and summary["max"] == 99.0
        assert summary["p50"] >= 90.0  # percentiles cover the recent window

    def test_empty_histogram_summary_is_all_none_percentiles(self):
        summary = Histogram("empty").summary()
        assert summary["count"] == 0
        assert summary["p50"] is None and summary["mean"] is None

    def test_kind_collision_is_rejected(self):
        registry = MetricsRegistry()
        registry.counter("wave.retries")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("wave.retries")

    def test_counters_with_prefix_strips_the_prefix(self):
        registry = MetricsRegistry()
        registry.counter("words.total").add(10)
        registry.counter("words.hh:seeds").add(4)
        registry.counter("wire.frames").add(1)
        assert registry.counters_with_prefix("words.") == {
            "total": 10,
            "hh:seeds": 4,
        }

    def test_snapshot_is_json_compatible(self):
        registry = MetricsRegistry()
        registry.counter("c").add(1)
        registry.gauge("g").set(3)
        registry.histogram("h").observe(0.5)
        snapshot = registry.snapshot()
        json.dumps(snapshot)  # must not raise
        assert snapshot["counters"] == {"c": 1}
        assert snapshot["gauges"] == {"g": 3}
        assert snapshot["histograms"]["h"]["count"] == 1


# --------------------------------------------------------------------------- #
# lifecycle: module-global enable/disable and the no-op path
# --------------------------------------------------------------------------- #
class TestLifecycle:
    def test_disabled_span_is_the_shared_noop(self):
        assert not obs.enabled()
        first = obs.span("anything", worker=1)
        second = obs.span("else")
        assert first is second  # one shared object: the disabled path allocates nothing
        with first as span:
            span.set_attribute("ignored", True)  # no-op, no error

    def test_enable_disable_cycle(self):
        telemetry = obs.enable()
        assert obs.enabled()
        assert obs.active() is telemetry
        with pytest.raises(RuntimeError):
            obs.enable()
        assert obs.disable() is telemetry
        assert obs.active() is None
        assert obs.disable() is None  # idempotent

    def test_capture_context_manager(self):
        with obs.capture() as telemetry:
            with obs.span("inside"):
                pass
            telemetry.metrics.counter("seen").add(1)
        assert not obs.enabled()
        assert [span.name for span in telemetry.tracer.spans()] == ["inside"]
        assert telemetry.metrics.counter("seen").value == 1

    def test_snapshot_shape(self):
        with obs.capture() as telemetry:
            with telemetry.span("one"):
                pass
            telemetry.metrics.histogram("wave.seconds.sketch").observe(0.25)
        snapshot = telemetry.snapshot()
        assert snapshot["spans"] == 1
        assert snapshot["metrics"]["histograms"]["wave.seconds.sketch"]["p50"] == 0.25


# --------------------------------------------------------------------------- #
# exporters
# --------------------------------------------------------------------------- #
class TestExporters:
    def _sample_tracer(self):
        tracer = Tracer()
        with tracer.span("wave:collect", op="collect", workers=2) as wave:
            with tracer.span("worker:request", parent_id=wave.span_id, worker=0):
                pass
            with tracer.span("worker:request", parent_id=wave.span_id, worker=1):
                pass
        return tracer

    def test_chrome_trace_round_trips_span_tree(self, tmp_path):
        tracer = self._sample_tracer()
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), tracer.spans())
        views = spans_from_chrome_trace(path.read_text())
        originals = sorted(tracer.spans(), key=lambda s: s.span_id)
        reloaded = sorted(views, key=lambda s: s.span_id)
        assert [v.name for v in reloaded] == [s.name for s in originals]
        assert [v.span_id for v in reloaded] == [s.span_id for s in originals]
        assert [v.parent_id for v in reloaded] == [s.parent_id for s in originals]
        assert [v.attributes for v in reloaded] == [s.attributes for s in originals]
        # Timestamps survive at microsecond resolution.
        for view, span in zip(reloaded, originals):
            assert abs(view.duration_ns - span.duration_ns) <= 1000

    def test_open_spans_are_skipped_by_the_exporter(self):
        tracer = Tracer()
        context = tracer.span("closed")
        with context:
            pass
        still_open = tracer.span("never-closed").__enter__()  # left open deliberately
        document = chrome_trace(tracer.spans() + [still_open])
        names = [e["name"] for e in document["traceEvents"] if e["ph"] == "X"]
        assert names == ["closed"]

    def test_critical_path_survives_the_round_trip(self):
        tracer = self._sample_tracer()
        live = wave_critical_path(tracer.spans())
        reloaded = wave_critical_path(
            spans_from_chrome_trace(chrome_trace(tracer.spans()))
        )
        assert len(live) == len(reloaded) == 1
        assert live[0]["op"] == reloaded[0]["op"] == "collect"
        assert live[0]["workers"] == reloaded[0]["workers"] == 2
        assert live[0]["critical_worker"] == reloaded[0]["critical_worker"]

    def test_metrics_text_and_json_dumps(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("words.total").add(42)
        registry.histogram("wave.seconds.hello").observe(0.5)
        text = metrics_text(registry)
        assert "words.total 42" in text
        assert "wave.seconds.hello.p99 0.5" in text
        json_path = write_metrics(str(tmp_path / "m.json"), registry, format="json")
        loaded = json.loads(open(json_path).read())
        assert loaded["counters"]["words.total"] == 42
        text_path = write_metrics(
            str(tmp_path / "m.txt"), registry, format="text"
        )
        assert "words.total 42" in open(text_path).read()
        with pytest.raises(ValueError, match="unknown metrics format"):
            write_metrics(str(tmp_path / "m.xml"), registry, format="xml")


# --------------------------------------------------------------------------- #
# no interference: bit-identity and ledger equality with tracing ON
# --------------------------------------------------------------------------- #
class TestNoInterference:
    def test_traced_run_is_bit_identical_and_counters_match_ledger(
        self, backend_name
    ):
        components = make_components(seed=77, dim=DIMENSION)
        config = make_config()

        def run():
            backend = create_backend(backend_name)
            with backend.session(components, DIMENSION) as session:
                draws = session.sample(weight_fn, 12, config=config, seed=5)
                words = dict(session.network.snapshot().words_by_tag)
                ledger = session.verify_accounting()  # audit stays green
            return draws, words, ledger

        untraced_draws, untraced_words, _ = run()
        with obs.capture() as telemetry:
            traced_draws, traced_words, _ = run()

        # Tracing perturbs nothing: results and the ledger are identical.
        assert_same_draws(untraced_draws, traced_draws)
        assert traced_words == untraced_words

        # The capture's per-tag words counters mirror the ledger EXACTLY
        # (all backends charge through the same Network._record hook).
        counters = telemetry.metrics.counters_with_prefix("words.")
        total = counters.pop("total")
        assert counters == traced_words
        assert total == sum(traced_words.values())

    def test_transport_backend_wire_bytes_counters_match_ledger(self):
        components = make_components(seed=78, dim=DIMENSION)
        config = make_config()
        with obs.capture() as telemetry:
            backend = create_backend("loopback")
            with backend.session(components, DIMENSION) as session:
                session.sample(weight_fn, 8, config=config, seed=3)
                byte_ledger = dict(session.network.data_bytes_by_tag)
                session.verify_accounting()
        wire_bytes = telemetry.metrics.counters_with_prefix("wire.bytes.")
        assert wire_bytes == byte_ledger
        assert telemetry.metrics.counter("wire.frames").value > 0

    def test_wave_and_protocol_spans_are_recorded(self):
        components = make_components(seed=79, dim=DIMENSION)
        config = make_config()
        with obs.capture() as telemetry:
            backend = create_backend("loopback")
            with backend.session(components, DIMENSION) as session:
                session.sample(weight_fn, 6, config=config, seed=2)
        names = {span.name for span in telemetry.tracer.spans()}
        assert {"handshake", "protocol:sample", "worker:request"} <= names
        assert any(name.startswith("wave:") for name in names)
        # Wave spans parent the per-worker request spans across pool threads.
        waves = wave_critical_path(telemetry.tracer.spans())
        assert waves and all(wave["workers"] >= 1 for wave in waves)
        # Wave latency histograms were fed by the same hooks.
        histograms = telemetry.snapshot()["metrics"]["histograms"]
        assert any(name.startswith("wave.seconds.") for name in histograms)

    def test_rebalance_spans_and_counters(self):
        from test_sharded_backend import balanced_plan, skewed_components

        dim, components = skewed_components(seed=91)
        with obs.capture() as telemetry:
            backend = create_backend("sharded")
            with backend.session(components, dim) as session:
                session.rebalance(balanced_plan(components, dim, 2))
        names = [span.name for span in telemetry.tracer.spans()]
        assert "rebalance:plan" in names
        assert names.count("rebalance:migrate") == len(components) - 1
        migrations = telemetry.metrics.counter("rebalance.migrations").value
        assert migrations == len(components) - 1
        assert telemetry.metrics.counter("rebalance.moved_entries").value > 0

    @pytest.mark.tcp
    def test_tcp_trace_reconstructs_critical_path_and_ledger(self, tmp_path):
        """ISSUE acceptance: a tcp-run trace round-trips through the
        Chrome-trace exporter, reconstructs the per-wave critical path,
        and its per-tag charged-word metrics equal the session ledger."""
        components = make_components(seed=80, dim=DIMENSION)
        config = make_config()
        with obs.capture() as telemetry:
            backend = create_backend("tcp")
            with backend.session(components, DIMENSION) as session:
                draws = session.sample(weight_fn, 10, config=config, seed=7)
                words = dict(session.network.snapshot().words_by_tag)
                session.verify_accounting()
        assert draws.indices.size == 10

        path = write_chrome_trace(str(tmp_path / "tcp.json"), telemetry.tracer.spans())
        views = spans_from_chrome_trace(json.loads(open(path).read()))

        # Per-wave critical path: every wave names its bounding worker.
        waves = wave_critical_path(views)
        assert waves, "tcp trace lost its wave spans"
        workers = len(components) - 1
        for wave in waves:
            assert 1 <= wave["workers"] <= workers
            assert wave["critical_worker"] is not None
            assert 0.0 <= wave["critical_seconds"] <= wave["wave_seconds"] + 1e-3
        assert {wave["op"] for wave in waves} >= {"hello", "sketch", "collect"}

        # Per-tag charged-word counters equal the ledger exactly.
        counters = telemetry.metrics.counters_with_prefix("words.")
        counters.pop("total")
        assert counters == words


# --------------------------------------------------------------------------- #
# overhead guarantee: disabled telemetry does not allocate per call
# --------------------------------------------------------------------------- #
class TestDisabledOverhead:
    def test_network_record_skips_all_telemetry_work_when_disabled(self):
        from repro.distributed.network import Network

        network = Network(3)
        network.charge(0, 1, 100, tag="t")
        assert obs.active() is None  # nothing was enabled by charging

    def test_noop_span_allocates_nothing(self):
        before = obs.span("a")
        for _ in range(100):
            with obs.span("b", attr=1):
                pass
        assert obs.span("c") is before
