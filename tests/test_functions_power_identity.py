"""Tests for the identity and power entrywise functions."""

import numpy as np
import pytest

from repro.functions import Identity
from repro.functions.power import AbsolutePower, SignedPower


class TestIdentity:
    def test_values(self):
        fn = Identity()
        x = np.array([-2.0, 0.0, 3.5])
        np.testing.assert_allclose(fn(x), x)

    def test_sampling_weight(self):
        fn = Identity()
        np.testing.assert_allclose(fn.sampling_weight([-2.0, 3.0]), [4.0, 9.0])


class TestAbsolutePower:
    def test_square(self):
        fn = AbsolutePower(2.0)
        np.testing.assert_allclose(fn([-2.0, 3.0]), [4.0, 9.0])

    def test_square_root(self):
        fn = AbsolutePower(0.5)
        np.testing.assert_allclose(fn([4.0, 9.0]), [2.0, 3.0])

    def test_always_nonnegative(self):
        fn = AbsolutePower(3.0)
        assert np.all(fn(np.linspace(-5, 5, 21)) >= 0)

    def test_sampling_weight_is_2p_power(self):
        fn = AbsolutePower(1.5)
        x = np.array([0.5, 2.0])
        np.testing.assert_allclose(fn.sampling_weight(x), np.abs(x) ** 3.0)

    def test_rejects_nonpositive_exponent(self):
        with pytest.raises(ValueError):
            AbsolutePower(0.0)
        with pytest.raises(ValueError):
            AbsolutePower(-1.0)

    def test_name_contains_exponent(self):
        assert "2" in AbsolutePower(2.0).name


class TestSignedPower:
    def test_preserves_sign(self):
        fn = SignedPower(0.5)
        out = fn([-4.0, 4.0])
        assert out[0] < 0 < out[1]
        np.testing.assert_allclose(np.abs(out), [2.0, 2.0])

    def test_odd_function(self):
        fn = SignedPower(3.0)
        x = np.linspace(-2, 2, 9)
        np.testing.assert_allclose(fn(-x), -fn(x))

    def test_zero_maps_to_zero(self):
        assert SignedPower(2.0)([0.0])[0] == 0.0

    def test_rejects_nonpositive_exponent(self):
        with pytest.raises(ValueError):
            SignedPower(-2.0)
