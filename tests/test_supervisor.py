"""Unit tests of the supervision layer: retry policy, failure classification,
checkpoint state, heartbeats, recovery bookkeeping and degraded estimates.

The end-to-end kill/failover runs (worker dies mid-protocol, supervisor
restores it, results stay bit-identical) live in ``test_chaos_recovery.py``;
this module tests each supervision ingredient in isolation over loopback
transports.
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.backend.streaming import StreamingSketchState
from repro.core.errors import (
    RecoveryError,
    SketchCompatibilityError,
    WireFormatError,
    WorkerLostError,
    WorkerProtocolError,
    WorkerTimeoutError,
)
from repro.distributed.network import Network
from repro.distributed.vector import DistributedVector
from repro.runtime.service import CoordinatorService, WorkerService
from repro.runtime.state import CountSketchState, WorkerCheckpoint
from repro.runtime.supervisor import (
    FATAL,
    TRANSIENT,
    DegradedEstimate,
    WorkerSupervisor,
    classify_failure,
)
from repro.runtime.transport import LoopbackTransport, RetryPolicy
from repro.sketch.countsketch import CountSketch
from repro.sketch.z_estimator import ZEstimator

from test_runtime_transport import (
    assert_same_draws,
    make_components,
    make_config,
    weight_fn,
)


# --------------------------------------------------------------------------- #
# RetryPolicy
# --------------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(retries=9, backoff=0.1, multiplier=2.0, max_backoff=0.5)
        delays = [policy.delay(attempt) for attempt in range(1, 6)]
        np.testing.assert_allclose(delays, [0.1, 0.2, 0.4, 0.5, 0.5])

    def test_zero_backoff_never_sleeps(self):
        """The default policy reproduces the old immediate-resend behaviour."""
        slept = []
        policy = RetryPolicy(retries=3)
        for attempt in (1, 2, 3):
            assert policy.pause(attempt, 0.0, sleep=slept.append, now=lambda: 0.0)
        assert slept == []  # immediate: delay 0 is not slept at all
        assert not policy.pause(4, 0.0, sleep=slept.append, now=lambda: 0.0)

    def test_jitter_stays_within_band(self):
        class Rng:
            def __init__(self, value):
                self.value = value

            def uniform(self, low, high):
                assert (low, high) == (-0.5, 0.5)
                return self.value

        policy = RetryPolicy(retries=1, backoff=1.0, jitter=0.5, max_backoff=10.0)
        assert policy.delay(1, rng=Rng(0.5)) == pytest.approx(1.5)
        assert policy.delay(1, rng=Rng(-0.5)) == pytest.approx(0.5)

    def test_max_elapsed_abandons_instead_of_sleeping(self):
        policy = RetryPolicy(retries=10, backoff=1.0, max_elapsed=2.5)
        slept = []
        clock = iter([0.0, 2.0])
        assert policy.pause(1, 0.0, sleep=slept.append, now=lambda: 0.0)  # 0+1 <= 2.5
        assert not policy.pause(
            2, 0.0, sleep=slept.append, now=lambda: 2.0
        )  # 2.0 elapsed + 2.0 backoff > 2.5: give up, do not sleep
        assert slept == [1.0]

    def test_pause_exhausts_retry_budget(self):
        policy = RetryPolicy(retries=2, backoff=0.0)
        assert policy.pause(1, 0.0)
        assert policy.pause(2, 0.0)
        assert not policy.pause(3, 0.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retries": -1},
            {"backoff": -0.1},
            {"multiplier": 0.5},
            {"max_backoff": -1.0},
            {"jitter": 1.0},
            {"jitter": -0.1},
            {"max_elapsed": -2.0},
        ],
    )
    def test_invalid_parameters_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_delay_requires_positive_attempt(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=1, backoff=1.0).delay(0)


# --------------------------------------------------------------------------- #
# failure classification (satellite: transient vs fatal)
# --------------------------------------------------------------------------- #
class TestClassifyFailure:
    @pytest.mark.parametrize(
        "error",
        [
            WorkerTimeoutError("late"),
            ConnectionResetError("reset"),
            ConnectionRefusedError("refused"),
            BrokenPipeError("pipe"),
            asyncio.IncompleteReadError(b"", 10),
            OSError("generic I/O"),
        ],
    )
    def test_connection_shaped_failures_are_transient(self, error):
        assert classify_failure(error) == TRANSIENT

    def test_wrapped_connection_error_is_transient(self):
        """TcpTransport wraps exhausted reconnects in WorkerProtocolError."""
        try:
            raise WorkerProtocolError("connection failed") from ConnectionResetError()
        except WorkerProtocolError as exc:
            assert classify_failure(exc) == TRANSIENT

    @pytest.mark.parametrize(
        "error",
        [
            WorkerProtocolError("worker answered with an error frame"),
            WireFormatError("garbage frame"),
            ValueError("plain bug"),
            RuntimeError("plain bug"),
        ],
    )
    def test_answered_faults_are_fatal(self, error):
        assert classify_failure(error) == FATAL

    def test_worker_lost_is_never_retried(self):
        # WorkerLostError subclasses ConnectionError but is the *outcome* of
        # a failed recovery -- classifying it transient would loop forever.
        assert classify_failure(WorkerLostError("gone")) == FATAL
        assert classify_failure(RecoveryError("restore failed")) == FATAL


# --------------------------------------------------------------------------- #
# WorkerCheckpoint and state adoption
# --------------------------------------------------------------------------- #
class TestWorkerCheckpoint:
    def make_checkpoint(self):
        sketch = CountSketch(3, 16, 500, seed=5)
        idx = np.array([3, 8, 120], dtype=np.int64)
        val = np.array([1.5, -2.0, 7.0])
        state = sketch.export_state(sketch.sketch(idx, val))
        return WorkerCheckpoint(
            dimension=500,
            indices=idx,
            values=val,
            session="abc",
            applied_update=(4, 3, 131, 6.5),
            stream_states={"s": state},
        )

    def test_round_trips_bit_exactly(self):
        checkpoint = self.make_checkpoint()
        restored = WorkerCheckpoint.from_bytes(checkpoint.to_bytes())
        assert checkpoint.equals(restored)
        assert restored.support == 3
        assert restored.applied_update == (4, 3, 131, 6.5)

    def test_payload_label_is_checked(self):
        checkpoint = self.make_checkpoint()
        payload = list(checkpoint._as_payload())
        payload[0] = "not-a-checkpoint"
        with pytest.raises(WireFormatError):
            WorkerCheckpoint.from_payload(tuple(payload))

    def test_mismatched_arrays_are_rejected(self):
        with pytest.raises(ValueError):
            WorkerCheckpoint(
                dimension=10,
                indices=np.arange(3, dtype=np.int64),
                values=np.zeros(2),
                session="s",
            )

    def test_adopting_a_state_skips_resketching(self):
        sketch = CountSketch(3, 16, 500, seed=5)
        idx = np.array([3, 8, 120], dtype=np.int64)
        val = np.array([1.0, -2.0, 7.0])
        original = StreamingSketchState(sketch, idx, val)
        adopted = StreamingSketchState.from_state(sketch, original.state)
        np.testing.assert_array_equal(adopted.state.table, original.state.table)
        # Future ingests continue from the adopted table.
        adopted.ingest(np.array([3], dtype=np.int64), np.array([2.0]))
        original.ingest(np.array([3], dtype=np.int64), np.array([2.0]))
        np.testing.assert_array_equal(adopted.state.table, original.state.table)

    def test_adopting_a_foreign_state_is_rejected(self):
        sketch = CountSketch(3, 16, 500, seed=5)
        other = CountSketch(3, 16, 500, seed=6)
        state = sketch.export_state()
        with pytest.raises(SketchCompatibilityError):
            StreamingSketchState.from_state(other, state)


# --------------------------------------------------------------------------- #
# loopback harness
# --------------------------------------------------------------------------- #
class KillableWorker:
    """A worker whose handler can be killed (permanently or N times).

    A raised ``ConnectionResetError`` is exactly what a died process looks
    like to a loopback caller; over TCP the server maps a raising handler to
    a killed connection, so both transports see the same failure shape.
    """

    def __init__(self, service: WorkerService) -> None:
        self.service = service
        self.calls = 0
        self.dead = False
        self.transient_kills = 0

    def handler(self, frame: bytes) -> bytes:
        self.calls += 1
        if self.transient_kills > 0:
            self.transient_kills -= 1
            raise ConnectionResetError("injected transient blip")
        if self.dead:
            raise ConnectionResetError("worker killed")
        return self.service.handle_frame(frame)


def supervised_loopback(
    components, dim, *, respawn=True, max_worker_restarts=2, checkpoint_every=1
):
    """A supervised loopback coordinator plus its killable workers."""
    killables = [
        KillableWorker(WorkerService(idx, val, dim)) for idx, val in components[1:]
    ]

    def respawner(worker: int):
        replacement = KillableWorker(WorkerService(*components[worker + 1], dim))
        killables[worker] = replacement
        return LoopbackTransport(replacement.handler)

    supervisor = WorkerSupervisor(
        respawner if respawn else None,
        max_worker_restarts=max_worker_restarts,
        checkpoint_every=checkpoint_every,
    )
    transports = [LoopbackTransport(killable.handler) for killable in killables]
    coordinator = CoordinatorService(
        transports, dim, components[0], supervisor=supervisor
    )
    return coordinator, supervisor, killables


# --------------------------------------------------------------------------- #
# supervisor behaviour
# --------------------------------------------------------------------------- #
class TestSupervisorLoopback:
    def test_attach_takes_initial_checkpoints(self):
        dim, components = make_components(seed=50, servers=3, support=200)
        coordinator, supervisor, _ = supervised_loopback(components, dim)
        checkpoints = supervisor.checkpoints
        assert sorted(checkpoints) == [0, 1]
        for worker, (idx, val) in enumerate(components[1:]):
            np.testing.assert_array_equal(checkpoints[worker].indices, idx)
            np.testing.assert_array_equal(checkpoints[worker].values, val)
        coordinator.close()

    def test_attach_twice_is_rejected(self):
        dim, components = make_components(seed=50, servers=2, support=100)
        coordinator, supervisor, _ = supervised_loopback(components, dim)
        with pytest.raises(RuntimeError, match="already attached"):
            supervisor.attach(coordinator)
        coordinator.close()

    def test_heartbeat_reports_per_worker_health(self):
        dim, components = make_components(seed=51, servers=3, support=200)
        coordinator, supervisor, killables = supervised_loopback(components, dim)
        assert supervisor.heartbeat() == {0: True, 1: True}
        killables[1].dead = True
        assert supervisor.heartbeat() == {0: True, 1: False}
        health = supervisor.health()
        assert health[0].healthy and not health[1].healthy
        assert health[1].consecutive_failures == 1
        assert health[1].last_probe > 0
        coordinator.close()

    def test_supervision_traffic_is_uncharged(self):
        """Heartbeats and checkpoints must not move the per-tag word ledger."""
        dim, components = make_components(seed=52, servers=3, support=200)
        coordinator, supervisor, _ = supervised_loopback(components, dim)
        baseline = dict(coordinator.network.snapshot().words_by_tag)
        supervisor.heartbeat()
        supervisor.checkpoint_all()
        assert dict(coordinator.network.snapshot().words_by_tag) == baseline
        coordinator.verify_wire_accounting()
        coordinator.close()

    def test_transient_blip_reissues_wave_without_respawn(self):
        """One raising handler must not poison the run or trigger a respawn."""
        dim, components = make_components(seed=53, servers=3, support=200)
        coordinator, supervisor, killables = supervised_loopback(components, dim)
        killables[0].transient_kills = 1
        draws = coordinator.sample(weight_fn, 8, config=make_config(), seed=2)
        assert draws.indices.size == 8
        assert supervisor.restarts == 0  # probe succeeded: re-issue only
        coordinator.verify_wire_accounting()
        coordinator.close()

    def test_permanent_kill_without_respawner_is_worker_lost(self):
        dim, components = make_components(seed=54, servers=3, support=200)
        coordinator, supervisor, killables = supervised_loopback(
            components, dim, respawn=False
        )
        killables[1].dead = True
        with pytest.raises(WorkerLostError):
            coordinator.sample(weight_fn, 8, config=make_config(), seed=2)
        assert supervisor.lost_workers == (1,)
        coordinator.close()

    def test_restart_budget_exhaustion_is_worker_lost(self):
        dim, components = make_components(seed=55, servers=2, support=150)
        coordinator, supervisor, killables = supervised_loopback(
            components, dim, max_worker_restarts=1
        )
        killables[0].dead = True
        draws = coordinator.sample(weight_fn, 4, config=make_config(), seed=3)
        assert draws.indices.size == 4
        assert supervisor.restarts == 1
        killables[0].dead = True  # the replacement dies too: budget spent
        with pytest.raises(WorkerLostError):
            coordinator.sample(weight_fn, 4, config=make_config(), seed=4)
        assert supervisor.lost_workers == (0,)
        coordinator.close()

    def test_fatal_failure_is_not_retried(self):
        """A worker that *answers* with an error frame must surface as-is."""
        dim, components = make_components(seed=56, servers=2, support=150)
        coordinator, supervisor, killables = supervised_loopback(components, dim)
        inner = killables[0].service.handle_frame

        def error_on_sketch(frame):
            from repro.runtime import wire

            if wire.decode_frame(frame).op == "sketch":
                return wire.encode_frame(
                    "error", {"type": "RuntimeError", "message": "disk on fire"}
                )
            return inner(frame)

        killables[0].service.handle_frame = error_on_sketch
        with pytest.raises(WorkerProtocolError, match="disk on fire"):
            coordinator.sample(weight_fn, 4, config=make_config(), seed=3)
        assert supervisor.restarts == 0
        coordinator.close()

    def test_degraded_estimate_answers_from_checkpoints(self):
        dim, components = make_components(seed=57, servers=3, support=200)
        coordinator, supervisor, killables = supervised_loopback(
            components, dim, respawn=False
        )
        config = make_config()
        killables[1].dead = True
        with pytest.raises(WorkerLostError):
            coordinator.estimate(weight_fn, config=config, seed=9)
        degraded = coordinator.estimate(
            weight_fn, config=config, seed=9, stale_ok=True
        )
        assert isinstance(degraded, DegradedEstimate)
        assert degraded.stale
        assert degraded.lost_workers == (1,)
        assert "WorkerLostError" in degraded.cause
        # The degraded answer equals the simulated estimator over the
        # checkpointed components (no deltas ran: the initial components).
        reference = ZEstimator(
            weight_fn,
            epsilon=config.epsilon,
            hh_params=config.hh_params,
            num_levels=config.num_levels,
            max_levels=config.max_levels,
            min_level_count=config.min_level_count,
            seed=9,
        ).estimate(DistributedVector(components, dim, Network(len(components))))
        assert degraded.estimate.z_total == reference.z_total
        assert degraded.estimate.class_sizes == reference.class_sizes
        coordinator.close()

    def test_degraded_estimate_charges_nothing(self):
        """The local fallback adds no words beyond the failed attempt itself."""
        dim, components = make_components(seed=58, servers=2, support=150)
        coordinator, supervisor, killables = supervised_loopback(
            components, dim, respawn=False
        )
        killables[0].dead = True
        before = dict(coordinator.network.snapshot().words_by_tag)
        with pytest.raises(WorkerLostError):
            coordinator.estimate(weight_fn, config=make_config(), seed=1)
        after_failure = dict(coordinator.network.snapshot().words_by_tag)
        coordinator.estimate(weight_fn, config=make_config(), seed=1, stale_ok=True)
        after_degraded = dict(coordinator.network.snapshot().words_by_tag)
        failed_attempt_cost = {
            tag: after_failure.get(tag, 0) - before.get(tag, 0)
            for tag in after_failure
        }
        degraded_cost = {
            tag: after_degraded.get(tag, 0) - after_failure.get(tag, 0)
            for tag in after_degraded
        }
        # Both calls pay the same aborted-wave words; the checkpoint-based
        # computation itself runs on a throwaway network and adds nothing.
        assert degraded_cost == failed_attempt_cost
        coordinator.close()

    def test_unsupervised_estimate_ignores_stale_ok(self):
        dim, components = make_components(seed=59, servers=2, support=150)
        workers = [WorkerService(idx, val, dim) for idx, val in components[1:]]
        killable = KillableWorker(workers[0])
        coordinator = CoordinatorService(
            [LoopbackTransport(killable.handler)], dim, components[0]
        )
        killable.dead = True
        with pytest.raises(ConnectionError):
            coordinator.estimate(weight_fn, config=make_config(), seed=1, stale_ok=True)
        coordinator.close()

    def test_checkpoint_cadence_follows_update_waves(self):
        dim, components = make_components(seed=60, servers=3, support=200)
        coordinator, supervisor, _ = supervised_loopback(
            components, dim, checkpoint_every=2
        )
        base_support = [supervisor.checkpoints[w].support for w in (0, 1)]

        def delta_batch(seed):
            rng = np.random.default_rng(seed)
            return [
                (
                    rng.choice(dim, size=3, replace=False).astype(np.int64),
                    rng.integers(1, 5, size=3).astype(float),
                )
                for _ in range(len(components))
            ]

        coordinator.apply_deltas(delta_batch(1))
        # Wave 1 of 2: checkpoints unchanged, journal covers the wave.
        assert [
            supervisor.checkpoints[w].support for w in (0, 1)
        ] == base_support
        coordinator.apply_deltas(delta_batch(2))
        assert [supervisor.checkpoints[w].support for w in (0, 1)] == [
            support + 6 for support in base_support
        ]
        coordinator.verify_wire_accounting()
        coordinator.close()

    def test_supervisor_without_session_rejects_operations(self):
        supervisor = WorkerSupervisor()
        with pytest.raises(RuntimeError, match="not attached"):
            supervisor.heartbeat()
        with pytest.raises(RuntimeError, match="not attached"):
            supervisor.recover_worker(0)

    def test_heartbeat_monitor_requires_probe_factory(self):
        with pytest.raises(ValueError, match="probe_factory"):
            WorkerSupervisor(heartbeat_interval=0.1)
        with pytest.raises(ValueError, match="positive"):
            WorkerSupervisor(heartbeat_interval=0.0, probe_factory=lambda i: None)

    def test_recovered_checkpoint_books_identical_overhead(self):
        """Regression: the post-recovery checkpoint retry must be recorded.

        A worker killed exactly at a cadence checkpoint is recovered and
        checkpointed again; the retried frame is control plane like the
        first attempt would have been, so a kill/no-kill same-seed pair
        must book byte-identical control overhead (and, as always,
        identical draws and per-tag charged words).
        """

        class CheckpointKiller:
            """Kills the connection on the next ``checkpoint`` frame when armed."""

            def __init__(self, service):
                self.service = service
                self.checkpoint_kills = 0

            def handler(self, frame):
                from repro.runtime import wire

                if (
                    self.checkpoint_kills > 0
                    and wire.decode_frame(frame).op == "checkpoint"
                ):
                    self.checkpoint_kills -= 1
                    raise ConnectionResetError("killed at checkpoint")
                return self.service.handle_frame(frame)

        def run(kill):
            dim, components = make_components(seed=70, servers=3, support=200)
            killers = [
                CheckpointKiller(WorkerService(idx, val, dim))
                for idx, val in components[1:]
            ]

            def respawner(worker):
                replacement = CheckpointKiller(
                    WorkerService(*components[worker + 1], dim)
                )
                killers[worker] = replacement
                return LoopbackTransport(replacement.handler)

            supervisor = WorkerSupervisor(respawner, checkpoint_every=1)
            transports = [LoopbackTransport(k.handler) for k in killers]
            coordinator = CoordinatorService(
                transports, dim, components[0], supervisor=supervisor
            )
            try:
                rng = np.random.default_rng(123)

                def batch():
                    return [
                        (
                            rng.choice(dim, size=4, replace=False).astype(np.int64),
                            rng.integers(1, 5, size=4).astype(float),
                        )
                        for _ in range(len(components))
                    ]

                coordinator.apply_deltas(batch())
                if kill:
                    killers[0].checkpoint_kills = 1
                coordinator.apply_deltas(batch())  # the cadence checkpoint dies
                draws = coordinator.sample(weight_fn, 6, config=make_config(), seed=5)
                coordinator.verify_wire_accounting()
                return (
                    draws,
                    dict(coordinator.network.snapshot().words_by_tag),
                    coordinator.network.control_overhead_bytes,
                    supervisor.restarts,
                )
            finally:
                coordinator.close()

        draws_a, words_a, overhead_a, restarts_a = run(kill=False)
        draws_b, words_b, overhead_b, restarts_b = run(kill=True)
        assert restarts_a == 0 and restarts_b == 1  # the kill really happened
        assert_same_draws(draws_a, draws_b)
        assert words_a == words_b
        assert overhead_a == overhead_b

    def test_after_update_wave_counts_exactly_under_threads(self):
        """Regression: the wave counter must move under the supervisor's lock."""
        dim, components = make_components(seed=71, servers=2, support=100)
        coordinator, supervisor, _ = supervised_loopback(
            components, dim, checkpoint_every=10**9
        )
        threads, per_thread = 8, 400
        barrier = threading.Barrier(threads + 1)
        stop_reading = threading.Event()

        def hammer():
            barrier.wait()
            for _ in range(per_thread):
                supervisor.after_update_wave()

        def read_health():
            barrier.wait()
            while not stop_reading.is_set():
                supervisor.health()

        hammers = [threading.Thread(target=hammer) for _ in range(threads)]
        reader = threading.Thread(target=read_health)
        for thread in [*hammers, reader]:
            thread.start()
        for thread in hammers:
            thread.join()
        stop_reading.set()
        reader.join()
        assert supervisor._update_waves == threads * per_thread
        coordinator.close()

    def test_monitor_survives_poisoned_probe_teardown(self):
        """Regression: a probe whose close() raises must not kill the monitor."""
        dim, components = make_components(seed=72, servers=2, support=100)
        killables = [
            KillableWorker(WorkerService(idx, val, dim)) for idx, val in components[1:]
        ]

        class PoisonedCloseTransport(LoopbackTransport):
            def close(self):
                raise RuntimeError("teardown bomb")

        supervisor = WorkerSupervisor(
            heartbeat_interval=0.02,
            probe_factory=lambda worker: PoisonedCloseTransport(
                killables[worker].handler
            ),
        )
        transports = [LoopbackTransport(k.handler) for k in killables]
        coordinator = CoordinatorService(
            transports, dim, components[0], supervisor=supervisor
        )
        try:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if supervisor.health()[0].last_probe > 0:
                    break
                time.sleep(0.01)
            first = supervisor.health()[0].last_probe
            assert first > 0
            # That probe's close() raised; the thread must keep probing.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if supervisor.health()[0].last_probe > first:
                    break
                time.sleep(0.01)
            assert supervisor.health()[0].last_probe > first
            killables[0].dead = True
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if not supervisor.health()[0].healthy:
                    break
                time.sleep(0.01)
            assert not supervisor.health()[0].healthy
        finally:
            coordinator.close()

    def test_background_monitor_observes_health(self):
        dim, components = make_components(seed=61, servers=2, support=100)
        killables = [
            KillableWorker(WorkerService(idx, val, dim)) for idx, val in components[1:]
        ]
        supervisor = WorkerSupervisor(
            heartbeat_interval=0.05,
            probe_factory=lambda worker: LoopbackTransport(
                killables[worker].handler
            ),
        )
        transports = [LoopbackTransport(k.handler) for k in killables]
        coordinator = CoordinatorService(
            transports, dim, components[0], supervisor=supervisor
        )
        deadline = __import__("time").monotonic() + 5.0
        while __import__("time").monotonic() < deadline:
            if supervisor.health()[0].last_probe > 0:
                break
            __import__("time").sleep(0.02)
        assert supervisor.health()[0].healthy
        killables[0].dead = True
        deadline = __import__("time").monotonic() + 5.0
        while __import__("time").monotonic() < deadline:
            if not supervisor.health()[0].healthy:
                break
            __import__("time").sleep(0.02)
        assert not supervisor.health()[0].healthy
        coordinator.close()  # stops the monitor thread
