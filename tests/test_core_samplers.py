"""Tests for the row samplers used by Algorithm 1."""

import numpy as np
import pytest

from repro.core.samplers import (
    ExactNormSampler,
    GeneralizedZRowSampler,
    RowSample,
    UniformRowSampler,
    softmax_row_sampler,
)
from repro.distributed import LocalCluster, entrywise_partition
from repro.functions import GeneralizedMeanFunction, HuberPsi, Identity
from repro.sketch.z_heavy_hitters import ZHeavyHittersParams
from repro.sketch.z_sampler import ZSamplerConfig
from repro.utils.linalg import row_norms_squared


def z_config():
    return ZSamplerConfig(
        hh_params=ZHeavyHittersParams(b=8, repetitions=1, num_buckets=8),
        max_levels=6,
        min_level_count=2,
    )


class TestRowSampleDataclass:
    def test_valid_sample(self):
        sample = RowSample(np.array([0, 1]), np.array([0.5, 0.5]))
        assert sample.num_samples == 2

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            RowSample(np.array([0, 1]), np.array([0.5]))

    def test_nonpositive_probability_raises(self):
        with pytest.raises(ValueError):
            RowSample(np.array([0]), np.array([0.0]))

    def test_global_rows_length_checked(self):
        with pytest.raises(ValueError):
            RowSample(np.array([0, 1]), np.array([0.5, 0.5]), global_rows=np.zeros((1, 3)))


class TestUniformRowSampler:
    def test_probabilities_are_one_over_n(self, identity_cluster):
        sample = UniformRowSampler().sample_rows(identity_cluster, 20, seed=0)
        np.testing.assert_allclose(sample.probabilities, 1.0 / identity_cluster.num_rows)

    def test_no_communication(self, identity_cluster):
        before = identity_cluster.network.total_words
        UniformRowSampler().sample_rows(identity_cluster, 50, seed=0)
        assert identity_cluster.network.total_words == before

    def test_indices_in_range(self, identity_cluster):
        sample = UniformRowSampler().sample_rows(identity_cluster, 100, seed=1)
        assert sample.row_indices.min() >= 0
        assert sample.row_indices.max() < identity_cluster.num_rows

    def test_invalid_count(self, identity_cluster):
        with pytest.raises(ValueError):
            UniformRowSampler().sample_rows(identity_cluster, 0)

    def test_deterministic_given_seed(self, identity_cluster):
        a = UniformRowSampler().sample_rows(identity_cluster, 10, seed=3)
        b = UniformRowSampler().sample_rows(identity_cluster, 10, seed=3)
        np.testing.assert_array_equal(a.row_indices, b.row_indices)


class TestExactNormSampler:
    def test_probabilities_proportional_to_norms(self, identity_cluster, low_rank_matrix):
        sample = ExactNormSampler().sample_rows(identity_cluster, 30, seed=0)
        norms = row_norms_squared(low_rank_matrix)
        expected = norms / norms.sum()
        np.testing.assert_allclose(sample.probabilities, expected[sample.row_indices], rtol=1e-6)

    def test_heavy_rows_drawn_more_often(self, rng):
        data = rng.normal(size=(50, 10)) * 0.01
        data[7] = 100.0  # one dominant row
        cluster = LocalCluster([data])
        sample = ExactNormSampler().sample_rows(cluster, 200, seed=1)
        assert np.mean(sample.row_indices == 7) > 0.9

    def test_global_rows_provided(self, identity_cluster, low_rank_matrix):
        sample = ExactNormSampler().sample_rows(identity_cluster, 10, seed=2)
        np.testing.assert_allclose(
            sample.global_rows, low_rank_matrix[sample.row_indices], atol=1e-8
        )

    def test_probability_noise(self, identity_cluster):
        sampler = ExactNormSampler(probability_noise=0.2)
        sample = sampler.sample_rows(identity_cluster, 50, seed=3)
        exact = sample.metadata["exact_distribution"][sample.row_indices]
        ratio = sample.probabilities / exact
        assert np.all(ratio >= 0.8 - 1e-9)
        assert np.all(ratio <= 1.2 + 1e-9)

    def test_is_marked_oracle(self):
        assert ExactNormSampler().is_oracle
        assert not UniformRowSampler().is_oracle

    def test_invalid_noise(self):
        with pytest.raises(ValueError):
            ExactNormSampler(probability_noise=1.0)

    def test_zero_matrix_raises(self):
        cluster = LocalCluster([np.zeros((5, 4))])
        with pytest.raises(ValueError):
            ExactNormSampler().sample_rows(cluster, 3)


class TestGeneralizedZRowSampler:
    @pytest.fixture
    def huber_cluster(self, rng):
        data = rng.normal(size=(60, 20)) * 0.5
        data[5, 3] = 1e4  # a corrupted entry the Huber weight will cap
        return LocalCluster(entrywise_partition(data, 3, seed=0), HuberPsi(2.0))

    def test_sample_shape_and_rows_provided(self, huber_cluster):
        sampler = GeneralizedZRowSampler(config=z_config())
        sample = sampler.sample_rows(huber_cluster, 25, seed=0)
        assert sample.num_samples == 25
        assert sample.global_rows.shape == (25, huber_cluster.num_columns)
        assert sample.words_used > 0

    def test_global_rows_match_function_of_sum(self, huber_cluster):
        sampler = GeneralizedZRowSampler(config=z_config())
        sample = sampler.sample_rows(huber_cluster, 15, seed=1)
        global_matrix = huber_cluster.materialize_global()
        np.testing.assert_allclose(
            sample.global_rows, global_matrix[sample.row_indices], atol=1e-6
        )

    def test_probabilities_approximate_row_weight_share(self, huber_cluster):
        sampler = GeneralizedZRowSampler(config=z_config())
        sample = sampler.sample_rows(huber_cluster, 20, seed=2)
        function = huber_cluster.function
        summed = huber_cluster.materialize_sum()
        weights = function.sampling_weight(summed).sum(axis=1)
        true_share = weights[sample.row_indices] / weights.sum()
        # Qhat is the row weight over Zhat; Zhat is a constant-factor estimate.
        ratio = sample.probabilities / true_share
        assert np.all(ratio > 0.2)
        assert np.all(ratio < 5.0)

    def test_explicit_function_overrides_cluster(self, rng):
        data = np.abs(rng.normal(size=(40, 10)))
        cluster = LocalCluster(entrywise_partition(data, 2, seed=1), Identity())
        sampler = GeneralizedZRowSampler(HuberPsi(1.0), config=z_config())
        sample = sampler.sample_rows(cluster, 10, seed=3)
        assert sample.num_samples == 10

    def test_missing_function_raises(self, rng):
        # The cluster's default function is a plain callable, not an
        # EntrywiseFunction, so the sampler cannot derive a weight from it.
        data = rng.normal(size=(20, 5))
        cluster = LocalCluster(entrywise_partition(data, 2, seed=2))
        sampler = GeneralizedZRowSampler(config=z_config())
        with pytest.raises(TypeError):
            sampler.sample_rows(cluster, 5, seed=0)

    def test_invalid_count(self, huber_cluster):
        with pytest.raises(ValueError):
            GeneralizedZRowSampler(config=z_config()).sample_rows(huber_cluster, 0)


class TestSoftmaxRowSampler:
    def test_factory_returns_gm_sampler(self):
        sampler = softmax_row_sampler(5.0)
        assert isinstance(sampler, GeneralizedZRowSampler)

    def test_end_to_end_on_gm_cluster(self, rng):
        raw_locals = [np.abs(rng.normal(size=(40, 12))) for _ in range(4)]
        fn = GeneralizedMeanFunction(5.0)
        cluster = fn.build_cluster(raw_locals)
        sampler = softmax_row_sampler(5.0, z_config())
        sample = sampler.sample_rows(cluster, 15, seed=0)
        assert sample.num_samples == 15
        np.testing.assert_allclose(
            sample.global_rows,
            cluster.materialize_global()[sample.row_indices],
            atol=1e-6,
        )
