"""Integration tests for Algorithm 1 (DistributedPCA) across samplers and functions."""

import numpy as np
import pytest

from repro.core import (
    DistributedPCA,
    ExactNormSampler,
    GeneralizedZRowSampler,
    UniformRowSampler,
    practical_sample_count,
)
from repro.distributed import LocalCluster, arbitrary_partition, entrywise_partition, row_partition
from repro.functions import HuberPsi
from repro.sketch.z_heavy_hitters import ZHeavyHittersParams
from repro.sketch.z_sampler import ZSamplerConfig


def z_config():
    return ZSamplerConfig(
        hh_params=ZHeavyHittersParams(b=8, repetitions=1, num_buckets=8),
        max_levels=6,
        min_level_count=2,
    )


class TestConstruction:
    def test_requires_samples_or_epsilon(self):
        with pytest.raises(ValueError):
            DistributedPCA(k=3)

    def test_epsilon_derives_sample_count(self):
        pca = DistributedPCA(k=3, epsilon=0.3)
        assert pca.num_samples == practical_sample_count(3, 0.3)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DistributedPCA(k=0, num_samples=10)
        with pytest.raises(ValueError):
            DistributedPCA(k=2, num_samples=0)
        with pytest.raises(ValueError):
            DistributedPCA(k=2, num_samples=10, repetitions=0)

    def test_k_larger_than_columns_rejected_at_fit(self, identity_cluster):
        pca = DistributedPCA(k=identity_cluster.num_columns + 1, num_samples=10)
        with pytest.raises(ValueError):
            pca.fit(identity_cluster)


class TestTheorem1AdditiveError:
    """Theorem 1: the output is an O(eps) additive-error approximation."""

    def test_exact_sampler_additive_error(self, identity_cluster):
        result = DistributedPCA(
            k=5, num_samples=300, sampler=ExactNormSampler(), seed=0
        ).fit(identity_cluster)
        report = result.evaluate(identity_cluster.materialize_global())
        assert report["additive_error"] < 0.05

    def test_noisy_probabilities_still_work(self, identity_cluster):
        """Lemma 3's tolerance of (1 +/- gamma)-approximate probabilities."""
        result = DistributedPCA(
            k=5,
            num_samples=300,
            sampler=ExactNormSampler(probability_noise=0.3),
            seed=0,
        ).fit(identity_cluster)
        report = result.evaluate(identity_cluster.materialize_global())
        assert report["additive_error"] < 0.08

    def test_error_decreases_with_samples(self, identity_cluster):
        errors = []
        for num_samples in (15, 400):
            result = DistributedPCA(
                k=5, num_samples=num_samples, sampler=ExactNormSampler(), seed=1
            ).fit(identity_cluster)
            errors.append(
                result.evaluate(identity_cluster.materialize_global())["additive_error"]
            )
        assert errors[1] < errors[0]

    def test_repetitions_never_hurt_much(self, identity_cluster):
        single = DistributedPCA(k=4, num_samples=60, seed=2).fit(identity_cluster)
        boosted = DistributedPCA(k=4, num_samples=60, repetitions=4, seed=2).fit(
            identity_cluster
        )
        global_matrix = identity_cluster.materialize_global()
        err_single = single.evaluate(global_matrix)["additive_error"]
        err_boosted = boosted.evaluate(global_matrix)["additive_error"]
        assert err_boosted <= err_single + 0.05
        assert len(boosted.metadata["repetition_scores"]) == 4


class TestCommunicationAccounting:
    def test_row_collection_cost(self, identity_cluster):
        """Without sampler communication, the bill is r x d x (s-1) words for
        unique sampled rows (duplicates are collected once)."""
        result = DistributedPCA(k=3, num_samples=40, seed=0).fit(identity_cluster)
        d = identity_cluster.num_columns
        workers = identity_cluster.num_servers - 1
        unique_rows = np.unique(result.row_indices).size
        assert result.communication_words == unique_rows * d * workers

    def test_more_samples_more_communication(self, identity_cluster):
        small = DistributedPCA(k=3, num_samples=20, seed=0).fit(identity_cluster)
        large = DistributedPCA(k=3, num_samples=100, seed=0).fit(identity_cluster)
        assert large.communication_words > small.communication_words

    def test_repetitions_multiply_communication(self, identity_cluster):
        one = DistributedPCA(k=3, num_samples=30, seed=3).fit(identity_cluster)
        three = DistributedPCA(k=3, num_samples=30, repetitions=3, seed=3).fit(
            identity_cluster
        )
        assert three.communication_words > 2 * one.communication_words

    def test_input_words_recorded(self, identity_cluster):
        result = DistributedPCA(k=3, num_samples=10, seed=0).fit(identity_cluster)
        assert result.input_words == identity_cluster.total_input_words()


class TestAcrossPartitionModels:
    @pytest.mark.parametrize("partition", [arbitrary_partition, row_partition, entrywise_partition])
    def test_identity_function_all_partitions(self, low_rank_matrix, partition):
        cluster = LocalCluster(partition(low_rank_matrix, 4, seed=0))
        result = DistributedPCA(
            k=5, num_samples=250, sampler=ExactNormSampler(), seed=1
        ).fit(cluster)
        report = result.evaluate(low_rank_matrix)
        assert report["additive_error"] < 0.08


class TestGeneralizedPartitionWithFunction:
    def test_huber_cluster_with_z_sampler(self, rng):
        data = rng.normal(size=(80, 24)) @ np.eye(24) * 0.5
        data[rng.integers(0, 80, 5), rng.integers(0, 24, 5)] = 1e4
        cluster = LocalCluster(entrywise_partition(data, 4, seed=0), HuberPsi(2.0))
        sampler = GeneralizedZRowSampler(config=z_config())
        result = DistributedPCA(k=4, num_samples=80, sampler=sampler, seed=2).fit(cluster)
        report = result.evaluate(cluster.materialize_global())
        assert report["additive_error"] < 0.35
        assert result.is_valid_projection()

    def test_uniform_sampler_name_recorded(self, identity_cluster):
        result = DistributedPCA(
            k=3, num_samples=20, sampler=UniformRowSampler(), seed=0
        ).fit(identity_cluster)
        assert result.sampler_name == "uniform"


class TestDeterminism:
    def test_same_seed_same_projection(self, identity_cluster):
        a = DistributedPCA(k=4, num_samples=50, seed=11).fit(identity_cluster)
        b = DistributedPCA(k=4, num_samples=50, seed=11).fit(identity_cluster)
        np.testing.assert_allclose(a.projection, b.projection)

    def test_different_seed_different_rows(self, identity_cluster):
        a = DistributedPCA(k=4, num_samples=50, seed=1).fit(identity_cluster)
        b = DistributedPCA(k=4, num_samples=50, seed=2).fit(identity_cluster)
        assert not np.array_equal(a.row_indices, b.row_indices)
