"""Tests for the softmax / generalized mean application (Section VI-B)."""

import numpy as np
import pytest

from repro.functions import GeneralizedMeanFunction, entrywise_max, generalized_mean
from repro.functions.maximum import max_aggregation_error


class TestGeneralizedMeanScalar:
    def test_p1_is_mean_of_abs(self):
        values = np.array([[1.0, -2.0], [3.0, 4.0]])
        np.testing.assert_allclose(
            generalized_mean(values, 1.0, axis=0), [2.0, 3.0]
        )

    def test_large_p_approaches_max(self):
        values = np.array([[1.0, 5.0], [4.0, 2.0], [2.0, 3.0]])
        gm = generalized_mean(values, 50.0, axis=0)
        np.testing.assert_allclose(gm, [4.0, 5.0], rtol=0.05)

    def test_monotone_in_p(self):
        """GM_p is non-decreasing in p (power mean inequality)."""
        rng = np.random.default_rng(0)
        values = np.abs(rng.normal(size=(6, 20))) + 0.1
        previous = generalized_mean(values, 1.0, axis=0)
        for p in (2.0, 5.0, 10.0, 20.0):
            current = generalized_mean(values, p, axis=0)
            assert np.all(current >= previous - 1e-9)
            previous = current

    def test_bounded_by_max(self):
        rng = np.random.default_rng(1)
        values = np.abs(rng.normal(size=(5, 30)))
        for p in (1.0, 3.0, 10.0):
            assert np.all(generalized_mean(values, p, axis=0) <= values.max(axis=0) + 1e-12)

    def test_rejects_nonpositive_p(self):
        with pytest.raises(ValueError):
            generalized_mean(np.ones((2, 2)), 0.0)


class TestGeneralizedMeanFunction:
    def test_rejects_p_below_one(self):
        with pytest.raises(ValueError):
            GeneralizedMeanFunction(0.5)

    def test_apply_is_p_th_root(self):
        fn = GeneralizedMeanFunction(2.0)
        np.testing.assert_allclose(fn([4.0, 9.0]), [2.0, 3.0])

    def test_negative_inputs_clamped(self):
        fn = GeneralizedMeanFunction(2.0)
        assert fn([-1e-9])[0] == 0.0

    def test_sampling_weight(self):
        fn = GeneralizedMeanFunction(4.0)
        x = np.array([16.0])
        np.testing.assert_allclose(fn.sampling_weight(x), [16.0 ** 0.5])

    def test_local_transform(self):
        fn = GeneralizedMeanFunction(3.0)
        raw = np.array([[2.0, -1.0]])
        np.testing.assert_allclose(fn.local_transform(raw, 4), [[8.0 / 4.0, 1.0 / 4.0]])

    def test_cluster_realises_gm(self, rng):
        """f(sum of transformed locals) equals GM_p of the raw locals."""
        raw_locals = [np.abs(rng.normal(size=(15, 8))) for _ in range(5)]
        for p in (1.0, 2.0, 5.0, 20.0):
            fn = GeneralizedMeanFunction(p)
            cluster = fn.build_cluster(raw_locals)
            np.testing.assert_allclose(
                cluster.materialize_global(),
                fn.aggregate_reference(raw_locals),
                atol=1e-8,
            )

    def test_large_p_cluster_close_to_max(self, rng):
        raw_locals = [np.abs(rng.normal(size=(10, 6))) + 0.05 for _ in range(4)]
        fn = GeneralizedMeanFunction(20.0)
        cluster = fn.build_cluster(raw_locals)
        true_max = entrywise_max(raw_locals)
        gm = cluster.materialize_global()
        assert np.linalg.norm(gm - true_max) / np.linalg.norm(true_max) < 0.2

    def test_max_approximation_gap_decreases_with_p(self, rng):
        raw_locals = [np.abs(rng.normal(size=(12, 10))) for _ in range(6)]
        gap_small_p = GeneralizedMeanFunction(2.0).max_approximation_gap(raw_locals)
        gap_large_p = GeneralizedMeanFunction(30.0).max_approximation_gap(raw_locals)
        assert gap_large_p < gap_small_p


class TestMaxAggregation:
    def test_entrywise_max(self):
        locals_ = [np.array([[1.0, -5.0]]), np.array([[3.0, 2.0]])]
        np.testing.assert_allclose(entrywise_max(locals_), [[3.0, 5.0]])

    def test_entrywise_max_empty_raises(self):
        with pytest.raises(ValueError):
            entrywise_max([])

    def test_error_metrics_shrink_with_p(self, rng):
        locals_ = [np.abs(rng.normal(size=(20, 10))) for _ in range(5)]
        err_p2 = max_aggregation_error(locals_, 2.0)
        err_p20 = max_aggregation_error(locals_, 20.0)
        assert err_p20["frobenius_relative_gap"] < err_p2["frobenius_relative_gap"]
        assert err_p20["mean_relative_gap"] < err_p2["mean_relative_gap"]

    def test_zero_gap_for_identical_locals(self, rng):
        m = np.abs(rng.normal(size=(5, 5)))
        err = max_aggregation_error([m, m, m], 20.0)
        # GM_p of identical values equals the value itself for every p.
        assert err["max_abs_gap"] == pytest.approx(0.0, abs=1e-9)
