"""Tests for repro.functions.base (property P verification and the base class)."""

import numpy as np
import pytest

from repro.functions import (
    FairPsi,
    GeneralizedMeanFunction,
    HuberPsi,
    Identity,
    L1L2Psi,
)
from repro.functions.base import property_p_violations, satisfies_property_p
from repro.functions.power import AbsolutePower


class TestPropertyPOfPaperFunctions:
    """Section V / VI: which weight functions the generalized sampler supports."""

    def test_identity_satisfies_p(self):
        assert satisfies_property_p(Identity())

    def test_huber_satisfies_p(self):
        assert satisfies_property_p(HuberPsi(1.0))
        assert satisfies_property_p(HuberPsi(5.0))

    def test_l1_l2_satisfies_p(self):
        assert satisfies_property_p(L1L2Psi())

    def test_fair_satisfies_p(self):
        assert satisfies_property_p(FairPsi(1.0))
        assert satisfies_property_p(FairPsi(3.0))

    def test_generalized_mean_satisfies_p(self):
        # The GM application only ever sees non-negative summed entries
        # (locals are (1/s)|M^t|^p), so property P is required on x >= 0.
        for p in (1.0, 2.0, 5.0, 20.0):
            assert satisfies_property_p(
                GeneralizedMeanFunction(p), lower=0.0, include_negative=False
            )

    def test_subquadratic_power_satisfies_p(self):
        assert satisfies_property_p(AbsolutePower(1.0))
        assert satisfies_property_p(AbsolutePower(0.5))

    def test_superquadratic_power_violates_p(self):
        """f = |x|^p for p > 1 gives z = |x|^{2p}; x^2/z is then decreasing."""
        assert not satisfies_property_p(AbsolutePower(2.0))
        assert not satisfies_property_p(AbsolutePower(3.0))


class TestPropertyPViolations:
    def test_reports_nonzero_at_zero(self):
        violations = property_p_violations(lambda x: np.asarray(x) * 0 + 1.0, np.linspace(0, 5, 10))
        assert any("z(0)" in reason for _, _, reason in violations)

    def test_reports_decreasing_z(self):
        violations = property_p_violations(
            lambda x: np.where(np.abs(np.asarray(x)) > 0, 1.0 / (np.abs(np.asarray(x)) + 1), 0.0),
            np.linspace(0.1, 5, 20),
        )
        assert violations

    def test_reports_negative_weight(self):
        violations = property_p_violations(lambda x: -np.abs(np.asarray(x)), np.linspace(0, 2, 5))
        assert any("negative" in reason for _, _, reason in violations)

    def test_clean_function_has_no_violations(self):
        assert property_p_violations(lambda x: np.asarray(x) ** 2, np.linspace(-3, 3, 50)) == []


class TestEntrywiseFunctionInterface:
    def test_call_vectorises(self):
        fn = HuberPsi(1.0)
        out = fn([[0.5, 2.0], [-3.0, 0.0]])
        assert out.shape == (2, 2)
        np.testing.assert_allclose(out, [[0.5, 1.0], [-1.0, 0.0]])

    def test_default_sampling_weight_is_square(self):
        fn = L1L2Psi()
        x = np.linspace(-3, 3, 11)
        np.testing.assert_allclose(fn.sampling_weight(x), fn(x) ** 2)

    def test_weight_distortion_default(self):
        assert Identity().weight_distortion() == 1.0

    def test_preserves_zero(self):
        assert HuberPsi(1.0).preserves_zero()
        assert Identity().preserves_zero()

    def test_describe_returns_string(self):
        for fn in (Identity(), HuberPsi(2.0), FairPsi(), L1L2Psi()):
            assert isinstance(fn.describe(), str) and fn.describe()
