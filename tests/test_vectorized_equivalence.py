"""Equivalence tests: the fused sketch engine vs the naive reference engine.

The vectorized (fused) engine must be a pure local-compute optimization:
for a fixed seed it has to produce bit-for-bit identical hash values,
CountSketch tables, point estimates, Z-HeavyHitters candidates, Z-estimates
and sampler draws as the retained naive reference implementation -- and
therefore charge exactly the same number of network words per tag.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.distributed.cluster import LocalCluster
from repro.distributed.network import Network
from repro.distributed.vector import DistributedVector
from repro.core.samplers import GeneralizedZRowSampler
from repro.functions import HuberPsi, Identity
from repro.sketch import engine
from repro.sketch.countsketch import BatchedCountSketch, CountSketch, _row_median
from repro.sketch.hashing import (
    KWiseHash,
    SubsampleHash,
    _polynomial_hash,
    gathered_polynomial_hash,
    range_reduce,
    stacked_polynomial_hash,
)
from repro.sketch.z_estimator import ZEstimator
from repro.sketch.z_heavy_hitters import ZHeavyHittersParams, z_heavy_hitters
from repro.sketch.z_sampler import ZSampler, ZSamplerConfig


def split_dense(dense, num_servers, rng):
    """Split a dense vector into per-server sparse components."""
    parts = [rng.normal(scale=0.01, size=dense.size) for _ in range(num_servers - 1)]
    parts.append(dense - np.sum(parts, axis=0))
    components = []
    for vec in parts:
        idx = np.nonzero(vec)[0].astype(np.int64)
        components.append((idx, vec[idx]))
    return components


def make_vector(dense, num_servers=3, seed=99):
    rng = np.random.default_rng(seed)
    components = split_dense(dense, num_servers, rng)
    return DistributedVector(components, dense.size, Network(num_servers))


class TestHashEquivalence:
    def test_stacked_matches_reference_polynomial(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 2**31 - 1, size=4096, dtype=np.int64)
        for k in (1, 2, 3, 4, 5, 16, 17):
            coeffs = rng.integers(0, 2**31 - 1, size=(6, k), dtype=np.int64)
            reference = np.stack([_polynomial_hash(keys, c) for c in coeffs])
            np.testing.assert_array_equal(
                stacked_polynomial_hash(keys, coeffs), reference
            )

    def test_gathered_matches_reference_polynomial(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 2**31 - 1, size=512, dtype=np.int64)
        for k in (2, 4, 16):
            families = rng.integers(0, 2**31 - 1, size=(5, 3, k), dtype=np.int64)
            selector = rng.integers(0, 5, size=keys.size)
            reference = np.empty((3, keys.size), dtype=np.uint64)
            for i in range(keys.size):
                for h in range(3):
                    reference[h, i] = _polynomial_hash(
                        keys[i : i + 1], families[selector[i], h]
                    )[0]
            np.testing.assert_array_equal(
                gathered_polynomial_hash(keys, families, selector), reference
            )

    def test_kwise_hash_engine_independent(self):
        keys = np.arange(10_000, dtype=np.int64)
        for range_size in (2, 8, 100, 1024, 12345):
            h = KWiseHash(4, range_size, seed=3)
            fused = h(keys)
            with engine.naive_reference():
                naive = h(keys)
            np.testing.assert_array_equal(fused, naive)

    def test_range_reduce_matches_modulo(self):
        values = np.arange(0, 2**31 - 1, 9173, dtype=np.uint64)
        for range_size in (2, 8, 64, 100, 4096, 999):
            np.testing.assert_array_equal(
                range_reduce(values, range_size), values % np.uint64(range_size)
            )

    def test_row_median_matches_numpy(self):
        rng = np.random.default_rng(4)
        for depth in (3, 4, 5, 6, 7, 11):
            estimates = rng.normal(size=(1000, depth))
            np.testing.assert_array_equal(
                _row_median(estimates), np.median(estimates, axis=1)
            )


class TestCountSketchEquivalence:
    @pytest.mark.parametrize("depth,width", [(3, 64), (5, 100), (6, 128)])
    def test_sketch_identical(self, depth, width):
        rng = np.random.default_rng(5)
        domain = 5000
        idx = np.sort(rng.choice(domain, size=800, replace=False)).astype(np.int64)
        val = rng.normal(size=800)
        sketch = CountSketch(depth, width, domain, seed=7)
        fused = sketch.sketch(idx, val)
        with engine.naive_reference():
            naive = sketch.sketch(idx, val)
        np.testing.assert_array_equal(fused, naive)

    def test_sketch_identical_after_cache_builds(self):
        """Repeated sketching triggers the domain hash cache; outputs must not change."""
        rng = np.random.default_rng(6)
        domain = 2000
        sketch = CountSketch(5, 64, domain, seed=8)
        idx = np.sort(rng.choice(domain, size=1500, replace=False)).astype(np.int64)
        val = rng.normal(size=1500)
        first = sketch.sketch(idx, val)
        for _ in range(3):  # accumulate past the amortization threshold
            repeat = sketch.sketch(idx, val)
            np.testing.assert_array_equal(repeat, first)
        assert sketch._flat_cache is not None
        with engine.naive_reference():
            naive = sketch.sketch(idx, val)
        np.testing.assert_array_equal(first, naive)

    def test_estimate_and_estimate_all_identical(self):
        rng = np.random.default_rng(7)
        domain = 4000
        sketch = CountSketch(5, 128, domain, seed=9)
        vec = rng.normal(size=domain)
        idx = np.nonzero(vec)[0]
        table = sketch.sketch(idx, vec[idx])
        query = rng.choice(domain, size=500, replace=False).astype(np.int64)
        fused_point = sketch.estimate(table, query)
        fused_all = sketch.estimate_all(table, block=1000)
        with engine.naive_reference():
            naive_point = sketch.estimate(table, query)
            naive_all = sketch.estimate_all(table, block=1000)
        np.testing.assert_array_equal(fused_point, naive_point)
        np.testing.assert_array_equal(fused_all, naive_all)

    def test_batched_matches_per_bucket_sketches(self):
        rng = np.random.default_rng(8)
        domain, num_buckets = 3000, 6
        sketches = [CountSketch(5, 64, domain, seed=100 + b) for b in range(num_buckets)]
        batched = BatchedCountSketch(sketches)
        idx = np.sort(rng.choice(domain, size=900, replace=False)).astype(np.int64)
        val = rng.normal(size=900)
        assignment = rng.integers(0, num_buckets, size=900)
        tables = batched.sketch_assigned(idx, val, assignment)
        for bucket in range(num_buckets):
            mask = assignment == bucket
            with engine.naive_reference():
                expected = sketches[bucket].sketch(idx[mask], val[mask])
            np.testing.assert_array_equal(tables[bucket], expected)

    def test_batched_cached_estimates_match_member(self):
        rng = np.random.default_rng(9)
        domain, num_buckets = 2000, 4
        sketches = [CountSketch(5, 32, domain, seed=50 + b) for b in range(num_buckets)]
        batched = BatchedCountSketch(sketches)
        assignment = rng.integers(0, num_buckets, size=domain)
        members = [np.flatnonzero(assignment == b) for b in range(num_buckets)]
        assert batched.build_domain_cache(members)
        idx = np.arange(domain, dtype=np.int64)
        val = rng.normal(size=domain)
        tables = batched.sketch_assigned(idx, val, assignment)
        for bucket in range(num_buckets):
            query = members[bucket][:100]
            if query.size == 0:
                continue
            cached = batched.estimate_member(bucket, tables[bucket], query)
            with engine.naive_reference():
                reference = sketches[bucket].estimate(tables[bucket], query)
            np.testing.assert_array_equal(cached, reference)


class TestProtocolEquivalence:
    def test_z_heavy_hitters_candidates_and_words(self):
        rng = np.random.default_rng(10)
        dense = rng.normal(size=1500) * 0.1
        dense[[7, 300, 1200]] = [60.0, -80.0, 55.0]
        params = ZHeavyHittersParams(b=16, repetitions=2, num_buckets=8)

        fused_vec = make_vector(dense)
        fused = z_heavy_hitters(fused_vec, params, seed=11)
        naive_vec = make_vector(dense)
        with engine.naive_reference():
            naive = z_heavy_hitters(naive_vec, params, seed=11)

        np.testing.assert_array_equal(fused, naive)
        assert (
            fused_vec.network.snapshot().words_by_tag
            == naive_vec.network.snapshot().words_by_tag
        )

    def test_z_estimator_identical(self):
        rng = np.random.default_rng(12)
        dense = np.zeros(1024)
        dense[rng.choice(1024, size=50, replace=False)] = rng.normal(size=50) * 20
        weight = HuberPsi(2.0).sampling_weight
        params = ZHeavyHittersParams(b=16, repetitions=2, num_buckets=8)

        fused_vec = make_vector(dense)
        fused = ZEstimator(weight, hh_params=params, seed=13).estimate(fused_vec)
        naive_vec = make_vector(dense)
        with engine.naive_reference():
            naive = ZEstimator(weight, hh_params=params, seed=13).estimate(naive_vec)

        assert fused.z_total == naive.z_total
        assert fused.class_sizes == naive.class_sizes
        assert fused.member_values == naive.member_values
        assert set(fused.class_members) == set(naive.class_members)
        for klass in fused.class_members:
            np.testing.assert_array_equal(
                fused.class_members[klass], naive.class_members[klass]
            )
        assert fused.words_used == naive.words_used

    def test_z_sampler_draws_identical(self):
        """Draws share one (vectorized) implementation under both engines,
        so this pins the estimate phase: identical estimates feed identical
        RNG state and member tables, hence identical draws."""
        rng = np.random.default_rng(14)
        dense = np.zeros(600)
        dense[rng.choice(600, size=25, replace=False)] = rng.uniform(5, 40, size=25)
        config = ZSamplerConfig(
            hh_params=ZHeavyHittersParams(b=16, repetitions=2, num_buckets=8)
        )

        fused_vec = make_vector(dense)
        fused = ZSampler(Identity().sampling_weight, config, seed=15).sample(fused_vec, 40)
        naive_vec = make_vector(dense)
        with engine.naive_reference():
            naive = ZSampler(Identity().sampling_weight, config, seed=15).sample(
                naive_vec, 40
            )

        np.testing.assert_array_equal(fused.indices, naive.indices)
        np.testing.assert_array_equal(fused.probabilities, naive.probabilities)
        np.testing.assert_array_equal(fused.values, naive.values)
        assert fused.failures == naive.failures

    def test_sample_rows_words_per_tag_unchanged(self):
        """Acceptance: for a fixed seed, the refactored engine charges exactly
        the words per tag (sampler:gather_rows, z_heavy_hitters:*) that the
        naive reference implementation charges."""
        config = ZSamplerConfig(
            hh_params=ZHeavyHittersParams(b=16, repetitions=2, num_buckets=8)
        )

        def run(naive):
            rng = np.random.default_rng(16)
            total = rng.normal(size=(150, 20)) * 0.1
            total[rng.choice(150, size=6, replace=False)] *= 50
            parts = [rng.normal(scale=0.01, size=(150, 20)) for _ in range(2)]
            parts.append(total - np.sum(parts, axis=0))
            cluster = LocalCluster(parts, Identity())
            sampler = GeneralizedZRowSampler(Identity(), config)
            if naive:
                with engine.naive_reference():
                    sample = sampler.sample_rows(cluster, 30, seed=17)
            else:
                sample = sampler.sample_rows(cluster, 30, seed=17)
            return sample, cluster.network.snapshot().words_by_tag

        fused_sample, fused_words = run(naive=False)
        naive_sample, naive_words = run(naive=True)

        np.testing.assert_array_equal(
            fused_sample.row_indices, naive_sample.row_indices
        )
        assert fused_sample.words_used == naive_sample.words_used
        assert fused_words == naive_words
        assert fused_words["sampler:gather_rows"] > 0
        # The Z-HeavyHitters invocations inside the estimator charge the
        # per-bucket sketch-table traffic under ...:bucket:* tags.
        assert any(tag.endswith(":bucket:tables") for tag in fused_words)


class TestSupportingChanges:
    def test_restrict_by_masks_matches_predicate(self):
        rng = np.random.default_rng(18)
        dense = rng.normal(size=512)
        vector = make_vector(dense)
        subsample = SubsampleHash(domain_scale=512, seed=19)
        for level in (1, 2, 3):
            by_predicate = vector.restrict(subsample.level_predicate(level))
            threshold = subsample.level_threshold(level)
            masks = [
                subsample(idx) < threshold if idx.size else np.zeros(0, dtype=bool)
                for idx, _ in (
                    vector.local_component(s) for s in range(vector.num_servers)
                )
            ]
            by_mask = vector.restrict_by_masks(masks)
            for server in range(vector.num_servers):
                idx_a, val_a = by_predicate.local_component(server)
                idx_b, val_b = by_mask.local_component(server)
                np.testing.assert_array_equal(idx_a, idx_b)
                np.testing.assert_array_equal(val_a, val_b)

    def test_materialize_sum_sparse_servers(self):
        rng = np.random.default_rng(20)
        dense_part = rng.normal(size=(30, 8))
        sparse_a = sparse.random(30, 8, density=0.2, random_state=1, format="csr")
        sparse_b = sparse.random(30, 8, density=0.1, random_state=2, format="csr")
        cluster = LocalCluster([dense_part, sparse_a, sparse_b])
        expected = dense_part + np.asarray(sparse_a.todense()) + np.asarray(
            sparse_b.todense()
        )
        np.testing.assert_allclose(cluster.materialize_sum(), expected)
