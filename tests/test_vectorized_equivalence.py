"""Equivalence tests: the fused sketch engine vs the naive reference engine.

The vectorized (fused) engine must be a pure local-compute optimization:
for a fixed seed it has to produce bit-for-bit identical hash values,
CountSketch tables, point estimates, Z-HeavyHitters candidates, Z-estimates
and sampler draws as the retained naive reference implementation -- and
therefore charge exactly the same number of network words per tag.

Cross-*backend* equivalence (multiprocessing pool, loopback and TCP
transports vs the in-process simulation) lives in the parametrized
``test_backend_matrix.py`` suite, not here.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.distributed.cluster import LocalCluster
from repro.distributed.network import Network
from repro.distributed.vector import DistributedVector
from repro.core.samplers import GeneralizedZRowSampler
from repro.functions import HuberPsi, Identity
from repro.sketch import engine, kernels
from repro.sketch.countsketch import (
    BatchedCountSketch,
    CountSketch,
    _row_median,
    batched_sketch_uncached,
)
from repro.sketch.heavy_hitters import (
    heavy_hitters_from_stacked_tables,
    heavy_hitters_from_tables,
)
from repro.sketch.hashing import (
    HASH_BLOCK,
    KWiseHash,
    SubsampleHash,
    _polynomial_hash,
    gathered_polynomial_hash,
    range_reduce,
    stacked_polynomial_hash,
)
from repro.sketch.z_estimator import ZEstimator
from repro.sketch.z_heavy_hitters import ZHeavyHittersParams, z_heavy_hitters
from repro.sketch.z_sampler import ZSampler, ZSamplerConfig


def split_dense(dense, num_servers, rng):
    """Split a dense vector into per-server sparse components."""
    parts = [rng.normal(scale=0.01, size=dense.size) for _ in range(num_servers - 1)]
    parts.append(dense - np.sum(parts, axis=0))
    components = []
    for vec in parts:
        idx = np.nonzero(vec)[0].astype(np.int64)
        components.append((idx, vec[idx]))
    return components


def make_vector(dense, num_servers=3, seed=99):
    rng = np.random.default_rng(seed)
    components = split_dense(dense, num_servers, rng)
    return DistributedVector(components, dense.size, Network(num_servers))


@pytest.fixture(autouse=True, params=sorted(kernels.known_providers()))
def kernel_provider(request):
    """Run the whole equivalence suite under each registered kernel provider.

    The compiled providers must be bit-identical to the naive reference on
    every path, so the entire suite doubles as the provider-parity gate.
    Unavailable providers (e.g. ``numba`` when the package is absent) skip
    with the recorded import-failure reason.
    """
    name = request.param
    if name not in kernels.available_providers():
        pytest.skip(
            f"kernel provider {name!r} unavailable: "
            f"{kernels.unavailable_reason(name)}"
        )
    with kernels.provider_override(name):
        yield name


class TestHashEquivalence:
    def test_stacked_matches_reference_polynomial(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 2**31 - 1, size=4096, dtype=np.int64)
        for k in (1, 2, 3, 4, 5, 16, 17):
            coeffs = rng.integers(0, 2**31 - 1, size=(6, k), dtype=np.int64)
            reference = np.stack([_polynomial_hash(keys, c) for c in coeffs])
            np.testing.assert_array_equal(
                stacked_polynomial_hash(keys, coeffs), reference
            )

    def test_gathered_matches_reference_polynomial(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 2**31 - 1, size=512, dtype=np.int64)
        for k in (2, 4, 16):
            families = rng.integers(0, 2**31 - 1, size=(5, 3, k), dtype=np.int64)
            selector = rng.integers(0, 5, size=keys.size)
            reference = np.empty((3, keys.size), dtype=np.uint64)
            for i in range(keys.size):
                for h in range(3):
                    reference[h, i] = _polynomial_hash(
                        keys[i : i + 1], families[selector[i], h]
                    )[0]
            np.testing.assert_array_equal(
                gathered_polynomial_hash(keys, families, selector), reference
            )

    @pytest.mark.parametrize(
        "count", [0, HASH_BLOCK - 1, HASH_BLOCK, HASH_BLOCK + 1]
    )
    def test_stacked_block_boundaries(self, count):
        """Key counts straddling HASH_BLOCK: the block loop must not drop,
        duplicate or reorder keys at the seam (and empty input stays empty)."""
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 2**31 - 1, size=count, dtype=np.int64)
        coeffs = rng.integers(0, 2**31 - 1, size=(4, 5), dtype=np.int64)
        out = stacked_polynomial_hash(keys, coeffs)
        assert out.shape == (4, count)
        reference = np.stack([_polynomial_hash(keys, c) for c in coeffs])
        np.testing.assert_array_equal(out, reference)

    @pytest.mark.parametrize(
        "count", [0, HASH_BLOCK - 1, HASH_BLOCK, HASH_BLOCK + 1]
    )
    def test_gathered_block_boundaries(self, count):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 2**31 - 1, size=count, dtype=np.int64)
        families = rng.integers(0, 2**31 - 1, size=(4, 3, 5), dtype=np.int64)
        selector = rng.integers(0, 4, size=count)
        out = gathered_polynomial_hash(keys, families, selector)
        assert out.shape == (3, count)
        # Per-family masked reference: same math, no per-key Python loop.
        reference = np.empty((3, count), dtype=np.uint64)
        for family in range(4):
            mask = selector == family
            for h in range(3):
                reference[h, mask] = _polynomial_hash(
                    keys[mask], families[family, h]
                )
        np.testing.assert_array_equal(out, reference)

    def test_kwise_hash_engine_independent(self):
        keys = np.arange(10_000, dtype=np.int64)
        for range_size in (2, 8, 100, 1024, 12345):
            h = KWiseHash(4, range_size, seed=3)
            fused = h(keys)
            with engine.naive_reference():
                naive = h(keys)
            np.testing.assert_array_equal(fused, naive)

    def test_range_reduce_matches_modulo(self):
        values = np.arange(0, 2**31 - 1, 9173, dtype=np.uint64)
        for range_size in (2, 8, 64, 100, 4096, 999):
            np.testing.assert_array_equal(
                range_reduce(values, range_size), values % np.uint64(range_size)
            )

    def test_row_median_matches_numpy(self):
        rng = np.random.default_rng(4)
        for depth in (3, 4, 5, 6, 7, 11):
            estimates = rng.normal(size=(1000, depth))
            np.testing.assert_array_equal(
                _row_median(estimates), np.median(estimates, axis=1)
            )


class TestCountSketchEquivalence:
    @pytest.mark.parametrize("depth,width", [(3, 64), (5, 100), (6, 128)])
    def test_sketch_identical(self, depth, width):
        rng = np.random.default_rng(5)
        domain = 5000
        idx = np.sort(rng.choice(domain, size=800, replace=False)).astype(np.int64)
        val = rng.normal(size=800)
        sketch = CountSketch(depth, width, domain, seed=7)
        fused = sketch.sketch(idx, val)
        with engine.naive_reference():
            naive = sketch.sketch(idx, val)
        np.testing.assert_array_equal(fused, naive)

    def test_sketch_identical_after_cache_builds(self):
        """Repeated sketching triggers the domain hash cache; outputs must not change."""
        rng = np.random.default_rng(6)
        domain = 2000
        sketch = CountSketch(5, 64, domain, seed=8)
        idx = np.sort(rng.choice(domain, size=1500, replace=False)).astype(np.int64)
        val = rng.normal(size=1500)
        first = sketch.sketch(idx, val)
        for _ in range(3):  # accumulate past the amortization threshold
            repeat = sketch.sketch(idx, val)
            np.testing.assert_array_equal(repeat, first)
        assert sketch._flat_cache is not None
        with engine.naive_reference():
            naive = sketch.sketch(idx, val)
        np.testing.assert_array_equal(first, naive)

    def test_estimate_and_estimate_all_identical(self):
        rng = np.random.default_rng(7)
        domain = 4000
        sketch = CountSketch(5, 128, domain, seed=9)
        vec = rng.normal(size=domain)
        idx = np.nonzero(vec)[0]
        table = sketch.sketch(idx, vec[idx])
        query = rng.choice(domain, size=500, replace=False).astype(np.int64)
        fused_point = sketch.estimate(table, query)
        fused_all = sketch.estimate_all(table, block=1000)
        with engine.naive_reference():
            naive_point = sketch.estimate(table, query)
            naive_all = sketch.estimate_all(table, block=1000)
        np.testing.assert_array_equal(fused_point, naive_point)
        np.testing.assert_array_equal(fused_all, naive_all)

    def test_batched_matches_per_bucket_sketches(self):
        rng = np.random.default_rng(8)
        domain, num_buckets = 3000, 6
        sketches = [CountSketch(5, 64, domain, seed=100 + b) for b in range(num_buckets)]
        batched = BatchedCountSketch(sketches)
        idx = np.sort(rng.choice(domain, size=900, replace=False)).astype(np.int64)
        val = rng.normal(size=900)
        assignment = rng.integers(0, num_buckets, size=900)
        tables = batched.sketch_assigned(idx, val, assignment)
        for bucket in range(num_buckets):
            mask = assignment == bucket
            with engine.naive_reference():
                expected = sketches[bucket].sketch(idx[mask], val[mask])
            np.testing.assert_array_equal(tables[bucket], expected)

    def test_batched_cached_estimates_match_member(self):
        rng = np.random.default_rng(9)
        domain, num_buckets = 2000, 4
        sketches = [CountSketch(5, 32, domain, seed=50 + b) for b in range(num_buckets)]
        batched = BatchedCountSketch(sketches)
        assignment = rng.integers(0, num_buckets, size=domain)
        members = [np.flatnonzero(assignment == b) for b in range(num_buckets)]
        assert batched.build_domain_cache(members)
        idx = np.arange(domain, dtype=np.int64)
        val = rng.normal(size=domain)
        tables = batched.sketch_assigned(idx, val, assignment)
        for bucket in range(num_buckets):
            query = members[bucket][:100]
            if query.size == 0:
                continue
            cached = batched.estimate_member(bucket, tables[bucket], query)
            with engine.naive_reference():
                reference = sketches[bucket].estimate(tables[bucket], query)
            np.testing.assert_array_equal(cached, reference)


class TestBatchedDomainCacheEquivalence:
    """The one-pass gathered domain cache vs per-bucket/per-row reference."""

    def make_batched(self, domain=4000, num_buckets=6, seed_base=300):
        sketches = [
            CountSketch(5, 64, domain, seed=seed_base + b) for b in range(num_buckets)
        ]
        return BatchedCountSketch(sketches)

    def test_cache_matches_per_bucket_reference(self):
        rng = np.random.default_rng(30)
        batched = self.make_batched()
        assignment = rng.integers(0, batched.num_buckets, size=batched.domain)
        assert batched.build_domain_cache(assignment)
        flat_ref, sign_ref = batched.build_domain_cache_reference(assignment)
        np.testing.assert_array_equal(batched._flat_cache, flat_ref)
        np.testing.assert_array_equal(batched._sign_cache, sign_ref)

    def test_cache_matches_reference_under_naive_engine(self):
        """The reference builder uses scalar %-division hashing under the
        naive engine; the gathered pass must still agree bit-for-bit."""
        rng = np.random.default_rng(31)
        batched = self.make_batched(num_buckets=4)
        assignment = rng.integers(0, 4, size=batched.domain)
        assert batched.build_domain_cache(assignment)
        with engine.naive_reference():
            flat_ref, sign_ref = batched.build_domain_cache_reference(assignment)
        np.testing.assert_array_equal(batched._flat_cache, flat_ref)
        np.testing.assert_array_equal(batched._sign_cache, sign_ref)

    def test_member_list_input_equals_assignment_input(self):
        rng = np.random.default_rng(32)
        assignment = rng.integers(0, 6, size=4000)
        members = [np.flatnonzero(assignment == b) for b in range(6)]
        by_assignment = self.make_batched()
        by_members = self.make_batched()
        assert by_assignment.build_domain_cache(assignment)
        assert by_members.build_domain_cache(members)
        np.testing.assert_array_equal(
            by_assignment._flat_cache, by_members._flat_cache
        )
        np.testing.assert_array_equal(
            by_assignment._sign_cache, by_members._sign_cache
        )
        np.testing.assert_array_equal(
            by_assignment._signed_cells(), by_members._signed_cells()
        )

    def test_partial_member_lists_rejected(self):
        batched = self.make_batched(domain=100, num_buckets=2)
        with pytest.raises(ValueError, match="partition"):
            batched.build_domain_cache([np.arange(10), np.arange(20, 40)])

    def test_uncached_kernel_matches_cached_sketch(self):
        rng = np.random.default_rng(33)
        batched = self.make_batched()
        assignment = rng.integers(0, batched.num_buckets, size=batched.domain)
        assert batched.build_domain_cache(assignment)
        idx = np.sort(
            rng.choice(batched.domain, size=1200, replace=False)
        ).astype(np.int64)
        val = rng.normal(size=1200)
        cached_tables = batched.sketch_assigned(idx, val, assignment[idx])
        uncached_tables = batched_sketch_uncached(
            idx, val, assignment[idx].astype(np.int64),
            batched._bucket_coeffs, batched._sign_coeffs,
            batched.num_buckets, batched.depth, batched.width,
        )
        np.testing.assert_array_equal(cached_tables, uncached_tables)


class TestStackedHeavyHittersEquivalence:
    """Cross-bucket vectorised merge/threshold vs the per-bucket protocol."""

    def run_both(self, max_candidates=None, seed=34, support=1500):
        rng = np.random.default_rng(seed)
        domain, num_buckets, servers = 3000, 5, 3
        sketches = [CountSketch(5, 64, domain, seed=700 + b) for b in range(num_buckets)]
        batched = BatchedCountSketch(sketches)
        assignment = rng.integers(0, num_buckets, size=domain)
        queries = [np.flatnonzero(assignment == b) for b in range(num_buckets)]
        assert batched.build_domain_cache(assignment)

        idx = np.sort(rng.choice(domain, size=support, replace=False)).astype(np.int64)
        val = rng.normal(size=support)
        val[rng.choice(support, size=8, replace=False)] = 90.0
        splits = np.array_split(np.arange(support), servers)
        stacks = [
            batched.sketch_assigned(idx[s], val[s], assignment[idx[s]])
            for s in splits
        ]

        stacked_net = Network(servers)
        stacked = heavy_hitters_from_stacked_tables(
            batched, stacks, stacked_net, 16.0,
            bucket_queries=queries, max_candidates=max_candidates,
        )

        looped_net = Network(servers)
        looped = []
        for bucket in range(num_buckets):
            if queries[bucket].size == 0:
                looped.append(np.zeros(0, dtype=np.int64))
                continue
            result = heavy_hitters_from_tables(
                sketches[bucket],
                [stack[bucket] for stack in stacks],
                looped_net,
                16.0,
                candidate_indices=queries[bucket],
                max_candidates=max_candidates,
                estimate_fn=lambda merged, q, b=bucket: batched.estimate_member(
                    b, merged, q
                ),
                assume_unique=True,
            )
            looped.append(result.candidates)
        return stacked, looped, stacked_net, looped_net

    def test_candidates_identical(self):
        stacked, looped, _, _ = self.run_both()
        assert len(stacked) == len(looped)
        for got, expected in zip(stacked, looped):
            np.testing.assert_array_equal(got, expected)

    def test_candidate_cap_identical(self):
        stacked, looped, _, _ = self.run_both(max_candidates=2)
        for got, expected in zip(stacked, looped):
            np.testing.assert_array_equal(got, expected)
            assert got.size <= 2

    def test_words_per_tag_identical(self):
        _, _, stacked_net, looped_net = self.run_both()
        assert (
            stacked_net.snapshot().words_by_tag == looped_net.snapshot().words_by_tag
        )
        assert stacked_net.total_messages == looped_net.total_messages

    def test_requires_domain_cache(self):
        sketches = [CountSketch(3, 16, 100, seed=b) for b in range(2)]
        batched = BatchedCountSketch(sketches)
        with pytest.raises(ValueError, match="domain cache"):
            heavy_hitters_from_stacked_tables(
                batched,
                [batched.empty_tables()],
                Network(1),
                8.0,
                bucket_queries=[np.arange(50), np.arange(50, 100)],
            )


class TestVectorOperationEquivalence:
    """Fused collect/restrict vs the per-server naive reference."""

    def test_collect_identical_values_and_words(self):
        rng = np.random.default_rng(35)
        dense = rng.normal(size=700)
        dense[rng.choice(700, size=200, replace=False)] = 0.0
        query = np.unique(rng.choice(700, size=120))

        fused_vec = make_vector(dense)
        fused_values = fused_vec.collect(query, tag="verify")
        naive_vec = make_vector(dense)
        with engine.naive_reference():
            naive_values = naive_vec.collect(query, tag="verify")

        np.testing.assert_array_equal(fused_values, naive_values)
        assert (
            fused_vec.network.snapshot().words_by_tag
            == naive_vec.network.snapshot().words_by_tag
        )
        # Exactness against the dense sum (collect is an exact operation).
        np.testing.assert_allclose(fused_values, dense[query], atol=1e-9)

    def test_collect_repeated_queries_reuse_cache(self):
        rng = np.random.default_rng(36)
        dense = rng.normal(size=400)
        vector = make_vector(dense)
        first = vector.collect(np.arange(0, 400, 7), tag="verify")
        assert vector._lookup_cache is not None
        again = vector.collect(np.arange(0, 400, 7), tag="verify")
        np.testing.assert_array_equal(first, again)

    def test_collect_sums_duplicate_component_indices(self):
        """A coordinate repeated within one component contributes its summed
        value to exact_sum and every sketch; collect must agree (regression:
        both paths used to return only the first duplicate's value)."""
        components = [
            (np.array([3, 3, 5]), np.array([1.0, 2.0, 4.0])),
            (np.array([5]), np.array([0.5])),
        ]
        fused_vec = DistributedVector(components, 10, Network(2))
        fused_values = fused_vec.collect([3, 5])
        naive_vec = DistributedVector(components, 10, Network(2))
        with engine.naive_reference():
            naive_values = naive_vec.collect([3, 5])
        np.testing.assert_array_equal(fused_values, naive_values)
        np.testing.assert_array_equal(
            fused_values, fused_vec.exact_sum()[[3, 5]]
        )

    def test_collect_all_empty_servers(self):
        vector = DistributedVector(
            [(np.zeros(0, dtype=np.int64), np.zeros(0))] * 2, 50, Network(2)
        )
        np.testing.assert_array_equal(vector.collect([3, 7]), np.zeros(2))

    def test_restrict_identical_components(self):
        rng = np.random.default_rng(37)
        dense = rng.normal(size=900)
        subsample = SubsampleHash(domain_scale=900, seed=38)
        for level in (1, 2, 4):
            fused_vec = make_vector(dense)
            fused_r = fused_vec.restrict(subsample.level_predicate(level))
            naive_vec = make_vector(dense)
            with engine.naive_reference():
                naive_r = naive_vec.restrict(subsample.level_predicate(level))
            for server in range(fused_r.num_servers):
                idx_f, val_f = fused_r.local_component(server)
                idx_n, val_n = naive_r.local_component(server)
                np.testing.assert_array_equal(idx_f, idx_n)
                np.testing.assert_array_equal(val_f, val_n)

    def test_restrict_rejects_misshapen_predicate(self):
        vector = make_vector(np.ones(40))
        with pytest.raises(ValueError, match="one boolean per coordinate"):
            vector.restrict(lambda idx: np.ones(3, dtype=bool))


class TestRegisterEquivalence:
    """Vectorised coordinate classification vs the per-coordinate loop."""

    def test_class_members_content_and_insertion_order(self):
        rng = np.random.default_rng(39)
        dense = np.zeros(1024)
        dense[rng.choice(1024, size=60, replace=False)] = rng.uniform(
            1.0, 200.0, size=60
        )
        weight = HuberPsi(2.0).sampling_weight
        params = ZHeavyHittersParams(b=16, repetitions=2, num_buckets=8)

        fused = ZEstimator(weight, hh_params=params, seed=40).estimate(
            make_vector(dense)
        )
        with engine.naive_reference():
            naive = ZEstimator(weight, hh_params=params, seed=40).estimate(
                make_vector(dense)
            )

        # Insertion order is observable by the sampler: both the key order
        # and per-class member arrays must match, not just the dict content.
        assert list(fused.class_members) == list(naive.class_members)
        assert list(fused.class_sizes) == list(naive.class_sizes)
        for klass in fused.class_members:
            np.testing.assert_array_equal(
                fused.class_members[klass], naive.class_members[klass]
            )
        assert fused.member_values == naive.member_values
        assert fused.class_sizes == naive.class_sizes


class TestProtocolEquivalence:
    def test_z_heavy_hitters_candidates_and_words(self):
        rng = np.random.default_rng(10)
        dense = rng.normal(size=1500) * 0.1
        dense[[7, 300, 1200]] = [60.0, -80.0, 55.0]
        params = ZHeavyHittersParams(b=16, repetitions=2, num_buckets=8)

        fused_vec = make_vector(dense)
        fused = z_heavy_hitters(fused_vec, params, seed=11)
        naive_vec = make_vector(dense)
        with engine.naive_reference():
            naive = z_heavy_hitters(naive_vec, params, seed=11)

        np.testing.assert_array_equal(fused, naive)
        assert (
            fused_vec.network.snapshot().words_by_tag
            == naive_vec.network.snapshot().words_by_tag
        )

    def test_z_estimator_identical(self):
        rng = np.random.default_rng(12)
        dense = np.zeros(1024)
        dense[rng.choice(1024, size=50, replace=False)] = rng.normal(size=50) * 20
        weight = HuberPsi(2.0).sampling_weight
        params = ZHeavyHittersParams(b=16, repetitions=2, num_buckets=8)

        fused_vec = make_vector(dense)
        fused = ZEstimator(weight, hh_params=params, seed=13).estimate(fused_vec)
        naive_vec = make_vector(dense)
        with engine.naive_reference():
            naive = ZEstimator(weight, hh_params=params, seed=13).estimate(naive_vec)

        assert fused.z_total == naive.z_total
        assert fused.class_sizes == naive.class_sizes
        assert fused.member_values == naive.member_values
        assert set(fused.class_members) == set(naive.class_members)
        for klass in fused.class_members:
            np.testing.assert_array_equal(
                fused.class_members[klass], naive.class_members[klass]
            )
        assert fused.words_used == naive.words_used

    def test_z_sampler_draws_identical(self):
        """Draws share one (vectorized) implementation under both engines,
        so this pins the estimate phase: identical estimates feed identical
        RNG state and member tables, hence identical draws."""
        rng = np.random.default_rng(14)
        dense = np.zeros(600)
        dense[rng.choice(600, size=25, replace=False)] = rng.uniform(5, 40, size=25)
        config = ZSamplerConfig(
            hh_params=ZHeavyHittersParams(b=16, repetitions=2, num_buckets=8)
        )

        fused_vec = make_vector(dense)
        fused = ZSampler(Identity().sampling_weight, config, seed=15).sample(fused_vec, 40)
        naive_vec = make_vector(dense)
        with engine.naive_reference():
            naive = ZSampler(Identity().sampling_weight, config, seed=15).sample(
                naive_vec, 40
            )

        np.testing.assert_array_equal(fused.indices, naive.indices)
        np.testing.assert_array_equal(fused.probabilities, naive.probabilities)
        np.testing.assert_array_equal(fused.values, naive.values)
        assert fused.failures == naive.failures

    def test_sample_rows_words_per_tag_unchanged(self):
        """Acceptance: for a fixed seed, the refactored engine charges exactly
        the words per tag (sampler:gather_rows, z_heavy_hitters:*) that the
        naive reference implementation charges."""
        config = ZSamplerConfig(
            hh_params=ZHeavyHittersParams(b=16, repetitions=2, num_buckets=8)
        )

        def run(naive):
            rng = np.random.default_rng(16)
            total = rng.normal(size=(150, 20)) * 0.1
            total[rng.choice(150, size=6, replace=False)] *= 50
            parts = [rng.normal(scale=0.01, size=(150, 20)) for _ in range(2)]
            parts.append(total - np.sum(parts, axis=0))
            cluster = LocalCluster(parts, Identity())
            sampler = GeneralizedZRowSampler(Identity(), config)
            if naive:
                with engine.naive_reference():
                    sample = sampler.sample_rows(cluster, 30, seed=17)
            else:
                sample = sampler.sample_rows(cluster, 30, seed=17)
            return sample, cluster.network.snapshot().words_by_tag

        fused_sample, fused_words = run(naive=False)
        naive_sample, naive_words = run(naive=True)

        np.testing.assert_array_equal(
            fused_sample.row_indices, naive_sample.row_indices
        )
        assert fused_sample.words_used == naive_sample.words_used
        assert fused_words == naive_words
        assert fused_words["sampler:gather_rows"] > 0
        # The Z-HeavyHitters invocations inside the estimator charge the
        # per-bucket sketch-table traffic under ...:bucket:* tags.
        assert any(tag.endswith(":bucket:tables") for tag in fused_words)


class TestSupportingChanges:
    def test_restrict_by_masks_matches_predicate(self):
        rng = np.random.default_rng(18)
        dense = rng.normal(size=512)
        vector = make_vector(dense)
        subsample = SubsampleHash(domain_scale=512, seed=19)
        for level in (1, 2, 3):
            by_predicate = vector.restrict(subsample.level_predicate(level))
            threshold = subsample.level_threshold(level)
            masks = [
                subsample(idx) < threshold if idx.size else np.zeros(0, dtype=bool)
                for idx, _ in (
                    vector.local_component(s) for s in range(vector.num_servers)
                )
            ]
            by_mask = vector.restrict_by_masks(masks)
            for server in range(vector.num_servers):
                idx_a, val_a = by_predicate.local_component(server)
                idx_b, val_b = by_mask.local_component(server)
                np.testing.assert_array_equal(idx_a, idx_b)
                np.testing.assert_array_equal(val_a, val_b)

    def test_materialize_sum_sparse_servers(self):
        rng = np.random.default_rng(20)
        dense_part = rng.normal(size=(30, 8))
        sparse_a = sparse.random(30, 8, density=0.2, random_state=1, format="csr")
        sparse_b = sparse.random(30, 8, density=0.1, random_state=2, format="csr")
        cluster = LocalCluster([dense_part, sparse_a, sparse_b])
        expected = dense_part + np.asarray(sparse_a.todense()) + np.asarray(
            sparse_b.todense()
        )
        np.testing.assert_allclose(cluster.materialize_sum(), expected)
