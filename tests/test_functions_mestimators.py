"""Tests for the M-estimator psi-functions (Table I)."""

import numpy as np
import pytest

from repro.functions import FairPsi, HuberPsi, L1L2Psi, TABLE_I_FUNCTIONS
from repro.functions.mestimators import table_i_rows


class TestHuberPsi:
    def test_identity_below_threshold(self):
        fn = HuberPsi(2.0)
        x = np.array([-1.5, 0.0, 1.9])
        np.testing.assert_allclose(fn(x), x)

    def test_clipped_above_threshold(self):
        fn = HuberPsi(2.0)
        np.testing.assert_allclose(fn([5.0, -7.0, 1e6]), [2.0, -2.0, 2.0])

    def test_continuous_at_threshold(self):
        fn = HuberPsi(1.5)
        assert fn([1.5 - 1e-9])[0] == pytest.approx(fn([1.5 + 1e-9])[0], abs=1e-6)

    def test_odd(self):
        fn = HuberPsi(1.0)
        x = np.linspace(-5, 5, 21)
        np.testing.assert_allclose(fn(-x), -fn(x))

    def test_paper_normalisation(self):
        """The Theorem 6 proof uses psi(0)=0, psi(1)=psi(2)=1 (threshold 1)."""
        fn = HuberPsi(1.0)
        np.testing.assert_allclose(fn([0.0, 1.0, 2.0]), [0.0, 1.0, 1.0])

    def test_sampling_weight_capped(self):
        fn = HuberPsi(3.0)
        np.testing.assert_allclose(fn.sampling_weight([2.0, 10.0]), [4.0, 9.0])

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            HuberPsi(0.0)

    def test_neutralises_outliers(self, rng):
        """Clipping removes the Frobenius dominance of corrupted entries."""
        clean = rng.normal(size=(30, 20))
        corrupted = clean.copy()
        corrupted[0, 0] = 1e6
        clipped = HuberPsi(3.0)(corrupted)
        assert np.abs(clipped).max() <= 3.0
        # Away from the corrupted entry, clipping the corrupted matrix equals
        # clipping the clean one; the corrupted entry itself is capped at 3.
        expected = np.clip(clean, -3, 3)
        expected[0, 0] = 3.0
        np.testing.assert_allclose(clipped, expected)


class TestL1L2Psi:
    def test_formula(self):
        fn = L1L2Psi()
        x = np.array([0.0, 1.0, -2.0])
        np.testing.assert_allclose(fn(x), x / np.sqrt(1 + x**2 / 2))

    def test_bounded_by_sqrt2(self):
        fn = L1L2Psi()
        assert np.all(np.abs(fn(np.linspace(-1e4, 1e4, 101))) < np.sqrt(2) + 1e-9)

    def test_approximately_linear_near_zero(self):
        fn = L1L2Psi()
        x = np.array([1e-4, -1e-4])
        np.testing.assert_allclose(fn(x), x, rtol=1e-6)

    def test_odd(self):
        fn = L1L2Psi()
        x = np.linspace(-3, 3, 13)
        np.testing.assert_allclose(fn(-x), -fn(x))


class TestFairPsi:
    def test_formula(self):
        fn = FairPsi(2.0)
        x = np.array([1.0, -4.0])
        np.testing.assert_allclose(fn(x), x / (1 + np.abs(x) / 2.0))

    def test_saturates_at_scale(self):
        fn = FairPsi(3.0)
        assert abs(fn([1e8])[0] - 3.0) < 1e-4

    def test_odd(self):
        fn = FairPsi(1.0)
        x = np.linspace(-5, 5, 11)
        np.testing.assert_allclose(fn(-x), -fn(x))

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            FairPsi(-1.0)


class TestTableI:
    def test_registry_contains_all_three(self):
        assert set(TABLE_I_FUNCTIONS) == {"huber", "l1_l2", "fair"}

    def test_rows_structure(self):
        rows = table_i_rows()
        assert len(rows) == 3
        for row in rows:
            assert {"name", "formula", "probe_points", "values"} <= set(row)
            assert len(row["values"]) == len(row["probe_points"])

    def test_rows_respect_parameters(self):
        rows = table_i_rows(threshold=2.0, scale=5.0)
        huber_row = next(r for r in rows if r["name"].startswith("huber"))
        # psi(10) is clipped at the threshold 2.
        assert huber_row["values"][-1] == pytest.approx(2.0)
