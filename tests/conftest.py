"""Shared fixtures for the test suite, plus the statistical-verification harness.

The heavier distribution tests (marked ``statistical``) draw tens of
thousands of samples; they are fully seeded and deterministic but cost
seconds, so tier-1 runs deselect them by default.  Pass ``--statistical``
to run them (and to scale the lighter always-on checks up to their full
draw counts).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest
from scipy import stats

from repro.distributed import LocalCluster, arbitrary_partition, entrywise_partition
from repro.distributed.network import Network
from repro.distributed.vector import DistributedVector


def pytest_addoption(parser):
    parser.addoption(
        "--statistical",
        action="store_true",
        default=False,
        help="run the heavy seeded distribution tests (marked 'statistical') "
        "and scale the light ones up to their full draw counts",
    )
    parser.addoption(
        "--tcp",
        action="store_true",
        default=False,
        help="run the tests that open real TCP sockets (marked 'tcp'); "
        "tier-1 exercises the same code paths over the loopback transport",
    )
    parser.addoption(
        "--slow",
        action="store_true",
        default=False,
        help="run the slow suites (marked 'slow'): concurrency soak runs "
        "and other multi-second stress tests",
    )
    parser.addoption(
        "--chaos",
        action="store_true",
        default=False,
        help="run the kill/restart recovery suites (marked 'chaos'): "
        "workers are killed mid-protocol and the supervisor must restore "
        "them with bit-identical results",
    )
    from repro.backend import available_backends

    parser.addoption(
        "--backend",
        action="store",
        default=None,
        choices=list(available_backends()),
        help="restrict the backend-matrix suites to one execution backend "
        "(default: all; '--backend tcp' also enables the socket-marked "
        "runs, so CI can sweep tier-1 once per backend)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "statistical: heavy seeded distribution checks, deselected unless "
        "--statistical is passed",
    )
    config.addinivalue_line(
        "markers",
        "tcp: opens real TCP sockets (WorkerServer/TcpTransport), "
        "deselected unless --tcp is passed",
    )
    config.addinivalue_line(
        "markers",
        "slow: multi-second soak/stress tests, deselected unless --slow "
        "is passed",
    )
    config.addinivalue_line(
        "markers",
        "chaos: kill/restart recovery tests (worker failover mid-protocol), "
        "deselected unless --chaos is passed",
    )


def pytest_generate_tests(metafunc):
    # Backend-matrix parametrization: every backend registered with
    # repro.backend (a fifth backend is picked up automatically), the
    # socket-backed one behind the ``tcp`` marker (tier-1 stays socket-free).
    if "backend_name" in metafunc.fixturenames:
        from repro.backend import available_backends

        selected = metafunc.config.getoption("--backend")
        params = [
            pytest.param(name, marks=(pytest.mark.tcp,) if name == "tcp" else ())
            for name in available_backends()
            if selected is None or name == selected
        ]
        metafunc.parametrize("backend_name", params)


def pytest_collection_modifyitems(config, items):
    gates = [
        ("statistical", config.getoption("--statistical"), "--statistical"),
        (
            "tcp",
            config.getoption("--tcp") or config.getoption("--backend") == "tcp",
            "--tcp",
        ),
        ("slow", config.getoption("--slow"), "--slow"),
        ("chaos", config.getoption("--chaos"), "--chaos"),
    ]
    for marker, enabled, flag in gates:
        if enabled:
            continue
        skip = pytest.mark.skip(reason=f"needs {flag}")
        for item in items:
            if marker in item.keywords:
                item.add_marker(skip)


@pytest.fixture
def rng():
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def low_rank_matrix(rng):
    """A 120 x 30 matrix with a dominant rank-5 component plus small noise."""
    signal = rng.normal(size=(120, 5)) @ rng.normal(size=(5, 30))
    return signal + 0.05 * rng.normal(size=(120, 30))


@pytest.fixture
def small_matrix(rng):
    """A generic small dense matrix."""
    return rng.normal(size=(40, 12))


@pytest.fixture
def identity_cluster(low_rank_matrix):
    """A 4-server cluster in the arbitrary partition model with f = identity."""
    return LocalCluster(arbitrary_partition(low_rank_matrix, 4, seed=7), name="identity")


@pytest.fixture
def sparse_cluster(low_rank_matrix):
    """A 4-server cluster in the entrywise partition model (sparse locals)."""
    return LocalCluster(entrywise_partition(low_rank_matrix, 4, seed=11), name="sparse")


def make_cluster(matrix, num_servers=4, seed=0, function=None, partition="arbitrary"):
    """Helper used by tests that need custom clusters."""
    if partition == "arbitrary":
        locals_ = arbitrary_partition(matrix, num_servers, seed=seed)
    elif partition == "entrywise":
        locals_ = entrywise_partition(matrix, num_servers, seed=seed)
    else:
        raise ValueError(f"unknown partition {partition!r}")
    return LocalCluster(locals_, function)


def make_distributed_vector(dense, num_servers=3, seed=99):
    """Split a dense vector into a DistributedVector over a fresh network.

    Each of the first ``num_servers - 1`` servers holds small noise and the
    last holds the remainder, so the implicit sum is exactly ``dense``.
    """
    dense = np.asarray(dense, dtype=float)
    rng = np.random.default_rng(seed)
    parts = [rng.normal(scale=0.01, size=dense.size) for _ in range(num_servers - 1)]
    parts.append(dense - np.sum(parts, axis=0))
    components = []
    for vec in parts:
        idx = np.nonzero(vec)[0].astype(np.int64)
        components.append((idx, vec[idx]))
    return DistributedVector(components, dense.size, Network(num_servers))


# --------------------------------------------------------------------------- #
# statistical-verification harness
# --------------------------------------------------------------------------- #
@dataclass
class DistributionCheck:
    """Outcome of comparing empirical draw counts with exact probabilities."""

    p_value: float
    tv_distance: float
    total_draws: int


class DistributionChecker:
    """Seeded chi-square / total-variation checks on empirical draws.

    Shared by the sampler acceptance tests so fused, naive and
    multiprocessing paths are all validated with identical statistics.
    """

    def __init__(self, min_expected: float = 5.0) -> None:
        self._min_expected = min_expected

    def check(self, drawn, support, probabilities) -> DistributionCheck:
        """Compare draws (values in ``support``) against exact probabilities.

        Bins with expected count below ``min_expected`` are pooled into one
        bin so the chi-square approximation stays valid.
        """
        drawn = np.asarray(drawn)
        support = np.asarray(support)
        probabilities = np.asarray(probabilities, dtype=float)
        if support.size != probabilities.size:
            raise ValueError("support and probabilities must align")
        if not np.isclose(probabilities.sum(), 1.0, atol=1e-9):
            raise ValueError(
                f"probabilities must sum to 1, got {probabilities.sum()}"
            )
        total = drawn.size
        order = np.argsort(support)
        sorted_support = support[order]
        positions = np.searchsorted(sorted_support, drawn)
        np.minimum(positions, sorted_support.size - 1, out=positions)
        outside = sorted_support[positions] != drawn
        if outside.any():
            raise AssertionError(
                f"draw {drawn[outside][0]} outside the expected support"
            )
        counts = np.zeros(support.size, dtype=float)
        np.add.at(counts, order[positions], 1.0)

        expected = probabilities * total
        tv = 0.5 * float(np.abs(counts / total - probabilities).sum())

        # Pool low-expectation bins for a valid chi-square approximation.
        small = expected < self._min_expected
        if small.all():
            raise ValueError("all bins below the chi-square expectation floor")
        obs = np.concatenate((counts[~small], [counts[small].sum()]))
        exp = np.concatenate((expected[~small], [expected[small].sum()]))
        if exp[-1] == 0:
            obs, exp = obs[:-1], exp[:-1]
        _, p_value = stats.chisquare(obs, exp)
        return DistributionCheck(
            p_value=float(p_value), tv_distance=tv, total_draws=int(total)
        )

    def assert_matches(
        self,
        drawn,
        support,
        probabilities,
        *,
        min_p_value: float = 1e-3,
        max_tv: float = 0.1,
    ) -> DistributionCheck:
        """Assert the empirical distribution matches within tolerance."""
        result = self.check(drawn, support, probabilities)
        assert result.p_value >= min_p_value, (
            f"chi-square rejects: p={result.p_value:.2e} < {min_p_value} "
            f"over {result.total_draws} draws"
        )
        assert result.tv_distance <= max_tv, (
            f"TV distance {result.tv_distance:.4f} > {max_tv} "
            f"over {result.total_draws} draws"
        )
        return result


@pytest.fixture
def distribution_checker():
    """The shared chi-square / TV-distance checker."""
    return DistributionChecker()


@pytest.fixture
def statistical_draws(request):
    """Number of sampler draws: heavier when --statistical is passed."""
    return 60_000 if request.config.getoption("--statistical") else 12_000
