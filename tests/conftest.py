"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import LocalCluster, arbitrary_partition, entrywise_partition


@pytest.fixture
def rng():
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def low_rank_matrix(rng):
    """A 120 x 30 matrix with a dominant rank-5 component plus small noise."""
    signal = rng.normal(size=(120, 5)) @ rng.normal(size=(5, 30))
    return signal + 0.05 * rng.normal(size=(120, 30))


@pytest.fixture
def small_matrix(rng):
    """A generic small dense matrix."""
    return rng.normal(size=(40, 12))


@pytest.fixture
def identity_cluster(low_rank_matrix):
    """A 4-server cluster in the arbitrary partition model with f = identity."""
    return LocalCluster(arbitrary_partition(low_rank_matrix, 4, seed=7), name="identity")


@pytest.fixture
def sparse_cluster(low_rank_matrix):
    """A 4-server cluster in the entrywise partition model (sparse locals)."""
    return LocalCluster(entrywise_partition(low_rank_matrix, 4, seed=11), name="sparse")


def make_cluster(matrix, num_servers=4, seed=0, function=None, partition="arbitrary"):
    """Helper used by tests that need custom clusters."""
    if partition == "arbitrary":
        locals_ = arbitrary_partition(matrix, num_servers, seed=seed)
    elif partition == "entrywise":
        locals_ = entrywise_partition(matrix, num_servers, seed=seed)
    else:
        raise ValueError(f"unknown partition {partition!r}")
    return LocalCluster(locals_, function)
