"""Tests for the hard-problem instance generators (Section VII)."""

import numpy as np
import pytest

from repro.lowerbounds.problems import (
    disjointness_instance,
    gap_hamming_instance,
    linf_instance,
)


class TestLInfInstance:
    def test_promise_no_far_coordinate(self):
        x, y = linf_instance(200, 10, has_far_coordinate=False, seed=0)
        assert np.max(np.abs(x - y)) <= 1

    def test_promise_with_far_coordinate(self):
        x, y = linf_instance(200, 10, has_far_coordinate=True, seed=1)
        gaps = np.abs(x - y)
        assert np.sum(gaps >= 10) == 1
        assert np.max(gaps[gaps < 10]) <= 1

    def test_value_range(self):
        x, y = linf_instance(100, 7, has_far_coordinate=True, seed=2)
        for vec in (x, y):
            assert vec.min() >= 0
            assert vec.max() <= 7

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            linf_instance(10, 1, has_far_coordinate=False)

    def test_deterministic(self):
        a = linf_instance(50, 5, has_far_coordinate=True, seed=3)
        b = linf_instance(50, 5, has_far_coordinate=True, seed=3)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])


class TestDisjointnessInstance:
    def test_disjoint_case(self):
        x, y = disjointness_instance(300, intersecting=False, seed=0)
        assert np.sum(x & y) == 0

    def test_intersecting_case_unique(self):
        x, y = disjointness_instance(300, intersecting=True, seed=1)
        assert np.sum(x & y) == 1

    def test_binary_values(self):
        x, y = disjointness_instance(100, intersecting=True, seed=2)
        assert set(np.unique(x)).issubset({0, 1})
        assert set(np.unique(y)).issubset({0, 1})

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            disjointness_instance(10, intersecting=True, density=0.0)

    def test_nontrivial_supports(self):
        x, y = disjointness_instance(400, intersecting=False, density=0.3, seed=3)
        assert x.sum() > 0
        assert y.sum() > 0


class TestGapHammingInstance:
    def test_positive_correlation_case(self):
        x, y = gap_hamming_instance(0.1, positive_correlation=True, seed=0)
        assert int(x @ y) > 2 / 0.1

    def test_negative_correlation_case(self):
        x, y = gap_hamming_instance(0.1, positive_correlation=False, seed=1)
        assert int(x @ y) < -2 / 0.1

    def test_length_scales_with_epsilon(self):
        x_fine, _ = gap_hamming_instance(0.05, positive_correlation=True, seed=2)
        x_coarse, _ = gap_hamming_instance(0.2, positive_correlation=True, seed=2)
        assert x_fine.size > x_coarse.size
        assert x_fine.size == pytest.approx(1 / 0.05**2, rel=0.1)

    def test_values_are_signs(self):
        x, y = gap_hamming_instance(0.15, positive_correlation=True, seed=3)
        assert set(np.unique(x)).issubset({-1, 1})
        assert set(np.unique(y)).issubset({-1, 1})

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            gap_hamming_instance(0.0, positive_correlation=True)
        with pytest.raises(ValueError):
            gap_hamming_instance(1.5, positive_correlation=True)
