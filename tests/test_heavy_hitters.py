"""Tests for the distributed HeavyHitters protocol."""

import numpy as np
import pytest

from repro.sketch.heavy_hitters import distributed_heavy_hitters
from tests.test_vector import make_vector


def split_across_servers(vector, num_servers, rng):
    """Split a dense vector additively into per-server dense vectors."""
    parts = [rng.normal(scale=0.01, size=vector.size) for _ in range(num_servers - 1)]
    parts.append(vector - np.sum(parts, axis=0))
    return parts


class TestDistributedHeavyHitters:
    def test_finds_single_dominant_coordinate(self, rng):
        dense = rng.normal(size=400) * 0.1
        dense[37] = 100.0
        vector = make_vector(split_across_servers(dense, 4, rng))
        result = distributed_heavy_hitters(vector, b=10, seed=0)
        assert 37 in result.candidates

    def test_finds_all_heavy_coordinates(self, rng):
        dense = rng.normal(size=600) * 0.05
        heavy = [10, 200, 450]
        dense[heavy] = [40.0, -35.0, 50.0]
        vector = make_vector(split_across_servers(dense, 3, rng))
        result = distributed_heavy_hitters(vector, b=20, seed=1)
        assert set(heavy) <= set(result.candidates.tolist())

    def test_no_heavy_coordinates_few_candidates(self, rng):
        dense = rng.normal(size=500)
        vector = make_vector(split_across_servers(dense, 3, rng))
        result = distributed_heavy_hitters(vector, b=4, seed=2, max_candidates=16)
        assert result.candidates.size <= 16

    def test_zero_vector(self):
        vector = make_vector([np.zeros(100), np.zeros(100)])
        result = distributed_heavy_hitters(vector, b=10, seed=0)
        assert result.candidates.size == 0

    def test_candidate_indices_restriction(self, rng):
        dense = np.zeros(300)
        dense[5] = 10.0
        dense[250] = 12.0
        vector = make_vector(split_across_servers(dense, 2, rng))
        result = distributed_heavy_hitters(
            vector, b=10, seed=3, candidate_indices=np.arange(100)
        )
        assert 5 in result.candidates
        assert 250 not in result.candidates

    def test_communication_charged_and_reported(self, rng):
        dense = rng.normal(size=200)
        vector = make_vector(split_across_servers(dense, 4, rng))
        before = vector.network.total_words
        result = distributed_heavy_hitters(vector, b=8, seed=4)
        used = vector.network.total_words - before
        assert used > 0
        assert result.words_used == used

    def test_f2_estimate_reported(self, rng):
        dense = rng.normal(size=300)
        vector = make_vector(split_across_servers(dense, 3, rng))
        result = distributed_heavy_hitters(vector, b=8, seed=5)
        assert result.f2_estimate == pytest.approx(float(np.sum(dense**2)), rel=0.5)

    def test_invalid_parameters(self, rng):
        vector = make_vector([np.ones(10)])
        with pytest.raises(ValueError):
            distributed_heavy_hitters(vector, b=0)
        with pytest.raises(ValueError):
            distributed_heavy_hitters(vector, b=4, delta=1.5)

    def test_max_candidates_cap(self, rng):
        dense = rng.normal(size=400) + 5.0
        vector = make_vector(split_across_servers(dense, 2, rng))
        result = distributed_heavy_hitters(vector, b=400, seed=6, max_candidates=7)
        assert result.candidates.size <= 7
