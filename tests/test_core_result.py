"""Tests for the PCAResult object."""

import numpy as np
import pytest

from repro.core import DistributedPCA, PCAResult
from repro.utils.linalg import svd_rank_k_projection


@pytest.fixture
def fitted_result(identity_cluster):
    return DistributedPCA(k=4, num_samples=60, seed=0).fit(identity_cluster)


class TestPCAResult:
    def test_projection_is_valid(self, fitted_result):
        assert fitted_result.is_valid_projection()
        assert fitted_result.rank == 4

    def test_communication_ratio(self, fitted_result):
        assert fitted_result.communication_ratio == pytest.approx(
            fitted_result.communication_words / fitted_result.input_words
        )

    def test_communication_ratio_nan_for_zero_input(self, low_rank_matrix):
        basis, projection = svd_rank_k_projection(low_rank_matrix, 2)
        result = PCAResult(
            projection=projection,
            basis=basis,
            k=2,
            num_samples=10,
            row_indices=np.arange(10),
            communication_words=5,
            input_words=0,
        )
        assert np.isnan(result.communication_ratio)

    def test_evaluate_matches_direct_metrics(self, fitted_result, identity_cluster):
        report = fitted_result.evaluate(identity_cluster.materialize_global())
        assert report["additive_error"] >= 0
        assert report["relative_error"] >= 1.0 - 1e-9

    def test_evaluate_with_other_k(self, fitted_result, identity_cluster):
        # Evaluating a rank-4 projection against the best rank-2 baseline can
        # legitimately give a relative error below 1; it just has to be finite
        # and consistent with the additive metric.
        report = fitted_result.evaluate(identity_cluster.materialize_global(), k=2)
        assert np.isfinite(report["relative_error"])
        assert report["relative_error"] > 0

    def test_project_shape(self, fitted_result, identity_cluster):
        global_matrix = identity_cluster.materialize_global()
        projected = fitted_result.project(global_matrix)
        assert projected.shape == global_matrix.shape
        # Projecting twice changes nothing (idempotence).
        np.testing.assert_allclose(fitted_result.project(projected), projected, atol=1e-8)

    def test_reduce_shape(self, fitted_result, identity_cluster):
        reduced = fitted_result.reduce(identity_cluster.materialize_global())
        assert reduced.shape == (identity_cluster.num_rows, 4)

    def test_reduce_then_expand_equals_project(self, fitted_result, identity_cluster):
        global_matrix = identity_cluster.materialize_global()
        np.testing.assert_allclose(
            fitted_result.reduce(global_matrix) @ fitted_result.basis.T,
            fitted_result.project(global_matrix),
            atol=1e-8,
        )

    def test_metadata_present(self, fitted_result):
        assert "repetition_scores" in fitted_result.metadata
        assert fitted_result.sampler_name == "uniform"
