"""Tests for the experiment harness (configs, workloads, runner, figures, report)."""

import numpy as np
import pytest

from repro.core.samplers import GeneralizedZRowSampler, UniformRowSampler
from repro.experiments import (
    ExperimentConfig,
    build_workload,
    figure1_configs,
    format_figure1_panel,
    format_figure2_panel,
    format_table_i,
    get_config,
    panel_names,
    run_figure1,
    run_panel,
)
from repro.experiments.report import points_to_csv, qualitative_checks, summarize_results
from repro.experiments.runner import ExperimentPoint, average_points, plan_num_samples


class TestConfigs:
    def test_eleven_panels(self):
        configs = figure1_configs("small")
        assert len(configs) == 11

    def test_panel_titles_match_paper(self):
        titles = {c.panel for c in figure1_configs("small")}
        assert "ForestCover" in titles
        assert "KDDCUP99" in titles
        assert "Caltech-101(P=20)" in titles
        assert "Scenes(P=5)" in titles
        assert "isolet" in titles

    def test_server_counts_match_paper(self):
        by_name = {c.name: c for c in figure1_configs("small")}
        assert by_name["forest_cover"].num_servers == 10
        assert by_name["kddcup99"].num_servers == 50
        assert by_name["caltech_p1"].num_servers == 50
        assert by_name["scenes_p1"].num_servers == 10
        assert by_name["isolet"].num_servers == 10

    def test_ratio_bounds_match_paper(self):
        by_name = {c.name: c for c in figure1_configs("small")}
        assert by_name["kddcup99"].ratios == (0.1, 0.05, 0.01)
        assert by_name["forest_cover"].ratios == (0.5, 0.25, 0.1)

    def test_default_k_sweep(self):
        assert figure1_configs("small")[0].k_values == (3, 6, 9, 12, 15)

    def test_scales_change_sizes(self):
        small = get_config("forest_cover", "small")
        paper = get_config("forest_cover", "paper")
        assert paper.dataset_params["num_rows"] > small.dataset_params["num_rows"]

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError):
            figure1_configs("huge")

    def test_unknown_panel_raises(self):
        with pytest.raises(KeyError):
            get_config("imagenet")

    def test_panel_names_order(self):
        names = panel_names("small")
        assert names[0] == "forest_cover"
        assert names[-1] == "isolet"


class TestWorkloads:
    def test_rff_workload_uses_uniform_sampler(self):
        config = get_config("forest_cover", "small")
        workload = build_workload(config, seed=0)
        assert isinstance(workload.sampler, UniformRowSampler)
        assert not workload.sampler_uses_communication
        assert workload.cluster.num_servers == 10

    def test_pooling_workload_uses_z_sampler(self):
        config = get_config("scenes_p2", "small")
        workload = build_workload(config, seed=0)
        assert isinstance(workload.sampler, GeneralizedZRowSampler)
        assert workload.sampler_uses_communication
        assert workload.cluster.num_columns == 256

    def test_robust_workload_contains_outliers(self):
        config = get_config("isolet", "small")
        workload = build_workload(config, seed=0)
        summed = workload.cluster.materialize_sum()
        assert np.max(np.abs(summed)) > 1e3
        clipped = workload.cluster.materialize_global()
        assert np.max(np.abs(clipped)) <= config.function_params["threshold"] + 1e-9

    def test_unknown_application_raises(self):
        config = ExperimentConfig(
            name="x", panel="x", application="mystery", num_servers=2, ratios=(0.5,)
        )
        with pytest.raises(ValueError):
            build_workload(config)

    def test_seed_changes_data(self):
        config = get_config("forest_cover", "small")
        a = build_workload(config, seed=0).cluster.materialize_global()
        b = build_workload(config, seed=1).cluster.materialize_global()
        assert not np.allclose(a, b)


class TestPlanNumSamples:
    def test_scales_with_ratio(self):
        config = get_config("forest_cover", "small")
        workload = build_workload(config, seed=0)
        low = plan_num_samples(workload, 0.1, 15)
        high = plan_num_samples(workload, 0.5, 15)
        assert high > low

    def test_floor_at_max_k_plus_one(self):
        config = get_config("forest_cover", "small")
        workload = build_workload(config, seed=0)
        assert plan_num_samples(workload, 1e-9, 15) == 16

    def test_reserves_budget_for_z_sampler(self):
        config = get_config("scenes_p1", "small")
        workload = build_workload(config, seed=0)
        with_reserve = plan_num_samples(workload, 0.5, 15)
        without_reserve = plan_num_samples(workload, 0.5, 15, reserve_fraction=0.0)
        assert with_reserve < without_reserve

    def test_invalid_ratio(self):
        config = get_config("forest_cover", "small")
        workload = build_workload(config, seed=0)
        with pytest.raises(ValueError):
            plan_num_samples(workload, 0.0, 5)


class TestRunner:
    @pytest.fixture(scope="class")
    def forest_points(self):
        config = get_config("forest_cover", "small")
        return run_panel(config, ratios=(0.5, 0.1), k_values=(3, 9), num_trials=1)

    def test_point_grid_complete(self, forest_points):
        assert len(forest_points) == 4
        assert {(p.ratio_target, p.k) for p in forest_points} == {
            (0.5, 3), (0.5, 9), (0.1, 3), (0.1, 9)
        }

    def test_errors_are_finite_and_positive(self, forest_points):
        for point in forest_points:
            assert np.isfinite(point.additive_error)
            assert point.additive_error >= 0
            assert point.relative_error >= 1.0 - 1e-6

    def test_measured_ratio_close_to_target(self, forest_points):
        for point in forest_points:
            assert point.ratio_actual <= point.ratio_target * 1.5 + 0.05

    def test_prediction_recorded(self, forest_points):
        for point in forest_points:
            assert point.predicted_error == pytest.approx(point.k**2 / point.num_samples)

    def test_figure1_shape_more_communication_helps(self, forest_points):
        """The paper's headline qualitative claim on the RFF panels."""
        for k in (3, 9):
            high = next(p for p in forest_points if p.ratio_target == 0.5 and p.k == k)
            low = next(p for p in forest_points if p.ratio_target == 0.1 and p.k == k)
            assert high.additive_error <= low.additive_error * 1.5 + 1e-3

    def test_actual_error_beats_prediction(self, forest_points):
        beats = sum(p.additive_error <= p.predicted_error for p in forest_points)
        assert beats >= 3

    def test_invalid_trials(self):
        config = get_config("forest_cover", "small")
        with pytest.raises(ValueError):
            run_panel(config, num_trials=0)


class TestAveragingAndReport:
    def _fake_points(self):
        return [
            ExperimentPoint("P", "rff", 3, 0.5, 0.4, 100, 0.02, 1.1, 0.09, trial=0),
            ExperimentPoint("P", "rff", 3, 0.5, 0.5, 100, 0.04, 1.3, 0.09, trial=1),
            ExperimentPoint("P", "rff", 6, 0.5, 0.45, 100, 0.05, 1.2, 0.36, trial=0),
        ]

    def test_average_points(self):
        averaged = average_points(self._fake_points())
        assert len(averaged) == 2
        merged = next(p for p in averaged if p.k == 3)
        assert merged.additive_error == pytest.approx(0.03)
        assert merged.trial == -1

    def test_csv_roundtrip(self, tmp_path):
        path = points_to_csv(self._fake_points(), tmp_path / "points.csv")
        content = path.read_text().strip().splitlines()
        assert content[0].startswith("panel,")
        assert len(content) == 4

    def test_summary_contains_panels(self):
        text = summarize_results({"P": self._fake_points()})
        assert "P" in text
        assert "ratio" in text

    def test_qualitative_checks_structure(self):
        checks = qualitative_checks({"P": self._fake_points()})
        assert set(checks) == {
            "beats_prediction",
            "more_communication_helps",
            "relative_error_close_to_one",
        }

    def test_qualitative_checks_empty_raises(self):
        with pytest.raises(ValueError):
            qualitative_checks({"P": []})


class TestFigureFormatting:
    def test_run_figure1_and_format(self):
        results = run_figure1(["forest_cover"], scale="small", k_values=(3, 6), num_trials=1)
        assert "ForestCover" in results
        text1 = format_figure1_panel("ForestCover", results["ForestCover"])
        assert "prediction" in text1
        assert "k=3" in text1 and "k=6" in text1
        text2 = format_figure2_panel("ForestCover", results["ForestCover"])
        assert "relative error" in text2

    def test_table_i_text(self):
        text = format_table_i()
        assert "Huber" in text or "huber" in text
        assert "holds" in text
        assert "VIOLATED" not in text
