"""Tests of the top-level public API surface and the example scripts."""

import importlib
import pathlib
import runpy

import pytest

import repro


class TestPublicApi:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_symbols_exist(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            assert hasattr(repro, name), f"{name} listed in __all__ but missing"

    def test_all_public_objects_are_documented(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            obj = getattr(repro, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{name} has no docstring"

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.backend",
            "repro.distributed",
            "repro.functions",
            "repro.sketch",
            "repro.core",
            "repro.kernels",
            "repro.lowerbounds",
            "repro.datasets",
            "repro.experiments",
            "repro.utils",
        ],
    )
    def test_subpackages_importable_and_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__
        assert module.__all__

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.backend",
            "repro.distributed",
            "repro.functions",
            "repro.sketch",
            "repro.core",
            "repro.kernels",
            "repro.lowerbounds",
            "repro.datasets",
            "repro.experiments",
            "repro.utils",
        ],
    )
    def test_subpackage_all_entries_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"


EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[1] / "examples"


class TestExamples:
    def test_all_examples_present(self):
        names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart.py",
            "rff_pca.py",
            "pooling_pca.py",
            "robust_pca.py",
            "communication_tradeoff.py",
        } <= names

    def test_examples_have_module_docstrings(self):
        for path in EXAMPLES_DIR.glob("*.py"):
            first_nonempty = next(
                line for line in path.read_text().splitlines() if line.strip()
            )
            assert first_nonempty.startswith('"""'), f"{path.name} lacks a docstring"

    def test_quickstart_runs(self, capsys):
        runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
        out = capsys.readouterr().out
        assert "additive error" in out
        assert "communication" in out
