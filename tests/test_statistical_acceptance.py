"""Statistical acceptance tests: sampler draw frequencies vs exact probabilities.

The equivalence suite proves the fused, naive and multiprocessing paths
produce *identical* outputs; these tests prove those outputs are
*distributionally correct*: drawing many samples from :class:`ZSampler`
must reproduce the exact per-class / per-coordinate probabilities implied
by its own Z-estimate, within seeded chi-square and total-variation
tolerances (see ``DistributionChecker`` in ``conftest.py``).

Everything is seeded: a failure is a regression, not noise.
"""

import numpy as np
import pytest

from conftest import make_distributed_vector
from repro.functions import HuberPsi, Identity
from repro.sketch import engine
from repro.sketch.z_heavy_hitters import ZHeavyHittersParams
from repro.sketch.z_sampler import ZSampler, ZSamplerConfig


def heavy_vector(dimension=800, heavy=30, seed=21):
    """A dense vector whose mass sits on a few clearly separated coordinates."""
    rng = np.random.default_rng(seed)
    dense = np.zeros(dimension)
    coords = rng.choice(dimension, size=heavy, replace=False)
    dense[coords] = rng.uniform(5.0, 50.0, size=heavy)
    return dense


def sampler_config():
    return ZSamplerConfig(
        hh_params=ZHeavyHittersParams(b=16, repetitions=2, num_buckets=8)
    )


def exact_draw_distribution(estimate):
    """The exact single-draw distribution implied by a Z-estimate.

    Mirrors :meth:`ZSampler.sample` without injection: a class is chosen
    proportionally to ``shat_i (1+eps)^i`` and a member uniformly within it.
    Returns ``(support, probabilities)`` over all recovered coordinates.
    """
    classes = [k for k, members in estimate.class_members.items() if members.size > 0]
    eps = estimate.epsilon
    contributions = np.array(
        [estimate.class_sizes[k] * (1.0 + eps) ** k for k in classes], dtype=float
    )
    class_probs = contributions / contributions.sum()
    support, probabilities = [], []
    for klass, class_prob in zip(classes, class_probs):
        members = estimate.class_members[klass]
        for coordinate in members.tolist():
            support.append(coordinate)
            probabilities.append(class_prob / members.size)
    return np.asarray(support, dtype=np.int64), np.asarray(probabilities, dtype=float)


def draw_and_check(checker, count, *, weight_fn=None, sampler_seed=33, mp_processes=None):
    """Run the pipeline once, draw ``count`` samples, check the distribution."""
    weight_fn = weight_fn or Identity().sampling_weight
    vector = make_distributed_vector(heavy_vector())
    sampler = ZSampler(weight_fn, sampler_config(), seed=sampler_seed)
    if mp_processes is None:
        estimate = sampler.estimate(vector)
    else:
        with engine.multiprocess_execution(processes=mp_processes):
            estimate = sampler.estimate(vector)
    draws = sampler.sample(vector, count, estimate=estimate)
    support, probabilities = exact_draw_distribution(estimate)
    result = checker.assert_matches(draws.indices, support, probabilities)
    return draws, estimate, result


class TestDrawDistribution:
    def test_fused_engine_matches_exact_class_probabilities(
        self, distribution_checker, statistical_draws
    ):
        draws, estimate, result = draw_and_check(
            distribution_checker, statistical_draws
        )
        assert result.total_draws == statistical_draws
        # Reported Qhat must equal the drawn coordinate's weight over Zhat.
        expected_q = Identity().sampling_weight(draws.values) / estimate.z_total
        np.testing.assert_allclose(draws.probabilities, expected_q, rtol=1e-12)

    def test_naive_engine_matches_exact_class_probabilities(
        self, distribution_checker, statistical_draws
    ):
        with engine.naive_reference():
            draw_and_check(distribution_checker, statistical_draws)

    def test_multiprocessing_path_matches_exact_class_probabilities(
        self, distribution_checker, statistical_draws
    ):
        draw_and_check(distribution_checker, statistical_draws, mp_processes=2)

    def test_huber_weight_distribution(self, distribution_checker, statistical_draws):
        draw_and_check(
            distribution_checker,
            statistical_draws,
            weight_fn=HuberPsi(2.0).sampling_weight,
        )


class TestInjectionDistribution:
    def test_injection_rejection_preserves_real_distribution(
        self, distribution_checker, statistical_draws
    ):
        """FAIL/retry on injected coordinates must leave the marginal exact.

        Conditioning a round's draw on success multiplies each class's
        (injection-padded) probability by its real fraction, which cancels
        back to the un-padded distribution -- so the empirical marginal must
        match the same exact probabilities as the no-injection sampler.
        """
        vector = make_distributed_vector(heavy_vector())
        config = sampler_config()
        config.use_injection = True
        sampler = ZSampler(Identity().sampling_weight, config, seed=77)
        estimate = sampler.estimate(vector)
        draws = sampler.sample(vector, statistical_draws, estimate=estimate)
        support, probabilities = exact_draw_distribution(estimate)
        distribution_checker.assert_matches(draws.indices, support, probabilities)


@pytest.mark.statistical
class TestHeavyStatistical:
    """Large-draw variants: tighter tolerances, run under --statistical."""

    def test_fused_large_draws_tight_tolerance(self, distribution_checker):
        draws, _, result = draw_and_check(distribution_checker, 200_000)
        assert result.tv_distance <= 0.02

    def test_engines_agree_on_empirical_distribution(self, distribution_checker):
        """Fused and naive engines must be statistically indistinguishable
        (they are in fact bit-for-bit identical; this guards the harness)."""
        fused_draws, _, _ = draw_and_check(distribution_checker, 50_000)
        with engine.naive_reference():
            naive_draws, _, _ = draw_and_check(distribution_checker, 50_000)
        np.testing.assert_array_equal(fused_draws.indices, naive_draws.indices)

    def test_multiprocessing_large_draws(self, distribution_checker):
        draws, _, result = draw_and_check(
            distribution_checker, 120_000, mp_processes=2
        )
        assert result.tv_distance <= 0.03
