"""Lower-bound reductions of Section VII (E9): Theorems 4, 6 and 8.

These are not figures in the paper, but they are half of its contribution.
Each benchmark runs the constructive reduction with an exact relative-error
rank-k solver over random promise instances and reports the decision
accuracy together with the lower-bound magnitude the theorem implies for the
instance size.
"""

from benchmarks._harness import run_once, save_result
from repro.lowerbounds import (
    DisjointnessReduction,
    GapHammingReduction,
    LInfinityReduction,
    theorem4_bound_bits,
    theorem6_bound_bits,
    theorem8_bound_bits,
)


def test_theorem8_gap_hamming_reduction(benchmark):
    reduction = GapHammingReduction(epsilon=0.08, k=2)
    accuracy = run_once(benchmark, lambda: reduction.verify(trials=30, seed=0))
    text = (
        "Theorem 8 (Gap-Hamming-Distance reduction, f(x) = x)\n"
        f"  epsilon = 0.08, instance length = {int(1 / 0.08**2)}\n"
        f"  decision accuracy of a relative-error rank-k solver: {accuracy:.3f}\n"
        f"  implied lower bound: Omega(1/eps^2) ~ {theorem8_bound_bits(0.08):.0f} bits"
    )
    save_result("lowerbound_theorem8", text)
    assert accuracy >= 0.9


def test_theorem6_disjointness_reduction(benchmark):
    def run():
        results = {}
        for aggregation in ("max", "huber"):
            reduction = DisjointnessReduction(16, 8, k=3, aggregation=aggregation)
            results[aggregation] = reduction.verify(trials=16, seed=1)
        return results

    accuracies = run_once(benchmark, run)
    text = (
        "Theorem 6 (2-DISJ reduction, f = max or Huber psi)\n"
        f"  instance length n*d = 128\n"
        f"  decision accuracy (max):   {accuracies['max']:.3f}\n"
        f"  decision accuracy (huber): {accuracies['huber']:.3f}\n"
        f"  implied lower bound: Omega~(n d) = {theorem6_bound_bits(16, 8):.0f} bits"
    )
    save_result("lowerbound_theorem6", text)
    assert min(accuracies.values()) >= 0.9


def test_theorem4_linf_reduction(benchmark):
    def run():
        results = {}
        for p in (1.5, 2.0, 3.0):
            reduction = LInfinityReduction(16, 8, k=3, p=p)
            results[p] = reduction.verify(trials=16, seed=2)
        return results

    accuracies = run_once(benchmark, run)
    lines = ["Theorem 4 (L-infinity reduction, f(x) = |x|^p, p > 1)", "  instance length n*d = 128"]
    for p, accuracy in accuracies.items():
        lines.append(
            f"  p = {p:g}: decision accuracy {accuracy:.3f}, "
            f"implied bound ~ {theorem4_bound_bits(16, 8, p, 0.1):.2f} bits "
            "(grows polynomially with n)"
        )
    save_result("lowerbound_theorem4", "\n".join(lines))
    assert min(accuracies.values()) >= 0.9
