"""Figure 1 / Figure 2, panel "isolet" (E5): robust PCA with the Huber psi.

isolet-like features with 50 corrupted entries, entrywise-partitioned over
10 servers; the Huber psi-function clips the corruption and rows are sampled
with the generalized Z-sampler.
"""

from benchmarks._harness import run_and_save_panel


def test_figure1_isolet(benchmark):
    stats = run_and_save_panel(benchmark, "isolet", "isolet")
    assert stats["worst_additive_error"] < 0.6
