"""Figure 1 / Figure 2, panel "ForestCover" (E1).

Gaussian random Fourier features of Forest-Cover-like data, 10 servers,
communication-ratio bounds {0.5, 0.25, 0.1}, k in {3, 6, 9, 12, 15}.
Regenerates the additive-error series (with the k^2/r prediction) and the
relative-error series.
"""

from benchmarks._harness import run_and_save_panel


def test_figure1_forest_cover(benchmark):
    stats = run_and_save_panel(benchmark, "forest_cover", "ForestCover")
    # The paper's ForestCover panel stays well below 10^0 additive error.
    assert stats["worst_additive_error"] < 0.3
