"""Ablation A1: sampler quality (generalized Z-sampler vs oracle vs uniform).

The design choice behind Algorithms 2-4 is paying communication for
norm-proportional sampling.  This ablation compares, on a workload with
heavy-tailed row norms (where uniform sampling is expected to struggle):

* the exact-norm oracle sampler (centralised, the quality ceiling);
* the distributed generalized Z-sampler (the paper's contribution);
* uniform sampling (the cheap baseline, valid only for flat row norms).

It reports the downstream additive error of Algorithm 1 with each sampler
and the total-variation distance of the entry-sampling distribution from the
ideal one.
"""

import numpy as np

from benchmarks._harness import run_once, save_result
from repro.core import DistributedPCA, ExactNormSampler, GeneralizedZRowSampler, UniformRowSampler
from repro.datasets import power_law_rows
from repro.distributed import LocalCluster, entrywise_partition
from repro.distributed.vector import DistributedVector
from repro.functions import Identity
from repro.sketch import ZSampler, ZSamplerConfig, exact_z_distribution
from repro.sketch.exact import empirical_distribution, total_variation_distance
from repro.sketch.z_heavy_hitters import ZHeavyHittersParams


def _z_config():
    return ZSamplerConfig(
        hh_params=ZHeavyHittersParams(b=16, repetitions=2, num_buckets=16),
        max_levels=8,
        min_level_count=2,
    )


def _build_cluster():
    data = power_law_rows(400, 48, exponent=1.2, seed=0)
    return LocalCluster(entrywise_partition(data, 6, seed=1), Identity(), name="power-law")


def test_ablation_sampler_quality(benchmark):
    def run():
        cluster = _build_cluster()
        global_matrix = cluster.materialize_global()
        k, r = 6, 120
        rows = []
        for sampler in (ExactNormSampler(), GeneralizedZRowSampler(config=_z_config()),
                        UniformRowSampler()):
            result = DistributedPCA(k=k, num_samples=r, sampler=sampler, seed=3).fit(cluster)
            report = result.evaluate(global_matrix)
            rows.append(
                (sampler.name, report["additive_error"], report["relative_error"],
                 result.communication_ratio)
            )
        return rows

    rows = run_once(benchmark, run)
    lines = [
        "Ablation A1: sampler quality on power-law row norms (k=6, r=120)",
        f"{'sampler':<16}{'additive error':>16}{'relative error':>16}{'comm ratio':>12}",
    ]
    for name, additive, relative, ratio in rows:
        lines.append(f"{name:<16}{additive:>16.4f}{relative:>16.4f}{ratio:>12.3f}")
    save_result("ablation_samplers", "\n".join(lines))

    by_name = {name: additive for name, additive, _, _ in rows}
    # The distributed Z-sampler must beat uniform sampling on this workload
    # and stay within a modest gap of the oracle.
    assert by_name["generalized_z"] <= by_name["uniform"] + 0.05
    assert by_name["generalized_z"] <= by_name["exact_norm"] + 0.15


def test_ablation_z_sampler_distribution(benchmark):
    """TV distance of the Z-sampler's empirical distribution from the ideal."""

    def run():
        rng = np.random.default_rng(0)
        dense = np.zeros(600)
        support = rng.choice(600, size=25, replace=False)
        dense[support] = rng.normal(size=25) * np.linspace(3, 40, 25)
        parts = [rng.normal(scale=0.01, size=600) for _ in range(3)]
        parts.append(dense - np.sum(parts, axis=0))
        from repro.distributed.network import Network

        network = Network(len(parts))
        components = []
        for vec in parts:
            idx = np.nonzero(vec)[0]
            components.append((idx, vec[idx]))
        vector = DistributedVector(components, 600, network)
        weight = Identity().sampling_weight
        sampler = ZSampler(weight, _z_config(), seed=1)
        draws = sampler.sample(vector, 3000)
        exact = exact_z_distribution(vector, weight)
        empirical = empirical_distribution(draws.indices, 600)
        return total_variation_distance(exact, empirical), network.total_words

    tv, words = run_once(benchmark, run)
    save_result(
        "ablation_z_sampler_tv",
        "Ablation A1b: Z-sampler distribution quality\n"
        f"  total-variation distance from the exact z-distribution: {tv:.3f}\n"
        f"  sampling communication: {words} words",
    )
    assert tv < 0.35
