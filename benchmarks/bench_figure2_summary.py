"""Figure 2 cross-panel summary and the paper's qualitative checks (E6).

Figure 2 plots the relative error of the same runs that produce Figure 1;
this benchmark re-runs one representative panel per application (RFF,
P-norm pooling, robust PCA), prints the relative-error series side by side
and evaluates the qualitative claims the paper draws from the figures:
the measured error beats the k^2/r prediction, more communication helps,
and the RFF relative errors stay very close to 1.
"""

from benchmarks._harness import SCALE, K_VALUES, run_once, save_result
from repro.experiments import format_figure2_panel, run_figure1
from repro.experiments.report import qualitative_checks, summarize_results

REPRESENTATIVE_PANELS = ["forest_cover", "caltech_p2", "scenes_p20", "isolet"]


def test_figure2_relative_error_summary(benchmark):
    results = run_once(
        benchmark,
        lambda: run_figure1(REPRESENTATIVE_PANELS, scale=SCALE, k_values=K_VALUES, num_trials=1),
    )
    sections = [format_figure2_panel(panel, points) for panel, points in results.items()]
    sections.append(summarize_results(results))
    checks = qualitative_checks(results)
    sections.append(f"qualitative checks: {checks}")
    save_result("figure2_summary", "\n\n".join(sections))
    assert checks["relative_error_close_to_one"]
    assert checks["beats_prediction"]
