"""Table I (E7): the psi-functions of the M-estimators used for robust PCA.

Regenerates the table (Huber, L1-L2, "Fair"), augmented with a numerical
verification that each squared psi satisfies property P -- the condition
under which the generalized sampler, and hence the whole framework,
applies to them.
"""

from benchmarks._harness import run_once, save_result
from repro.experiments import format_table_i
from repro.functions import FairPsi, HuberPsi, L1L2Psi
from repro.functions.base import satisfies_property_p


def test_table1_mestimators(benchmark):
    text = run_once(benchmark, lambda: format_table_i(threshold=1.0, scale=1.0))
    save_result("table1_mestimators", text)
    assert "VIOLATED" not in text
    for fn in (HuberPsi(1.0), L1L2Psi(), FairPsi(1.0)):
        assert satisfies_property_p(fn, upper=50.0, num_points=501)
