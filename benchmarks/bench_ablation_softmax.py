"""Ablation A3: how fast GM_p pooling converges to max pooling (Section VI-B).

The paper replaces the intractable entrywise maximum (Theorem 6 lower bound)
with the generalized mean GM_p; this ablation quantifies, as a function of p,
the gap between GM_p and the true maximum and the effect on the pooled
matrix's PCA subspace.
"""

import numpy as np

from benchmarks._harness import run_once, save_result
from repro.datasets import caltech_like_patch_codes
from repro.functions import entrywise_max, max_aggregation_error
from repro.functions.softmax import GeneralizedMeanFunction
from repro.utils.linalg import svd_rank_k_projection


def test_ablation_softmax_vs_max(benchmark):
    def run():
        dataset = caltech_like_patch_codes(num_images=200, num_servers=10, seed=0)
        locals_ = dataset.local_counts
        true_max = entrywise_max(locals_)
        _, max_projection = svd_rank_k_projection(true_max, 9)
        rows = []
        for p in (1.0, 2.0, 5.0, 10.0, 20.0, 50.0):
            fn = GeneralizedMeanFunction(p)
            pooled = fn.aggregate_reference(locals_)
            gaps = max_aggregation_error(locals_, p)
            _, gm_projection = svd_rank_k_projection(pooled, 9)
            # Principal-angle style distance between the two rank-9 subspaces.
            subspace_gap = float(
                np.linalg.norm(gm_projection - max_projection, "fro") / np.sqrt(2 * 9)
            )
            rows.append((p, gaps["frobenius_relative_gap"], gaps["mean_relative_gap"], subspace_gap))
        return rows

    rows = run_once(benchmark, run)
    lines = [
        "Ablation A3: GM_p pooling versus entrywise max pooling",
        f"{'P':>6}{'||GM_p - max|| / ||max||':>26}{'mean entry gap':>18}{'subspace gap':>16}",
    ]
    for p, fro_gap, mean_gap, subspace_gap in rows:
        lines.append(f"{p:>6g}{fro_gap:>26.4f}{mean_gap:>18.4f}{subspace_gap:>16.4f}")
    save_result("ablation_softmax", "\n".join(lines))

    fro_gaps = [fro_gap for _, fro_gap, _, _ in rows]
    # The gap to max pooling shrinks monotonically as P grows, and P=20
    # (the paper's "simulating max pooling" setting) is already close.
    assert all(b <= a + 1e-9 for a, b in zip(fro_gaps, fro_gaps[1:]))
    assert fro_gaps[-2] < 0.2
