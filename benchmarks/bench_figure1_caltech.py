"""Figure 1 / Figure 2, panels "Caltech-101(P=1,2,5,20)" (E3).

P-norm pooling of Caltech-101-like patch codes over 50 servers; rows are
sampled with the generalized Z-sampler (l_{2/P} sampling on the summed
powered counts).  One benchmark per pooling exponent P.
"""

import pytest

from benchmarks._harness import run_and_save_panel


@pytest.mark.parametrize("p", [1, 2, 5, 20])
def test_figure1_caltech(benchmark, p):
    stats = run_and_save_panel(benchmark, f"caltech_p{p}", f"Caltech-101(P={p})")
    assert stats["worst_additive_error"] < 0.6
