"""Figure 1 / Figure 2, panels "Scenes(P=1,2,5,20)" (E4).

P-norm pooling of Scenes-like patch codes over 10 servers.
"""

import pytest

from benchmarks._harness import run_and_save_panel


@pytest.mark.parametrize("p", [1, 2, 5, 20])
def test_figure1_scenes(benchmark, p):
    stats = run_and_save_panel(benchmark, f"scenes_p{p}", f"Scenes(P={p})")
    assert stats["worst_additive_error"] < 0.6
