"""Figure 1 / Figure 2, panel "KDDCUP99" (E2).

Gaussian random Fourier features of KDDCUP99-like data, 50 servers,
communication-ratio bounds {0.1, 0.05, 0.01}.
"""

from benchmarks._harness import run_and_save_panel


def test_figure1_kddcup99(benchmark):
    stats = run_and_save_panel(benchmark, "kddcup99", "KDDCUP99")
    assert stats["worst_additive_error"] < 0.5
