"""Ablation A2: communication versus accuracy (Theorem 1's trade-off).

Sweeps the number of sampled rows r and reports the measured additive error,
the k^2/r prediction and the exact communication ratio -- the quantitative
backbone of Figure 1.
"""

from benchmarks._harness import run_once, save_result
from repro.core import DistributedPCA, predicted_additive_error
from repro.datasets import low_rank_plus_noise
from repro.distributed import LocalCluster, arbitrary_partition


def test_ablation_communication_tradeoff(benchmark):
    def run():
        data = low_rank_plus_noise(1200, 64, 12, noise_level=0.2, seed=0)
        cluster = LocalCluster(arbitrary_partition(data, 8, seed=1), name="tradeoff")
        global_matrix = cluster.materialize_global()
        k = 6
        rows = []
        for num_samples in (25, 50, 100, 200, 400, 800):
            result = DistributedPCA(k=k, num_samples=num_samples, seed=2).fit(cluster)
            report = result.evaluate(global_matrix)
            rows.append(
                (num_samples, predicted_additive_error(k, num_samples),
                 report["additive_error"], result.communication_ratio)
            )
        return rows

    rows = run_once(benchmark, run)
    lines = [
        "Ablation A2: accuracy vs communication (k = 6, uniform sampler)",
        f"{'rows r':>8}{'prediction k^2/r':>20}{'additive error':>18}{'comm ratio':>14}",
    ]
    for r, predicted, actual, ratio in rows:
        lines.append(f"{r:>8}{predicted:>20.4f}{actual:>18.4f}{ratio:>14.4f}")
    save_result("ablation_communication", "\n".join(lines))

    errors = [actual for _, _, actual, _ in rows]
    ratios = [ratio for _, _, _, ratio in rows]
    # More communication monotonically improves accuracy (up to noise) and the
    # measured error always beats the theoretical prediction.
    assert errors[-1] < errors[0]
    assert ratios[-1] > ratios[0]
    assert all(actual <= predicted for _, predicted, actual, _ in rows)
