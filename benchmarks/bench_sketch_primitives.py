"""Micro-benchmarks of the sketching substrate (true pytest-benchmark timings).

Unlike the figure benchmarks (one-shot experiment regenerations), these run
repeatedly and measure the throughput of the primitives a deployment would
care about: CountSketch construction, sketching a local component, merging
tables, point queries and the distributed HeavyHitters round-trip.
"""

import numpy as np
import pytest

from repro.distributed.network import Network
from repro.distributed.vector import DistributedVector
from repro.sketch.countsketch import CountSketch
from repro.sketch.heavy_hitters import distributed_heavy_hitters

DOMAIN = 50_000
SUPPORT = 5_000


@pytest.fixture(scope="module")
def sparse_component(rng=None):
    generator = np.random.default_rng(0)
    indices = np.sort(generator.choice(DOMAIN, size=SUPPORT, replace=False)).astype(np.int64)
    values = generator.normal(size=SUPPORT)
    return indices, values


@pytest.fixture(scope="module")
def sketch():
    return CountSketch(depth=5, width=256, domain=DOMAIN, seed=0)


def test_countsketch_sketch_sparse(benchmark, sketch, sparse_component):
    indices, values = sparse_component
    table = benchmark(lambda: sketch.sketch(indices, values))
    assert table.shape == (5, 256)


def test_countsketch_point_queries(benchmark, sketch, sparse_component):
    indices, values = sparse_component
    table = sketch.sketch(indices, values)
    query = np.arange(0, DOMAIN, 50, dtype=np.int64)
    estimates = benchmark(lambda: sketch.estimate(table, query))
    assert estimates.shape == query.shape


def test_countsketch_merge(benchmark, sketch, sparse_component):
    indices, values = sparse_component
    tables = [sketch.sketch(indices, values * scale) for scale in (1.0, 2.0, 3.0, 4.0)]
    merged = benchmark(lambda: CountSketch.merge(tables))
    assert merged.shape == (5, 256)


def test_distributed_heavy_hitters_round(benchmark):
    generator = np.random.default_rng(1)
    dense = generator.normal(size=DOMAIN) * 0.1
    dense[generator.choice(DOMAIN, size=10, replace=False)] = 100.0

    def build_vector():
        parts = [generator.normal(scale=0.01, size=DOMAIN) for _ in range(3)]
        parts.append(dense - np.sum(parts, axis=0))
        network = Network(len(parts))
        components = []
        for vec in parts:
            idx = np.nonzero(vec)[0].astype(np.int64)
            components.append((idx, vec[idx]))
        return DistributedVector(components, DOMAIN, network)

    vector = build_vector()
    result = benchmark.pedantic(
        lambda: distributed_heavy_hitters(vector, b=16, seed=2), rounds=3, iterations=1
    )
    assert result.candidates.size >= 5
