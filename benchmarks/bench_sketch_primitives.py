"""Micro-benchmarks of the sketching substrate (true pytest-benchmark timings).

Unlike the figure benchmarks (one-shot experiment regenerations), these run
repeatedly and measure the throughput of the primitives a deployment would
care about: CountSketch construction, sketching a local component, merging
tables, point queries and the distributed HeavyHitters round-trip.

The module also emits machine-readable ``BENCH_sketch_primitives.json``
(via ``_harness.save_json``) comparing the fused (vectorized) engine with
the retained naive reference engine -- the naive engine is the seed
implementation, so the recorded ``speedup`` values track the gain of the
batched sketch engine over the original per-row / per-bucket loops.  Run
either through pytest or directly::

    PYTHONPATH=src python benchmarks/bench_sketch_primitives.py
"""

import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from _harness import save_json

from repro.core.samplers import GeneralizedZRowSampler
from repro.distributed.cluster import LocalCluster
from repro.distributed.network import Network
from repro.distributed.vector import DistributedVector
from repro.functions import Identity
from repro.sketch import engine
from repro.sketch.countsketch import BatchedCountSketch, CountSketch
from repro.sketch.hashing import PairwiseHash, SubsampleHash
from repro.sketch.heavy_hitters import distributed_heavy_hitters
from repro.sketch.z_heavy_hitters import ZHeavyHittersParams, z_heavy_hitters
from repro.sketch.z_sampler import ZSamplerConfig

DOMAIN = 50_000
SUPPORT = 5_000

#: Scale of the JSON speedup benchmark ("1M-coordinate scale").
LARGE_DOMAIN = 1_000_000
LARGE_SUPPORT = 500_000


# --------------------------------------------------------------------- #
# pytest-benchmark micro timings (fused engine, the production default)
# --------------------------------------------------------------------- #
try:
    import pytest

    @pytest.fixture(scope="module")
    def sparse_component():
        generator = np.random.default_rng(0)
        indices = np.sort(
            generator.choice(DOMAIN, size=SUPPORT, replace=False)
        ).astype(np.int64)
        values = generator.normal(size=SUPPORT)
        return indices, values

    @pytest.fixture(scope="module")
    def sketch():
        return CountSketch(depth=5, width=256, domain=DOMAIN, seed=0)

    def test_countsketch_sketch_sparse(benchmark, sketch, sparse_component):
        indices, values = sparse_component
        table = benchmark(lambda: sketch.sketch(indices, values))
        assert table.shape == (5, 256)

    def test_countsketch_point_queries(benchmark, sketch, sparse_component):
        indices, values = sparse_component
        table = sketch.sketch(indices, values)
        query = np.arange(0, DOMAIN, 50, dtype=np.int64)
        estimates = benchmark(lambda: sketch.estimate(table, query))
        assert estimates.shape == query.shape

    def test_countsketch_merge(benchmark, sketch, sparse_component):
        indices, values = sparse_component
        tables = [sketch.sketch(indices, values * scale) for scale in (1.0, 2.0, 3.0, 4.0)]
        merged = benchmark(lambda: CountSketch.merge(tables))
        assert merged.shape == (5, 256)

    def test_distributed_heavy_hitters_round(benchmark):
        generator = np.random.default_rng(1)
        dense = generator.normal(size=DOMAIN) * 0.1
        dense[generator.choice(DOMAIN, size=10, replace=False)] = 100.0

        parts = [generator.normal(scale=0.01, size=DOMAIN) for _ in range(3)]
        parts.append(dense - np.sum(parts, axis=0))
        network = Network(len(parts))
        components = []
        for vec in parts:
            idx = np.nonzero(vec)[0].astype(np.int64)
            components.append((idx, vec[idx]))
        vector = DistributedVector(components, DOMAIN, network)
        result = benchmark.pedantic(
            lambda: distributed_heavy_hitters(vector, b=16, seed=2), rounds=3, iterations=1
        )
        assert result.candidates.size >= 5

    def test_emit_speedup_json(benchmark):
        """Measure fused vs naive engines (results land in benchmarks/results/
        only; the tracked repo-root JSON is regenerated deliberately via
        ``python benchmarks/bench_sketch_primitives.py``)."""
        payload = benchmark.pedantic(
            lambda: emit_speedup_json(write_root=False), rounds=1, iterations=1
        )
        assert set(payload["results"]) == {
            "countsketch_sketch",
            "countsketch_estimate_all",
            "countsketch_estimate",
            "build_domain_cache",
            "z_heavy_hitters",
            "z_heavy_hitters_multiprocess",
            "vector_collect",
            "vector_restrict",
            "vector_restrict_by_masks",
            "streaming_apply_deltas",
            "runtime_pipelined_sample",
            "sharded_rebalance_skew",
            "serving_warm_qps",
            "sampler_sample_rows",
            "telemetry_overhead",
            "kernel_polynomial_hash",
            "kernel_scatter_add",
            "kernel_domain_cache_gather",
            "mp_batched_dispatch",
        }
        context = payload["context"]
        assert context["cpu_count"] >= 1
        assert context["kernel_provider"] in context["kernel_providers_available"]
        for entry_name in (
            "kernel_polynomial_hash",
            "kernel_scatter_add",
            "kernel_domain_cache_gather",
        ):
            kernel_entry = payload["results"][entry_name]
            assert kernel_entry["bit_identical"]
            assert kernel_entry["provider"] == context["kernel_provider"]
        dispatch = payload["results"]["mp_batched_dispatch"]
        assert dispatch["batched_submissions"] < dispatch["per_server_submissions"]
        assert dispatch["bit_identical"]
        assert payload["results"]["telemetry_overhead"]["within_ceiling"]
        assert "wave_latency_seconds" in payload["results"]["runtime_pipelined_sample"]
        assert payload["results"]["runtime_pipelined_sample"]["bit_identical"]
        assert payload["results"]["streaming_apply_deltas"]["bit_identical"]
        assert payload["results"]["sharded_rebalance_skew"]["bit_identical"]
        serving = payload["results"]["serving_warm_qps"]
        assert serving["zero_warm_waves"] and serving["bit_identical"]
        assert "p99" in serving["warm_latency_seconds"]
        # Only the large CountSketch cases have enough margin (~10x) to
        # assert a ratio without flaking on loaded machines.
        assert payload["results"]["countsketch_sketch"]["speedup"] > 1.0
        assert payload["results"]["countsketch_estimate_all"]["speedup"] > 1.0

except ImportError:  # pragma: no cover - direct script execution without pytest
    pass


# --------------------------------------------------------------------- #
# machine-readable fused-vs-naive speedups
# --------------------------------------------------------------------- #
def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _timed_pair(fn, repeats: int = 3) -> dict:
    """Time ``fn`` under the fused and the naive engine; fused is warmed first."""
    fn()  # warm caches / allocations so the steady state is measured
    fused = _best_of(fn, repeats)
    with engine.naive_reference():
        naive = _best_of(fn, repeats)
    return {
        "fused_seconds": fused,
        "naive_seconds": naive,
        "fused_ops_per_sec": 1.0 / fused,
        "naive_ops_per_sec": 1.0 / naive,
        "speedup": naive / fused,
    }


def _timed_pair_fns(fused_fn, naive_fn, repeats: int = 3) -> dict:
    """Time distinct fused/naive callables (same logical work, two engines)."""
    fused_fn()
    fused = _best_of(fused_fn, repeats)
    with engine.naive_reference():
        naive = _best_of(naive_fn, repeats)
    return {
        "fused_seconds": fused,
        "naive_seconds": naive,
        "fused_ops_per_sec": 1.0 / fused,
        "naive_ops_per_sec": 1.0 / naive,
        "speedup": naive / fused,
    }


def _sampler_cluster(n: int = 2000, d: int = 50, servers: int = 4) -> LocalCluster:
    generator = np.random.default_rng(0)
    total = generator.normal(size=(n, d)) * 0.1
    total[generator.choice(n, size=12, replace=False)] *= 60
    parts = [generator.normal(scale=0.01, size=(n, d)) for _ in range(servers - 1)]
    parts.append(total - np.sum(parts, axis=0))
    return LocalCluster(parts, Identity())


def _zhh_vector(
    dim: int = 50_000, servers: int = 4, support: int | None = None
) -> DistributedVector:
    generator = np.random.default_rng(7)
    components = []
    heavy = generator.choice(dim, size=30, replace=False)
    for server in range(servers):
        if support is None:
            vec = generator.normal(size=dim) * 0.05
            idx = np.nonzero(vec)[0].astype(np.int64)
            values = vec[idx]
        else:
            idx = np.sort(
                generator.choice(dim, size=support, replace=False)
            ).astype(np.int64)
            values = generator.normal(size=support) * 0.05
        if server == 0:
            extra = np.setdiff1d(heavy, idx)
            idx = np.concatenate((idx, extra))
            values = np.concatenate((values, np.zeros(extra.size)))
            order = np.argsort(idx)
            idx, values = idx[order], values[order]
            values[np.isin(idx, heavy)] = 100.0
        components.append((idx, values))
    return DistributedVector(components, dim, Network(servers))


def _runtime_latency_entry(
    *, delay: float = 0.004, servers: int = 4, draws: int = 8, repeats: int = 2
) -> dict:
    """Sequential vs pipelined coordinator over a simulated-latency transport."""
    import numpy as _np

    from repro.experiments.workloads import runtime_vector_components
    from repro.runtime.service import CoordinatorService, WorkerService
    from repro.runtime.transport import LatencyTransport, LoopbackTransport
    from repro.sketch.z_sampler import ZSamplerConfig as _Config
    from repro.sketch.z_heavy_hitters import ZHeavyHittersParams as _HHParams

    dimension, support = 20_000, 2_000
    components = runtime_vector_components(servers, dimension, support, seed=0)
    config = _Config(
        hh_params=_HHParams(b=8, repetitions=1, num_buckets=8), max_levels=5
    )

    def run(concurrency):
        workers = [WorkerService(idx, val, dimension) for idx, val in components[1:]]
        transports = [
            LatencyTransport(LoopbackTransport(w.handle_frame), delay)
            for w in workers
        ]
        coordinator = CoordinatorService(
            transports, dimension, components[0], concurrency=concurrency
        )
        start = time.perf_counter()
        result = coordinator.sample(_np.abs, draws, config=config, seed=3)
        elapsed = time.perf_counter() - start
        coordinator.verify_wire_accounting()
        words = coordinator.network.snapshot().words_by_tag
        coordinator.close()
        return result, words, elapsed

    # Best-of timing, with bit-identity checks on every run.
    seq_runs = [run(1) for _ in range(repeats)]
    pipe_runs = [run(None) for _ in range(repeats)]
    reference_draws, reference_words, _ = seq_runs[0]
    for result, words, _ in seq_runs + pipe_runs:
        assert _np.array_equal(result.indices, reference_draws.indices)
        assert _np.array_equal(result.probabilities, reference_draws.probabilities)
        assert words == reference_words
    sequential = min(elapsed for _, _, elapsed in seq_runs)
    pipelined = min(elapsed for _, _, elapsed in pipe_runs)

    # One extra pipelined run under a telemetry capture: the in-process
    # snapshot API supplies per-op wave-latency percentiles to sit next to
    # the throughput numbers.  Untimed, so the capture cost never leaks
    # into the gated speedup above.
    from repro import obs

    with obs.capture() as telemetry:
        traced_result, traced_words, _ = run(None)
    assert _np.array_equal(traced_result.indices, reference_draws.indices)
    assert traced_words == reference_words  # tracing never moves the ledger
    histograms = telemetry.snapshot()["metrics"]["histograms"]
    wave_latency = {
        name[len("wave.seconds."):]: {
            "p50": summary["p50"], "p95": summary["p95"], "p99": summary["p99"]
        }
        for name, summary in sorted(histograms.items())
        if name.startswith("wave.seconds.")
    }
    return {
        "dimension": dimension,
        "support_per_server": support,
        "servers": servers,
        "draws": draws,
        "simulated_one_way_delay_seconds": delay,
        "sequential_seconds": sequential,
        "pipelined_seconds": pipelined,
        "speedup": sequential / pipelined,
        "wave_latency_seconds": wave_latency,
        "bit_identical": True,
    }


def _streaming_entry(
    *,
    domain: int,
    support: int,
    servers: int = 4,
    delta_size: int = 10_000,
    rounds: int = 3,
    depth: int = 5,
    width: int = 1024,
) -> dict:
    """Incremental stream-state refresh vs full resketch under delta batches."""
    from repro.backend import create_backend
    from repro.runtime.state import CountSketchState
    from repro.sketch.countsketch import CountSketch

    generator = np.random.default_rng(17)
    components = []
    for _ in range(servers):
        idx = np.sort(
            generator.choice(domain, size=support, replace=False)
        ).astype(np.int64)
        components.append((idx, generator.integers(-5, 6, size=support).astype(float)))

    def make_deltas(round_seed: int):
        rng = np.random.default_rng(round_seed)
        return [
            (
                np.sort(rng.choice(domain, size=delta_size, replace=False)).astype(
                    np.int64
                ),
                rng.integers(-5, 6, size=delta_size).astype(float),
            )
            for _ in range(servers)
        ]

    session = create_backend("local").session(components, domain)
    session.sketch_state(depth, width, seed=23, stream="bench")  # prime the stream

    sketch = CountSketch(depth, width, domain, seed=23)
    current = [list(component) for component in components]

    incremental = 0.0
    resketch = 0.0
    for bench_round in range(rounds):
        deltas = make_deltas(1000 + bench_round)
        start = time.perf_counter()
        session.apply_deltas(deltas)
        refreshed = session.sketch_state(depth, width, seed=23, stream="bench")
        incremental += time.perf_counter() - start

        for server, (d_idx, d_val) in enumerate(deltas):
            current[server][0] = np.concatenate((current[server][0], d_idx))
            current[server][1] = np.concatenate((current[server][1], d_val))
        start = time.perf_counter()
        scratch = CountSketchState.merge_all(
            [
                sketch.export_state(sketch.sketch(idx, val))
                for idx, val in current
            ]
        )
        resketch += time.perf_counter() - start
        assert refreshed.equals(scratch), "incremental state diverged from resketch"
    session.close()
    return {
        "dimension": domain,
        "servers": servers,
        "support_per_server": support,
        "delta_per_server": delta_size,
        "rounds": rounds,
        "depth": depth,
        "width": width,
        "incremental_seconds": incremental / rounds,
        "resketch_seconds": resketch / rounds,
        "speedup": resketch / incremental,
        "bit_identical": True,
    }


def _sharded_rebalance_entry(
    *,
    dim: int = 200_000,
    shards: int = 4,
    servers: int = 4,
    support: int = 40_000,
    draws: int = 6,
    repeats: int = 2,
) -> dict:
    """Live rebalancing recovers shard-layer throughput under skewed support.

    Every server's support crowds into the first ``1/shards`` of the domain,
    so the uniform shard map leaves one shard of each group doing all the
    per-pair work while its siblings idle; ``ShardedSession.rebalance`` to a
    support-balanced map spreads it evenly.  The gated quantity is the
    critical path -- the slowest shard's accumulated busy time, i.e. the
    modeled wall-clock when each shard is its own machine (the host here is
    a single core, so wall-clock itself cannot show the parallel win).
    Same-seed draws and per-tag charged words are asserted bit-identical
    across the migration: rebalancing moves zero charged words.
    """
    from repro.backend.sharded import ShardedBackend
    from repro.distributed.partition import ShardAssignment

    generator = np.random.default_rng(29)
    components = []
    for _ in range(servers):
        idx = np.sort(
            generator.choice(dim // shards, size=support, replace=False)
        ).astype(np.int64)
        components.append((idx, generator.integers(-5, 6, size=support).astype(float)))
    config = ZSamplerConfig(
        hh_params=ZHeavyHittersParams(b=8, repetitions=1, num_buckets=8), max_levels=5
    )

    def measured(session):
        best = float("inf")
        result = None
        for _ in range(repeats):
            session.reset_shard_busy()
            result = session.sample(np.abs, draws, config=config, seed=11)
            best = min(best, session.critical_path_seconds())
        return result, best

    session = ShardedBackend(shards=shards).session(components, dim)
    try:
        skewed_draws, skewed_critical = measured(session)
        words_skewed = dict(session.network.snapshot().words_by_tag)

        session.rebalance(
            {
                worker: ShardAssignment.balanced(dim, shards, idx)
                for worker, (idx, _) in enumerate(components[1:])
            }
        )
        balanced_draws, balanced_critical = measured(session)
        words_total = session.network.snapshot().words_by_tag

        assert np.array_equal(skewed_draws.indices, balanced_draws.indices)
        assert np.array_equal(skewed_draws.probabilities, balanced_draws.probabilities)
        # The migration itself charged nothing: the balanced phase books
        # exactly the words the skewed phase did (identical runs), no more.
        assert {
            tag: words_total[tag] - words_skewed[tag] for tag in words_total
        } == words_skewed
        session.verify_accounting()
    finally:
        session.close()
    return {
        "dimension": dim,
        "servers": servers,
        "shards_per_server": shards,
        "support_per_server": support,
        "draws": draws,
        "skewed_critical_path_seconds": skewed_critical,
        "balanced_critical_path_seconds": balanced_critical,
        "speedup": skewed_critical / balanced_critical,
        "bit_identical": True,
    }


def _serving_warm_qps_entry(
    *,
    servers: int = 4,
    dimension: int = 20_000,
    support: int = 2_000,
    draws: int = 8,
    warm_submits: int = 50,
) -> dict:
    """Warm serving throughput: the N-th identical submit vs the first.

    One :class:`~repro.backend.serving.ServingSession` over the loopback
    backend answers the same query ``warm_submits`` times after a single
    cold run.  The gated quantity is the per-submit speedup of the warm
    path; the entry also records warm QPS and p50/p99 submit latency from
    the ``serving.submit.seconds`` histogram (cold and warm captured
    separately so the percentiles are per-path).  Hard assertions on every
    run: the warm submits issue **zero** protocol waves, move zero frames,
    charge zero words, and return the identical result object.
    """
    from repro import obs
    from repro.backend import create_backend
    from repro.experiments.workloads import runtime_vector_components

    components = runtime_vector_components(servers, dimension, support, seed=0)
    config = ZSamplerConfig(
        hh_params=ZHeavyHittersParams(b=8, repetitions=1, num_buckets=8),
        max_levels=5,
    )
    with create_backend("loopback").serving() as pool:
        with obs.capture() as cold_telemetry:
            session = pool.open(components, dimension, tenant="bench")
            start = time.perf_counter()
            cold_result = session.submit("identity", draws, seed=3, config=config)
            cold_seconds = time.perf_counter() - start
        words_after_cold = dict(session.network.snapshot().words_by_tag)
        frames_after_cold = session.network.frames_transported
        with obs.capture() as warm_telemetry:
            start = time.perf_counter()
            for _ in range(warm_submits):
                warm_result = session.submit(
                    "identity", draws, seed=3, config=config
                )
            warm_elapsed = time.perf_counter() - start
        assert warm_result is cold_result  # bit-identical by construction
        assert dict(session.network.snapshot().words_by_tag) == words_after_cold
        assert session.network.frames_transported == frames_after_cold
        assert not any(
            span.name.startswith("wave:")
            for span in warm_telemetry.tracer.spans()
        ), "a warm submit issued a protocol wave"
        session.verify_accounting()
    warm_seconds = warm_elapsed / warm_submits
    histograms = warm_telemetry.snapshot()["metrics"]["histograms"]
    warm_summary = histograms["serving.submit.seconds"]
    cold_summary = cold_telemetry.snapshot()["metrics"]["histograms"][
        "serving.submit.seconds"
    ]
    return {
        "dimension": dimension,
        "servers": servers,
        "support_per_server": support,
        "draws": draws,
        "warm_submits": warm_submits,
        "cold_submit_seconds": cold_seconds,
        "warm_submit_seconds": warm_seconds,
        "warm_qps": warm_submits / warm_elapsed,
        "warm_latency_seconds": {
            "p50": warm_summary["p50"], "p99": warm_summary["p99"]
        },
        "cold_latency_seconds": {
            "p50": cold_summary["p50"], "p99": cold_summary["p99"]
        },
        "speedup": cold_seconds / warm_seconds,
        "zero_warm_waves": True,
        "bit_identical": True,
    }


def _telemetry_overhead_entry(*, iterations: int = 200_000) -> dict:
    """Per-call cost of the *disabled* telemetry hot path, in nanoseconds.

    Every instrumentation site in the runtime pays one ``obs.active()``
    call (a module-global load) or one ``obs.span()`` call (returning the
    shared no-op context manager) when telemetry is off.  Both are timed
    over a tight loop and gated against ``NOOP_OVERHEAD_CEILING_NS`` in
    BOTH full and ``--quick`` mode, so an accidental allocation or lock on
    the disabled path fails CI immediately.
    """
    from repro import obs

    assert not obs.enabled(), "telemetry must stay disabled during benchmarks"

    def _per_call_ns(loop) -> float:
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter_ns()
            loop()
            best = min(best, time.perf_counter_ns() - start)
        return best / iterations

    def active_loop():
        check = obs.active
        for _ in range(iterations):
            check()

    def span_loop():
        make = obs.span
        for _ in range(iterations):
            with make("bench"):
                pass

    active_ns = _per_call_ns(active_loop)
    span_ns = _per_call_ns(span_loop)
    return {
        "iterations": iterations,
        "noop_active_check_ns": active_ns,
        "noop_span_ns": span_ns,
        "ceiling_ns": NOOP_OVERHEAD_CEILING_NS,
        "within_ceiling": max(active_ns, span_ns) <= NOOP_OVERHEAD_CEILING_NS,
    }


def _kernel_provider_entries(*, domain: int) -> dict:
    """Per-kernel timings of the active compiled-kernel provider.

    The three hot kernels behind :mod:`repro.sketch.kernels` -- the blocked
    power-basis polynomial hash, the scatter-add table build and the
    domain-cache tiny-table gather -- each timed under the active provider
    and under the ``numpy`` baseline provider (the extraction of the fused
    code paths).  On a numpy-only host the two sides are the same code, so
    the entries are record-only (``gated: false``, speedup ~1x); with numba
    active the ``>= 2x`` floor is enforced by the gate in ``__main__``.
    Outputs are asserted bit-identical across providers on every entry.
    """
    from repro.sketch import kernels
    from repro.sketch.countsketch import build_domain_cache_range
    from repro.sketch.hashing import stacked_polynomial_hash

    active = kernels.active_provider_name()
    generator = np.random.default_rng(31)
    entries = {}

    def pair(fn, repeats: int = 3) -> dict:
        outputs = {}
        seconds = {}
        for name in (active, "numpy"):
            with kernels.provider_override(name):
                outputs[name] = fn()  # warm run (JIT compile under numba)
                seconds[name] = _best_of(fn, repeats)
        np.testing.assert_array_equal(outputs[active], outputs["numpy"])
        return {
            "provider": active,
            "provider_seconds": seconds[active],
            "numpy_seconds": seconds["numpy"],
            "speedup_vs_numpy": seconds["numpy"] / seconds[active],
            "gated": active != "numpy",
            "bit_identical": True,
        }

    # Blocked polynomial hash: 6 degree-4 polynomials over `domain` keys.
    keys = generator.integers(0, 2**31 - 1, size=domain, dtype=np.int64)
    coeffs = generator.integers(0, 2**31 - 1, size=(6, 5), dtype=np.int64)
    entries["kernel_polynomial_hash"] = {
        "keys": domain,
        "num_hashes": 6,
        "k": 5,
        **pair(lambda: stacked_polynomial_hash(keys, coeffs)),
    }

    # Scatter-add table build: `domain` coordinates x depth rows.
    depth, width = 5, 1024
    flat_keys = generator.integers(
        0, depth * width, size=(domain, depth), dtype=np.int64
    )
    weights = generator.normal(size=(domain, depth))
    scatter_out = np.zeros(depth * width)

    def run_scatter():
        scatter_out.fill(0.0)
        kernels.active_provider().scatter_add(scatter_out, flat_keys, weights)
        return scatter_out.copy()

    entries["kernel_scatter_add"] = {
        "coordinates": domain,
        "depth": depth,
        "width": width,
        **pair(run_scatter),
    }

    # Domain-cache blocked tiny-table gather over the full domain.
    num_buckets = 16
    cache_batched = BatchedCountSketch(
        [
            CountSketch(depth=depth, width=64, domain=domain, seed=400 + b)
            for b in range(num_buckets)
        ]
    )
    assign = PairwiseHash(num_buckets, seed=9)(np.arange(domain, dtype=np.int64))
    flat_out = np.empty((domain, depth), dtype=np.int64)
    sign_out = np.empty((domain, depth), dtype=np.int8)

    def run_cache():
        build_domain_cache_range(
            cache_batched._bucket_coeffs,
            cache_batched._sign_coeffs,
            assign,
            0,
            domain,
            64,
            flat_out,
            sign_out,
            cache_batched.CACHE_BUILD_BLOCK,
        )
        return flat_out.copy()

    entries["kernel_domain_cache_gather"] = {
        "domain": domain,
        "num_buckets": num_buckets,
        "depth": depth,
        **pair(run_cache, repeats=2),
    }
    return entries


def _mp_batched_dispatch_entry(
    *,
    servers: int = 8,
    processes: int = 2,
    dimension: int = 100_000,
    support: int = 20_000,
) -> dict:
    """Batched per-process dispatch vs one task submission per server.

    ``SketchProcessPool.starmap_batched`` chunks all servers' payloads into
    one submission per worker process, so a sketch wave costs O(processes)
    IPC round-trips instead of O(servers).  The round-trip counts are exact
    (the pool's ``submissions`` counter) and the reduction is asserted
    deterministically in every mode; wall-clock is recorded for context
    only -- on a single-core host it mostly measures pickling overhead.
    Results are asserted bit-identical between the two dispatch modes.
    """
    import os

    from repro.distributed.mp_backend import SketchProcessPool

    generator = np.random.default_rng(37)
    components = []
    for _ in range(servers):
        idx = np.sort(
            generator.choice(dimension, size=support, replace=False)
        ).astype(np.int64)
        components.append((idx, generator.normal(size=support)))
    vector = DistributedVector(components, dimension, Network(servers))
    batched = BatchedCountSketch(
        [CountSketch(depth=5, width=256, domain=dimension, seed=500 + b) for b in range(8)]
    )
    assignment = PairwiseHash(8, seed=12)(np.arange(dimension, dtype=np.int64))

    def run(batch_dispatch: bool):
        pool = SketchProcessPool(processes=processes, batch_dispatch=batch_dispatch)
        try:
            pool.batched_sketches(vector, batched, assignment)  # warm the pool
            submissions_before = pool.submissions
            start = time.perf_counter()
            tables = pool.batched_sketches(vector, batched, assignment)
            elapsed = time.perf_counter() - start
            submissions = pool.submissions - submissions_before
        finally:
            pool.close()
        return tables, submissions, elapsed

    per_server_tables, per_server_submissions, per_server_seconds = run(False)
    batched_tables, batched_submissions, batched_seconds = run(True)
    for got, want in zip(batched_tables, per_server_tables):
        assert np.array_equal(got, want), "batched dispatch diverged from per-server"
    assert batched_submissions < per_server_submissions, (
        f"batched dispatch did not reduce round-trips "
        f"({batched_submissions} vs {per_server_submissions})"
    )
    return {
        "servers": servers,
        "processes": processes,
        "cpu_count": os.cpu_count(),
        "dimension": dimension,
        "support_per_server": support,
        "per_server_submissions": per_server_submissions,
        "batched_submissions": batched_submissions,
        "per_server_seconds": per_server_seconds,
        "batched_seconds": batched_seconds,
        "speedup": per_server_seconds / batched_seconds,
        "bit_identical": True,
    }


def emit_speedup_json(
    write_root: bool = True,
    *,
    domain: int = LARGE_DOMAIN,
    support: int = LARGE_SUPPORT,
    results_name: str = "BENCH_sketch_primitives.json",
) -> dict:
    results = {}

    # CountSketch sketch + point queries at 1M-coordinate scale.
    generator = np.random.default_rng(0)
    indices = np.sort(
        generator.choice(domain, size=support, replace=False)
    ).astype(np.int64)
    values = generator.normal(size=support)
    sketch = CountSketch(depth=5, width=1024, domain=domain, seed=0)
    results["countsketch_sketch"] = {
        "domain": domain,
        "support": support,
        **_timed_pair(lambda: sketch.sketch(indices, values)),
    }
    table = sketch.sketch(indices, values)
    results["countsketch_estimate_all"] = {
        "domain": domain,
        **_timed_pair(lambda: sketch.estimate_all(table)),
    }
    num_queries = min(100_000, max(1, domain // 10))
    query = np.sort(
        generator.choice(domain, size=num_queries, replace=False)
    ).astype(np.int64)
    results["countsketch_estimate"] = {
        "domain": domain,
        "queries": num_queries,
        **_timed_pair(lambda: sketch.estimate(table, query)),
    }

    # Batched domain-cache build at 1M-coordinate scale: the blocked fused
    # builder vs computing the same cache with the naive engine's per-bucket
    # per-row scalar hashing.
    num_buckets = 16
    cache_sketches = [
        CountSketch(depth=5, width=64, domain=domain, seed=200 + b)
        for b in range(num_buckets)
    ]
    cache_batched = BatchedCountSketch(cache_sketches)
    cache_assignment = PairwiseHash(num_buckets, seed=6)(
        np.arange(domain, dtype=np.int64)
    )
    results["build_domain_cache"] = {
        "domain": domain,
        "num_buckets": num_buckets,
        "depth": 5,
        **_timed_pair_fns(
            lambda: cache_batched.build_domain_cache(cache_assignment),
            lambda: cache_batched.build_domain_cache_reference(cache_assignment),
        ),
    }

    # Z-HeavyHitters (Algorithm 2), one full invocation at 1M-coordinate scale.
    zhh_support = min(200_000, max(1, domain // 5))
    params = ZHeavyHittersParams(b=16, repetitions=2, num_buckets=16)
    vector = _zhh_vector(dim=domain, support=zhh_support)
    results["z_heavy_hitters"] = {
        "dimension": vector.dimension,
        "servers": vector.num_servers,
        "support_per_server": zhh_support,
        **_timed_pair(lambda: z_heavy_hitters(vector, params, seed=5), repeats=2),
    }

    # The same invocation with per-server sketching in worker processes
    # (opt-in multiprocessing path; results are bit-for-bit identical).  The
    # single-process side was just measured by the entry above.  Workers
    # serve from shared-memory domain caches and components (no per-task
    # hash re-evaluation or component pickling); on a single-core host the
    # ratio measures pure IPC overhead, so the host's CPU count is recorded
    # next to the number.
    import os

    single = results["z_heavy_hitters"]["fused_seconds"]
    with engine.multiprocess_execution(processes=4):
        z_heavy_hitters(vector, params, seed=5)  # warm the pool
        multi = _best_of(lambda: z_heavy_hitters(vector, params, seed=5), repeats=2)
    results["z_heavy_hitters_multiprocess"] = {
        "dimension": vector.dimension,
        "servers": vector.num_servers,
        "processes": 4,
        "cpu_count": os.cpu_count(),
        "single_process_seconds": single,
        "multiprocess_seconds": multi,
        "speedup_vs_single_process": single / multi,
    }

    # DistributedVector.collect / restrict at 1M-coordinate scale.
    collect_query = np.sort(
        generator.choice(domain, size=min(5_000, domain // 2), replace=False)
    ).astype(np.int64)
    results["vector_collect"] = {
        "dimension": vector.dimension,
        "servers": vector.num_servers,
        "queries": collect_query.size,
        **_timed_pair(lambda: vector.collect(collect_query, tag="bench"), repeats=2),
    }
    # Multi-level restriction with the subsample hash g cached across levels
    # (what every z_heavy_hitters caller now does through
    # `subsample_restrictor`, as the Z-estimator always has): the fused side
    # evaluates the degree-16 polynomial ONCE and thresholds the cached
    # values per level; the naive reference re-evaluates g per level --
    # the seed behaviour ROADMAP flagged as the remaining hash-bound lever.
    subsample = SubsampleHash(domain_scale=domain, seed=8)
    restrict_levels = (1, 2, 3)

    def _restrict_cached_g():
        restrictor = vector.subsample_restrictor(subsample)
        return [restrictor.restrict(level) for level in restrict_levels]

    def _restrict_per_level():
        return [
            vector.restrict(subsample.level_predicate(level))
            for level in restrict_levels
        ]

    results["vector_restrict"] = {
        "dimension": vector.dimension,
        "servers": vector.num_servers,
        "levels": len(restrict_levels),
        "cached_g": True,
        **_timed_pair_fns(_restrict_cached_g, _restrict_per_level, repeats=2),
    }

    # The split/slice step alone (masks precomputed -- exactly what the
    # Z-estimator does per subsampling level with its cached g values): the
    # preallocated concat-compress path vs the seed's per-server slicing.
    level_masks = [
        subsample(vector.local_component(server)[0]) < subsample.level_threshold(2)
        for server in range(vector.num_servers)
    ]

    def _split_reference():
        restricted = []
        for server, mask in enumerate(level_masks):
            idx, val = vector.local_component(server)
            restricted.append((idx[mask], val[mask]))
        return DistributedVector(restricted, vector.dimension, vector.network)

    results["vector_restrict_by_masks"] = {
        "dimension": vector.dimension,
        "servers": vector.num_servers,
        **_timed_pair_fns(
            lambda: vector.restrict_by_masks(level_masks), _split_reference, repeats=3
        ),
    }

    # Streaming delta ingestion at scale: maintaining the exported sketch
    # state of a live vector under per-server delta batches.  Incremental =
    # session.apply_deltas + cached stream-state export (only the deltas are
    # sketched, tables merged through the merge layer); baseline = the
    # from-scratch resketch of every server's full component that the same
    # export costs without the stream cache.  Bit-identity of the two states
    # is asserted on every round (integer-weighted stream).
    results["streaming_apply_deltas"] = _streaming_entry(
        domain=domain, support=max(1, support // 2)
    )

    # Runtime coordinator over a simulated-latency transport: the sequential
    # worker-by-worker schedule pays every worker's round-trip, the
    # pipelined scatter (PR 4) pays one RTT per wave.  Results and per-tag
    # accounting are bit-identical (asserted below); only wall-clock moves.
    results["runtime_pipelined_sample"] = _runtime_latency_entry(
        delay=0.002 if domain < LARGE_DOMAIN else 0.004
    )

    # Sharded shard layer under skewed support: live rebalancing spreads the
    # crowded range across the shards and the critical path (the slowest
    # shard's busy time) recovers by ~K.  Fixed scale in both modes -- the
    # signal is the shard-work ratio, not the absolute domain size.
    results["sharded_rebalance_skew"] = _sharded_rebalance_entry()

    # Warm serving: one ServingSession answering the same query repeatedly.
    # Fixed scale in both modes -- the signal is warm-vs-cold, not domain
    # size -- with zero-wave / zero-word / bit-identity asserted inline.
    results["serving_warm_qps"] = _serving_warm_qps_entry()

    # Disabled-telemetry hot-path cost (gated in every mode, --quick too).
    results["telemetry_overhead"] = _telemetry_overhead_entry()

    # Compiled-kernel providers: active vs numpy baseline on the three hot
    # kernels (record-only on a numpy-only host; >=2x gated under numba).
    results.update(_kernel_provider_entries(domain=domain))

    # Batched per-process mp dispatch: exact IPC round-trip counts, with
    # the O(servers) -> O(processes) reduction asserted deterministically.
    results["mp_batched_dispatch"] = _mp_batched_dispatch_entry()

    # End-to-end generalized Z-row-sampler (estimator + draws + gathers).
    config = ZSamplerConfig(
        hh_params=ZHeavyHittersParams(b=16, repetitions=2, num_buckets=8)
    )

    def run_sampler():
        cluster = _sampler_cluster()
        sampler = GeneralizedZRowSampler(Identity(), config)
        return sampler.sample_rows(cluster, 50, seed=3)

    results["sampler_sample_rows"] = {
        "rows": 2000,
        "columns": 50,
        "servers": 4,
        "draws": 50,
        **_timed_pair(run_sampler, repeats=2),
    }

    from repro.sketch import kernels

    payload = {
        "benchmark": "sketch_primitives",
        "generated_by": "benchmarks/bench_sketch_primitives.py",
        "context": {
            "cpu_count": os.cpu_count(),
            "kernel_provider": kernels.active_provider_name(),
            "kernel_providers_available": list(kernels.available_providers()),
        },
        "baseline": (
            "naive engine (repro.sketch.engine.naive_reference) -- the seed "
            "implementation's per-row/per-bucket/per-level sketch loops, "
            "bit-for-bit equivalent outputs. ZSampler's draw phase is "
            "vectorized in BOTH engines (a deliberate choice so that draws "
            "and communication stay comparable across engines), so the "
            "sampler_sample_rows baseline understates the speedup over the "
            "seed commit's per-draw loop"
        ),
        "results": results,
    }
    save_json(results_name, payload, write_root=write_root)
    return payload


#: Entries measured at the 1M-coordinate scale that must stay at least this
#: much faster than the naive engine; the script exits nonzero otherwise so
#: CI catches a fused-engine performance regression.
SPEEDUP_FLOOR = 2.0
GATED_ENTRIES = (
    "countsketch_sketch",
    "countsketch_estimate_all",
    "build_domain_cache",
    "z_heavy_hitters",
    "streaming_apply_deltas",
)

#: Compiled-kernel entries: gated at ``SPEEDUP_FLOOR`` over the numpy
#: baseline provider only when a compiled provider (numba) is active --
#: on a numpy-only host both sides run the same code and the entries are
#: record-only (``gated: false``).
KERNEL_GATED_ENTRIES = (
    "kernel_polynomial_hash",
    "kernel_scatter_add",
    "kernel_domain_cache_gather",
)

#: The pipelined coordinator must beat the sequential schedule by at least
#: this much on the simulated-latency transport (sleep-overlap, so the
#: ratio is robust even on a loaded single-core machine).
PIPELINE_SPEEDUP_FLOOR = 1.5

#: Rebalancing the skewed-support sharded layout must cut the shard-layer
#: critical path (slowest shard's busy time -- the modeled multi-machine
#: wall-clock, robust on a single-core host) by at least this much.
REBALANCE_SPEEDUP_FLOOR = 2.0

#: A warm serving submit must beat the cold protocol run by at least this
#: much per submit (in practice it is orders of magnitude -- a dict lookup
#: vs a full sketch pass -- but the floor catches a warm path that silently
#: starts re-running waves).
SERVING_WARM_SPEEDUP_FLOOR = 2.0

#: Per-call ceiling of the disabled telemetry hot path (``obs.active()`` /
#: ``obs.span()`` returning the shared no-op).  Generous against loaded CI
#: machines -- the observed cost is tens to hundreds of ns -- but tight
#: enough to catch an allocation, a lock, or a real span sneaking onto the
#: disabled path.  Gated in BOTH full and ``--quick`` mode.
NOOP_OVERHEAD_CEILING_NS = 5_000.0


#: Scale of the ``--quick`` CI smoke run (reduced domain, no speedup gate).
QUICK_DOMAIN = 200_000
QUICK_SUPPORT = 50_000


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: reduced scale, no 2x speedup gate, and the "
        "tracked repo-root JSON is left untouched (results land in "
        "benchmarks/results/ only)",
    )
    args = parser.parse_args()
    if args.quick:
        # A distinct results name so the smoke run never overwrites the
        # tracked full-scale record (in benchmarks/results/ or at the root).
        payload = emit_speedup_json(
            write_root=False,
            domain=QUICK_DOMAIN,
            support=QUICK_SUPPORT,
            results_name="BENCH_sketch_primitives_quick.json",
        )
    else:
        payload = emit_speedup_json()
    failures = []
    for name, entry in payload["results"].items():
        if "sequential_seconds" in entry:
            print(
                f"{name}: {entry['speedup']:.1f}x pipelined vs sequential "
                f"({entry['sequential_seconds']:.3f}s -> "
                f"{entry['pipelined_seconds']:.3f}s at "
                f"{entry['simulated_one_way_delay_seconds'] * 1e3:.0f}ms one-way delay)"
            )
        elif "incremental_seconds" in entry:
            print(
                f"{name}: {entry['speedup']:.1f}x incremental refresh vs full "
                f"resketch ({entry['resketch_seconds']:.3f}s -> "
                f"{entry['incremental_seconds']:.3f}s per "
                f"{entry['delta_per_server']}-delta round)"
            )
        elif "skewed_critical_path_seconds" in entry:
            print(
                f"{name}: {entry['speedup']:.1f}x critical-path recovery after "
                f"rebalance ({entry['skewed_critical_path_seconds']:.3f}s -> "
                f"{entry['balanced_critical_path_seconds']:.3f}s across "
                f"{entry['shards_per_server']} shards/server)"
            )
        elif "warm_qps" in entry:
            print(
                f"{name}: {entry['speedup']:.0f}x warm vs cold submit "
                f"({entry['cold_submit_seconds']:.3f}s -> "
                f"{entry['warm_submit_seconds'] * 1e6:.0f}us, "
                f"{entry['warm_qps']:.0f} warm QPS, "
                f"p99 {entry['warm_latency_seconds']['p99'] * 1e6:.0f}us)"
            )
        elif "noop_span_ns" in entry:
            print(
                f"{name}: disabled-path span {entry['noop_span_ns']:.0f}ns, "
                f"active-check {entry['noop_active_check_ns']:.0f}ns per call "
                f"(ceiling {entry['ceiling_ns']:.0f}ns)"
            )
        elif "provider_seconds" in entry:
            mode = "gated" if entry["gated"] else "record-only"
            print(
                f"{name}: {entry['speedup_vs_numpy']:.2f}x {entry['provider']} "
                f"vs numpy baseline ({entry['numpy_seconds']:.3f}s -> "
                f"{entry['provider_seconds']:.3f}s, {mode})"
            )
        elif "batched_submissions" in entry:
            print(
                f"{name}: {entry['per_server_submissions']} -> "
                f"{entry['batched_submissions']} task submissions per wave "
                f"({entry['servers']} servers over {entry['processes']} "
                f"processes)"
            )
        elif "speedup" in entry and "naive_seconds" in entry:
            print(
                f"{name}: {entry['speedup']:.1f}x "
                f"({entry['naive_seconds']:.3f}s -> {entry['fused_seconds']:.3f}s)"
            )
        else:
            print(
                f"{name}: {entry['speedup_vs_single_process']:.2f}x vs single process "
                f"({entry['single_process_seconds']:.3f}s -> "
                f"{entry['multiprocess_seconds']:.3f}s)"
            )
    if not args.quick:
        for name in GATED_ENTRIES:
            speedup = payload["results"][name]["speedup"]
            if speedup < SPEEDUP_FLOOR:
                failures.append(f"{name}: {speedup:.2f}x < {SPEEDUP_FLOOR}x")
        pipeline = payload["results"]["runtime_pipelined_sample"]["speedup"]
        if pipeline < PIPELINE_SPEEDUP_FLOOR:
            failures.append(
                f"runtime_pipelined_sample: {pipeline:.2f}x < "
                f"{PIPELINE_SPEEDUP_FLOOR}x"
            )
        rebalance = payload["results"]["sharded_rebalance_skew"]["speedup"]
        if rebalance < REBALANCE_SPEEDUP_FLOOR:
            failures.append(
                f"sharded_rebalance_skew: {rebalance:.2f}x < "
                f"{REBALANCE_SPEEDUP_FLOOR}x"
            )
        serving = payload["results"]["serving_warm_qps"]["speedup"]
        if serving < SERVING_WARM_SPEEDUP_FLOOR:
            failures.append(
                f"serving_warm_qps: {serving:.2f}x < "
                f"{SERVING_WARM_SPEEDUP_FLOOR}x"
            )
        for name in KERNEL_GATED_ENTRIES:
            entry = payload["results"][name]
            if entry["gated"] and entry["speedup_vs_numpy"] < SPEEDUP_FLOOR:
                failures.append(
                    f"{name}: {entry['speedup_vs_numpy']:.2f}x "
                    f"({entry['provider']} vs numpy) < {SPEEDUP_FLOOR}x"
                )
    # The disabled-telemetry gate holds in every mode, --quick included.
    overhead = payload["results"]["telemetry_overhead"]
    if not overhead["within_ceiling"]:
        failures.append(
            f"telemetry_overhead: disabled-path span "
            f"{overhead['noop_span_ns']:.0f}ns > "
            f"{overhead['ceiling_ns']:.0f}ns ceiling"
        )
    if failures:
        print("BENCHMARK GATES FAILED: " + "; ".join(failures))
        sys.exit(1)
