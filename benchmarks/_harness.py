"""Shared helpers for the benchmark suite.

Every benchmark regenerates (a laptop-scale version of) one table or figure
of the paper, times it once with ``pytest-benchmark`` (``rounds=1`` -- these
are experiments, not micro-benchmarks), prints the regenerated series and
also writes them to ``benchmarks/results/<name>.txt`` so the artefacts
survive the run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from repro.experiments import (
    format_figure1_panel,
    format_figure2_panel,
    get_config,
    run_panel,
)
from repro.experiments.runner import ExperimentPoint, average_points

RESULTS_DIR = Path(__file__).parent / "results"

#: Dataset scale used by the benchmark suite.
SCALE = "small"
#: Projection dimensions swept (the paper's x-axis).
K_VALUES = (3, 6, 9, 12, 15)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def save_result(name: str, text: str) -> Path:
    """Print ``text`` and persist it under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print("\n" + text)
    return path


def save_json(name: str, payload: dict, *, write_root: bool = True) -> Path:
    """Persist machine-readable benchmark results.

    The file is written under ``benchmarks/results/`` and, when
    ``write_root`` is set, also at the repo root (uppercase ``BENCH_*``
    files are tracked artefacts that give future PRs a perf trajectory to
    regress against -- only overwrite them deliberately).
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    path = RESULTS_DIR / name
    path.write_text(text)
    if write_root:
        path = Path(__file__).parent.parent / name
        path.write_text(text)
    print(f"\nwrote {path}")
    return path


def run_panel_points(panel_name: str, *, num_trials: int = 1) -> List[ExperimentPoint]:
    """Run one evaluation panel at benchmark scale and average its trials."""
    config = get_config(panel_name, SCALE)
    points = run_panel(config, k_values=K_VALUES, num_trials=num_trials)
    return average_points(points)


def figure_panel_text(panel_title: str, points: List[ExperimentPoint]) -> str:
    """Format one panel for both figures (additive + relative error)."""
    return (
        format_figure1_panel(panel_title, points)
        + "\n\n"
        + format_figure2_panel(panel_title, points)
    )


def run_and_save_panel(benchmark, panel_name: str, panel_title: str) -> Dict[str, float]:
    """The common body of the per-panel figure benchmarks."""
    points = run_once(benchmark, lambda: run_panel_points(panel_name))
    save_result(f"figure1_{panel_name}", figure_panel_text(panel_title, points))
    worst_additive = max(p.additive_error for p in points)
    assert worst_additive < 1.0, "additive error should stay well below the trivial bound"
    return {"worst_additive_error": worst_additive}
