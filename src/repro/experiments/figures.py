"""Regenerate the series of Figures 1 and 2 as text tables.

Each figure panel plots error against ``k in {3,...,15}`` with one series per
communication-ratio bound; Figure 1 uses the additive error (plus the
``k^2/r`` prediction overlay), Figure 2 the relative error.  The functions
here run the panels through the :mod:`~repro.experiments.runner` and format
the same series as aligned text tables, which is what the benchmark harness
prints.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.experiments.config import ExperimentConfig, figure1_configs, get_config
from repro.experiments.runner import ExperimentPoint, average_points, run_panel


def _series_by_ratio(points: List[ExperimentPoint]) -> Dict[float, List[ExperimentPoint]]:
    series: Dict[float, List[ExperimentPoint]] = {}
    for point in points:
        series.setdefault(point.ratio_target, []).append(point)
    for ratio in series:
        series[ratio].sort(key=lambda p: p.k)
    return series


def format_figure1_panel(panel_title: str, points: List[ExperimentPoint]) -> str:
    """Format one Figure-1 panel: additive error and prediction per ratio and k."""
    series = _series_by_ratio(points)
    k_values = sorted({point.k for point in points})
    header = f"Figure 1 panel: {panel_title}  (additive error vs projection dimension)"
    lines = [header, "-" * len(header)]
    lines.append("series".ljust(28) + "".join(f"k={k}".rjust(12) for k in k_values))
    for ratio in sorted(series, reverse=True):
        row = series[ratio]
        by_k = {point.k: point for point in row}
        lines.append(
            f"ratio {ratio:g}, prediction".ljust(28)
            + "".join(f"{by_k[k].predicted_error:12.4g}" for k in k_values)
        )
        lines.append(
            f"ratio {ratio:g}, actual result".ljust(28)
            + "".join(f"{by_k[k].additive_error:12.4g}" for k in k_values)
        )
    return "\n".join(lines)


def format_figure2_panel(panel_title: str, points: List[ExperimentPoint]) -> str:
    """Format one Figure-2 panel: relative error per ratio and k."""
    series = _series_by_ratio(points)
    k_values = sorted({point.k for point in points})
    header = f"Figure 2 panel: {panel_title}  (relative error vs projection dimension)"
    lines = [header, "-" * len(header)]
    lines.append("series".ljust(28) + "".join(f"k={k}".rjust(12) for k in k_values))
    for ratio in sorted(series, reverse=True):
        row = series[ratio]
        by_k = {point.k: point for point in row}
        lines.append(
            f"ratio {ratio:g}, actual result".ljust(28)
            + "".join(f"{by_k[k].relative_error:12.4f}" for k in k_values)
        )
    return "\n".join(lines)


def run_figure1(
    panels: Optional[Iterable[str]] = None,
    *,
    scale: str = "small",
    k_values: Optional[Iterable[int]] = None,
    num_trials: Optional[int] = None,
    backend: Optional[str] = None,
) -> Dict[str, List[ExperimentPoint]]:
    """Run (a subset of) Figure 1's panels and return the measured points per panel.

    Figure 2 uses the same runs (relative error is recorded alongside the
    additive error), so callers typically run this once and format both
    figures from the result.  ``backend`` selects the execution engine of
    the Z-sampling phase (``--backend`` on the CLI); measured errors and
    communication are bit-identical across backends.
    """
    if panels is None:
        configs: List[ExperimentConfig] = figure1_configs(scale)
    else:
        configs = [get_config(name, scale) for name in panels]
    results: Dict[str, List[ExperimentPoint]] = {}
    for config in configs:
        points = run_panel(
            config, k_values=k_values, num_trials=num_trials, backend=backend
        )
        results[config.panel] = average_points(points)
    return results


def run_figure2(
    panels: Optional[Iterable[str]] = None,
    *,
    scale: str = "small",
    k_values: Optional[Iterable[int]] = None,
    num_trials: Optional[int] = None,
    backend: Optional[str] = None,
) -> Dict[str, List[ExperimentPoint]]:
    """Alias of :func:`run_figure1`: the same sweep records both error metrics."""
    return run_figure1(
        panels, scale=scale, k_values=k_values, num_trials=num_trials, backend=backend
    )
