"""Plain-text / CSV reporting of experiment points."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, List, Union

from repro.experiments.runner import ExperimentPoint

_CSV_FIELDS = [
    "panel",
    "application",
    "k",
    "ratio_target",
    "ratio_actual",
    "num_samples",
    "additive_error",
    "relative_error",
    "predicted_error",
    "trial",
]


def points_to_csv(points: Iterable[ExperimentPoint], path: Union[str, Path]) -> Path:
    """Write the measured points to ``path`` as CSV and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_CSV_FIELDS)
        writer.writeheader()
        for point in points:
            writer.writerow(point.as_dict())
    return path


def summarize_results(results: Dict[str, List[ExperimentPoint]]) -> str:
    """Return a compact cross-panel summary (worst/typical additive error per ratio)."""
    lines = ["Summary: additive error by panel and communication-ratio bound", ""]
    lines.append(
        f"{'panel':<22}{'ratio':>8}{'min add.err':>14}{'max add.err':>14}"
        f"{'max rel.err':>14}{'rows r':>10}"
    )
    for panel, points in results.items():
        ratios = sorted({p.ratio_target for p in points}, reverse=True)
        for ratio in ratios:
            subset = [p for p in points if p.ratio_target == ratio]
            lines.append(
                f"{panel:<22}{ratio:>8.3g}"
                f"{min(p.additive_error for p in subset):>14.4g}"
                f"{max(p.additive_error for p in subset):>14.4g}"
                f"{max(p.relative_error for p in subset):>14.4f}"
                f"{subset[0].num_samples:>10d}"
            )
    return "\n".join(lines)


def qualitative_checks(results: Dict[str, List[ExperimentPoint]]) -> Dict[str, bool]:
    """Evaluate the paper's qualitative claims on the measured points.

    Returns a dict of named boolean checks:

    * ``"beats_prediction"`` -- the measured additive error is below the
      ``k^2/r`` prediction for the (large) majority of points ("our
      algorithm performed better than its theoretical prediction");
    * ``"more_communication_helps"`` -- for each panel and ``k``, the largest
      ratio bound never does worse (beyond noise) than the smallest;
    * ``"relative_error_close_to_one"`` -- relative errors stay below 2 for
      the RFF panels (the paper's Figure 2 shows values within 1.005).
    """
    all_points = [p for points in results.values() for p in points]
    if not all_points:
        raise ValueError("no points to check")
    beats = sum(1 for p in all_points if p.additive_error <= p.predicted_error)
    beats_prediction = beats >= 0.7 * len(all_points)

    helps = []
    for points in results.values():
        ratios = sorted({p.ratio_target for p in points})
        if len(ratios) < 2:
            continue
        low, high = ratios[0], ratios[-1]
        for k in sorted({p.k for p in points}):
            low_err = [p.additive_error for p in points if p.ratio_target == low and p.k == k]
            high_err = [p.additive_error for p in points if p.ratio_target == high and p.k == k]
            if low_err and high_err:
                helps.append(high_err[0] <= low_err[0] * 1.5 + 1e-3)
    more_communication_helps = (sum(helps) >= 0.6 * len(helps)) if helps else True

    rff_points = [p for p in all_points if p.application == "rff"]
    relative_ok = all(p.relative_error < 2.0 for p in rff_points) if rff_points else True

    return {
        "beats_prediction": bool(beats_prediction),
        "more_communication_helps": bool(more_communication_helps),
        "relative_error_close_to_one": bool(relative_ok),
    }
