"""Reproduce Table I (the ψ-functions of the M-estimators used for robust PCA)."""

from __future__ import annotations

from repro.functions.base import satisfies_property_p
from repro.functions.mestimators import FairPsi, HuberPsi, L1L2Psi, table_i_rows


def format_table_i(threshold: float = 1.0, scale: float = 1.0) -> str:
    """Return Table I as text, extended with a property-P verification column.

    The original table lists the Huber, L1-L2 and "Fair" ψ-functions; the
    extra column confirms numerically that each squared ψ satisfies property
    P, which is the condition under which the generalized sampler (and hence
    Algorithm 1) applies to them.
    """
    rows = table_i_rows(threshold=threshold, scale=scale)
    functions = {
        "huber": HuberPsi(threshold),
        "l1_l2": L1L2Psi(),
        "fair": FairPsi(scale),
    }
    header = "TABLE I: psi-functions of several M-estimators"
    lines = [header, "=" * len(header)]
    lines.append(f"{'name':<16}{'formula':<48}{'property P (z = psi^2)':<24}")
    for row in rows:
        base_name = row["name"].split("[")[0]
        fn = functions[base_name]
        holds = satisfies_property_p(fn, upper=50.0, num_points=501)
        lines.append(f"{row['name']:<16}{row['formula']:<48}{'holds' if holds else 'VIOLATED':<24}")
    lines.append("")
    lines.append("probe values psi(x) at x = -10, -1, -0.1, 0, 0.1, 1, 10:")
    for row in rows:
        values = ", ".join(f"{v:+.3f}" for v in row["values"])
        lines.append(f"  {row['name']:<16}[{values}]")
    return "\n".join(lines)
