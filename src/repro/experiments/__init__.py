"""Experiment harness reproducing the paper's evaluation (Section VIII).

Figures 1 and 2 plot the additive and relative error against the projection
dimension ``k in {3, 6, 9, 12, 15}`` for several bounds on the ratio of total
communication to total input size, over eleven panels (two RFF datasets,
four P-norm pooling settings per image dataset, and robust PCA on isolet).

The harness mirrors that methodology:

* :mod:`~repro.experiments.config` declares the panels and their parameters
  (dataset stand-in, number of servers, communication ratios);
* :mod:`~repro.experiments.workloads` builds the cluster and sampler for a
  panel;
* :mod:`~repro.experiments.runner` sweeps ``k`` and the ratio bounds,
  measuring actual additive/relative error and the exact communication
  ratio achieved;
* :mod:`~repro.experiments.figures` and :mod:`~repro.experiments.report`
  format the measured series the way the paper's figures present them,
  including the ``k^2 / r`` theoretical prediction overlay.
"""

from repro.experiments.config import (
    ExperimentConfig,
    figure1_configs,
    get_config,
    panel_names,
)
from repro.experiments.figures import (
    format_figure1_panel,
    format_figure2_panel,
    run_figure1,
    run_figure2,
)
from repro.experiments.runner import ExperimentPoint, run_panel
from repro.experiments.tables import format_table_i
from repro.experiments.workloads import build_workload

__all__ = [
    "ExperimentConfig",
    "figure1_configs",
    "panel_names",
    "get_config",
    "build_workload",
    "ExperimentPoint",
    "run_panel",
    "run_figure1",
    "run_figure2",
    "format_figure1_panel",
    "format_figure2_panel",
    "format_table_i",
]
