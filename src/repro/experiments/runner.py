"""Sweep runner: measure error versus projection dimension under a communication bound.

For every (ratio, k) pair the runner:

1. builds a fresh workload (cluster + sampler) for the trial seed;
2. derives the number of sampled rows ``r`` from the communication budget
   (``ratio * total input words``), reserving part of the budget for the
   sampler when it is the generalized Z-sampler -- this is the paper's
   "we adjust some parameters ... to guarantee the ratio";
3. runs Algorithm 1 and records the *measured* additive error, relative
   error, communication ratio and the theoretical prediction ``k^2 / r``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Iterable, List, Optional

import numpy as np

from repro.core.distributed_pca import DistributedPCA
from repro.core.errors import predicted_additive_error
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import Workload, build_workload
from repro.utils.logging import get_logger

_LOGGER = get_logger("experiments.runner")

#: Fraction of the communication budget reserved for the Z-sampler's
#: sketching/estimation phase (the rest pays for shipping sampled rows).
SAMPLER_BUDGET_FRACTION = 0.5


@dataclass
class ExperimentPoint:
    """One measured point of Figures 1 / 2."""

    panel: str
    application: str
    k: int
    ratio_target: float
    ratio_actual: float
    num_samples: int
    additive_error: float
    relative_error: float
    predicted_error: float
    trial: int

    def as_dict(self) -> dict:
        """Return the point as a plain dictionary (for CSV export)."""
        return asdict(self)


def plan_num_samples(
    workload: Workload,
    ratio: float,
    max_k: int,
    *,
    reserve_fraction: float = SAMPLER_BUDGET_FRACTION,
) -> int:
    """Choose the number of sampled rows ``r`` fitting the communication budget.

    The dominant cost of Algorithm 1 is shipping the sampled rows:
    ``r * d * (s - 1)`` words.  When the sampler itself communicates
    (Z-sampler applications), ``reserve_fraction`` of the budget is left for
    it.  The result is floored at ``max_k + 1`` so the SVD of ``B`` is
    meaningful for every swept ``k``.
    """
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    cluster = workload.cluster
    budget_words = ratio * cluster.total_input_words()
    if workload.sampler_uses_communication:
        budget_words *= 1.0 - reserve_fraction
    words_per_row = cluster.num_columns * max(1, cluster.num_servers - 1)
    num_samples = int(budget_words // words_per_row)
    return max(max_k + 1, num_samples)


def run_panel(
    config: ExperimentConfig,
    *,
    ratios: Optional[Iterable[float]] = None,
    k_values: Optional[Iterable[int]] = None,
    num_trials: Optional[int] = None,
    backend: Optional[str] = None,
) -> List[ExperimentPoint]:
    """Run one panel of the evaluation and return all measured points.

    Parameters
    ----------
    config:
        The panel configuration.
    ratios, k_values, num_trials:
        Optional overrides of the configured sweep (useful for quick tests).
    backend:
        Execution backend name for samplers that support one (the
        generalized Z-sampler); results are bit-identical across backends,
        so this selects an execution engine, not a different experiment.
    """
    ratios = tuple(ratios) if ratios is not None else config.ratios
    k_values = tuple(k_values) if k_values is not None else config.k_values
    trials = int(num_trials) if num_trials is not None else config.num_trials
    if trials < 1:
        raise ValueError("num_trials must be >= 1")

    points: List[ExperimentPoint] = []
    for trial in range(trials):
        workload = build_workload(config, seed=config.seed + trial)
        if backend is not None and hasattr(workload.sampler, "set_backend"):
            workload.sampler.set_backend(backend)
        cluster = workload.cluster
        global_matrix = cluster.materialize_global()
        max_k = max(k_values)
        for ratio in ratios:
            num_samples = plan_num_samples(workload, ratio, max_k)
            for k in k_values:
                protocol = DistributedPCA(
                    k=k,
                    num_samples=num_samples,
                    sampler=workload.sampler,
                    seed=config.seed * 1_000_003 + trial * 101 + k,
                )
                result = protocol.fit(cluster)
                report = result.evaluate(global_matrix, k)
                point = ExperimentPoint(
                    panel=config.panel,
                    application=config.application,
                    k=k,
                    ratio_target=float(ratio),
                    ratio_actual=float(result.communication_ratio),
                    num_samples=num_samples,
                    additive_error=float(report["additive_error"]),
                    relative_error=float(report["relative_error"]),
                    predicted_error=predicted_additive_error(k, num_samples),
                    trial=trial,
                )
                points.append(point)
                _LOGGER.debug(
                    "%s ratio=%.3g k=%d r=%d additive=%.4g relative=%.4g",
                    config.panel,
                    ratio,
                    k,
                    num_samples,
                    point.additive_error,
                    point.relative_error,
                )
    return points


def average_points(points: List[ExperimentPoint]) -> List[ExperimentPoint]:
    """Average trials of the same (panel, ratio, k) point (as the paper's 5-run mean)."""
    groups: dict = {}
    for point in points:
        key = (point.panel, point.ratio_target, point.k)
        groups.setdefault(key, []).append(point)
    averaged: List[ExperimentPoint] = []
    for (panel, ratio, k), members in sorted(groups.items()):
        averaged.append(
            ExperimentPoint(
                panel=panel,
                application=members[0].application,
                k=k,
                ratio_target=ratio,
                ratio_actual=float(np.mean([m.ratio_actual for m in members])),
                num_samples=int(np.mean([m.num_samples for m in members])),
                additive_error=float(np.mean([m.additive_error for m in members])),
                relative_error=float(np.mean([m.relative_error for m in members])),
                predicted_error=float(np.mean([m.predicted_error for m in members])),
                trial=-1,
            )
        )
    return averaged
