"""Build the cluster + sampler pair for each evaluation panel."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import sparse

from repro.core.samplers import GeneralizedZRowSampler, RowSampler, UniformRowSampler
from repro.datasets.noise import inject_outliers
from repro.datasets.pooling import (
    caltech_like_patch_codes,
    pnorm_pooling_cluster,
    scenes_like_patch_codes,
)
from repro.datasets.uci_like import forest_cover_like, isolet_like, kddcup_like
from repro.distributed.cluster import LocalCluster
from repro.distributed.partition import entrywise_partition, row_partition
from repro.experiments.config import ExperimentConfig
from repro.functions.mestimators import HuberPsi
from repro.kernels.rff import RandomFourierFeatures, distributed_rff_cluster
from repro.sketch.z_heavy_hitters import ZHeavyHittersParams
from repro.sketch.z_sampler import ZSamplerConfig
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs


@dataclass
class Workload:
    """A panel instantiated as a cluster plus the sampler Algorithm 1 should use."""

    cluster: LocalCluster
    sampler: RowSampler
    #: True when the sampler itself consumes communication (the Z-sampler);
    #: the budget planner then reserves part of the ratio for it.
    sampler_uses_communication: bool
    description: str = ""


def _default_z_config() -> ZSamplerConfig:
    """Communication-frugal Z-sampler parameters used by the evaluation runs."""
    return ZSamplerConfig(
        epsilon=0.3,
        hh_params=ZHeavyHittersParams(b=8.0, repetitions=1, num_buckets=8, width_factor=3.0),
        max_levels=8,
        min_level_count=2,
    )


def _build_rff_workload(config: ExperimentConfig, seed: RandomState) -> Workload:
    rng = ensure_rng(seed)
    kind = config.dataset_params.get("kind", "forest_cover")
    num_rows = int(config.dataset_params.get("num_rows", 1000))
    num_features = int(config.function_params.get("num_features", 64))
    if kind == "kddcup99":
        raw = kddcup_like(num_rows, seed=rng)
    else:
        raw = forest_cover_like(num_rows, seed=rng)
    # "We randomly distributed the original data to different servers": a row
    # partition of the raw data; each server then projects locally with the
    # shared random feature map.
    raw_locals = [
        np.asarray(local.todense()) if sparse.issparse(local) else local
        for local in row_partition(raw, config.num_servers, seed=rng)
    ]
    features = RandomFourierFeatures(raw.shape[1], num_features, bandwidth=1.0, seed=rng)
    cluster = distributed_rff_cluster(raw_locals, features, name=config.panel)
    return Workload(
        cluster=cluster,
        sampler=UniformRowSampler(),
        sampler_uses_communication=False,
        description=f"{config.panel}: Gaussian RFF of {kind}-like data "
        f"({num_rows} x {num_features}, s={config.num_servers})",
    )


def _build_pooling_workload(config: ExperimentConfig, seed: RandomState) -> Workload:
    rng = ensure_rng(seed)
    kind = config.dataset_params.get("kind", "caltech")
    num_images = int(config.dataset_params.get("num_images", 300))
    p = float(config.function_params.get("p", 2.0))
    if kind == "scenes":
        dataset = scenes_like_patch_codes(
            num_images, num_servers=config.num_servers, seed=rng
        )
    else:
        dataset = caltech_like_patch_codes(
            num_images, num_servers=config.num_servers, seed=rng
        )
    cluster = pnorm_pooling_cluster(dataset, p, name=config.panel)
    sampler = GeneralizedZRowSampler(config=_default_z_config())
    return Workload(
        cluster=cluster,
        sampler=sampler,
        sampler_uses_communication=True,
        description=f"{config.panel}: P-norm pooling (P={p:g}) of {kind}-like patch codes "
        f"({num_images} images, s={config.num_servers})",
    )


def _build_robust_workload(config: ExperimentConfig, seed: RandomState) -> Workload:
    rng = ensure_rng(seed)
    num_rows = int(config.dataset_params.get("num_rows", 400))
    num_features = int(config.dataset_params.get("num_features", 150))
    num_outliers = int(config.dataset_params.get("num_outliers", 50))
    threshold = float(config.function_params.get("threshold", 3.0))
    clean = isolet_like(num_rows, num_features, seed=rng)
    corrupted, _ = inject_outliers(clean, num_outliers, magnitude=1e4, seed=rng)
    # "We arbitrarily partitioned the matrix into different servers": each
    # entry lives on one server, so no server can tell locally whether an
    # entry is abnormally large relative to the global picture.
    locals_ = entrywise_partition(corrupted, config.num_servers, seed=rng)
    cluster = LocalCluster(locals_, HuberPsi(threshold), name=config.panel)
    sampler = GeneralizedZRowSampler(config=_default_z_config())
    return Workload(
        cluster=cluster,
        sampler=sampler,
        sampler_uses_communication=True,
        description=f"{config.panel}: robust PCA with Huber psi (threshold={threshold:g}) "
        f"on isolet-like data ({num_rows} x {num_features}, {num_outliers} outliers, "
        f"s={config.num_servers})",
    )


def runtime_vector_components(
    num_servers: int,
    dimension: int,
    support: int,
    seed: RandomState = 0,
    *,
    num_heavy: int = 8,
) -> list:
    """Deterministic per-server components for the runtime serve/submit demo.

    Every invocation with the same ``(num_servers, dimension, support, seed)``
    produces the same partition, so independently started workers (the
    ``serve`` command) and the coordinator (``submit``) agree on the global
    vector without any data exchange.  Values are small integers (plus a few
    large "heavy" coordinates on server 0), keeping sketch-table additions
    exact so merged shards are bit-identical to single-pass sketching.

    Returns one ``(indices, values)`` pair per server; server 0 is the
    coordinator's own component.
    """
    if num_servers < 1:
        raise ValueError(f"num_servers must be >= 1, got {num_servers}")
    if not 0 < support <= dimension:
        raise ValueError("support must be in (0, dimension]")
    rngs = spawn_rngs(seed, num_servers + 1)
    heavy = np.sort(rngs[0].choice(dimension, size=min(num_heavy, dimension), replace=False))
    components = []
    for server in range(num_servers):
        rng = rngs[server + 1]
        idx = np.sort(rng.choice(dimension, size=support, replace=False)).astype(np.int64)
        values = rng.integers(-5, 6, size=support).astype(float)
        if server == 0:
            extra = np.setdiff1d(heavy, idx)
            idx = np.concatenate((idx, extra))
            values = np.concatenate((values, np.zeros(extra.size)))
            order = np.argsort(idx)
            idx, values = idx[order], values[order]
            values[np.isin(idx, heavy)] = 100.0
        components.append((idx, values))
    return components


def build_workload(config: ExperimentConfig, seed: Optional[RandomState] = None) -> Workload:
    """Instantiate the cluster and sampler for ``config``.

    Parameters
    ----------
    config:
        Panel configuration (see :func:`repro.experiments.config.figure1_configs`).
    seed:
        Overrides ``config.seed`` when given (the runner passes
        ``config.seed + trial``).
    """
    effective_seed = config.seed if seed is None else seed
    if config.application == "rff":
        return _build_rff_workload(config, effective_seed)
    if config.application == "pooling":
        return _build_pooling_workload(config, effective_seed)
    if config.application == "robust":
        return _build_robust_workload(config, effective_seed)
    raise ValueError(f"unknown application {config.application!r}")
