"""Experiment configurations: one per panel of Figures 1 and 2.

The panel names, server counts and communication-ratio bounds follow the
paper exactly; the dataset sizes are scaled to laptop size (``scale="small"``
for tests and quick benchmarks, ``scale="paper"`` for the closest feasible
pure-Python run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: The projection dimensions swept in Figures 1 and 2.
DEFAULT_K_VALUES: Tuple[int, ...] = (3, 6, 9, 12, 15)


@dataclass(frozen=True)
class ExperimentConfig:
    """Declarative description of one evaluation panel.

    Attributes
    ----------
    name:
        Machine-friendly panel identifier (e.g. ``"caltech_p5"``).
    panel:
        The panel title as printed in the paper's figures
        (e.g. ``"Caltech-101(P=5)"``).
    application:
        One of ``"rff"``, ``"pooling"``, ``"robust"``.
    num_servers:
        Number of servers ``s``.
    ratios:
        Bounds on (total communication) / (total input size), as in the paper.
    k_values:
        Projection dimensions to sweep.
    dataset_params:
        Parameters forwarded to the dataset generator (scaled sizes, etc.).
    function_params:
        Parameters of the entrywise function (pooling exponent ``p``,
        Huber threshold, RFF feature count, ...).
    num_trials:
        Number of repeated runs averaged per point (the paper uses 5).
    seed:
        Base seed; trials use ``seed + trial``.
    """

    name: str
    panel: str
    application: str
    num_servers: int
    ratios: Tuple[float, ...]
    k_values: Tuple[int, ...] = DEFAULT_K_VALUES
    dataset_params: Dict[str, object] = field(default_factory=dict)
    function_params: Dict[str, object] = field(default_factory=dict)
    num_trials: int = 1
    seed: int = 0


def _rff_config(
    name: str,
    panel: str,
    *,
    num_servers: int,
    ratios: Tuple[float, ...],
    num_rows: int,
    num_features: int,
    scale: str,
) -> ExperimentConfig:
    scale_factor = {"small": 0.25, "medium": 1.0, "paper": 4.0}[scale]
    rows = max(300, int(num_rows * scale_factor))
    return ExperimentConfig(
        name=name,
        panel=panel,
        application="rff",
        num_servers=num_servers,
        ratios=ratios,
        dataset_params={"kind": name, "num_rows": rows},
        function_params={"num_features": num_features},
    )


def _pooling_config(
    name: str,
    panel: str,
    *,
    kind: str,
    p: float,
    num_servers: int,
    ratios: Tuple[float, ...],
    num_images: int,
    scale: str,
) -> ExperimentConfig:
    scale_factor = {"small": 0.3, "medium": 1.0, "paper": 3.0}[scale]
    images = max(120, int(num_images * scale_factor))
    return ExperimentConfig(
        name=name,
        panel=panel,
        application="pooling",
        num_servers=num_servers,
        ratios=ratios,
        dataset_params={"kind": kind, "num_images": images},
        function_params={"p": p},
    )


def _robust_config(scale: str) -> ExperimentConfig:
    scale_factor = {"small": 0.25, "medium": 1.0, "paper": 1.0}[scale]
    rows = max(300, int(1559 * scale_factor))
    cols = max(100, int(617 * scale_factor))
    return ExperimentConfig(
        name="isolet",
        panel="isolet",
        application="robust",
        num_servers=10,
        ratios=(0.5, 0.25, 0.1),
        dataset_params={"num_rows": rows, "num_features": cols, "num_outliers": 50},
        function_params={"threshold": 3.0},
    )


def figure1_configs(scale: str = "small") -> List[ExperimentConfig]:
    """Return the eleven panel configurations of Figure 1 (and Figure 2).

    Parameters
    ----------
    scale:
        ``"small"`` (fast; tests and CI), ``"medium"`` (default benchmark
        size) or ``"paper"`` (the closest feasible sizes for a pure-Python
        laptop run).
    """
    if scale not in ("small", "medium", "paper"):
        raise ValueError(f"scale must be 'small', 'medium' or 'paper', got {scale!r}")
    configs: List[ExperimentConfig] = [
        _rff_config(
            "forest_cover",
            "ForestCover",
            num_servers=10,
            ratios=(0.5, 0.25, 0.1),
            num_rows=2000,
            num_features=128,
            scale=scale,
        ),
        _rff_config(
            "kddcup99",
            "KDDCUP99",
            num_servers=50,
            ratios=(0.1, 0.05, 0.01),
            num_rows=4000,
            num_features=50,
            scale=scale,
        ),
    ]
    for p in (1, 2, 5, 20):
        configs.append(
            _pooling_config(
                f"caltech_p{p}",
                f"Caltech-101(P={p})",
                kind="caltech",
                p=float(p),
                num_servers=50,
                ratios=(0.5, 0.25, 0.1),
                num_images=900,
                scale=scale,
            )
        )
    for p in (1, 2, 5, 20):
        configs.append(
            _pooling_config(
                f"scenes_p{p}",
                f"Scenes(P={p})",
                kind="scenes",
                p=float(p),
                num_servers=10,
                ratios=(0.5, 0.25, 0.1),
                num_images=880,
                scale=scale,
            )
        )
    configs.append(_robust_config(scale))
    return configs


def panel_names(scale: str = "small") -> List[str]:
    """Return the panel identifiers in figure order."""
    return [config.name for config in figure1_configs(scale)]


def get_config(name: str, scale: str = "small") -> ExperimentConfig:
    """Return one panel configuration by name."""
    for config in figure1_configs(scale):
        if config.name == name:
            return config
    raise KeyError(f"unknown panel {name!r}; available: {', '.join(panel_names(scale))}")
