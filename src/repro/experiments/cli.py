"""Command-line interface for regenerating the paper's evaluation.

Usage (after ``pip install -e .``)::

    python -m repro figure1 --panels forest_cover isolet --scale small
    python -m repro figure2 --panels forest_cover
    python -m repro table1
    python -m repro lowerbounds --trials 20
    python -m repro list-panels

Each command prints the regenerated series as text tables; ``--csv PATH``
additionally writes the raw measured points to a CSV file.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.experiments.config import panel_names
from repro.experiments.figures import (
    format_figure1_panel,
    format_figure2_panel,
    run_figure1,
)
from repro.experiments.report import points_to_csv, qualitative_checks, summarize_results
from repro.experiments.tables import format_table_i


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the evaluation of 'Distributed Low Rank Approximation "
        "of Implicit Functions of a Matrix' (ICDE 2016).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for figure in ("figure1", "figure2"):
        sub = subparsers.add_parser(
            figure,
            help=f"regenerate {figure} ({'additive' if figure == 'figure1' else 'relative'} "
            "error vs projection dimension)",
        )
        sub.add_argument(
            "--panels",
            nargs="*",
            default=None,
            help="panel names (default: all); see 'list-panels'",
        )
        sub.add_argument("--scale", default="small", choices=["small", "medium", "paper"])
        sub.add_argument("--trials", type=int, default=1, help="trials averaged per point")
        sub.add_argument(
            "--k", nargs="*", type=int, default=None, help="projection dimensions to sweep"
        )
        sub.add_argument("--csv", default=None, help="also write measured points to this CSV file")

    subparsers.add_parser("table1", help="regenerate Table I (M-estimator psi-functions)")

    lower = subparsers.add_parser(
        "lowerbounds", help="run the lower-bound reductions of Theorems 4, 6 and 8"
    )
    lower.add_argument("--trials", type=int, default=10)

    subparsers.add_parser("list-panels", help="list the available evaluation panels")
    return parser


def _run_figures(args: argparse.Namespace, which: str) -> str:
    results = run_figure1(
        args.panels if args.panels else None,
        scale=args.scale,
        k_values=tuple(args.k) if args.k else None,
        num_trials=args.trials,
    )
    formatter = format_figure1_panel if which == "figure1" else format_figure2_panel
    sections: List[str] = [formatter(panel, points) for panel, points in results.items()]
    sections.append(summarize_results(results))
    sections.append(f"qualitative checks: {qualitative_checks(results)}")
    if args.csv:
        all_points = [point for points in results.values() for point in points]
        path = points_to_csv(all_points, args.csv)
        sections.append(f"raw points written to {path}")
    return "\n\n".join(sections)


def _run_lowerbounds(trials: int) -> str:
    from repro.lowerbounds import (
        DisjointnessReduction,
        GapHammingReduction,
        LInfinityReduction,
    )

    lines = ["Lower-bound reductions (decision accuracy of an exact relative-error solver)"]
    ghd = GapHammingReduction(epsilon=0.1, k=2)
    lines.append(f"  Theorem 8 (Gap-Hamming):      {ghd.verify(trials=trials, seed=0):.3f}")
    disj = DisjointnessReduction(16, 8, k=3, aggregation="huber")
    lines.append(f"  Theorem 6 (2-DISJ / Huber):   {disj.verify(trials=trials, seed=1):.3f}")
    linf = LInfinityReduction(16, 8, k=3, p=2.0)
    lines.append(f"  Theorem 4 (L-infinity, p=2):  {linf.verify(trials=trials, seed=2):.3f}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro``; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list-panels":
        print("\n".join(panel_names("small")))
        return 0
    if args.command in ("figure1", "figure2"):
        print(_run_figures(args, args.command))
        return 0
    if args.command == "table1":
        print(format_table_i())
        return 0
    if args.command == "lowerbounds":
        print(_run_lowerbounds(args.trials))
        return 0
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
