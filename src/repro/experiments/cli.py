"""Command-line interface for regenerating the paper's evaluation.

Usage (after ``pip install -e .``)::

    python -m repro figure1 --panels forest_cover isolet --scale small
    python -m repro figure2 --panels forest_cover
    python -m repro table1
    python -m repro lowerbounds --trials 20
    python -m repro list-panels

Each command prints the regenerated series as text tables; ``--csv PATH``
additionally writes the raw measured points to a CSV file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.backend import available_backends
from repro.core.errors import (
    AdmissionError,
    SketchCompatibilityError,
    WireAccountingError,
    WireFormatError,
    WorkerLostError,
    WorkerProtocolError,
    WorkerTimeoutError,
)
from repro.experiments.config import panel_names
from repro.experiments.figures import (
    format_figure1_panel,
    format_figure2_panel,
    run_figure1,
)
from repro.experiments.report import points_to_csv, qualitative_checks, summarize_results
from repro.experiments.tables import format_table_i
from repro.sketch import engine
from repro.sketch.kernels import known_providers

#: Typed runtime failures map to distinct nonzero exit codes so scripts and
#: orchestrators can branch on *what* failed without parsing tracebacks.
#: Order matters: the first matching class wins (subclass-sensitive --
#: WorkerTimeoutError must precede the OSError-ish catch-alls callers add).
EXIT_CODES = (
    (WorkerTimeoutError, 3),
    (WireFormatError, 4),
    (SketchCompatibilityError, 5),
    (WorkerLostError, 8),
    (AdmissionError, 9),
    (WorkerProtocolError, 6),
    (WireAccountingError, 7),
)


def typed_exit_code(error: BaseException) -> Optional[int]:
    """Return the CLI exit code of a typed runtime error (None if untyped)."""
    for error_type, code in EXIT_CODES:
        if isinstance(error, error_type):
            return code
    return None


def _run_with_typed_exit(command) -> int:
    """Run a serve/submit body, mapping typed runtime errors to exit codes."""
    try:
        return command()
    except tuple(error_type for error_type, _ in EXIT_CODES) as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return typed_exit_code(exc)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the evaluation of 'Distributed Low Rank Approximation "
        "of Implicit Functions of a Matrix' (ICDE 2016).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for figure in ("figure1", "figure2"):
        sub = subparsers.add_parser(
            figure,
            help=f"regenerate {figure} ({'additive' if figure == 'figure1' else 'relative'} "
            "error vs projection dimension)",
        )
        sub.add_argument(
            "--panels",
            nargs="*",
            default=None,
            help="panel names (default: all); see 'list-panels'",
        )
        sub.add_argument("--scale", default="small", choices=["small", "medium", "paper"])
        sub.add_argument("--trials", type=int, default=1, help="trials averaged per point")
        sub.add_argument(
            "--k", nargs="*", type=int, default=None, help="projection dimensions to sweep"
        )
        sub.add_argument("--csv", default=None, help="also write measured points to this CSV file")
        sub.add_argument(
            "--backend", default=None, choices=list(available_backends()),
            help="execution backend of the Z-sampling phase (default: local; "
            "results are bit-identical across backends)",
        )
        _add_kernel_arg(sub)

    subparsers.add_parser("table1", help="regenerate Table I (M-estimator psi-functions)")

    lower = subparsers.add_parser(
        "lowerbounds", help="run the lower-bound reductions of Theorems 4, 6 and 8"
    )
    lower.add_argument("--trials", type=int, default=10)

    subparsers.add_parser("list-panels", help="list the available evaluation panels")

    serve = subparsers.add_parser(
        "serve",
        help="serve one worker's shard of the runtime workload over asyncio TCP",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0, help="0 picks a free port")
    serve.add_argument(
        "--server", type=int, required=True,
        help="this worker's server index (1..num-servers-1; 0 is the coordinator)",
    )
    serve.add_argument(
        "--concurrency", type=int, default=8,
        help="requests served in parallel (per worker, across all connections)",
    )
    serve.add_argument(
        "--subsample-cache-size", type=int, default=None,
        help="LRU capacity of the worker's per-session subsample-hash cache "
        "(default: 4 cached g arrays per coordinator session)",
    )
    serve.add_argument(
        "--stream-cache-size", type=int, default=None,
        help="LRU capacity of the worker's incremental stream-sketch state "
        "cache (default: 4 states, matching the session-side cap)",
    )
    serve.add_argument(
        "--max-sessions", type=int, default=None,
        help="how many coordinator sessions this worker caches before "
        "LRU-evicting the coldest (default: 64)",
    )
    serve.add_argument(
        "--max-tenants", type=int, default=None,
        help="admission quota: refuse sessions from a NEW tenant once this "
        "many tenants hold cached sessions (typed AdmissionError, exit "
        "code 9 coordinator-side; default: unlimited)",
    )
    serve.add_argument(
        "--max-sessions-per-tenant", type=int, default=None,
        help="admission quota: refuse a tenant's next session once it holds "
        "this many (default: unlimited)",
    )
    _add_runtime_workload_args(serve)
    _add_kernel_arg(serve)

    submit = subparsers.add_parser(
        "submit",
        help="run Z-sampling as the coordinator against running workers",
    )
    submit.add_argument(
        "--workers", nargs="+", default=None, metavar="HOST:PORT",
        help="one host:port per worker, in server order (servers 1..s-1); "
        "required with --transport tcp, forbidden with --transport loopback",
    )
    submit.add_argument(
        "--transport", default="tcp", choices=["tcp", "loopback"],
        help="tcp connects to already-running 'serve' workers; loopback "
        "self-hosts the workers in-process (same frames, ledger and audit, "
        "zero sockets -- the CI smoke and trace-capture mode)",
    )
    submit.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a Chrome-trace-format JSON of the run's spans "
        "(handshake, waves, per-worker requests, protocol phases) to PATH; "
        "load it in chrome://tracing or Perfetto",
    )
    submit.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the run's metrics registry (counters, gauges, histogram "
        "percentiles) to PATH after the run",
    )
    submit.add_argument(
        "--metrics-format", default="json", choices=["json", "text"],
        help="format of the --metrics dump (default: json)",
    )
    submit.add_argument("--draws", type=int, default=16, help="sample size")
    submit.add_argument(
        "--function", default="identity",
        help="entrywise function supplying the sampling weight z (see repro.functions)",
    )
    submit.add_argument(
        "--sample-seed", type=int, default=0, help="seed of the sampling run"
    )
    submit.add_argument(
        "--verify-local", action="store_true",
        help="rerun the same seed on an in-process simulation and assert "
        "bit-identical draws, estimates and per-tag word counts",
    )
    submit.add_argument(
        "--session-reuse", type=int, default=1, metavar="N",
        help="serve the same query N times through one warm session: the "
        "first run is cold (full protocol), the rest are warm cache hits "
        "-- zero waves, zero charged words, identical results (the "
        "serving-path smoke; default: 1, one-shot)",
    )
    submit.add_argument(
        "--tenant", default="",
        help="tenant id stamped on this session's cache-opening frames so "
        "quota-enforcing workers can admit or refuse it (default: none; "
        "the frames and ledger are unchanged without it)",
    )
    submit.add_argument(
        "--async-scatter", action="store_true",
        help="multiplex every worker connection on one shared event loop "
        "instead of a scatter thread pool (the serving path's fabric; "
        "same frames, ledger and results)",
    )
    submit.add_argument(
        "--shutdown", action="store_true", help="stop the workers afterwards"
    )
    submit.add_argument(
        "--concurrency", type=int, default=None,
        help="worker round-trips kept in flight per scatter wave "
        "(default: all workers; 1 = sequential worker-by-worker schedule; "
        "results and accounting are identical under every setting)",
    )
    submit.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request timeout in seconds (a late worker surfaces a "
        "typed WorkerTimeoutError and poisons its connection)",
    )
    submit.add_argument(
        "--retries", type=int, default=0,
        help="reconnect-and-resend attempts after a connection failure "
        "(operations are idempotent, so resending is safe)",
    )
    submit.add_argument(
        "--backoff", type=float, default=0.0,
        help="first reconnect pause in seconds, growing exponentially "
        "(jittered) per attempt; 0 resends immediately",
    )
    submit.add_argument(
        "--max-worker-restarts", type=int, default=0,
        help="supervise the run: tolerate up to N reconnect-and-restore "
        "recoveries per worker (checkpointed state, replayed journal, "
        "re-issued wave; results stay bit-identical).  0 disables "
        "supervision; unrecoverable worker loss exits with code 8",
    )
    submit.add_argument(
        "--checkpoint-every", type=int, default=1,
        help="supervised checkpoint cadence in delta waves (uncharged "
        "control traffic, like the delta frames themselves)",
    )
    _add_runtime_workload_args(submit)
    _add_kernel_arg(submit)
    return parser


def _add_kernel_arg(sub: argparse.ArgumentParser) -> None:
    """Add the shared ``--kernel`` compiled-kernel provider flag."""
    sub.add_argument(
        "--kernel",
        default=None,
        choices=list(known_providers()),
        help="compiled-kernel provider for the sketch hot paths (default: "
        "auto-detected, numba when installed; results are bit-identical "
        "across providers)",
    )


def _apply_kernel_selection(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    """Activate ``--kernel`` before any command runs (strongest precedence).

    An explicitly requested but unavailable provider (e.g. ``--kernel
    numba`` without numba installed) is a usage error, not a silent
    fallback.
    """
    kernel = getattr(args, "kernel", None)
    if kernel is None:
        return
    try:
        engine.set_kernel_provider(kernel)
    except ValueError as exc:
        parser.error(str(exc))


def _add_runtime_workload_args(sub: argparse.ArgumentParser) -> None:
    """Shared parameters pinning down the deterministic runtime workload."""
    sub.add_argument("--num-servers", type=int, default=4, help="total servers incl. the coordinator")
    sub.add_argument("--dimension", type=int, default=20_000)
    sub.add_argument("--support", type=int, default=2_000, help="nonzeros per server")
    sub.add_argument("--seed", type=int, default=0, help="workload partition seed")


def _run_figures(args: argparse.Namespace, which: str) -> str:
    results = run_figure1(
        args.panels if args.panels else None,
        scale=args.scale,
        k_values=tuple(args.k) if args.k else None,
        num_trials=args.trials,
        backend=args.backend,
    )
    formatter = format_figure1_panel if which == "figure1" else format_figure2_panel
    sections: List[str] = [formatter(panel, points) for panel, points in results.items()]
    sections.append(summarize_results(results))
    sections.append(f"qualitative checks: {qualitative_checks(results)}")
    if args.csv:
        all_points = [point for points in results.values() for point in points]
        path = points_to_csv(all_points, args.csv)
        sections.append(f"raw points written to {path}")
    return "\n\n".join(sections)


def _run_lowerbounds(trials: int) -> str:
    from repro.lowerbounds import (
        DisjointnessReduction,
        GapHammingReduction,
        LInfinityReduction,
    )

    lines = ["Lower-bound reductions (decision accuracy of an exact relative-error solver)"]
    ghd = GapHammingReduction(epsilon=0.1, k=2)
    lines.append(f"  Theorem 8 (Gap-Hamming):      {ghd.verify(trials=trials, seed=0):.3f}")
    disj = DisjointnessReduction(16, 8, k=3, aggregation="huber")
    lines.append(f"  Theorem 6 (2-DISJ / Huber):   {disj.verify(trials=trials, seed=1):.3f}")
    linf = LInfinityReduction(16, 8, k=3, p=2.0)
    lines.append(f"  Theorem 4 (L-infinity, p=2):  {linf.verify(trials=trials, seed=2):.3f}")
    return "\n".join(lines)


def _runtime_components(args: argparse.Namespace):
    from repro.experiments.workloads import runtime_vector_components

    return runtime_vector_components(
        args.num_servers, args.dimension, args.support, seed=args.seed
    )


def _run_serve(args: argparse.Namespace) -> int:
    from repro.runtime.service import WorkerService
    from repro.runtime.transport import WorkerServer

    if not 1 <= args.server < args.num_servers:
        raise SystemExit(
            f"--server must be in [1, {args.num_servers - 1}] (0 is the coordinator)"
        )
    indices, values = _runtime_components(args)[args.server]
    worker = WorkerService(
        indices, values, args.dimension, name=f"server-{args.server}",
        max_subsample_caches=args.subsample_cache_size,
        max_stream_states=args.stream_cache_size,
        max_sessions=args.max_sessions,
        max_tenants=args.max_tenants,
        max_sessions_per_tenant=args.max_sessions_per_tenant,
    )
    server = WorkerServer(
        worker.handle_frame,
        host=args.host,
        port=args.port,
        stop_check=lambda: worker.shutdown_requested,
        concurrency=args.concurrency,
    )
    host, port = server.start()
    print(
        f"serving server {args.server}/{args.num_servers - 1} "
        f"({indices.size} nonzeros of dimension {args.dimension}) on {host}:{port} "
        f"(concurrency {args.concurrency})",
        flush=True,
    )
    try:
        server.wait()
    except KeyboardInterrupt:  # pragma: no cover - interactive convenience
        server.stop()
    return 0


def _open_submit_session(args: argparse.Namespace, components):
    """Build the submit coordinator: remote TCP workers or self-hosted loopback.

    Returns ``(coordinator, supervisor)``; the supervisor is None when
    ``--max-worker-restarts`` is 0.
    """
    from repro.runtime.service import CoordinatorService
    from repro.runtime.supervisor import WorkerSupervisor
    from repro.runtime.transport import RetryPolicy, TcpTransport

    if args.transport == "loopback":
        from repro.backend.transport import TransportBackend

        if args.workers:
            raise SystemExit(
                "--transport loopback self-hosts its workers; drop --workers"
            )
        backend = TransportBackend(
            "loopback",
            concurrency=args.concurrency,
            timeout=args.timeout,
            retries=args.retries,
            backoff=args.backoff,
            tenant=args.tenant,
            async_scatter=args.async_scatter,
            supervise=args.max_worker_restarts > 0,
            checkpoint_every=max(1, args.checkpoint_every),
            max_worker_restarts=args.max_worker_restarts,
        )
        session = backend.session(components, args.dimension)
        return session, session._supervisor
    if not args.workers:
        raise SystemExit("--workers is required with --transport tcp")
    if len(args.workers) != args.num_servers - 1:
        raise SystemExit(
            f"need exactly {args.num_servers - 1} workers for "
            f"--num-servers {args.num_servers}, got {len(args.workers)}"
        )
    if args.async_scatter and args.max_worker_restarts > 0:
        raise SystemExit(
            "--async-scatter and --max-worker-restarts are mutually "
            "exclusive: the supervisor's respawner swaps blocking "
            "transports in"
        )
    policy = RetryPolicy(retries=max(0, args.retries), backoff=max(0.0, args.backoff))
    loop_thread = None
    if args.async_scatter:
        from repro.runtime.transport import AsyncTcpTransport, EventLoopThread

        loop_thread = EventLoopThread()
    endpoints = []
    transports = []
    for address in args.workers:
        host, _, port = address.rpartition(":")
        endpoints.append((host or "127.0.0.1", int(port)))
        if loop_thread is not None:
            transports.append(
                AsyncTcpTransport(*endpoints[-1], loop_thread, timeout=args.timeout)
            )
        else:
            transports.append(
                TcpTransport(
                    *endpoints[-1], timeout=args.timeout, retry_policy=policy
                )
            )
    supervisor = None
    if args.max_worker_restarts > 0:
        # The CLI cannot restart a remote worker process; its respawner
        # reconnects to the same address and restores the checkpoint --
        # which covers both a worker that came back (systemd, k8s, a human)
        # and one whose process survived but whose connection died.
        def reconnect(worker: int, _endpoints=endpoints):
            host, port = _endpoints[worker]
            return TcpTransport(host, port, timeout=args.timeout, retry_policy=policy)

        supervisor = WorkerSupervisor(
            respawner=reconnect,
            max_worker_restarts=args.max_worker_restarts,
            checkpoint_every=max(1, args.checkpoint_every),
        )
    coordinator = CoordinatorService(
        transports, args.dimension, components[0], concurrency=args.concurrency,
        supervisor=supervisor, tenant=args.tenant, scatter_loop=loop_thread,
    )
    return coordinator, supervisor


def _export_telemetry(args: argparse.Namespace, telemetry) -> List[str]:
    """Write the --trace / --metrics dumps, returning report lines."""
    from repro import obs

    lines: List[str] = []
    if args.trace:
        spans = telemetry.tracer.spans()
        obs.export.write_chrome_trace(args.trace, spans)
        lines.append(f"  trace: {len(spans)} spans written to {args.trace}")
    if args.metrics:
        obs.export.write_metrics(
            args.metrics, telemetry.metrics, format=args.metrics_format
        )
        lines.append(
            f"  metrics: registry written to {args.metrics} ({args.metrics_format})"
        )
    return lines


def _run_submit(args: argparse.Namespace) -> int:
    import numpy as np

    from repro import obs
    from repro.distributed.network import Network
    from repro.distributed.vector import DistributedVector
    from repro.functions import make_function
    from repro.sketch.z_sampler import ZSampler

    components = _runtime_components(args)
    weight_fn = make_function(args.function).sampling_weight
    # Telemetry brackets the protocol run only -- handshake through wire
    # audit.  The --verify-local replay runs *after* disable(): its
    # in-process rerun would otherwise double every words.* counter and
    # break the counters-equal-ledger contract the exporters promise.
    telemetry = obs.enable() if (args.trace or args.metrics) else None
    try:
        coordinator, supervisor = _open_submit_session(args, components)
    except BaseException:
        if telemetry is not None:
            obs.disable()
        raise
    serving_lines: List[str] = []
    try:
        try:
            reuse = max(1, int(args.session_reuse))
            if reuse == 1:
                draws = coordinator.sample(
                    weight_fn, args.draws, seed=args.sample_seed
                )
            else:
                from repro.backend.serving import ServingSession

                serving = ServingSession(
                    coordinator, components, args.dimension, tenant=args.tenant
                )
                warm_words = warm_frames = 0
                for iteration in range(reuse):
                    words_before = coordinator.network.snapshot().total_words
                    frames_before = coordinator.network.frames_transported
                    draws = serving.submit(
                        args.function, args.draws, seed=args.sample_seed
                    )
                    if iteration:
                        warm_words += (
                            coordinator.network.snapshot().total_words - words_before
                        )
                        warm_frames += (
                            coordinator.network.frames_transported - frames_before
                        )
                serving_lines.append(
                    f"  serving: {reuse} submits over one warm session "
                    f"({serving.misses} cold, {serving.hits} warm); the warm "
                    f"submits moved {warm_frames} frames and charged "
                    f"{warm_words} words"
                )
            log = coordinator.network.snapshot()
            coordinator.verify_wire_accounting()
        finally:
            if telemetry is not None:
                obs.disable()
        lines = [
            f"drew {draws.indices.size} coordinates (Zhat={draws.estimate.z_total:.6g}) "
            f"[scatter concurrency {coordinator.concurrency}]",
            *serving_lines,
            "  draws: " + " ".join(str(i) for i in draws.indices.tolist()),
            f"  communication: {log.total_words} words = {log.total_bytes} bytes "
            f"over {coordinator.network.frames_transported} frames "
            f"(+{coordinator.network.control_overhead_bytes} control bytes)",
            "  per tag:",
        ]
        for tag in sorted(log.words_by_tag):
            lines.append(
                f"    {tag}: {log.words_by_tag[tag]} words = "
                f"{coordinator.network.data_bytes_by_tag[tag]} bytes"
            )
        lines.append("  wire audit: data bytes == 8 x charged words for every tag")
        if supervisor is not None and supervisor.restarts:
            lines.append(
                f"  supervision: recovered {supervisor.restarts} worker "
                "restart(s) mid-run (results unaffected)"
            )
        if telemetry is not None:
            lines.extend(_export_telemetry(args, telemetry))
        if args.verify_local:
            network = Network(args.num_servers)
            vector = DistributedVector(components, args.dimension, network)
            local_draws = ZSampler(weight_fn, seed=args.sample_seed).sample(
                vector, args.draws
            )
            identical = (
                np.array_equal(draws.indices, local_draws.indices)
                and np.array_equal(draws.probabilities, local_draws.probabilities)
                and network.snapshot().words_by_tag == log.words_by_tag
            )
            lines.append(
                "  local replay: "
                + ("bit-identical draws, probabilities and per-tag words"
                   if identical else "MISMATCH against the in-process simulation")
            )
            if not identical:
                print("\n".join(lines))
                return 1
        print("\n".join(lines))
        if args.shutdown:
            coordinator.shutdown_workers()
            print("workers asked to shut down")
    finally:
        coordinator.close()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro``; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _apply_kernel_selection(parser, args)
    if args.command == "list-panels":
        print("\n".join(panel_names("small")))
        return 0
    if args.command in ("figure1", "figure2"):
        print(_run_figures(args, args.command))
        return 0
    if args.command == "table1":
        print(format_table_i())
        return 0
    if args.command == "lowerbounds":
        print(_run_lowerbounds(args.trials))
        return 0
    if args.command == "serve":
        return _run_with_typed_exit(lambda: _run_serve(args))
    if args.command == "submit":
        return _run_with_typed_exit(lambda: _run_submit(args))
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
