"""ψ-functions of M-estimators (Table I of the paper): Huber, L1-L2, "Fair".

Applying such a ψ entrywise to the (summed) data caps the influence of
hugely corrupted entries, giving a form of robust PCA.  All three functions
have at most quadratic growth and their squares satisfy property P, so the
generalized sampler applies (Section VI-C).
"""

from __future__ import annotations

import numpy as np

from repro.functions.base import EntrywiseFunction
from repro.utils.validation import check_positive


class HuberPsi(EntrywiseFunction):
    """Huber ψ-function: ``ψ(x) = x`` for ``|x| <= k`` and ``k sgn(x)`` beyond.

    Entries smaller than the threshold are preserved exactly; larger entries
    are clipped to ``±k``, removing the leverage of corrupted measurements.

    Parameters
    ----------
    threshold:
        The clipping threshold ``k > 0`` (Table I's ``k``).
    """

    name = "huber"

    def __init__(self, threshold: float = 1.0) -> None:
        self.threshold = check_positive(threshold, "threshold")
        self.name = f"huber[k={self.threshold:g}]"

    def apply(self, x: np.ndarray) -> np.ndarray:
        return np.clip(x, -self.threshold, self.threshold)

    def sampling_weight(self, x) -> np.ndarray:
        clipped = np.clip(np.asarray(x, dtype=float), -self.threshold, self.threshold)
        return clipped * clipped

    def describe(self) -> str:
        return f"Huber psi: x if |x| <= {self.threshold:g} else {self.threshold:g} sgn(x)"


class L1L2Psi(EntrywiseFunction):
    """L1-L2 ψ-function: ``ψ(x) = x / sqrt(1 + x^2 / 2)``.

    Behaves like the identity near zero and grows like ``sqrt(2) sgn(x)`` for
    huge ``|x|`` -- a smooth soft clipping.
    """

    name = "l1_l2"

    def apply(self, x: np.ndarray) -> np.ndarray:
        arr = np.asarray(x, dtype=float)
        return arr / np.sqrt(1.0 + arr * arr / 2.0)

    def describe(self) -> str:
        return "L1-L2 psi: x / sqrt(1 + x^2/2)"


class FairPsi(EntrywiseFunction):
    """"Fair" ψ-function: ``ψ(x) = x / (1 + |x| / c)``.

    Parameters
    ----------
    scale:
        The scale parameter ``c > 0`` of Table I.  ψ saturates at ``±c``.
    """

    name = "fair"

    def __init__(self, scale: float = 1.0) -> None:
        self.scale = check_positive(scale, "scale")
        self.name = f"fair[c={self.scale:g}]"

    def apply(self, x: np.ndarray) -> np.ndarray:
        arr = np.asarray(x, dtype=float)
        return arr / (1.0 + np.abs(arr) / self.scale)

    def describe(self) -> str:
        return f"Fair psi: x / (1 + |x|/{self.scale:g})"


#: The three ψ-functions listed in Table I, with their default parameters.
TABLE_I_FUNCTIONS = {
    "huber": HuberPsi,
    "l1_l2": L1L2Psi,
    "fair": FairPsi,
}


def table_i_rows(threshold: float = 1.0, scale: float = 1.0) -> list[dict]:
    """Return the content of Table I as structured rows (name, formula, example values).

    Used by the ``bench_table1_mestimators`` benchmark to regenerate the
    table alongside a numerical sanity panel.
    """
    functions = [HuberPsi(threshold), L1L2Psi(), FairPsi(scale)]
    probe = np.array([-10.0, -1.0, -0.1, 0.0, 0.1, 1.0, 10.0])
    rows = []
    for fn in functions:
        rows.append(
            {
                "name": fn.name,
                "formula": fn.describe(),
                "probe_points": probe.tolist(),
                "values": [float(v) for v in fn(probe)],
            }
        )
    return rows
