"""Identity entrywise function (the classic arbitrary partition model)."""

from __future__ import annotations

import numpy as np

from repro.functions.base import EntrywiseFunction


class Identity(EntrywiseFunction):
    """``f(x) = x``: the global matrix is simply the sum of the local matrices.

    With the identity the generalized partition model degenerates to the
    linear "arbitrary partition model" of prior work; it is the baseline
    against which the implicit-function machinery is compared.
    """

    name = "identity"

    def apply(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=float)

    def sampling_weight(self, x) -> np.ndarray:
        arr = np.asarray(x, dtype=float)
        return arr * arr

    def describe(self) -> str:
        return "f(x) = x"
