"""Power functions ``f(x) = |x|^p`` and ``f(x) = sgn(x) |x|^p``.

These appear in two roles in the paper:

* as the implicit function studied by the lower bounds (Theorems 4 and 8,
  ``f(x) = x^p`` / ``|x|^p``);
* as the *inverse* step of the softmax (generalized mean) application, where
  each server locally raises entries to the ``p``-th power and the global
  function is ``f(x) = x^{1/p}``.
"""

from __future__ import annotations

import numpy as np

from repro.functions.base import EntrywiseFunction
from repro.utils.validation import check_positive


class AbsolutePower(EntrywiseFunction):
    """``f(x) = |x|^p`` for ``p > 0``.

    The sampling weight is ``z(x) = |x|^{2p}`` which satisfies property P for
    every ``p >= 1`` (and for ``p in (0, 1)`` as well, since both ``z`` and
    ``x^2/z = |x|^{2-2p}``... the latter is only non-decreasing when
    ``p <= 1``; both regimes are covered because ``2p <= 2`` or the ratio is
    constant at ``p = 1``).  For ``p > 1`` the ratio ``x^2/z`` is
    *decreasing*, so property P fails -- which matches the paper's lower
    bound telling us fast-growing ``f`` cannot be handled with relative
    error; the additive-error framework still applies through the exact or
    uniform samplers.
    """

    name = "abs_power"

    def __init__(self, exponent: float) -> None:
        self.exponent = check_positive(exponent, "exponent")
        self.name = f"abs_power[p={self.exponent:g}]"

    def apply(self, x: np.ndarray) -> np.ndarray:
        return np.abs(x) ** self.exponent

    def sampling_weight(self, x) -> np.ndarray:
        return np.abs(np.asarray(x, dtype=float)) ** (2.0 * self.exponent)

    def describe(self) -> str:
        return f"f(x) = |x|^{self.exponent:g}"


class SignedPower(EntrywiseFunction):
    """``f(x) = sgn(x) |x|^p`` for ``p > 0`` (odd extension of the power map).

    Used for the softmax application with ``p = 1/P``: servers hold
    ``(1/s) |M^t|^P`` locally and the global function recovers
    ``GM_P(|M^1|, ..., |M^s|)`` entrywise up to the arithmetic/geometric mean
    factor discussed in Section VI-B.
    """

    name = "signed_power"

    def __init__(self, exponent: float) -> None:
        self.exponent = check_positive(exponent, "exponent")
        self.name = f"signed_power[p={self.exponent:g}]"

    def apply(self, x: np.ndarray) -> np.ndarray:
        return np.sign(x) * np.abs(x) ** self.exponent

    def sampling_weight(self, x) -> np.ndarray:
        return np.abs(np.asarray(x, dtype=float)) ** (2.0 * self.exponent)

    def describe(self) -> str:
        return f"f(x) = sgn(x) |x|^{self.exponent:g}"
