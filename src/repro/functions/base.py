"""Base class for entrywise functions and the property-P verifier."""

from __future__ import annotations

import abc
from typing import List, Tuple

import numpy as np


class EntrywiseFunction(abc.ABC):
    """A scalar function ``f`` applied entrywise to the summed local matrices.

    Subclasses implement :meth:`apply`; the base class provides vectorised
    calling, the default sampling weight ``z(x) = f(x)^2`` and the distortion
    constant ``c`` (which is 1 whenever ``z`` is exactly ``f^2``).

    Instances are callables, so they can be passed directly as the
    ``function`` argument of :class:`repro.distributed.LocalCluster`.
    """

    #: Short machine-readable name (used by the registry and reports).
    name: str = "entrywise"

    @abc.abstractmethod
    def apply(self, x: np.ndarray) -> np.ndarray:
        """Apply ``f`` elementwise to ``x`` (must be vectorised)."""

    def __call__(self, x) -> np.ndarray:
        arr = np.asarray(x, dtype=float)
        return np.asarray(self.apply(arr), dtype=float)

    def sampling_weight(self, x) -> np.ndarray:
        """Return ``z(x)``, the weight used by the generalized sampler.

        The default is ``f(x)^2`` which always brackets itself with ``c = 1``.
        Subclasses may override with a simpler surrogate as long as
        ``z/c <= f^2 <= c z`` for :meth:`weight_distortion`'s ``c``.
        """
        fx = self(x)
        return fx * fx

    def weight_distortion(self) -> float:
        """Return the constant ``c >= 1`` with ``z(x)/c <= f(x)^2 <= c z(x)``."""
        return 1.0

    def preserves_zero(self) -> bool:
        """True if ``f(0) == 0`` (required for sparse local matrices)."""
        return bool(np.isclose(float(self(np.zeros(1))[0]), 0.0))

    def describe(self) -> str:
        """One-line human readable description."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"


def property_p_violations(
    weight_fn,
    sample_points: np.ndarray,
    *,
    rtol: float = 1e-9,
) -> List[Tuple[float, float, str]]:
    """Check property **P** of a weight function ``z`` on a grid of points.

    Property P requires, for ``|x1| >= |x2|``:

    * ``x1^2 / z(x1) >= x2^2 / z(x2)``;
    * ``z(x1) >= z(x2)``;
    * and ``z(0) = 0``.

    Parameters
    ----------
    weight_fn:
        Either an :class:`EntrywiseFunction` (its ``sampling_weight`` is
        checked) or a plain vectorised callable ``z``.
    sample_points:
        1-D array of points to check pairwise (sorted internally by ``|x|``).

    Returns
    -------
    list of (x_small, x_large, reason)
        Violating pairs; empty when the property holds on the grid.
    """
    if isinstance(weight_fn, EntrywiseFunction):
        z = weight_fn.sampling_weight
    else:
        z = weight_fn
    points = np.asarray(sample_points, dtype=float).ravel()
    violations: List[Tuple[float, float, str]] = []

    z_zero = float(np.asarray(z(np.zeros(1)), dtype=float).ravel()[0])
    if not np.isclose(z_zero, 0.0, atol=1e-12):
        violations.append((0.0, 0.0, f"z(0) = {z_zero} != 0"))

    order = np.argsort(np.abs(points))
    sorted_points = points[order]
    z_values = np.asarray(z(sorted_points), dtype=float).ravel()
    if np.any(z_values < -1e-12):
        bad = sorted_points[z_values < -1e-12][0]
        violations.append((float(bad), float(bad), "z takes a negative value"))

    # Ratio x^2 / z(x); treat z == 0 carefully (only allowed at x == 0).
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(z_values > 0, sorted_points**2 / z_values, 0.0)

    tolerance = 1 + rtol
    for i in range(1, len(sorted_points)):
        x_small, x_large = sorted_points[i - 1], sorted_points[i]
        if z_values[i] * tolerance < z_values[i - 1]:
            violations.append(
                (float(x_small), float(x_large), "z is not non-decreasing in |x|")
            )
        if z_values[i - 1] > 0 and z_values[i] > 0:
            if ratios[i] * tolerance < ratios[i - 1]:
                violations.append(
                    (float(x_small), float(x_large), "x^2/z(x) is not non-decreasing in |x|")
                )
        if z_values[i] == 0 and abs(x_large) > 1e-12:
            violations.append(
                (float(x_small), float(x_large), "z vanishes at a nonzero point")
            )
    return violations


def satisfies_property_p(
    weight_fn,
    *,
    lower: float = 0.0,
    upper: float = 100.0,
    num_points: int = 2001,
    include_negative: bool = True,
) -> bool:
    """Return True if property **P** holds for ``weight_fn`` on a dense grid.

    This is a numerical verification on ``num_points`` points in
    ``[lower, upper]`` (and their negatives when ``include_negative``); it is
    used by tests and by :class:`~repro.core.samplers.GeneralizedZSampler`
    to guard against functions the framework does not support.
    """
    grid = np.linspace(lower, upper, num_points)
    if include_negative:
        grid = np.concatenate([-grid[::-1], grid])
    return not property_p_violations(weight_fn, grid)
