"""Softmax (generalized mean) aggregation across servers.

Section VI-B of the paper: each server ``t`` holds a non-negative local
matrix ``M^t`` and the global matrix is the entrywise generalized mean

.. math::

    A_{ij} = GM_p(|M^1_{ij}|, ..., |M^s_{ij}|)
           = \\Bigl( \\tfrac{1}{s} \\sum_t |M^t_{ij}|^p \\Bigr)^{1/p}.

For large ``p`` this approaches the entrywise maximum (``max`` itself admits
no low-communication relative-error protocol, Theorem 6), while ``p = 1`` is
the plain mean.  The key trick is that the generalized mean fits the
generalized partition model: server ``t`` locally computes
``A^t = (1/s) |M^t|^p`` so that ``A_{ij} = f(\\sum_t A^t_{ij})`` for
``f(x) = x^{1/p}``.

:class:`GeneralizedMeanFunction` bundles the function ``f``, the local
transform and helpers to build the derived cluster.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.distributed.cluster import LocalCluster
from repro.functions.base import EntrywiseFunction
from repro.utils.validation import check_positive


def generalized_mean(values: np.ndarray, p: float, axis: int = 0) -> np.ndarray:
    """Return the generalized mean ``GM_p`` of ``|values|`` along ``axis``.

    ``GM_p(x_1..x_s) = ((1/s) sum_i |x_i|^p)^(1/p)``.  ``p = 1`` is the mean
    of absolute values; ``p -> infinity`` converges to the maximum.
    """
    p = check_positive(p, "p")
    arr = np.abs(np.asarray(values, dtype=float))
    return (np.mean(arr**p, axis=axis)) ** (1.0 / p)


class GeneralizedMeanFunction(EntrywiseFunction):
    """The implicit function realising softmax / ``GM_p`` aggregation.

    With local matrices ``A^t = (1/s) |M^t|^p``, the global function is
    ``f(x) = x^{1/p}`` and ``A = f(sum_t A^t)`` equals ``GM_p`` of the raw
    matrices entrywise.

    The sampling weight is ``z(x) = x^{2/p}`` (for ``x >= 0``), i.e. the
    ``l_{2/p}``-sampling weight of prior work, which satisfies property P for
    every ``p >= 1``.

    Parameters
    ----------
    p:
        Softmax exponent (``p >= 1``).  Larger values approximate the
        entrywise maximum more closely.
    """

    name = "generalized_mean"

    def __init__(self, p: float) -> None:
        self.p = check_positive(p, "p")
        if self.p < 1:
            raise ValueError(f"the softmax exponent p must be >= 1, got {self.p}")
        self.name = f"generalized_mean[p={self.p:g}]"

    # ---------------------------------------------------------------- #
    # EntrywiseFunction interface: f(x) = x^(1/p) on the summed locals
    # ---------------------------------------------------------------- #
    def apply(self, x: np.ndarray) -> np.ndarray:
        # Local matrices are non-negative by construction, but guard against
        # tiny negative values from floating point cancellation.
        return np.maximum(np.asarray(x, dtype=float), 0.0) ** (1.0 / self.p)

    def sampling_weight(self, x) -> np.ndarray:
        return np.maximum(np.asarray(x, dtype=float), 0.0) ** (2.0 / self.p)

    def describe(self) -> str:
        return f"f(x) = x^(1/{self.p:g})  (softmax / GM_{self.p:g})"

    # ---------------------------------------------------------------- #
    # application helpers
    # ---------------------------------------------------------------- #
    def local_transform(self, raw_local: np.ndarray, num_servers: int) -> np.ndarray:
        """Return ``(1/s) |M^t|^p``, the local preprocessing of one server."""
        if num_servers < 1:
            raise ValueError(f"num_servers must be >= 1, got {num_servers}")
        return (np.abs(np.asarray(raw_local, dtype=float)) ** self.p) / float(num_servers)

    def build_cluster(
        self,
        raw_locals: Sequence[np.ndarray],
        *,
        network=None,
        name: str = "",
    ) -> LocalCluster:
        """Build a :class:`LocalCluster` realising ``GM_p`` over ``raw_locals``.

        Each raw local matrix ``M^t`` is transformed to ``(1/s)|M^t|^p``
        locally (no communication) and the cluster's entrywise function is
        set to this object.
        """
        s = len(raw_locals)
        transformed = [self.local_transform(m, s) for m in raw_locals]
        return LocalCluster(transformed, self, network=network, name=name or self.name)

    def aggregate_reference(self, raw_locals: Sequence[np.ndarray]) -> np.ndarray:
        """Return the exact ``GM_p`` aggregation of the raw local matrices.

        Evaluation-only helper used by tests and experiments to compare the
        implicit global matrix produced by :meth:`build_cluster` against a
        direct computation.
        """
        stack = np.stack([np.asarray(m, dtype=float) for m in raw_locals], axis=0)
        return generalized_mean(stack, self.p, axis=0)

    def max_approximation_gap(self, raw_locals: Sequence[np.ndarray]) -> float:
        """Return ``max_ij (max_t |M^t_ij| - GM_p(...)_ij)``, the gap to the true max.

        Section VI-B argues ``GM_p > c' max`` for large ``p``; this helper
        quantifies the gap for ablation benchmarks.
        """
        stack = np.abs(np.stack([np.asarray(m, dtype=float) for m in raw_locals], axis=0))
        true_max = stack.max(axis=0)
        gm = generalized_mean(stack, self.p, axis=0)
        return float(np.max(true_max - gm))
