"""Entrywise maximum aggregation (the hard case motivating the softmax).

The paper's Theorem 6 shows that computing a *relative*-error low-rank
approximation when the global matrix is the entrywise maximum of the local
matrices requires ``~ n d`` bits of communication -- essentially sending all
the data.  The softmax (generalized mean with large ``p``) is the tractable
surrogate.  This module provides the exact maximum aggregation as a ground
truth for experiments, plus the error incurred by replacing it with ``GM_p``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.functions.softmax import generalized_mean


def entrywise_max(local_matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Return the entrywise maximum of the absolute values of the local matrices."""
    if len(local_matrices) == 0:
        raise ValueError("need at least one local matrix")
    stack = np.abs(np.stack([np.asarray(m, dtype=float) for m in local_matrices], axis=0))
    return stack.max(axis=0)


def max_aggregation_error(
    local_matrices: Sequence[np.ndarray], p: float
) -> dict:
    """Quantify how well ``GM_p`` approximates the entrywise maximum.

    Returns a dict with the maximum absolute gap, the mean relative gap and
    the Frobenius-norm relative gap between ``max_t |M^t|`` and
    ``GM_p(|M^1|,...,|M^s|)``.
    """
    stack = np.abs(np.stack([np.asarray(m, dtype=float) for m in local_matrices], axis=0))
    true_max = stack.max(axis=0)
    gm = generalized_mean(stack, p, axis=0)
    gap = true_max - gm
    denom = np.where(true_max > 0, true_max, 1.0)
    fro_true = np.linalg.norm(true_max)
    return {
        "max_abs_gap": float(np.max(gap)),
        "mean_relative_gap": float(np.mean(gap / denom)),
        "frobenius_relative_gap": float(np.linalg.norm(gap) / (fro_true if fro_true > 0 else 1.0)),
    }
