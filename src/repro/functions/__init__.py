"""Entrywise functions ``f`` and their sampling-weight functions ``z``.

The implicit global matrix is ``A_{ij} = f(sum_t A^t_{ij})`` for a scalar
function ``f`` known to all servers.  Algorithm 1 needs to sample rows with
probability roughly proportional to their squared norm, which reduces to
sampling entries with probability proportional to ``z(x)`` where ``z`` is any
function with ``z(x)/c <= f(x)^2 <= c z(x)`` that satisfies the paper's
property **P** (Section V):

* ``z`` is continuous with ``z(0) = 0``;
* ``z`` is non-decreasing in ``|x|``;
* ``x^2 / z(x)`` is non-decreasing in ``|x|``.

Every concrete function in this package exposes both ``f`` (``__call__``)
and ``z`` (:meth:`~repro.functions.base.EntrywiseFunction.sampling_weight`),
plus the constant ``c`` relating them.
"""

from repro.functions.base import (
    EntrywiseFunction,
    property_p_violations,
    satisfies_property_p,
)
from repro.functions.identity import Identity
from repro.functions.maximum import entrywise_max, max_aggregation_error
from repro.functions.mestimators import FairPsi, HuberPsi, L1L2Psi, TABLE_I_FUNCTIONS
from repro.functions.power import AbsolutePower, SignedPower
from repro.functions.registry import available_functions, make_function
from repro.functions.softmax import GeneralizedMeanFunction, generalized_mean

__all__ = [
    "EntrywiseFunction",
    "satisfies_property_p",
    "property_p_violations",
    "Identity",
    "AbsolutePower",
    "SignedPower",
    "GeneralizedMeanFunction",
    "generalized_mean",
    "entrywise_max",
    "max_aggregation_error",
    "HuberPsi",
    "L1L2Psi",
    "FairPsi",
    "TABLE_I_FUNCTIONS",
    "make_function",
    "available_functions",
]
