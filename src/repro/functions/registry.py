"""Registry mapping function names to factories.

Experiment configurations refer to entrywise functions by name (plus keyword
parameters); the registry turns those references into concrete
:class:`~repro.functions.base.EntrywiseFunction` instances.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.functions.base import EntrywiseFunction
from repro.functions.identity import Identity
from repro.functions.mestimators import FairPsi, HuberPsi, L1L2Psi
from repro.functions.power import AbsolutePower, SignedPower
from repro.functions.softmax import GeneralizedMeanFunction

_FACTORIES: Dict[str, Callable[..., EntrywiseFunction]] = {
    "identity": Identity,
    "abs_power": AbsolutePower,
    "signed_power": SignedPower,
    "generalized_mean": GeneralizedMeanFunction,
    "softmax": GeneralizedMeanFunction,
    "huber": HuberPsi,
    "l1_l2": L1L2Psi,
    "fair": FairPsi,
}


def available_functions() -> List[str]:
    """Return the sorted list of registered function names."""
    return sorted(_FACTORIES)


def make_function(name: str, **kwargs) -> EntrywiseFunction:
    """Instantiate the entrywise function registered under ``name``.

    Parameters
    ----------
    name:
        One of :func:`available_functions` (case-insensitive).
    **kwargs:
        Passed to the function's constructor (e.g. ``p=20`` for the softmax,
        ``threshold=2.0`` for Huber).

    Raises
    ------
    KeyError
        If ``name`` is not registered.
    """
    key = name.lower()
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown entrywise function {name!r}; available: {', '.join(available_functions())}"
        )
    return _FACTORIES[key](**kwargs)


def register_function(name: str, factory: Callable[..., EntrywiseFunction]) -> None:
    """Register a custom entrywise function factory under ``name``.

    Raises
    ------
    ValueError
        If the name is already taken (overwriting silently would make
        experiment configs ambiguous).
    """
    key = name.lower()
    if key in _FACTORIES:
        raise ValueError(f"function name {name!r} is already registered")
    _FACTORIES[key] = factory
