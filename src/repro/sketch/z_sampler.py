"""``Z-sampler`` (Algorithm 4): sample coordinates with probability ~ ``z(a_i)/Z(a)``.

Algorithm 4 first runs the :class:`~repro.sketch.z_estimator.ZEstimator`,
then (i) picks a class ``i*`` with probability proportional to its estimated
contribution ``shat_i (1+eps)^i`` and (ii) outputs a uniformly random
recovered member of that class (the paper uses the min-hash ``g`` as the
uniform tie-breaker among survivors).  Optionally, "growing" classes are
padded with *injected* virtual coordinates so that every considered class
contributes; drawing an injected coordinate yields FAIL and the draw is
retried, exactly as in the paper.

The sampler reports, for every drawn coordinate, an estimate ``Qhat`` of the
probability that a single draw returns it -- this is what Algorithm 1 needs
to scale the sampled rows.

Draws are vectorised: the class of every draw comes from one batched
``rng.choice``, injected-FAIL rejection is resolved in batched rounds over
the still-pending draws, members are picked with one batched
bounded-integer draw against a concatenated member table, and ``Qhat`` uses
a single batched ``weight_fn`` evaluation over all drawn values.  The one
remaining Python-level loop is the O(count) exact-value dict lookup for
the drawn coordinates (kept deliberately: counts are small in Algorithm 1,
and pre-materialising all recovered members' values would cost more).  Unlike
the sketch layer, the draw phase has no naive/fused switch -- it runs
vectorised under both engines, so for a fixed seed the draws (and hence
the rows gathered by Algorithm 1) are identical across engines.  Note the
batched RNG consumption differs from the original per-draw loop, so draw
sequences are not reproducible against pre-refactor seeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.distributed.vector import DistributedVector
from repro.sketch.z_estimator import ZEstimate, ZEstimator
from repro.sketch.z_heavy_hitters import ZHeavyHittersParams
from repro.utils.rng import RandomState, ensure_rng

WeightFunction = Callable[[np.ndarray], np.ndarray]


@dataclass
class ZSamplerConfig:
    """Configuration of the Z-sampler and its inner estimator."""

    #: Geometric class resolution (the ``1 + eps`` base of the level sets).
    epsilon: float = 0.25
    #: Parameters of the inner Z-HeavyHitters invocations.
    hh_params: ZHeavyHittersParams = field(default_factory=ZHeavyHittersParams)
    #: Number of subsampling levels; ``None`` selects ``ceil(log2 l)`` (capped).
    num_levels: Optional[int] = None
    #: Cap for automatically selected levels.
    max_levels: int = 12
    #: Minimum survivors needed to trust a level-j class-size estimate.
    min_level_count: int = 4
    #: Enable the paper's coordinate-injection step for growing classes.
    use_injection: bool = False
    #: Number of retries when an injected coordinate (FAIL) is drawn.
    max_retries: int = 16


@dataclass
class SampleDraws:
    """Result of drawing ``count`` coordinates from the Z-sampler."""

    #: Drawn coordinate indices (with replacement), length ``count``.
    indices: np.ndarray
    #: ``Qhat`` for each draw: estimated probability a single draw returns it.
    probabilities: np.ndarray
    #: Exact summed values ``a_p`` of the drawn coordinates.
    values: np.ndarray
    #: The underlying estimate of ``Z(a)`` and the level sets.
    estimate: ZEstimate
    #: Number of FAIL events (injected coordinates drawn and retried).
    failures: int = 0


class ZSampler:
    """Distributed sampler for ``Pr[i] ~ z(a_i) / Z(a)`` (Algorithm 4).

    Parameters
    ----------
    weight_fn:
        The vectorised weight function ``z``.
    config:
        :class:`ZSamplerConfig`; defaults are tuned for laptop-scale runs.
    seed:
        Randomness for hashes and for the class/member draws.
    """

    def __init__(
        self,
        weight_fn: WeightFunction,
        config: Optional[ZSamplerConfig] = None,
        *,
        seed: RandomState = None,
    ) -> None:
        self._weight_fn = weight_fn
        self._config = config or ZSamplerConfig()
        self._rng = ensure_rng(seed)
        self._estimator = ZEstimator(
            weight_fn,
            epsilon=self._config.epsilon,
            hh_params=self._config.hh_params,
            num_levels=self._config.num_levels,
            max_levels=self._config.max_levels,
            min_level_count=self._config.min_level_count,
            seed=self._rng,
        )

    @property
    def config(self) -> ZSamplerConfig:
        """The sampler configuration."""
        return self._config

    def estimate(self, vector: DistributedVector) -> ZEstimate:
        """Run the inner Z-estimator once (Algorithm 3)."""
        return self._estimator.estimate(vector)

    # ------------------------------------------------------------------ #
    # coordinate injection (Section V-D)
    # ------------------------------------------------------------------ #
    def _injected_counts(self, estimate: ZEstimate) -> Dict[int, float]:
        """Return the number of virtual coordinates injected into each growing class.

        A class is *growing* when its representative weight ``(1+eps)^i`` is
        small relative to ``Zhat``; the paper injects
        ``ceil(eps Zhat / (5 T (1+eps)^i))`` coordinates of exactly that
        weight so the class is guaranteed to contribute.  Injected
        coordinates only exist virtually here: drawing one produces FAIL.
        """
        if not self._config.use_injection or estimate.z_total <= 0:
            return {}
        eps = estimate.epsilon
        t_param = max(1.0, math.log(max(2.0, len(estimate.class_sizes) + 1)) / eps)
        threshold = estimate.z_total / (5.0 * t_param / eps)
        injected: Dict[int, float] = {}
        for klass in estimate.class_sizes:
            representative = (1.0 + eps) ** klass
            if representative <= threshold:
                injected[klass] = math.ceil(
                    eps * estimate.z_total / (5.0 * t_param * representative)
                )
        return injected

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def sample(
        self,
        vector: DistributedVector,
        count: int,
        *,
        estimate: Optional[ZEstimate] = None,
    ) -> SampleDraws:
        """Draw ``count`` coordinates (with replacement) from the z-distribution.

        A single Z-estimate is computed (or reused when passed explicitly)
        and all draws are made from it; this matches how Algorithm 1 invokes
        the sampler ``r`` times while the underlying sketching protocol is
        run once, and keeps the sampling communication independent of ``r``.

        Raises
        ------
        RuntimeError
            If the estimator recovered no coordinate at all (the vector is
            identically zero or the sketch parameters are far too small).
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        est = estimate if estimate is not None else self.estimate(vector)
        classes = [k for k, members in est.class_members.items() if members.size > 0]
        if not classes:
            raise RuntimeError(
                "Z-sampler recovered no coordinates; increase the sketch budget "
                "(hh_params.b / num_buckets / repetitions) or check that the "
                "vector is nonzero"
            )
        eps = est.epsilon
        injected = self._injected_counts(est)
        real_sizes = np.array([est.class_sizes[k] for k in classes], dtype=float)
        injected_sizes = np.array([injected.get(k, 0.0) for k in classes], dtype=float)
        contributions = (real_sizes + injected_sizes) * np.power(1.0 + eps, classes)
        total = contributions.sum()
        z_reference = est.z_total if est.z_total > 0 else total
        class_probs = contributions / total

        # ---- class draw: one batched choice per rejection round ---------- #
        # Drawing an injected (virtual) coordinate yields FAIL and the draw
        # is retried; rounds are vectorised over all still-pending draws.
        num_classes = len(classes)
        drawn_pos = np.full(count, -1, dtype=np.int64)
        pending = np.arange(count)
        failures = 0
        any_injection = bool(np.any(injected_sizes > 0))
        for _ in range(max(1, self._config.max_retries)):
            if pending.size == 0:
                break
            positions = self._rng.choice(num_classes, size=pending.size, p=class_probs)
            if not any_injection:
                drawn_pos[pending] = positions
                pending = pending[:0]
                break
            fail = np.zeros(positions.size, dtype=bool)
            at_risk = injected_sizes[positions] > 0
            if np.any(at_risk):
                # FAIL with probability (#injected / class size): the drawn
                # coordinate was one of the virtual injected ones.
                fail_probability = injected_sizes[positions[at_risk]] / (
                    real_sizes[positions[at_risk]] + injected_sizes[positions[at_risk]]
                )
                fail[at_risk] = self._rng.random(int(at_risk.sum())) < fail_probability
            failures += int(fail.sum())
            succeeded = ~fail
            drawn_pos[pending[succeeded]] = positions[succeeded]
            pending = pending[fail]
        if pending.size:
            # All retries hit injected coordinates; fall back to a
            # non-injected class drawn from the real contributions only.
            real_contribution = real_sizes * np.power(1.0 + eps, classes)
            drawn_pos[pending] = self._rng.choice(
                num_classes,
                size=pending.size,
                p=real_contribution / real_contribution.sum(),
            )

        # ---- member pick: one batched bounded-integer draw --------------- #
        member_arrays = [est.class_members[k] for k in classes]
        member_counts = np.array([m.size for m in member_arrays], dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(member_counts[:-1])))
        concat_members = np.concatenate(member_arrays)
        picks = self._rng.integers(0, member_counts[drawn_pos])
        coordinates = concat_members[offsets[drawn_pos] + picks]
        values = np.array(
            [est.member_values[int(c)] for c in coordinates], dtype=float
        )

        # ---- Qhat: one batched weight evaluation over all draws ---------- #
        weights = np.asarray(self._weight_fn(values), dtype=float)
        if z_reference > 0:
            probabilities = weights / z_reference
        else:
            probabilities = 1.0 / member_counts[drawn_pos].astype(float)

        return SampleDraws(
            indices=np.asarray(coordinates, dtype=np.int64),
            probabilities=np.asarray(probabilities, dtype=float),
            values=np.asarray(values, dtype=float),
            estimate=est,
            failures=failures,
        )
