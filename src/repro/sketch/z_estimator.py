"""``Z-estimator`` (Algorithm 3): estimate ``Z(a)`` and the level-set sizes.

Coordinates are grouped into geometric classes
``S_i(a) = { j : z(a_j) in [(1+eps)^i, (1+eps)^{i+1}) }``.  A class whose
contribution to ``Z(a)`` is non-negligible is either made of few, very heavy
coordinates -- which ``Z-HeavyHitters`` finds directly -- or it is large, in
which case subsampling the coordinates at rate ``2^{-j}`` leaves some of its
members *heavy among the survivors*, so they are found at that level and the
class size is estimated as ``2^j`` times the survivor count.

The estimator returns the estimate ``Zhat`` of ``Z(a)``, the per-class size
estimates ``shat_i``, and the *List* of recovered coordinates with their
exact summed values (collected from the servers), which Algorithm 4 samples
from.

Under the fused engine the degree-16 subsample polynomial ``g`` is
evaluated once per server and every level's survivor mask is derived by
thresholding the cached values; the naive reference engine re-evaluates
``g`` per level (see :mod:`repro.sketch.engine`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.distributed.vector import DistributedVector
from repro.sketch import engine
from repro.sketch.hashing import SubsampleHash
from repro.sketch.z_heavy_hitters import ZHeavyHittersParams, z_heavy_hitters
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs

#: A vectorised weight function ``z`` (e.g. ``fn.sampling_weight`` of an
#: :class:`~repro.functions.base.EntrywiseFunction`).
WeightFunction = Callable[[np.ndarray], np.ndarray]


@dataclass
class ZEstimate:
    """Output of the Z-estimator.

    Attributes
    ----------
    z_total:
        ``Zhat``, the estimate of ``Z(a) = sum_i z(a_i)``.
    class_sizes:
        ``shat_i`` for every recovered class index ``i``.
    class_members:
        Recovered coordinate indices per class (a subset of the class).
    member_values:
        Exact summed value ``a_p`` for every recovered coordinate ``p``.
    epsilon:
        The geometric base ``1 + epsilon`` used for the classes.
    words_used:
        Communication charged while producing this estimate.
    """

    z_total: float
    class_sizes: Dict[int, float]
    class_members: Dict[int, np.ndarray]
    member_values: Dict[int, float]
    epsilon: float
    words_used: int
    levels_used: int = 0
    subsample_hash: Optional[SubsampleHash] = field(default=None, repr=False)

    def class_of(self, weight: float) -> int:
        """Return the class index of a coordinate with ``z``-weight ``weight``."""
        if weight <= 0:
            raise ValueError("class_of is only defined for positive weights")
        return int(math.floor(math.log(weight) / math.log1p(self.epsilon)))

    def class_contribution(self, index: int) -> float:
        """Return ``shat_i (1+eps)^i``, the estimated contribution of class ``index``."""
        return self.class_sizes.get(index, 0.0) * (1.0 + self.epsilon) ** index

    def recovered_coordinates(self) -> np.ndarray:
        """Return all recovered coordinates (the paper's *List*)."""
        if not self.class_members:
            return np.zeros(0, dtype=np.int64)
        return np.unique(np.concatenate(list(self.class_members.values())))

    def export_state(self):
        """Return the serializable wire state of this estimate.

        The returned :class:`repro.runtime.state.ZEstimateState` round-trips
        through :mod:`repro.runtime.wire` (``from_bytes(to_bytes(x))``) and
        rebuilds an equivalent :class:`ZEstimate` with
        :meth:`~repro.runtime.state.ZEstimateState.to_estimate`.
        """
        from repro.runtime.state import ZEstimateState

        return ZEstimateState.from_estimate(self)


class ZEstimator:
    """Distributed estimator of ``Z(a)`` and the level-set sizes (Algorithm 3).

    Parameters
    ----------
    weight_fn:
        The vectorised weight function ``z`` (must satisfy property P).
    epsilon:
        Geometric class resolution; classes are powers of ``1 + epsilon``.
    hh_params:
        Parameters of the inner ``Z-HeavyHitters`` invocations.
    num_levels:
        Number of subsampling levels ``j``; ``None`` selects
        ``ceil(log2(dimension))`` capped at ``max_levels``.
    max_levels:
        Upper bound on the automatically selected number of levels.
    min_level_count:
        A level-``j`` survivor count for a class is only trusted when at
        least this many members were recovered (the paper's
        ``4 C^2 eps^-2 log(l)`` threshold, at a practical magnitude).
    seed:
        Randomness for hashes.
    """

    def __init__(
        self,
        weight_fn: WeightFunction,
        *,
        epsilon: float = 0.25,
        hh_params: Optional[ZHeavyHittersParams] = None,
        num_levels: Optional[int] = None,
        max_levels: int = 12,
        min_level_count: int = 4,
        seed: RandomState = None,
    ) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self._weight_fn = weight_fn
        self._epsilon = float(epsilon)
        self._hh_params = hh_params or ZHeavyHittersParams()
        self._num_levels = num_levels
        self._max_levels = int(max_levels)
        self._min_level_count = int(min_level_count)
        self._rng = ensure_rng(seed)

    @property
    def epsilon(self) -> float:
        """Geometric class resolution."""
        return self._epsilon

    def _class_index(self, weights: np.ndarray) -> np.ndarray:
        """Vectorised class index ``floor(log_{1+eps} z)`` for positive weights."""
        return np.floor(np.log(weights) / math.log1p(self._epsilon)).astype(int)

    def _resolve_levels(self, dimension: int) -> int:
        if self._num_levels is not None:
            if self._num_levels < 0:
                raise ValueError("num_levels must be non-negative")
            return int(self._num_levels)
        return int(min(self._max_levels, max(1, math.ceil(math.log2(dimension + 1)))))

    def estimate(self, vector: DistributedVector, *, tag: str = "z_estimator") -> ZEstimate:
        """Run Algorithm 3 on ``vector`` and return a :class:`ZEstimate`."""
        network = vector.network
        words_before = network.total_words
        levels = self._resolve_levels(vector.dimension)
        rngs = spawn_rngs(self._rng, levels + 2)

        class_sizes: Dict[int, float] = {}
        class_members: Dict[int, list] = {}
        member_values: Dict[int, float] = {}

        def register(indices: np.ndarray, values: np.ndarray, level: int) -> None:
            """Classify newly recovered coordinates and fold them into the level counts.

            The fused engine classifies the whole batch at C speed: one dict
            bulk-update for the exact values, one stable class sort splitting
            the coordinates into per-class extends, and the survivor counts
            from a single ``np.unique``.  The naive reference retains the
            original per-coordinate loop; both produce identical dicts.
            """
            weights = np.asarray(self._weight_fn(values), dtype=float)
            positive = weights > 0
            if not np.any(positive):
                return
            idx = indices[positive]
            vals = values[positive]
            classes = self._class_index(weights[positive])
            if engine.fused_enabled():
                member_values.update(zip(idx.tolist(), vals.tolist()))
                # One stable sort yields everything np.unique would: group
                # starts, sorted class ids, counts, and (because the sort is
                # stable) each group's first original position.
                order = np.argsort(classes, kind="stable")
                sorted_classes = classes[order]
                sorted_idx = idx[order]
                starts = np.flatnonzero(
                    np.concatenate(([True], sorted_classes[1:] != sorted_classes[:-1]))
                )
                uniq = sorted_classes[starts]
                first_seen = order[starts]
                bounds = np.concatenate((starts, [sorted_classes.size]))
                counts = np.diff(bounds)
                # Dict insertion order is observable downstream (the sampler
                # iterates ``class_members``), so classes are inserted in
                # first-encounter order and ``class_sizes`` updated in sorted
                # order, exactly as the naive per-coordinate loop does.
                for slot in np.argsort(first_seen).tolist():
                    class_members.setdefault(int(uniq[slot]), []).extend(
                        sorted_idx[bounds[slot] : bounds[slot + 1]].tolist()
                    )
                for klass, count in zip(uniq.tolist(), counts.tolist()):
                    if level == 0:
                        estimate = float(count)
                    else:
                        if count < self._min_level_count:
                            continue
                        estimate = float(count) * (2.0**level)
                    class_sizes[klass] = max(class_sizes.get(klass, 0.0), estimate)
                return
            for coordinate, value, klass in zip(idx, vals, classes):
                member_values[int(coordinate)] = float(value)
                class_members.setdefault(int(klass), []).append(int(coordinate))
            # Per-class survivor counts at this level.
            for klass in np.unique(classes):
                count = int(np.sum(classes == klass))
                if level == 0:
                    estimate = float(count)
                else:
                    if count < self._min_level_count:
                        continue
                    estimate = float(count) * (2.0**level)
                current = class_sizes.get(int(klass), 0.0)
                class_sizes[int(klass)] = max(current, estimate)

        # ---- line 5-6: global Z-HeavyHitters + exact verification -------- #
        direct = z_heavy_hitters(
            vector, self._hh_params, seed=rngs[0], tag=f"{tag}:direct"
        )
        if direct.size:
            direct_values = vector.collect(direct, tag=f"{tag}:verify")
            register(direct, direct_values, level=0)

        # ---- lines 7-13: subsampling levels ------------------------------ #
        subsample = SubsampleHash(
            domain_scale=max(2, vector.dimension), seed=rngs[1]
        )
        for server in range(1, vector.num_servers):
            network.charge(0, server, subsample.word_count(), tag=f"{tag}:seeds")
        # Fused engine: evaluate the degree-16 polynomial g once per server
        # and derive every level's survivor mask by thresholding the cached
        # values (the cache stays with the vector -- worker-side for a
        # transport-backed vector); the naive engine re-evaluates g per
        # level (reference).
        restrictor = None
        if engine.fused_enabled():
            restrictor = vector.subsample_restrictor(subsample, tag=tag)
        for level in range(1, levels + 1):
            if restrictor is not None:
                restricted = restrictor.restrict(level)
            else:
                restricted = vector.restrict(subsample.level_predicate(level))
            survivors = z_heavy_hitters(
                restricted,
                self._hh_params,
                seed=rngs[1 + level],
                tag=f"{tag}:level{level}",
            )
            if survivors.size == 0:
                continue
            values = vector.collect(survivors, tag=f"{tag}:verify")
            register(survivors, values, level=level)

        members_arrays = {
            klass: np.array(sorted(set(coords)), dtype=np.int64)
            for klass, coords in class_members.items()
        }
        # Never report a class size smaller than the number of distinct
        # members actually recovered.
        for klass, coords in members_arrays.items():
            class_sizes[klass] = max(class_sizes.get(klass, 0.0), float(coords.size))

        z_total = sum(
            size * (1.0 + self._epsilon) ** klass for klass, size in class_sizes.items()
        )
        return ZEstimate(
            z_total=float(z_total),
            class_sizes=class_sizes,
            class_members=members_arrays,
            member_values=member_values,
            epsilon=self._epsilon,
            words_used=network.total_words - words_before,
            levels_used=levels,
            subsample_hash=subsample,
        )
