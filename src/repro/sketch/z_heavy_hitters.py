"""``Z-HeavyHitters`` (Algorithm 2): coordinates heavy in ``Z(v) = sum_i z(v_i)``.

A coordinate ``j`` with ``z(v_j) >= Z(v) / B`` need not be heavy in
``F_2 = |v|_2^2`` -- a few much larger coordinates can drown it.  Algorithm 2
fixes this by hashing the coordinates into buckets with a pairwise
independent hash: with constant probability no two ``Z``-heavy coordinates
collide, and inside its bucket a ``Z``-heavy coordinate *is* ``F_2``-heavy
(property P transfers heaviness from ``z`` to squares once the larger
coordinates are hashed away).  Running ``HeavyHitters`` on every bucket and
taking the union therefore reports all ``Z``-heavy coordinates with
probability ``1 - delta`` after ``O(log 1/delta)`` repetitions.

The default (fused) engine hashes the domain **once** per repetition and
reuses the assignment for both the candidate lists and every server's local
split, then sketches each server's component into *all* per-bucket
CountSketch tables in a single :class:`~repro.sketch.countsketch.BatchedCountSketch`
pass -- one pass per server per repetition instead of
``repetitions x num_buckets`` restricted-sketch passes.  The naive per-bucket
protocol is retained (engine switch) as the reference; both charge
bit-for-bit identical communication because batching is free local work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.distributed.vector import DistributedVector
from repro.sketch import engine
from repro.sketch.countsketch import BatchedCountSketch, CountSketch
from repro.sketch.hashing import PairwiseHash
from repro.sketch.heavy_hitters import (
    _sketch_dimensions,
    distributed_heavy_hitters,
    heavy_hitters_from_stacked_tables,
    heavy_hitters_from_tables,
)
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs


@dataclass
class ZHeavyHittersParams:
    """Practical knobs of Algorithm 2.

    The paper's constants (``4 B^2`` buckets, ``20 log(1/delta)``
    repetitions) are worst-case; the defaults here keep the protocol's
    structure while letting experiments trade accuracy against the
    communication budget, exactly as the authors do in Section VIII
    ("we will adjust some parameters ... to guarantee the ratio").
    """

    #: Heaviness threshold ``B``: report coordinates with ``z(v_j) >= Z(v)/B``.
    b: float = 16.0
    #: Failure probability per invocation.
    delta: float = 0.05
    #: Number of independent bucketing repetitions (paper: ``20 log(1/delta)``).
    repetitions: int = 2
    #: Number of hash buckets (paper: ``4 B^2``); ``None`` selects
    #: ``min(4 B^2, 32)``.
    num_buckets: Optional[int] = None
    #: Width of each per-bucket CountSketch as a multiple of ``B``.
    width_factor: float = 4.0
    #: Cap on reported candidates per bucket.
    max_candidates_per_bucket: Optional[int] = None

    def resolved_buckets(self) -> int:
        """Return the bucket count, applying the default rule when unset."""
        if self.num_buckets is not None:
            if self.num_buckets < 1:
                raise ValueError("num_buckets must be >= 1")
            return int(self.num_buckets)
        return int(min(max(2, 4 * self.b * self.b), 32))


def _split_components_by_bucket(
    vector: DistributedVector,
    domain_assignment: np.ndarray,
    num_buckets: int,
) -> list[list[tuple[np.ndarray, np.ndarray]]]:
    """Partition every server's local component into per-bucket components.

    The bucket of each local coordinate is *looked up* in the already
    evaluated ``domain_assignment`` (the assignment is a deterministic
    function of the broadcast seed, so this is free local work and the hash
    is never evaluated twice).  Returns ``splits[bucket][server] =
    (indices, values)``.
    """
    splits: list[list[tuple[np.ndarray, np.ndarray]]] = [
        [] for _ in range(num_buckets)
    ]
    for server in range(vector.num_servers):
        idx, val = vector.local_component(server)
        if idx.size == 0:
            for bucket in range(num_buckets):
                splits[bucket].append((idx, val))
            continue
        assignment = domain_assignment[idx]
        order = np.argsort(assignment, kind="stable")
        sorted_assignment = assignment[order]
        sorted_idx = idx[order]
        sorted_val = val[order]
        boundaries = np.searchsorted(sorted_assignment, np.arange(num_buckets + 1))
        for bucket in range(num_buckets):
            lo, hi = boundaries[bucket], boundaries[bucket + 1]
            splits[bucket].append((sorted_idx[lo:hi], sorted_val[lo:hi]))
    return splits


def _bucket_slices(domain_assignment: np.ndarray, num_buckets: int):
    """Return per-bucket sorted coordinate arrays from one assignment pass."""
    keys = domain_assignment
    if num_buckets <= 256:
        # One-byte keys let the stable argsort radix-sort a single digit.
        keys = keys.astype(np.uint8)
    order = np.argsort(keys, kind="stable")
    sorted_assignment = domain_assignment[order]
    boundaries = np.searchsorted(sorted_assignment, np.arange(num_buckets + 1))
    return [
        order[boundaries[bucket] : boundaries[bucket + 1]]
        for bucket in range(num_buckets)
    ]


def z_heavy_hitters(
    vector: DistributedVector,
    params: Optional[ZHeavyHittersParams] = None,
    *,
    seed: RandomState = None,
    tag: str = "z_heavy_hitters",
) -> np.ndarray:
    """Return candidate coordinates with ``z(v_j) >= Z(v) / B`` (Algorithm 2).

    The returned indices are *candidates*: the caller (Algorithm 3) collects
    their exact summed values from the servers and applies ``z`` itself, so
    false positives only cost a little verification communication while false
    negatives are what the bucketing repetitions guard against.

    Parameters
    ----------
    vector:
        The implicitly summed vector.
    params:
        Practical parameters; defaults to :class:`ZHeavyHittersParams`.
    seed:
        Randomness for the bucketing hash and the per-bucket sketches.
    tag:
        Network accounting tag prefix.
    """
    params = params or ZHeavyHittersParams()
    rng = ensure_rng(seed)
    repetitions = max(1, int(params.repetitions))
    num_buckets = params.resolved_buckets()
    rngs = spawn_rngs(rng, repetitions * (num_buckets + 1))

    network = vector.network
    collected: list[np.ndarray] = []
    domain = np.arange(vector.dimension, dtype=np.int64)
    fused = engine.fused_enabled()
    if fused:
        if not 0 < params.delta < 1:
            raise ValueError(f"delta must be in (0, 1), got {params.delta}")
        depth, width = _sketch_dimensions(params.b, params.delta, params.width_factor)

    for t in range(repetitions):
        bucket_hash = PairwiseHash(num_buckets, rngs[t * (num_buckets + 1)])
        # The CP broadcasts the bucket-hash seed (a couple of words per server).
        for server in range(1, vector.num_servers):
            network.charge(0, server, bucket_hash.word_count(), tag=f"{tag}:seeds")
        # The bucket assignment is a deterministic function of the broadcast
        # seed, evaluated once and reused for both the domain-side candidate
        # lists and every server's local split (free local work).
        domain_assignment = bucket_hash(domain)

        if not fused:
            splits = _split_components_by_bucket(vector, domain_assignment, num_buckets)
            for bucket in range(num_buckets):
                in_bucket = domain[domain_assignment == bucket]
                if in_bucket.size == 0:
                    continue
                restricted = DistributedVector(splits[bucket], vector.dimension, network)
                result = distributed_heavy_hitters(
                    restricted,
                    params.b,
                    params.delta,
                    seed=rngs[t * (num_buckets + 1) + 1 + bucket],
                    candidate_indices=in_bucket,
                    width_factor=params.width_factor,
                    max_candidates=params.max_candidates_per_bucket,
                    tag=f"{tag}:bucket",
                )
                if result.candidates.size:
                    collected.append(result.candidates)
            continue

        # Fused path: one batched-sketch pass per server covers all buckets,
        # and one domain-wide hash evaluation serves every server's sketch
        # and every bucket's point queries of this repetition.
        sketches = [
            CountSketch(
                depth, width, vector.dimension,
                seed=rngs[t * (num_buckets + 1) + 1 + bucket],
            )
            for bucket in range(num_buckets)
        ]
        batched = BatchedCountSketch(sketches)
        in_buckets = _bucket_slices(domain_assignment, num_buckets)
        cached = batched.build_domain_cache(domain_assignment)
        # Per-server execution seam: the in-process vector sketches every
        # component locally (dispatching to the opt-in worker pool when one
        # is installed); a transport-backed RemoteVector ships the broadcast
        # coefficients to real workers and receives the stacks back.
        server_tables = vector.batched_sketch_tables(
            batched,
            domain_assignment,
            bucket_hash=bucket_hash,
            nonempty_buckets=[b for b in range(num_buckets) if in_buckets[b].size],
            tag=tag,
        )
        if cached:
            # One vectorised merge + F_2 + point-query + threshold pass over
            # every bucket together.
            per_bucket = heavy_hitters_from_stacked_tables(
                batched,
                server_tables,
                network,
                params.b,
                bucket_queries=in_buckets,
                max_candidates=params.max_candidates_per_bucket,
                tag=f"{tag}:bucket",
            )
            collected.extend(c for c in per_bucket if c.size)
            continue
        # No domain cache (domain beyond CACHE_BYTE_LIMIT): per-bucket
        # protocol on the already batched tables.
        for bucket in range(num_buckets):
            if in_buckets[bucket].size == 0:
                continue
            result = heavy_hitters_from_tables(
                sketches[bucket],
                [tables[bucket] for tables in server_tables],
                network,
                params.b,
                candidate_indices=in_buckets[bucket],
                max_candidates=params.max_candidates_per_bucket,
                tag=f"{tag}:bucket",
                assume_unique=True,
            )
            if result.candidates.size:
                collected.append(result.candidates)

    if not collected:
        return np.zeros(0, dtype=np.int64)
    return np.unique(np.concatenate(collected))


def recommended_b(epsilon: float, dimension: int) -> float:
    """Return a practically scaled heaviness threshold ``B``.

    The paper sets ``B = 40 eps^-4 T^3 log l`` with ``T = O(log(l)/eps)``,
    which is astronomically conservative.  The scaling retained here keeps
    the qualitative dependence -- ``B`` grows as ``epsilon`` shrinks and as
    the dimension grows -- at practically usable magnitudes.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if dimension < 1:
        raise ValueError(f"dimension must be >= 1, got {dimension}")
    return max(4.0, math.log2(dimension + 1) / epsilon)
