"""Distributed ``HeavyHitters``: find coordinates with ``v_j^2 >= |v|_2^2 / B``.

This is the protocol the paper calls ``HeavyHitters(v, B, delta)`` (Section
V-B), built from the CountSketch of [21]: every server sketches its local
component of ``v``, the Central Processor merges the (linear) tables, and all
coordinates whose point-query estimate squared clears the (estimated)
``F_2 / B`` threshold are reported.  Communication is
``O(s * B * polylog)`` words -- each worker ships one table plus the hash
seeds broadcast by the CP.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.distributed.vector import DistributedVector
from repro.sketch.countsketch import CountSketch, _row_median
from repro.utils.rng import RandomState, ensure_rng


@dataclass
class HeavyHittersResult:
    """Output of one :func:`distributed_heavy_hitters` invocation."""

    #: Candidate coordinates (indices into the distributed vector).
    candidates: np.ndarray
    #: CountSketch point-query estimates of the candidates' values.
    estimates: np.ndarray
    #: Estimate of ``|v|_2^2`` from the merged sketch.
    f2_estimate: float
    #: Words of communication charged by this invocation.
    words_used: int


def _sketch_dimensions(b: float, delta: float, width_factor: float) -> tuple[int, int]:
    """Choose (depth, width) from the heaviness threshold ``B`` and failure prob ``delta``."""
    depth = max(3, int(math.ceil(math.log2(max(2.0, 1.0 / delta)))))
    depth = min(depth, 11)
    width = max(8, int(math.ceil(width_factor * b)))
    return depth, width


def _select_heavy(
    sketch: CountSketch,
    merged: np.ndarray,
    b: float,
    query: np.ndarray,
    max_candidates: Optional[int],
    estimate_fn=None,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Extract the heavy candidates of ``query`` from a merged table.

    Shared between :func:`distributed_heavy_hitters` (which also moves the
    tables) and :func:`heavy_hitters_from_tables` (which receives tables the
    batched engine already built); returns ``(candidates, estimates, f2)``.
    ``estimate_fn(merged, query)`` overrides the point-query implementation
    (used by the batched engine to serve estimates from its hash cache); it
    must return exactly what ``sketch.estimate`` would.
    """
    f2 = sketch.f2_estimate(merged)
    if query.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0), f2
    if estimate_fn is None:
        estimates = sketch.estimate(merged, query)
    else:
        estimates = estimate_fn(merged, query)

    if f2 <= 0:
        heavy_mask = np.zeros(query.size, dtype=bool)
    else:
        heavy_mask = estimates * estimates >= f2 / float(b)
    candidates = query[heavy_mask]
    candidate_estimates = estimates[heavy_mask]

    cap = int(max_candidates) if max_candidates is not None else max(1, int(4 * b))
    if candidates.size > cap:
        keep = np.argsort(-np.abs(candidate_estimates))[:cap]
        keep.sort()
        candidates = candidates[keep]
        candidate_estimates = candidate_estimates[keep]
    return candidates, candidate_estimates, f2


def heavy_hitters_from_tables(
    sketch: CountSketch,
    per_server_tables,
    network,
    b: float,
    *,
    candidate_indices: np.ndarray,
    max_candidates: Optional[int] = None,
    tag: str = "heavy_hitters",
    estimate_fn=None,
    assume_unique: bool = False,
) -> HeavyHittersResult:
    """Run the ``HeavyHitters`` protocol on locally pre-built tables.

    The batched Z-HeavyHitters engine sketches every bucket's sub-vector in
    one pass per server; this entry point performs the *protocol* part for
    one bucket -- broadcast the seeds, ship each worker's table to the CP,
    merge and extract candidates -- charging exactly the words the
    table-building :func:`distributed_heavy_hitters` would charge.

    ``per_server_tables`` is one ``(depth, width)`` table per server
    (server 0 is the CP, whose table never crosses the network).
    """
    if b <= 0:
        raise ValueError(f"b must be positive, got {b}")
    num_servers = len(per_server_tables)
    words_before = network.total_words
    seed_words = sketch.seed_word_count()
    for server in range(1, num_servers):
        network.charge(0, server, seed_words, tag=f"{tag}:seeds")
    for server in range(1, num_servers):
        network.send(server, 0, per_server_tables[server], tag=f"{tag}:tables")
    merged = np.sum(per_server_tables, axis=0)

    query = np.asarray(candidate_indices, dtype=np.int64)
    if not assume_unique:
        query = np.unique(query)
    candidates, candidate_estimates, f2 = _select_heavy(
        sketch, merged, b, query, max_candidates, estimate_fn
    )
    return HeavyHittersResult(
        candidates=candidates,
        estimates=candidate_estimates,
        f2_estimate=f2,
        words_used=network.total_words - words_before,
    )


def heavy_hitters_from_stacked_tables(
    batched,
    per_server_stacks,
    network,
    b: float,
    *,
    bucket_queries,
    max_candidates: Optional[int] = None,
    tag: str = "heavy_hitters",
) -> list:
    """Run the per-bucket ``HeavyHitters`` protocol for *all* buckets at once.

    ``per_server_stacks`` is one ``(num_buckets, depth, width)`` table stack
    per server (the output of
    :meth:`~repro.sketch.countsketch.BatchedCountSketch.sketch_assigned`) and
    ``bucket_queries[bucket]`` the sorted coordinates eligible in that
    bucket.  The merge, the ``F_2`` estimates, the point queries (served from
    ``batched``'s domain cache, which must be built) and the heaviness
    thresholding are each one vectorised pass over every bucket together,
    replacing the per-bucket :func:`heavy_hitters_from_tables` loop; the
    communication charged per tag is bit-for-bit what that loop charges.
    Returns one candidate array per bucket (empty buckets stay empty).

    ``b`` must be positive and ``batched`` must hold a domain cache; callers
    without a cache fall back to the per-bucket protocol.
    """
    if b <= 0:
        raise ValueError(f"b must be positive, got {b}")
    if batched._flat_cache is None:
        raise ValueError("heavy_hitters_from_stacked_tables needs a domain cache")
    num_servers = len(per_server_stacks)
    num_buckets = batched.num_buckets
    depth, width = batched.depth, batched.width
    table_words = depth * width

    # Protocol accounting, identical per tag to the per-bucket loop: for
    # every non-empty bucket the CP broadcasts that bucket's seeds and every
    # worker ships its table.  (The loops below move O(s * buckets) words of
    # bookkeeping, not data -- the data path is the vectorised merge.)
    for bucket in range(num_buckets):
        if bucket_queries[bucket].size == 0:
            continue
        seed_words = batched.sketches[bucket].seed_word_count()
        for server in range(1, num_servers):
            network.charge(0, server, seed_words, tag=f"{tag}:seeds")
        for server in range(1, num_servers):
            network.send(
                server, 0, per_server_stacks[server][bucket], tag=f"{tag}:tables"
            )

    # One merge over all buckets; one F_2 estimate per bucket row-median.
    merged = np.sum(np.stack(per_server_stacks), axis=0)
    f2 = np.median(np.sum(merged * merged, axis=2), axis=1)

    # Point-query every bucket's eligible coordinates in one gather against a
    # doubled ``(table, -table)`` array covering the whole bucket stack.
    nonempty = [bucket for bucket in range(num_buckets) if bucket_queries[bucket].size]
    if not nonempty:
        return [np.zeros(0, dtype=np.int64) for _ in range(num_buckets)]
    query = np.concatenate([bucket_queries[bucket] for bucket in nonempty])
    query_bucket = np.repeat(
        np.asarray(nonempty, dtype=np.int64),
        [bucket_queries[bucket].size for bucket in nonempty],
    )
    doubled = np.empty(2 * num_buckets * table_words, dtype=float)
    doubled[0::2] = merged.ravel()
    doubled[1::2] = -doubled[0::2]
    signed_cells = batched._signed_cells()
    estimates = np.empty(query.size, dtype=float)
    block = 1 << 18
    for start in range(0, query.size, block):
        stop = min(start + block, query.size)
        cells = (
            signed_cells[query[start:stop]]
            + (2 * table_words * query_bucket[start:stop])[:, None]
        )
        estimates[start:stop] = _row_median(doubled[cells])

    f2_of_query = f2[query_bucket]
    heavy_mask = (f2_of_query > 0) & (
        estimates * estimates >= f2_of_query / float(b)
    )

    cap = int(max_candidates) if max_candidates is not None else max(1, int(4 * b))
    results = [np.zeros(0, dtype=np.int64) for _ in range(num_buckets)]
    start = 0
    for bucket in nonempty:
        stop = start + bucket_queries[bucket].size
        mask = heavy_mask[start:stop]
        candidates = bucket_queries[bucket][mask]
        if candidates.size > cap:
            candidate_estimates = estimates[start:stop][mask]
            keep = np.argsort(-np.abs(candidate_estimates))[:cap]
            keep.sort()
            candidates = candidates[keep]
        results[bucket] = candidates
        start = stop
    return results


def distributed_heavy_hitters(
    vector: DistributedVector,
    b: float,
    delta: float = 0.05,
    *,
    seed: RandomState = None,
    candidate_indices: Optional[np.ndarray] = None,
    width_factor: float = 6.0,
    max_candidates: Optional[int] = None,
    tag: str = "heavy_hitters",
) -> HeavyHittersResult:
    """Report all coordinates ``j`` with ``v_j^2 >= |v|_2^2 / B`` (w.h.p.).

    Parameters
    ----------
    vector:
        The implicitly summed vector ``v = sum_t v^t``.
    b:
        Heaviness threshold ``B``; a coordinate is heavy when its squared
        value is at least a ``1/B`` fraction of ``F_2``.
    delta:
        Target failure probability; controls the sketch depth.
    seed:
        Randomness for the sketch hashes (conceptually drawn by the CP and
        broadcast; the broadcast is charged to the network).
    candidate_indices:
        Coordinates eligible to be reported.  When the caller already knows
        the relevant sub-universe (e.g. one bucket of Algorithm 2), passing
        it avoids querying the full domain.  Defaults to the whole domain.
    width_factor:
        Sketch width as a multiple of ``B``.
    max_candidates:
        Cap on the number of reported candidates (the largest estimates are
        kept).  Defaults to ``4 * B``.
    tag:
        Network accounting tag.

    Returns
    -------
    HeavyHittersResult
    """
    if b <= 0:
        raise ValueError(f"b must be positive, got {b}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    rng = ensure_rng(seed)
    depth, width = _sketch_dimensions(b, delta, width_factor)
    sketch = CountSketch(depth, width, vector.dimension, seed=rng)

    network = vector.network
    words_before = network.total_words
    # The CP broadcasts the hash seeds so every server sketches consistently.
    seed_words = sketch.seed_word_count()
    for server in range(1, vector.num_servers):
        network.charge(0, server, seed_words, tag=f"{tag}:seeds")
    merged = vector.merged_sketch(sketch, tag=f"{tag}:tables")

    if candidate_indices is None:
        query = np.arange(vector.dimension, dtype=np.int64)
    else:
        query = np.unique(np.asarray(candidate_indices, dtype=np.int64))
    candidates, candidate_estimates, f2 = _select_heavy(
        sketch, merged, b, query, max_candidates
    )
    return HeavyHittersResult(
        candidates=candidates,
        estimates=candidate_estimates,
        f2_estimate=f2,
        words_used=network.total_words - words_before,
    )
