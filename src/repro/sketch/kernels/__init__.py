"""Pluggable compiled-kernel providers for the sketch hot paths.

After the protocol layers were made communication-optimal, wall-clock is
dominated by three CPU-bound kernels (ROADMAP item 3): the blocked
power-basis polynomial hash behind
:func:`~repro.sketch.hashing.stacked_polynomial_hash` /
:func:`~repro.sketch.hashing.gathered_polynomial_hash`, the scatter-add
CountSketch table build, and the blocked tiny-table gather of
:meth:`~repro.sketch.countsketch.BatchedCountSketch.build_domain_cache`.
This package puts exactly those three kernels behind one typed
:class:`KernelProvider` interface so they can be swapped wholesale:

* ``numpy`` -- the default, always available: a pure extraction of the
  vectorized code paths that previously lived inline in
  :mod:`repro.sketch.hashing` / :mod:`repro.sketch.countsketch`.
* ``numba`` -- JIT-compiled loops over the same arithmetic (registered
  only when :mod:`numba` imports; see :mod:`.numba_provider`).

Every provider is **bit-for-bit identical** on tables, estimates,
candidates and per-tag words: the kernels are exact integer arithmetic
plus a float scatter-add whose per-cell addition order is fixed
(coordinate-major), so swapping providers can never change a result --
the provider-parametrized equivalence suites assert this against the
naive reference engine.

Selection precedence (weakest first): the ``REPRO_KERNEL_PROVIDER``
environment variable (read once at import), the
:func:`set_kernel_provider` API (also re-exported by
:mod:`repro.sketch.engine` and accepted by
:func:`repro.backend.create_backend`), and the CLI ``--kernel`` flag
(which simply calls the API last).  A requested-but-unavailable provider
from the environment falls back to the best available one with a logged
warning; the API and CLI raise/exit instead, because an explicit request
should not be silently ignored.

Registering another provider (a Cython or C port, say) takes one call::

    from repro.sketch.kernels import KernelProvider, register_provider

    class CythonProvider(KernelProvider):
        name = "cython"
        ...  # implement the four kernel methods

    register_provider(CythonProvider())

after which ``set_kernel_provider("cython")``, the env var and
``--kernel cython`` all resolve to it, and the provider-parametrized
test suites pick it up automatically via :func:`known_providers`.
"""

from __future__ import annotations

import abc
import os
from contextlib import contextmanager
from typing import Dict, Iterator, Tuple

import numpy as np

from repro.utils.logging import get_logger

__all__ = [
    "KernelProvider",
    "register_provider",
    "available_providers",
    "known_providers",
    "unavailable_reason",
    "get_provider",
    "active_provider",
    "active_provider_name",
    "set_kernel_provider",
    "provider_override",
]

#: Environment variable naming the initial provider (weakest precedence).
ENV_VAR = "REPRO_KERNEL_PROVIDER"

_LOGGER = get_logger("sketch.kernels")


class KernelProvider(abc.ABC):
    """The typed contract every kernel provider implements.

    All four methods must be bit-for-bit identical to the ``numpy``
    provider (itself identical to the naive reference): the hash kernels
    are exact ``uint64`` field arithmetic with the documented fold
    schedule, and :meth:`scatter_add` must apply its float additions in
    coordinate-major order (row ``i`` before row ``i+1``, and within a
    row column ``r`` before ``r+1``) so repeated cells accumulate in the
    same order as ``np.add.at`` over the raveled arrays.
    """

    #: Registry/CLI name of the provider (e.g. ``"numpy"``, ``"numba"``).
    name: str = ""

    @abc.abstractmethod
    def stacked_hash_block(self, keys_mod: np.ndarray, coeffs: np.ndarray) -> np.ndarray:
        """Evaluate one cache-resident block of a stacked hash family.

        ``keys_mod`` is a ``(1, n)`` uint64 row of exact field residues
        (``n <= HASH_BLOCK``) and ``coeffs`` a ``(num_hashes, k)`` uint64
        matrix with ``k >= 2``; returns the ``(num_hashes, n)`` uint64
        exact residues of every polynomial at every key.
        """

    @abc.abstractmethod
    def gathered_hash_block(
        self, keys_mod: np.ndarray, coeffs: np.ndarray, selector: np.ndarray
    ) -> np.ndarray:
        """Per-key-selected family evaluation of one block.

        ``coeffs`` has shape ``(num_families, num_hashes, k)`` (``k >= 2``)
        and ``selector`` (int64, shape ``(n,)``) picks key ``i``'s family;
        returns ``(num_hashes, n)`` uint64 exact residues.
        """

    @abc.abstractmethod
    def scatter_add(
        self, out: np.ndarray, flat_keys: np.ndarray, weights: np.ndarray
    ) -> None:
        """Accumulate ``weights`` into ``out`` at ``flat_keys``, in place.

        ``out`` is a flat float64 table; ``flat_keys`` (int64) and
        ``weights`` (float64) share a ``(count, depth)`` coordinate-major
        shape.  Equivalent to
        ``np.add.at(out, flat_keys.ravel(), weights.ravel())``.
        """

    @abc.abstractmethod
    def domain_cache_range(
        self,
        bucket_coeffs: np.ndarray,
        sign_coeffs: np.ndarray,
        assign: np.ndarray,
        start: int,
        stop: int,
        width: int,
        flat_out: np.ndarray,
        sign_out: np.ndarray,
        block: int,
    ) -> None:
        """Fill rows ``[start, stop)`` of a batched domain cache in place.

        Same contract as
        :func:`repro.sketch.countsketch.build_domain_cache_range` (which
        delegates here): ``assign`` is already sliced to the range,
        ``bucket_coeffs``/``sign_coeffs`` are the uint64
        ``(num_buckets, depth, 2)`` / ``(num_buckets, depth, 4)``
        tensors, and outputs land in ``flat_out[start:stop]`` /
        ``sign_out[start:stop]``.  ``block`` is a cache-residency hint;
        providers whose loops are naturally cache-resident may ignore it.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"


_PROVIDERS: Dict[str, KernelProvider] = {}
_UNAVAILABLE: Dict[str, str] = {}
_ACTIVE: KernelProvider = None  # type: ignore[assignment]  # set at import


def register_provider(provider: KernelProvider) -> None:
    """Register ``provider`` under its ``name`` (latest registration wins)."""
    if not provider.name:
        raise ValueError("kernel providers must set a non-empty name")
    _PROVIDERS[provider.name] = provider
    _UNAVAILABLE.pop(provider.name, None)


def available_providers() -> Tuple[str, ...]:
    """Names accepted by :func:`set_kernel_provider`, sorted."""
    return tuple(sorted(_PROVIDERS))


def known_providers() -> Tuple[str, ...]:
    """Every known provider name, available or not (for CLI choices/tests)."""
    return tuple(sorted(set(_PROVIDERS) | set(_UNAVAILABLE)))


def unavailable_reason(name: str) -> str:
    """Why ``name`` is not available ('' when it is, or was never heard of)."""
    return _UNAVAILABLE.get(str(name), "")


def get_provider(name: str) -> KernelProvider:
    """Look a provider up by name, raising ``ValueError`` with context."""
    provider = _PROVIDERS.get(str(name))
    if provider is None:
        reason = _UNAVAILABLE.get(str(name))
        if reason:
            raise ValueError(f"kernel provider {name!r} is unavailable: {reason}")
        raise ValueError(
            f"unknown kernel provider {name!r}; available: "
            + ", ".join(available_providers())
        )
    return provider


def active_provider() -> KernelProvider:
    """The active provider.  THE hot-path accessor: one module-global load."""
    return _ACTIVE


def active_provider_name() -> str:
    """Name of the active provider (recorded in telemetry and bench JSON)."""
    return _ACTIVE.name


def set_kernel_provider(name: str) -> KernelProvider:
    """Activate the named provider globally and return it.

    Raises ``ValueError`` for unknown or unavailable names -- an explicit
    selection must not silently fall back.  When a telemetry capture is
    active, the ``kernel.provider`` gauge is updated in place.
    """
    global _ACTIVE
    _ACTIVE = get_provider(name)
    _record_provider_gauge()
    return _ACTIVE


@contextmanager
def provider_override(name: str) -> Iterator[KernelProvider]:
    """Context manager running the enclosed code on the named provider."""
    previous = _ACTIVE
    provider = set_kernel_provider(name)
    try:
        yield provider
    finally:
        set_kernel_provider(previous.name)


def _record_provider_gauge() -> None:
    """Mirror the active provider into the ``kernel.provider`` obs gauge."""
    try:
        from repro import obs

        telemetry = obs.active()
        if telemetry is not None:
            telemetry.metrics.gauge("kernel.provider").set(_ACTIVE.name)
    except Exception:  # pragma: no cover - obs must never break the engine
        pass


# --------------------------------------------------------------------------- #
# import-time auto-detection
# --------------------------------------------------------------------------- #
_NUMBA_LOGGED = False


def _detect_numba() -> bool:
    """Try to register the numba provider; never print or raise.

    A failed import (numba absent, or present but broken) records the
    reason for :func:`unavailable_reason` and logs **once** through
    :func:`repro.utils.logging.get_logger` -- the audited
    ``configure_logging``-style contract: import of this package must
    stay silent on stdout and must succeed regardless of numba's state.
    """
    global _NUMBA_LOGGED
    try:
        from repro.sketch.kernels.numba_provider import NumbaKernelProvider
    except Exception as exc:  # ImportError, or a broken numba installation
        _UNAVAILABLE["numba"] = f"{type(exc).__name__}: {exc}"
        if not _NUMBA_LOGGED:
            _NUMBA_LOGGED = True
            _LOGGER.info(
                "numba kernel provider unavailable (%s); falling back to the "
                "numpy provider",
                _UNAVAILABLE["numba"],
            )
        return False
    register_provider(NumbaKernelProvider())
    return True


def _initial_provider() -> KernelProvider:
    """Resolve the import-time default: env var if usable, else best available."""
    requested = os.environ.get(ENV_VAR, "").strip()
    if requested:
        try:
            return get_provider(requested)
        except ValueError as exc:
            _LOGGER.warning("%s=%s ignored: %s", ENV_VAR, requested, exc)
    if "numba" in _PROVIDERS:
        return _PROVIDERS["numba"]
    return _PROVIDERS["numpy"]


from repro.sketch.kernels.numpy_provider import NumpyKernelProvider  # noqa: E402

register_provider(NumpyKernelProvider())
_detect_numba()
_ACTIVE = _initial_provider()
