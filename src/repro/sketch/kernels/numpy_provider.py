"""The ``numpy`` kernel provider: the always-available vectorized baseline.

This module is a pure extraction of the vectorized kernels that
previously lived inline in :mod:`repro.sketch.hashing` and
:mod:`repro.sketch.countsketch` -- the code is unchanged, only moved, so
the provider is bit-for-bit the pre-refactor engine.  It is also the
canonical home of the Mersenne-field helpers (:func:`mersenne_fold`,
:func:`mersenne_exact`, :func:`range_reduce`), which ``hashing`` re-exports
under their historical names.
"""

from __future__ import annotations

import numpy as np

from repro.sketch.kernels import KernelProvider

#: The Mersenne prime 2^31 - 1; larger than any coordinate index used in the
#: experiments while keeping products of two residues inside uint64.
MERSENNE_PRIME = (1 << 31) - 1


def mersenne_fold(values: np.ndarray) -> np.ndarray:
    """Partially reduce ``values`` (any uint64) modulo ``p = 2^31 - 1``.

    Two shift-and-add folds exploit ``2^31 = 1 (mod p)``: the result is
    congruent to ``values`` and bounded by ``p + 8`` (for inputs < 2^64;
    inputs < 2^62 fold to at most ``p + 1``), small enough both for
    :func:`mersenne_exact` (which accepts ``[0, 2p)``) and for the next
    multiply-accumulate: callers may defer folding across at most three
    ``< 2^62`` monomials plus one previously folded term before the uint64
    accumulator could overflow.  This replaces the hardware division of
    ``%`` with a handful of cheap vector ops.
    """
    prime = np.uint64(MERSENNE_PRIME)
    folded = (values & prime) + (values >> np.uint64(31))
    return (folded & prime) + (folded >> np.uint64(31))


def mersenne_exact(values: np.ndarray) -> np.ndarray:
    """Finish a folded reduction: map values in ``[0, 2p)`` to ``[0, p)``."""
    prime = np.uint64(MERSENNE_PRIME)
    return np.where(values >= prime, values - prime, values)


def range_reduce(values: np.ndarray, range_size: int) -> np.ndarray:
    """Map exact field residues into ``[0, range_size)``.

    A power-of-two range uses a bitmask instead of hardware division;
    identical to ``values % range_size`` in either case.
    """
    size = np.uint64(range_size)
    if range_size & (range_size - 1) == 0:
        return values & (size - np.uint64(1))
    return values % size


def stacked_hash_block(keys_mod: np.ndarray, coeffs: np.ndarray) -> np.ndarray:
    """Power-basis family evaluation of one block (see stacked_polynomial_hash)."""
    k = coeffs.shape[1]
    # Defer reduction: up to three O(2^62) monomials fit in a uint64
    # accumulator before a fold is needed, so evaluating a degree-3
    # polynomial costs three multiply-adds and ONE reduction instead of a
    # fold per Horner step.  The final canonical reduce makes the outputs
    # bit-for-bit equal to the per-hash ``%``-Horner evaluation.
    power = keys_mod
    acc = coeffs[:, 0:1] + coeffs[:, 1:2] * power
    pending = 1
    for j in range(2, k):
        power = mersenne_fold(power * keys_mod)
        if pending == 3:
            acc = mersenne_fold(acc)
            pending = 0
        acc = acc + coeffs[:, j : j + 1] * power
        pending += 1
    return mersenne_exact(mersenne_fold(acc))


def gathered_hash_block(
    keys_mod: np.ndarray, coeffs: np.ndarray, selector: np.ndarray
) -> np.ndarray:
    """Power-basis evaluation of one block with per-key coefficient gathers.

    Each key uses its selected family's ``c_j``; the fold schedule is
    identical to :func:`stacked_hash_block`.
    """
    k = coeffs.shape[2]
    power = keys_mod
    acc = coeffs[selector, :, 0].T + coeffs[selector, :, 1].T * power
    pending = 1
    for j in range(2, k):
        power = mersenne_fold(power * keys_mod)
        if pending == 3:
            acc = mersenne_fold(acc)
            pending = 0
        acc = acc + coeffs[selector, :, j].T * power
        pending += 1
    return mersenne_exact(mersenne_fold(acc))


def scatter_add(out: np.ndarray, flat_keys: np.ndarray, weights: np.ndarray) -> None:
    """Coordinate-major scatter-add into a flat table (the exact naive order)."""
    np.add.at(out, flat_keys.ravel(), weights.ravel())


def domain_cache_range(
    bucket_coeffs: np.ndarray,
    sign_coeffs: np.ndarray,
    assign: np.ndarray,
    start: int,
    stop: int,
    width: int,
    flat_out: np.ndarray,
    sign_out: np.ndarray,
    block: int,
) -> None:
    """The blocked tiny-table-gather domain-cache kernel (see countsketch).

    Per cache-resident block of coordinates, each coordinate's *own*
    member-sketch coefficients are fetched with one tiny-table gather per
    (row, monomial) and the polynomials evaluated by Mersenne-fold
    power-basis arithmetic.
    """
    depth = bucket_coeffs.shape[1]
    bucket_tables = [
        [np.ascontiguousarray(bucket_coeffs[:, r, j]) for r in range(depth)]
        for j in range(2)
    ]
    sign_tables = [
        [np.ascontiguousarray(sign_coeffs[:, r, j]) for r in range(depth)]
        for j in range(4)
    ]
    one = np.uint64(1)
    block = max(1, int(block))
    for lo in range(start, stop, block):
        hi = min(lo + block, stop)
        selector = assign[lo - start : hi - start]
        keys = np.arange(lo, hi, dtype=np.uint64)
        x = mersenne_exact(mersenne_fold(keys))
        x2 = mersenne_fold(x * x)
        x3 = mersenne_fold(x2 * x)
        for row in range(depth):
            acc = bucket_tables[0][row][selector] + bucket_tables[1][row][selector] * x
            flat_out[lo:hi, row] = np.uint64(row * width) + range_reduce(
                mersenne_exact(mersenne_fold(acc)), width
            )
            acc = sign_tables[0][row][selector] + sign_tables[1][row][selector] * x
            acc += sign_tables[2][row][selector] * x2
            acc += sign_tables[3][row][selector] * x3
            sign_out[lo:hi, row] = (
                (mersenne_exact(mersenne_fold(acc)) & one).astype(np.int8) << 1
            ) - 1


class NumpyKernelProvider(KernelProvider):
    """The default provider: today's vectorized numpy kernels, unchanged."""

    name = "numpy"

    stacked_hash_block = staticmethod(stacked_hash_block)
    gathered_hash_block = staticmethod(gathered_hash_block)
    scatter_add = staticmethod(scatter_add)
    domain_cache_range = staticmethod(domain_cache_range)
