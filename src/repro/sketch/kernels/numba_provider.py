"""The ``numba`` kernel provider: JIT-compiled loops over the same arithmetic.

Importing this module requires :mod:`numba`; the registry imports it
guarded and registers the provider only on success (see
:func:`repro.sketch.kernels._detect_numba`).

Bit-identity argument, kernel by kernel:

* the hash kernels perform the **same sequence** of uint64 operations per
  ``(hash, key)`` pair as the numpy blocks -- multiply-accumulate in the
  power basis with a fold after every power step and after every third
  pending monomial -- and integer arithmetic modulo 2^64 is exact, so the
  outputs are identical by construction (the per-key loop merely changes
  which pairs are computed *when*, never *how*);
* :func:`scatter_add` applies its float additions in exactly the
  coordinate-major order of ``np.add.at`` over the raveled arrays, so
  repeated table cells accumulate in the same order and rounding is
  reproduced bit-for-bit;
* the domain-cache kernel evaluates the identical polynomials per
  coordinate; its per-coordinate loop is naturally cache-resident, so the
  numpy path's ``block`` parameter (which only exists to keep *vector*
  intermediates in L2, per the PR 2 lesson) is accepted and ignored --
  blocking is a performance partition, never a semantic one.

The provider-parametrized equivalence suites assert all of the above
against the naive reference whenever numba is installed.
"""

from __future__ import annotations

import numba
import numpy as np

from repro.sketch.kernels import KernelProvider
from repro.sketch.kernels.numpy_provider import MERSENNE_PRIME

_PRIME = np.uint64(MERSENNE_PRIME)
_SHIFT = np.uint64(31)
_ONE = np.uint64(1)

# All jitted kernels use nopython mode with caching (compile once per
# machine) and no fastmath: float additions must round exactly as numpy's.
_JIT = {"cache": True, "fastmath": False, "nogil": True}


@numba.njit(**_JIT)
def _fold(value):
    """Scalar Mersenne fold: congruent mod p, bounded like the vector fold."""
    folded = (value & _PRIME) + (value >> _SHIFT)
    return (folded & _PRIME) + (folded >> _SHIFT)


@numba.njit(**_JIT)
def _exact(value):
    """Map a folded value in [0, 2p) to the exact residue in [0, p)."""
    if value >= _PRIME:
        return value - _PRIME
    return value


@numba.njit(**_JIT)
def _stacked_hash_block(keys, coeffs, out):
    num_hashes, k = coeffs.shape
    powers = np.empty(k, dtype=np.uint64)
    for i in range(keys.shape[0]):
        x = keys[i]
        # Shared power basis, folded once per step -- the same values the
        # vector kernel computes for this key.
        power = x
        powers[1] = x
        for j in range(2, k):
            power = _fold(power * x)
            powers[j] = power
        for h in range(num_hashes):
            acc = coeffs[h, 0] + coeffs[h, 1] * x
            pending = 1
            for j in range(2, k):
                if pending == 3:
                    acc = _fold(acc)
                    pending = 0
                acc = acc + coeffs[h, j] * powers[j]
                pending += 1
            out[h, i] = _exact(_fold(acc))


@numba.njit(**_JIT)
def _gathered_hash_block(keys, coeffs, selector, out):
    num_hashes, k = coeffs.shape[1], coeffs.shape[2]
    powers = np.empty(k, dtype=np.uint64)
    for i in range(keys.shape[0]):
        x = keys[i]
        family = selector[i]
        power = x
        powers[1] = x
        for j in range(2, k):
            power = _fold(power * x)
            powers[j] = power
        for h in range(num_hashes):
            acc = coeffs[family, h, 0] + coeffs[family, h, 1] * x
            pending = 1
            for j in range(2, k):
                if pending == 3:
                    acc = _fold(acc)
                    pending = 0
                acc = acc + coeffs[family, h, j] * powers[j]
                pending += 1
            out[h, i] = _exact(_fold(acc))


@numba.njit(**_JIT)
def _scatter_add(out, flat_keys, weights):
    count, depth = flat_keys.shape
    for i in range(count):
        for r in range(depth):
            out[flat_keys[i, r]] += weights[i, r]


@numba.njit(**_JIT)
def _domain_cache_range(
    bucket_coeffs, sign_coeffs, assign, start, stop, width, flat_out, sign_out
):
    depth = bucket_coeffs.shape[1]
    w = np.uint64(width)
    mask = np.uint64(width - 1)
    power_of_two = width & (width - 1) == 0
    for offset in range(stop - start):
        coord = start + offset
        bucket = assign[offset]
        x = _exact(_fold(np.uint64(coord)))
        x2 = _fold(x * x)
        x3 = _fold(x2 * x)
        for row in range(depth):
            acc = bucket_coeffs[bucket, row, 0] + bucket_coeffs[bucket, row, 1] * x
            value = _exact(_fold(acc))
            if power_of_two:
                cell = value & mask
            else:
                cell = value % w
            flat_out[coord, row] = np.int64(np.uint64(row) * w + cell)
            acc = sign_coeffs[bucket, row, 0] + sign_coeffs[bucket, row, 1] * x
            acc = acc + sign_coeffs[bucket, row, 2] * x2
            acc = acc + sign_coeffs[bucket, row, 3] * x3
            bit = np.int64(_exact(_fold(acc)) & _ONE)
            sign_out[coord, row] = np.int8(2 * bit - 1)


class NumbaKernelProvider(KernelProvider):
    """JIT-compiled kernels; registered only when numba imports."""

    name = "numba"

    @staticmethod
    def stacked_hash_block(keys_mod: np.ndarray, coeffs: np.ndarray) -> np.ndarray:
        keys = np.ascontiguousarray(keys_mod[0])
        coeffs = np.ascontiguousarray(coeffs)
        out = np.empty((coeffs.shape[0], keys.shape[0]), dtype=np.uint64)
        _stacked_hash_block(keys, coeffs, out)
        return out

    @staticmethod
    def gathered_hash_block(
        keys_mod: np.ndarray, coeffs: np.ndarray, selector: np.ndarray
    ) -> np.ndarray:
        keys = np.ascontiguousarray(keys_mod[0])
        coeffs = np.ascontiguousarray(coeffs)
        selector = np.ascontiguousarray(selector)
        out = np.empty((coeffs.shape[1], keys.shape[0]), dtype=np.uint64)
        _gathered_hash_block(keys, coeffs, selector, out)
        return out

    @staticmethod
    def scatter_add(out: np.ndarray, flat_keys: np.ndarray, weights: np.ndarray) -> None:
        _scatter_add(out, np.ascontiguousarray(flat_keys), np.ascontiguousarray(weights))

    @staticmethod
    def domain_cache_range(
        bucket_coeffs: np.ndarray,
        sign_coeffs: np.ndarray,
        assign: np.ndarray,
        start: int,
        stop: int,
        width: int,
        flat_out: np.ndarray,
        sign_out: np.ndarray,
        block: int,
    ) -> None:
        # ``block`` ignored: the per-coordinate loop never materializes
        # vector intermediates, so there is nothing to keep cache-resident.
        _domain_cache_range(
            np.ascontiguousarray(bucket_coeffs),
            np.ascontiguousarray(sign_coeffs),
            np.ascontiguousarray(assign),
            int(start),
            int(stop),
            int(width),
            flat_out,
            sign_out,
        )
