"""CountSketch: the mergeable linear sketch behind ``HeavyHitters``.

The streaming algorithm of Charikar, Chen and Farach-Colton maintains a
``depth x width`` table; coordinate ``j`` contributes ``sigma_r(j) * v_j`` to
bucket ``h_r(j)`` in every row ``r``.  Point queries return the median over
rows of ``sigma_r(j) * table[r, h_r(j)]``, and the median of the per-row sums
of squares estimates ``F_2 = |v|_2^2``.

Because the table is a *linear* function of the vector, a distributed sum
``v = sum_t v^t`` can be sketched by having each server sketch its own
component and summing the tables at the Central Processor -- exactly the
observation the paper uses to port the streaming algorithm to the
distributed setting ("because it provides a linear sketch, it can be easily
converted into a distributed protocol").

Two numerically identical execution engines are provided (see
:mod:`repro.sketch.engine`): the default *fused* engine evaluates all
``depth`` bucket/sign hashes as stacked ``(depth, nnz)`` arrays in one
Horner pass and builds the table with a single scatter-add over
flattened ``row * width + bucket`` keys; the retained *naive* engine is the
original per-row loop, used as the reference baseline in tests and
benchmarks.  :class:`BatchedCountSketch` extends the fused path across a
whole family of sketches (one per bucket of Algorithm 2) so a server's
component is sketched into all per-bucket tables in one pass.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.sketch import engine
from repro.sketch.hashing import (
    KWiseHash,
    SignHash,
    _mersenne_exact,
    _mersenne_fold,
    _reduced_keys,
    gathered_polynomial_hash,
    range_reduce,
)
from repro.sketch.kernels import active_provider
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs


#: Default upper bound (bytes) on the per-instance domain hash caches.
DEFAULT_CACHE_BYTE_LIMIT = 256 * 1024 * 1024


def _scratch_buffers(
    scratch: dict, count: int, depth: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return reusable ``(int64, int8, float64)`` gather/weight buffers.

    The hot loops (one sketch per server, one estimate per block) hit the
    same handful of query sizes repeatedly; reusing buffers avoids tens of
    MB of allocation + page faulting per call.  The pool is cleared when it
    accumulates more than a handful of distinct sizes.
    """
    buffers = scratch.get(count)
    if buffers is None:
        if len(scratch) >= 8:
            scratch.clear()
        buffers = (
            np.empty((count, depth), dtype=np.int64),
            np.empty((count, depth), dtype=np.int8),
            np.empty((count, depth), dtype=np.float64),
        )
        scratch[count] = buffers
    return buffers


def batched_sketch_uncached(
    idx: np.ndarray,
    val: np.ndarray,
    assign: np.ndarray,
    bucket_coeffs: np.ndarray,
    sign_coeffs: np.ndarray,
    num_buckets: int,
    depth: int,
    width: int,
) -> np.ndarray:
    """Build all per-bucket CountSketch tables of one component in one pass.

    This is the cache-free kernel of :meth:`BatchedCountSketch.sketch_assigned`
    as a module-level function so multiprocessing workers can run it from the
    broadcast hash coefficients alone (see
    :mod:`repro.distributed.mp_backend`); outputs are bit-for-bit identical
    to the cached path.  Inputs are assumed validated by the caller.
    """
    table_words = depth * width
    buckets = (
        gathered_polynomial_hash(idx, bucket_coeffs, assign) % np.uint64(width)
    ).astype(np.int64)
    sign_bits = (
        gathered_polynomial_hash(idx, sign_coeffs, assign) % np.uint64(2)
    ).astype(np.int64) * 2 - 1
    rows = np.arange(depth, dtype=np.int64)[:, None]
    flat_keys = ((assign * table_words)[None, :] + rows * width + buckets).T
    weights = (sign_bits * val).T
    tables = np.zeros(num_buckets * table_words, dtype=float)
    active_provider().scatter_add(tables, flat_keys, weights)
    return tables.reshape(num_buckets, depth, width)


def build_domain_cache_range(
    bucket_coeffs: np.ndarray,
    sign_coeffs: np.ndarray,
    assign: np.ndarray,
    start: int,
    stop: int,
    width: int,
    flat_out: np.ndarray,
    sign_out: np.ndarray,
    block: int,
) -> None:
    """Fill rows ``[start, stop)`` of a batched domain cache in place.

    The blocked tiny-table-gather kernel of
    :meth:`BatchedCountSketch.build_domain_cache` as a module-level function
    over an arbitrary coordinate range: every operation is elementwise per
    coordinate, so any partition of the domain into ranges (e.g. one slab
    per worker process writing into shared memory, see
    :meth:`repro.distributed.mp_backend.SketchProcessPool.build_domain_cache_shared`)
    produces bit-identical ``(flat, sign)`` arrays.  ``assign`` holds the
    bucket of coordinates ``start..stop-1`` (i.e. it is already sliced to
    the range); outputs are written to ``flat_out[start:stop]`` /
    ``sign_out[start:stop]``.  The kernel body lives in the active
    :mod:`repro.sketch.kernels` provider (the ``numpy`` provider is the
    original blocked implementation, unchanged).
    """
    active_provider().domain_cache_range(
        np.asarray(bucket_coeffs, dtype=np.uint64),
        np.asarray(sign_coeffs, dtype=np.uint64),
        assign,
        start,
        stop,
        width,
        flat_out,
        sign_out,
        block,
    )


def _median_of_three(a, b, c) -> np.ndarray:
    """Exact median of three same-shape arrays via a min/max network."""
    return np.maximum(np.minimum(a, b), np.minimum(np.maximum(a, b), c))


def _median_of_five(columns) -> np.ndarray:
    """Exact median of five same-shape arrays via a min/max network."""
    c0, c1, c2, c3, c4 = columns
    lo01, hi01 = np.minimum(c0, c1), np.maximum(c0, c1)
    lo23, hi23 = np.minimum(c2, c3), np.maximum(c2, c3)
    # The overall min and max of the first four cannot be the median of
    # five; the median is the median of the two middle values and c4.
    mid1 = np.maximum(lo01, lo23)
    mid2 = np.minimum(hi01, hi23)
    return _median_of_three(mid1, mid2, c4)


def _row_median(estimates: np.ndarray) -> np.ndarray:
    """Median along the last axis of a coordinate-major ``(n, depth)`` array.

    Depths 3 and 5 (the common CountSketch depths) use exact min/max
    selection networks; other depths use a small-row ``np.sort`` plus middle
    pick.  Both are bit-for-bit identical to ``np.median(..., axis=1)`` (for
    even depth the mean of the two middle elements is ``(a + b) * 0.5``,
    exactly what ``np.median`` computes) while substantially faster.
    """
    depth = estimates.shape[1]
    if depth == 3:
        return _median_of_three(estimates[:, 0], estimates[:, 1], estimates[:, 2])
    if depth == 5:
        return _median_of_five([estimates[:, r] for r in range(5)])
    ordered = np.sort(estimates, axis=1)
    if depth % 2:
        return np.ascontiguousarray(ordered[:, depth // 2])
    return (ordered[:, depth // 2 - 1] + ordered[:, depth // 2]) * 0.5


class CountSketch:
    """A seeded CountSketch over coordinates ``[0, domain)``.

    The object only holds the hash functions (the "random seeds" a
    coordinator broadcasts); tables are produced by :meth:`sketch` and are
    plain ``numpy`` arrays so they can be shipped through the network and
    merged by addition.

    Parameters
    ----------
    depth:
        Number of independent rows (repetitions); the failure probability
        decays exponentially in ``depth``.
    width:
        Number of buckets per row; point-query error is ``O(|v|_2 / sqrt(width))``.
    domain:
        Size of the coordinate universe.
    seed:
        Seed for the bucket and sign hashes.
    """

    #: Upper bound (bytes) on the per-instance domain hash cache; instances
    #: whose ``depth x domain`` tables would exceed it never build one.
    CACHE_BYTE_LIMIT = DEFAULT_CACHE_BYTE_LIMIT

    def __init__(self, depth: int, width: int, domain: int, seed: RandomState = None) -> None:
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if domain < 1:
            raise ValueError(f"domain must be >= 1, got {domain}")
        self.depth = int(depth)
        self.width = int(width)
        self.domain = int(domain)
        rngs = spawn_rngs(ensure_rng(seed), 2 * self.depth)
        self._bucket_hashes = [KWiseHash(2, self.width, rngs[2 * r]) for r in range(self.depth)]
        self._sign_hashes = [SignHash(rngs[2 * r + 1]) for r in range(self.depth)]
        # Stacked coefficient matrices for the fused engine: one Horner pass
        # evaluates all rows' hashes at once, bit-identically to the per-row
        # KWiseHash evaluations above.
        self._bucket_coeffs = np.stack(
            [h.coefficients for h in self._bucket_hashes]
        ).astype(np.uint64)
        self._sign_coeffs = np.stack(
            [h._hash.coefficients for h in self._sign_hashes]
        ).astype(np.uint64)
        # Lazy domain-wide hash cache (fused engine only): once this instance
        # has hashed at least ``domain`` coordinates in total, hashing the
        # whole domain once and serving every later call by gather is cheaper
        # than re-evaluating the polynomials.  Stored coordinate-major so a
        # gather of coordinates reads contiguous rows: ``_flat_cache[j, r]``
        # is the flattened table cell ``r * width + h_r(j)`` and
        # ``_sign_cache[j, r]`` is ``sigma_r(j)`` as int8.
        self._flat_cache: np.ndarray | None = None
        self._sign_cache: np.ndarray | None = None
        self._hashed_elements = 0
        # Reusable gather/weight scratch buffers keyed by query size.
        self._scratch: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    @classmethod
    def from_coefficients(
        cls, bucket_coeffs: np.ndarray, sign_coeffs: np.ndarray, domain: int, width: int
    ) -> "CountSketch":
        """Rebuild a sketch from broadcast hash coefficients (no RNG involved).

        This is the worker-side constructor of the runtime subsystem: a
        coordinator broadcasts the ``(depth, 2)`` bucket and ``(depth, 4)``
        sign coefficient matrices (``seed_word_count()`` words) and every
        receiver rebuilds a sketch that hashes, sketches and estimates
        bit-for-bit identically to the original.
        """
        from repro.sketch.hashing import MERSENNE_PRIME

        bucket = np.asarray(bucket_coeffs, dtype=np.int64)
        sign = np.asarray(sign_coeffs, dtype=np.int64)
        if bucket.ndim != 2 or bucket.shape[1] != 2:
            raise ValueError(f"bucket coefficients must have shape (depth, 2), got {bucket.shape}")
        if sign.shape != (bucket.shape[0], 4):
            raise ValueError(
                f"sign coefficients must have shape ({bucket.shape[0]}, 4), got {sign.shape}"
            )
        for name, coeffs in (("bucket", bucket), ("sign", sign)):
            if coeffs.min() < 0 or coeffs.max() >= MERSENNE_PRIME:
                raise ValueError(f"{name} coefficients must lie in [0, {MERSENNE_PRIME - 1}]")
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if domain < 1:
            raise ValueError(f"domain must be >= 1, got {domain}")
        sketch = cls.__new__(cls)
        sketch.depth = int(bucket.shape[0])
        sketch.width = int(width)
        sketch.domain = int(domain)
        sketch._bucket_hashes = [
            KWiseHash.from_coefficients(bucket[r], sketch.width) for r in range(sketch.depth)
        ]
        sketch._sign_hashes = [SignHash.from_coefficients(sign[r]) for r in range(sketch.depth)]
        sketch._bucket_coeffs = bucket.astype(np.uint64)
        sketch._sign_coeffs = sign.astype(np.uint64)
        sketch._flat_cache = None
        sketch._sign_cache = None
        sketch._hashed_elements = 0
        sketch._scratch = {}
        return sketch

    def export_state(self, table: Optional[np.ndarray] = None):
        """Return this sketch's wire state (coefficients + a table).

        The returned :class:`repro.runtime.state.CountSketchState` pairs the
        hash coefficients (what a coordinator broadcasts) with one sketched
        table (what a server ships back), making the pair serializable with
        :mod:`repro.runtime.wire` and mergeable across shards.  ``table``
        defaults to an empty table.
        """
        from repro.runtime.state import CountSketchState

        if table is None:
            table = self.empty_table()
        table = np.asarray(table, dtype=float)
        if table.shape != (self.depth, self.width):
            raise ValueError("table shape does not match this sketch")
        return CountSketchState(
            depth=self.depth,
            width=self.width,
            domain=self.domain,
            bucket_coeffs=self._bucket_coeffs.copy(),
            sign_coeffs=self._sign_coeffs.copy(),
            table=table.copy(),
        )

    # ------------------------------------------------------------------ #
    # fused hash evaluation
    # ------------------------------------------------------------------ #
    def hash_all_rows(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(buckets, signs)`` of shape ``(depth, len(indices))`` in one pass.

        The pairwise bucket polynomials and 4-wise sign polynomials of all
        rows are evaluated together in power basis, sharing one key
        reduction and one set of key powers; outputs are bit-for-bit
        identical to evaluating each row's :class:`KWiseHash` separately.
        """
        idx = np.asarray(indices, dtype=np.int64)
        x = _reduced_keys(idx)
        bc, sc = self._bucket_coeffs, self._sign_coeffs
        bucket_acc = bc[:, 0:1] + bc[:, 1:2] * x
        buckets = range_reduce(
            _mersenne_exact(_mersenne_fold(bucket_acc)), self.width
        ).astype(np.int64)
        x2 = _mersenne_fold(x * x)
        x3 = _mersenne_fold(x2 * x)
        sign_acc = sc[:, 0:1] + sc[:, 1:2] * x + sc[:, 2:3] * x2 + sc[:, 3:4] * x3
        sign_bits = (_mersenne_exact(_mersenne_fold(sign_acc)) & np.uint64(1)).astype(
            np.int64
        )
        return buckets, sign_bits * 2 - 1

    def _cache_allowed(self) -> bool:
        return self.depth * self.domain * 9 <= self.CACHE_BYTE_LIMIT

    def _build_domain_cache(self) -> None:
        buckets, signs = self.hash_all_rows(np.arange(self.domain, dtype=np.int64))
        rows = np.arange(self.depth, dtype=np.int64)[:, None]
        self._flat_cache = np.ascontiguousarray((rows * self.width + buckets).T)
        self._sign_cache = np.ascontiguousarray(signs.T.astype(np.int8))

    def _scratch_for(self, count: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return _scratch_buffers(self._scratch, count, self.depth)

    def _fused_keys(self, idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return coordinate-major ``(flat_cells, signs)`` of shape ``(len(idx), depth)``.

        The returned arrays may be reused scratch buffers -- callers must
        consume them before the next call on this sketch.  Indices must lie
        in ``[0, domain)``.
        """
        self._hashed_elements += idx.size
        if (
            self._flat_cache is None
            and self._cache_allowed()
            and self._hashed_elements >= self.domain
        ):
            self._build_domain_cache()
        if self._flat_cache is not None:
            flat_keys, signs, _ = self._scratch_for(idx.size)
            np.take(self._flat_cache, idx, axis=0, out=flat_keys, mode="clip")
            np.take(self._sign_cache, idx, axis=0, out=signs, mode="clip")
            return flat_keys, signs
        buckets, signs = self.hash_all_rows(idx)
        rows = np.arange(self.depth, dtype=np.int64)[:, None]
        return (rows * self.width + buckets).T, signs.T

    # ------------------------------------------------------------------ #
    # sketching and merging
    # ------------------------------------------------------------------ #
    def empty_table(self) -> np.ndarray:
        """Return an all-zero table of the right shape."""
        return np.zeros((self.depth, self.width), dtype=float)

    def sketch(self, indices: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Sketch a sparse vector given as ``(indices, values)``."""
        idx = np.asarray(indices, dtype=np.int64)
        val = np.asarray(values, dtype=float)
        if idx.shape != val.shape:
            raise ValueError("indices and values must have the same shape")
        if idx.size == 0:
            return self.empty_table()
        if idx.min() < 0 or idx.max() >= self.domain:
            raise IndexError(f"indices must lie in [0, {self.domain - 1}]")
        if not engine.fused_enabled():
            return self._sketch_naive(idx, val)
        # Coordinate-major scatter-add: within any table cell the additions
        # happen in coordinate order, exactly as the per-row naive loop, so
        # the resulting table is bit-for-bit identical.
        flat_keys, signs = self._fused_keys(idx)
        if self._flat_cache is not None:
            weights = self._scratch_for(idx.size)[2]
            np.multiply(signs, val[:, None], out=weights)
        else:
            weights = signs * val[:, None]
        table = np.zeros(self.depth * self.width, dtype=float)
        active_provider().scatter_add(table, flat_keys, weights)
        return table.reshape(self.depth, self.width)

    def _sketch_naive(self, idx: np.ndarray, val: np.ndarray) -> np.ndarray:
        """Reference implementation: one ``np.add.at`` pass per row."""
        table = self.empty_table()
        for r in range(self.depth):
            buckets = self._bucket_hashes[r](idx)
            signs = self._sign_hashes[r](idx)
            np.add.at(table[r], buckets, signs * val)
        return table

    def sketch_dense(self, vector: np.ndarray) -> np.ndarray:
        """Sketch a dense vector of length ``domain``."""
        vec = np.asarray(vector, dtype=float)
        if vec.shape != (self.domain,):
            raise ValueError(f"vector must have shape ({self.domain},), got {vec.shape}")
        idx = np.nonzero(vec)[0]
        return self.sketch(idx, vec[idx])

    @staticmethod
    def merge(tables: Sequence[np.ndarray]) -> np.ndarray:
        """Merge tables of the same sketch by addition (linearity)."""
        if len(tables) == 0:
            raise ValueError("need at least one table to merge")
        return np.sum(tables, axis=0)

    def table_word_count(self) -> int:
        """Words a server transmits when sending one table."""
        return self.depth * self.width

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def estimate(self, table: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Point-query estimates ``v_j`` for every ``j`` in ``indices``."""
        idx = np.asarray(indices, dtype=np.int64)
        table = np.asarray(table, dtype=float)
        if table.shape != (self.depth, self.width):
            raise ValueError("table shape does not match this sketch")
        if idx.size and (idx.min() < 0 or idx.max() >= self.domain):
            raise IndexError(f"indices must lie in [0, {self.domain - 1}]")
        if not engine.fused_enabled():
            return self._estimate_naive(table, idx)
        flat_table = np.ascontiguousarray(table).ravel()
        flat_keys, signs = self._fused_keys(idx)
        if self._flat_cache is not None:
            estimates = self._scratch_for(idx.size)[2]
            np.take(flat_table, flat_keys, out=estimates, mode="clip")
            np.multiply(estimates, signs, out=estimates)
            return _row_median(estimates)
        estimates = signs * flat_table[flat_keys]
        return _row_median(estimates)

    def _estimate_naive(self, table: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Reference implementation: one gather per row."""
        estimates = np.empty((self.depth, idx.size), dtype=float)
        for r in range(self.depth):
            buckets = self._bucket_hashes[r](idx)
            signs = self._sign_hashes[r](idx)
            estimates[r] = signs * table[r, buckets]
        return np.median(estimates, axis=0)

    def estimate_all(self, table: np.ndarray, block: int = 1 << 18) -> np.ndarray:
        """Point-query estimates for the entire domain (processed in blocks)."""
        if engine.fused_enabled() and self._cache_allowed():
            table = np.asarray(table, dtype=float)
            if table.shape != (self.depth, self.width):
                raise ValueError("table shape does not match this sketch")
            if self._flat_cache is None:
                self._hashed_elements += self.domain
                self._build_domain_cache()
            # Column slices of the cache are views: estimating the whole
            # domain costs one gather + median per block, no hashing at all.
            flat_table = np.ascontiguousarray(table).ravel()
            out = np.empty(self.domain, dtype=float)
            for start in range(0, self.domain, block):
                stop = min(start + block, self.domain)
                estimates = self._scratch_for(stop - start)[2]
                np.take(
                    flat_table, self._flat_cache[start:stop], out=estimates, mode="clip"
                )
                np.multiply(estimates, self._sign_cache[start:stop], out=estimates)
                out[start:stop] = _row_median(estimates)
            return out
        out = np.empty(self.domain, dtype=float)
        for start in range(0, self.domain, block):
            stop = min(start + block, self.domain)
            out[start:stop] = self.estimate(table, np.arange(start, stop, dtype=np.int64))
        return out

    def f2_estimate(self, table: np.ndarray) -> float:
        """Estimate ``|v|_2^2`` as the median over rows of the per-row sum of squares."""
        table = np.asarray(table, dtype=float)
        if table.shape != (self.depth, self.width):
            raise ValueError("table shape does not match this sketch")
        return float(np.median(np.sum(table * table, axis=1)))

    def seed_word_count(self) -> int:
        """Words needed to broadcast the hash seeds defining this sketch."""
        total = 0
        for bucket_hash, sign_hash in zip(self._bucket_hashes, self._sign_hashes):
            total += bucket_hash.word_count() + sign_hash.word_count()
        return total


class BatchedCountSketch:
    """A stacked family of same-shape CountSketches, one per hash bucket.

    Algorithm 2 sketches every bucket's sub-vector with an *independent*
    CountSketch.  The naive protocol therefore makes ``num_buckets`` passes
    over each server's component; this class makes **one**: every
    coordinate's bucket assignment selects which member sketch's hash
    coefficients apply to it (a gather inside the shared Horner pass), and a
    single scatter-add over ``(bucket, row, cell)`` keys builds all the
    per-bucket tables as one ``(num_buckets, depth, width)`` array.

    The member sketches are ordinary :class:`CountSketch` objects (each
    constructed from its own seed, exactly as the naive protocol would), so
    per-bucket tables, estimates and word counts are bit-for-bit identical
    to sketching each bucket separately.

    When the bucket partition of the domain is known (Algorithm 2 hashes the
    domain once per repetition anyway), :meth:`build_domain_cache` evaluates
    every coordinate's *own bucket's* hashes once and stores them
    coordinate-major; all per-server sketches and all per-bucket point
    queries then reduce to gathers, so the hash polynomials are evaluated
    exactly once per repetition no matter how many servers or queries follow.
    """

    #: Upper bound (bytes) on the domain hash cache (see CountSketch).
    CACHE_BYTE_LIMIT = DEFAULT_CACHE_BYTE_LIMIT

    def __init__(self, sketches: Sequence[CountSketch]) -> None:
        if len(sketches) == 0:
            raise ValueError("need at least one member sketch")
        depths = {s.depth for s in sketches}
        widths = {s.width for s in sketches}
        domains = {s.domain for s in sketches}
        if len(depths) != 1 or len(widths) != 1 or len(domains) != 1:
            raise ValueError("all member sketches must share (depth, width, domain)")
        self.sketches = list(sketches)
        self.num_buckets = len(self.sketches)
        self.depth = self.sketches[0].depth
        self.width = self.sketches[0].width
        self.domain = self.sketches[0].domain
        # (num_buckets, depth, k) coefficient tensors for the gathered pass.
        self._bucket_coeffs = np.stack([s._bucket_coeffs for s in self.sketches])
        self._sign_coeffs = np.stack([s._sign_coeffs for s in self.sketches])
        # Domain-wide cache of each coordinate's own-bucket hash values:
        # ``_flat_cache[j, r] = r * width + h^{(bucket_of_j)}_r(j)`` (the cell
        # within that bucket's member table), the matching int8 signs, and
        # the sign-encoded doubled cells used by point queries.
        self._flat_cache: np.ndarray | None = None
        self._sign_cache: np.ndarray | None = None
        self._signed_cell_cache: np.ndarray | None = None
        self._scratch: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    def _domain_assignment(self, assignment_or_members) -> np.ndarray:
        """Normalise :meth:`build_domain_cache` input to a ``(domain,)`` assignment.

        Accepts either the per-coordinate bucket assignment itself or the
        legacy per-bucket member lists (a partition of ``[0, domain)``).
        """
        if (
            isinstance(assignment_or_members, np.ndarray)
            and assignment_or_members.ndim == 1
            and assignment_or_members.dtype != object
        ):
            if assignment_or_members.shape != (self.domain,):
                raise ValueError(
                    "assignment must hold one bucket per domain coordinate: "
                    f"expected shape ({self.domain},), got "
                    f"{assignment_or_members.shape}"
                )
            assign = assignment_or_members.astype(np.int64, copy=False)
            if assign.size and (assign.min() < 0 or assign.max() >= self.num_buckets):
                raise ValueError("assignment buckets out of range")
            return assign
        members = list(assignment_or_members)
        if len(members) != self.num_buckets:
            raise ValueError(
                f"need exactly one member list per bucket "
                f"({len(members)} lists for {self.num_buckets} buckets)"
            )
        assign = np.full(self.domain, -1, dtype=np.int64)
        for bucket, coords in enumerate(members):
            assign[np.asarray(coords, dtype=np.int64)] = bucket
        if assign.min() < 0:
            covered = int(np.sum(assign >= 0))
            raise ValueError(
                "bucket_members must partition the whole domain "
                f"(covered {covered} of {self.domain} coordinates)"
            )
        return assign

    #: Coordinates per block of the domain-cache builder.  Blocks of ~64k
    #: keep every intermediate in L2/L3; full-domain arrays would spill the
    #: whole pass to DRAM and run ~2x slower.
    CACHE_BUILD_BLOCK = 1 << 16

    def build_domain_cache(self, assignment) -> bool:
        """Precompute every coordinate's own-bucket hash values in one pass.

        ``assignment`` is either the ``(domain,)`` bucket of every coordinate
        (Algorithm 2 evaluates it once per repetition anyway) or the legacy
        per-bucket member lists.  The builder never iterates over buckets:
        per cache-resident block of coordinates, each coordinate's *own*
        member-sketch coefficients are fetched with one tiny-table gather per
        (row, monomial) and the polynomials evaluated by Mersenne-fold
        power-basis arithmetic, bit-for-bit identical to hashing every
        bucket's coordinates with that bucket's :class:`CountSketch` (see
        :meth:`build_domain_cache_reference`).  Returns False (and builds
        nothing) when the cache would exceed ``CACHE_BYTE_LIMIT``.
        """
        if self.depth * self.domain * 17 > self.CACHE_BYTE_LIMIT:
            return False
        assign = self._domain_assignment(assignment)
        pool = engine.parallel_pool()
        if pool is not None and getattr(pool, "build_domain_cache_shared", None) is not None:
            # Opt-in multiprocessing: the domain is split into one slab per
            # worker, each writing its rows of the cache directly into
            # shared memory (the kernel is elementwise per coordinate, so
            # the result is bit-identical to the serial build); the shared
            # segments then serve every worker's sketch gathers without a
            # per-repetition copy.
            if pool.build_domain_cache_shared(self, assign):
                return True
        flat = np.empty((self.domain, self.depth), dtype=np.int64)
        sign = np.empty((self.domain, self.depth), dtype=np.int8)
        build_domain_cache_range(
            self._bucket_coeffs,
            self._sign_coeffs,
            assign,
            0,
            self.domain,
            self.width,
            flat,
            sign,
            self.CACHE_BUILD_BLOCK,
        )
        self._flat_cache = flat
        self._sign_cache = sign
        # The signed-cell encoding used by point queries is derived lazily on
        # first use (see _signed_cells); sketching does not need it.
        self._signed_cell_cache = None
        return True

    def _signed_cells(self) -> np.ndarray:
        """Return (building lazily) the signed-cell point-query encoding.

        ``2*cell`` for positive sign, ``2*cell + 1`` for negative: an index
        into a doubled ``(table, -table)`` array, making point queries one
        gather.  Requires a built domain cache.
        """
        if self._signed_cell_cache is None:
            if self._flat_cache is None:
                raise ValueError("signed cells need a built domain cache")
            self._signed_cell_cache = 2 * self._flat_cache + (self._sign_cache < 0)
        return self._signed_cell_cache

    def build_domain_cache_reference(self, assignment) -> tuple[np.ndarray, np.ndarray]:
        """Reference domain-cache construction: per-bucket, per-row hash loops.

        Returns ``(flat, sign)`` computed with each member sketch's scalar
        :class:`~repro.sketch.hashing.KWiseHash` evaluations (honouring the
        active engine), exactly the work the pre-batched implementation did.
        Used by the equivalence tests and as the benchmark baseline for the
        fused :meth:`build_domain_cache`; never called on the hot path.
        """
        assign = self._domain_assignment(assignment)
        flat = np.empty((self.domain, self.depth), dtype=np.int64)
        sign = np.empty((self.domain, self.depth), dtype=np.int8)
        for bucket in range(self.num_buckets):
            coords = np.flatnonzero(assign == bucket)
            if coords.size == 0:
                continue
            member = self.sketches[bucket]
            for row in range(self.depth):
                flat[coords, row] = (
                    row * self.width + member._bucket_hashes[row](coords)
                )
                sign[coords, row] = member._sign_hashes[row](coords).astype(np.int8)
        return flat, sign

    def _scratch_for(self, count: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return _scratch_buffers(self._scratch, count, self.depth)

    def broadcast_coefficients(self) -> tuple[np.ndarray, np.ndarray]:
        """Return the ``(bucket, sign)`` coefficient tensors of every member.

        This is exactly what a coordinator broadcasts to the servers: shapes
        ``(num_buckets, depth, 2)`` and ``(num_buckets, depth, 4)``.  Worker
        processes rebuild the member hashes from these alone (see
        :mod:`repro.distributed.mp_backend`).
        """
        return self._bucket_coeffs, self._sign_coeffs

    @classmethod
    def from_seeds(
        cls, num_buckets: int, depth: int, width: int, domain: int, seeds: Sequence
    ) -> "BatchedCountSketch":
        """Build one member sketch per bucket from per-bucket seeds."""
        if len(seeds) != num_buckets:
            raise ValueError("need exactly one seed per bucket")
        return cls([CountSketch(depth, width, domain, seed=s) for s in seeds])

    @classmethod
    def from_coefficients(
        cls,
        bucket_coeffs: np.ndarray,
        sign_coeffs: np.ndarray,
        domain: int,
        width: int,
    ) -> "BatchedCountSketch":
        """Rebuild the whole member family from broadcast coefficient tensors.

        ``bucket_coeffs``/``sign_coeffs`` are exactly what
        :meth:`broadcast_coefficients` returns -- shapes
        ``(num_buckets, depth, 2)`` and ``(num_buckets, depth, 4)``; the
        rebuilt family hashes and sketches bit-for-bit identically to the
        coordinator's original.
        """
        bucket = np.asarray(bucket_coeffs, dtype=np.int64)
        sign = np.asarray(sign_coeffs, dtype=np.int64)
        if bucket.ndim != 3 or sign.ndim != 3 or bucket.shape[0] != sign.shape[0]:
            raise ValueError(
                "coefficient tensors must have shapes (num_buckets, depth, 2) "
                f"and (num_buckets, depth, 4), got {bucket.shape} and {sign.shape}"
            )
        return cls(
            [
                CountSketch.from_coefficients(bucket[b], sign[b], domain, width)
                for b in range(bucket.shape[0])
            ]
        )

    def export_state(self, tables: Optional[np.ndarray] = None):
        """Return the family's wire state (coefficient tensors + table stack).

        See :class:`repro.runtime.state.BatchedSketchState`; ``tables``
        defaults to an all-zero stack.
        """
        from repro.runtime.state import BatchedSketchState

        if tables is None:
            tables = self.empty_tables()
        tables = np.asarray(tables, dtype=float)
        if tables.shape != (self.num_buckets, self.depth, self.width):
            raise ValueError("tables shape does not match this family")
        return BatchedSketchState(
            num_buckets=self.num_buckets,
            depth=self.depth,
            width=self.width,
            domain=self.domain,
            bucket_coeffs=self._bucket_coeffs.copy(),
            sign_coeffs=self._sign_coeffs.copy(),
            tables=tables.copy(),
        )

    def empty_tables(self) -> np.ndarray:
        """Return an all-zero ``(num_buckets, depth, width)`` table stack."""
        return np.zeros((self.num_buckets, self.depth, self.width), dtype=float)

    def sketch_assigned(
        self, indices: np.ndarray, values: np.ndarray, assignment: np.ndarray
    ) -> np.ndarray:
        """Sketch ``(indices, values)`` into every bucket's table in one pass.

        ``assignment[i]`` is the bucket of ``indices[i]``; coordinate ``i``
        contributes only to table ``assignment[i]``, hashed by that bucket's
        own CountSketch.  Returns a ``(num_buckets, depth, width)`` array.
        """
        idx = np.asarray(indices, dtype=np.int64)
        val = np.asarray(values, dtype=float)
        assign = np.asarray(assignment, dtype=np.int64)
        if idx.shape != val.shape or idx.shape != assign.shape:
            raise ValueError("indices, values and assignment must have the same shape")
        if idx.size == 0:
            return self.empty_tables()
        if idx.min() < 0 or idx.max() >= self.domain:
            raise IndexError(f"indices must lie in [0, {self.domain - 1}]")
        if assign.min() < 0 or assign.max() >= self.num_buckets:
            raise IndexError("assignment out of range")
        table_words = self.depth * self.width
        if self._flat_cache is not None:
            # Cached path: the per-coordinate hash values are gathers; only
            # the stacked-table offset of the assigned bucket is computed.
            flat_keys, signs, weights = self._scratch_for(idx.size)
            np.take(self._flat_cache, idx, axis=0, out=flat_keys, mode="clip")
            flat_keys += (assign * table_words)[:, None]
            np.take(self._sign_cache, idx, axis=0, out=signs, mode="clip")
            np.multiply(signs, val[:, None], out=weights)
        else:
            return batched_sketch_uncached(
                idx, val, assign,
                self._bucket_coeffs, self._sign_coeffs,
                self.num_buckets, self.depth, self.width,
            )
        tables = np.zeros(self.num_buckets * table_words, dtype=float)
        active_provider().scatter_add(tables, flat_keys, weights)
        return tables.reshape(self.num_buckets, self.depth, self.width)

    def estimate_member(
        self, bucket: int, table: np.ndarray, indices: np.ndarray
    ) -> np.ndarray:
        """Point-query bucket ``bucket``'s merged table at ``indices``.

        Identical to ``self.sketches[bucket].estimate(table, indices)`` but
        served from the domain cache when one was built; ``indices`` must be
        coordinates assigned to that bucket.
        """
        if self._flat_cache is None:
            return self.sketches[bucket].estimate(table, indices)
        idx = np.asarray(indices, dtype=np.int64)
        table = np.asarray(table, dtype=float)
        if table.shape != (self.depth, self.width):
            raise ValueError("table shape does not match this sketch")
        if idx.size and (idx.min() < 0 or idx.max() >= self.domain):
            raise IndexError(f"indices must lie in [0, {self.domain - 1}]")
        # The signed-cell cache encodes the sign in the cell index against a
        # doubled table holding ``(table[c], -table[c])`` pairs, so one
        # gather replaces gather-sign + gather-cell + multiply.
        doubled = np.empty(2 * self.depth * self.width, dtype=float)
        doubled[0::2] = np.ascontiguousarray(table).ravel()
        doubled[1::2] = -doubled[0::2]
        flat_keys, _, estimates = self._scratch_for(idx.size)
        np.take(self._signed_cells(), idx, axis=0, out=flat_keys, mode="clip")
        np.take(doubled, flat_keys, out=estimates, mode="clip")
        return _row_median(estimates)
