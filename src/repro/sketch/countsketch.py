"""CountSketch: the mergeable linear sketch behind ``HeavyHitters``.

The streaming algorithm of Charikar, Chen and Farach-Colton maintains a
``depth x width`` table; coordinate ``j`` contributes ``sigma_r(j) * v_j`` to
bucket ``h_r(j)`` in every row ``r``.  Point queries return the median over
rows of ``sigma_r(j) * table[r, h_r(j)]``, and the median of the per-row sums
of squares estimates ``F_2 = |v|_2^2``.

Because the table is a *linear* function of the vector, a distributed sum
``v = sum_t v^t`` can be sketched by having each server sketch its own
component and summing the tables at the Central Processor -- exactly the
observation the paper uses to port the streaming algorithm to the
distributed setting ("because it provides a linear sketch, it can be easily
converted into a distributed protocol").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.sketch.hashing import KWiseHash, SignHash
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs


class CountSketch:
    """A seeded CountSketch over coordinates ``[0, domain)``.

    The object only holds the hash functions (the "random seeds" a
    coordinator broadcasts); tables are produced by :meth:`sketch` and are
    plain ``numpy`` arrays so they can be shipped through the network and
    merged by addition.

    Parameters
    ----------
    depth:
        Number of independent rows (repetitions); the failure probability
        decays exponentially in ``depth``.
    width:
        Number of buckets per row; point-query error is ``O(|v|_2 / sqrt(width))``.
    domain:
        Size of the coordinate universe.
    seed:
        Seed for the bucket and sign hashes.
    """

    def __init__(self, depth: int, width: int, domain: int, seed: RandomState = None) -> None:
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if domain < 1:
            raise ValueError(f"domain must be >= 1, got {domain}")
        self.depth = int(depth)
        self.width = int(width)
        self.domain = int(domain)
        rngs = spawn_rngs(ensure_rng(seed), 2 * self.depth)
        self._bucket_hashes = [KWiseHash(2, self.width, rngs[2 * r]) for r in range(self.depth)]
        self._sign_hashes = [SignHash(rngs[2 * r + 1]) for r in range(self.depth)]

    # ------------------------------------------------------------------ #
    # sketching and merging
    # ------------------------------------------------------------------ #
    def empty_table(self) -> np.ndarray:
        """Return an all-zero table of the right shape."""
        return np.zeros((self.depth, self.width), dtype=float)

    def sketch(self, indices: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Sketch a sparse vector given as ``(indices, values)``."""
        idx = np.asarray(indices, dtype=np.int64)
        val = np.asarray(values, dtype=float)
        if idx.shape != val.shape:
            raise ValueError("indices and values must have the same shape")
        table = self.empty_table()
        if idx.size == 0:
            return table
        if idx.min() < 0 or idx.max() >= self.domain:
            raise IndexError(f"indices must lie in [0, {self.domain - 1}]")
        for r in range(self.depth):
            buckets = self._bucket_hashes[r](idx)
            signs = self._sign_hashes[r](idx)
            np.add.at(table[r], buckets, signs * val)
        return table

    def sketch_dense(self, vector: np.ndarray) -> np.ndarray:
        """Sketch a dense vector of length ``domain``."""
        vec = np.asarray(vector, dtype=float)
        if vec.shape != (self.domain,):
            raise ValueError(f"vector must have shape ({self.domain},), got {vec.shape}")
        idx = np.nonzero(vec)[0]
        return self.sketch(idx, vec[idx])

    @staticmethod
    def merge(tables: Sequence[np.ndarray]) -> np.ndarray:
        """Merge tables of the same sketch by addition (linearity)."""
        if len(tables) == 0:
            raise ValueError("need at least one table to merge")
        return np.sum(tables, axis=0)

    def table_word_count(self) -> int:
        """Words a server transmits when sending one table."""
        return self.depth * self.width

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def estimate(self, table: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Point-query estimates ``v_j`` for every ``j`` in ``indices``."""
        idx = np.asarray(indices, dtype=np.int64)
        table = np.asarray(table, dtype=float)
        if table.shape != (self.depth, self.width):
            raise ValueError("table shape does not match this sketch")
        estimates = np.empty((self.depth, idx.size), dtype=float)
        for r in range(self.depth):
            buckets = self._bucket_hashes[r](idx)
            signs = self._sign_hashes[r](idx)
            estimates[r] = signs * table[r, buckets]
        return np.median(estimates, axis=0)

    def estimate_all(self, table: np.ndarray, block: int = 1 << 18) -> np.ndarray:
        """Point-query estimates for the entire domain (processed in blocks)."""
        out = np.empty(self.domain, dtype=float)
        for start in range(0, self.domain, block):
            stop = min(start + block, self.domain)
            out[start:stop] = self.estimate(table, np.arange(start, stop, dtype=np.int64))
        return out

    def f2_estimate(self, table: np.ndarray) -> float:
        """Estimate ``|v|_2^2`` as the median over rows of the per-row sum of squares."""
        table = np.asarray(table, dtype=float)
        if table.shape != (self.depth, self.width):
            raise ValueError("table shape does not match this sketch")
        return float(np.median(np.sum(table * table, axis=1)))

    def seed_word_count(self) -> int:
        """Words needed to broadcast the hash seeds defining this sketch."""
        total = 0
        for bucket_hash, sign_hash in zip(self._bucket_hashes, self._sign_hashes):
            total += bucket_hash.word_count() + sign_hash.word_count()
        return total
