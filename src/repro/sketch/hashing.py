"""k-wise independent hash families over the Mersenne prime field 2^31 - 1.

All hash functions here are *seeded objects*: a hash is fully determined by
its coefficient vector, which is what a coordinator would broadcast to the
servers (a handful of words).  Evaluation is vectorised over numpy arrays of
keys using 64-bit arithmetic: with the prime ``p = 2^31 - 1`` every
intermediate product fits in an unsigned 64-bit word, so hashing millions of
coordinates is a handful of vectorised passes.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RandomState, ensure_rng

#: The Mersenne prime 2^31 - 1; larger than any coordinate index used in the
#: experiments while keeping products of two residues inside uint64.
MERSENNE_PRIME = (1 << 31) - 1


def _polynomial_hash(keys: np.ndarray, coefficients: np.ndarray) -> np.ndarray:
    """Evaluate ``sum_j c_j x^j mod p`` (Horner's rule) with vectorised uint64 arithmetic."""
    keys_mod = (np.asarray(keys, dtype=np.uint64) % np.uint64(MERSENNE_PRIME))
    result = np.zeros(keys_mod.shape, dtype=np.uint64)
    prime = np.uint64(MERSENNE_PRIME)
    for coefficient in coefficients[::-1]:
        result = (result * keys_mod + np.uint64(int(coefficient))) % prime
    return result


class KWiseHash:
    """A k-wise independent hash ``h: [domain] -> [range_size]``.

    Implemented as a random degree-``(k-1)`` polynomial over the field
    ``GF(2^31 - 1)`` reduced modulo ``range_size``.

    Parameters
    ----------
    independence:
        The independence parameter ``k`` (>= 1).
    range_size:
        Size of the output range; outputs are in ``[0, range_size)``.
    seed:
        Seed or generator used to draw the coefficients.
    """

    def __init__(self, independence: int, range_size: int, seed: RandomState = None) -> None:
        if independence < 1:
            raise ValueError(f"independence must be >= 1, got {independence}")
        if range_size < 1:
            raise ValueError(f"range_size must be >= 1, got {range_size}")
        rng = ensure_rng(seed)
        self.independence = int(independence)
        self.range_size = int(range_size)
        coefficients = rng.integers(0, MERSENNE_PRIME, size=self.independence, dtype=np.int64)
        # Ensure the leading coefficient is nonzero so the polynomial has full degree.
        if self.independence > 1 and coefficients[-1] == 0:
            coefficients[-1] = 1
        self.coefficients = coefficients

    def __call__(self, keys) -> np.ndarray:
        keys_arr = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        hashed = _polynomial_hash(keys_arr, self.coefficients)
        return (hashed % np.uint64(self.range_size)).astype(np.int64)

    def word_count(self) -> int:
        """Words needed to broadcast this hash (its coefficient vector)."""
        return self.independence

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"KWiseHash(k={self.independence}, range={self.range_size})"


class PairwiseHash(KWiseHash):
    """Convenience subclass: a pairwise (2-wise) independent hash."""

    def __init__(self, range_size: int, seed: RandomState = None) -> None:
        super().__init__(2, range_size, seed)


class SignHash:
    """A 4-wise independent sign hash ``sigma: [domain] -> {-1, +1}`` (CountSketch signs)."""

    def __init__(self, seed: RandomState = None) -> None:
        self._hash = KWiseHash(4, 2, seed)

    def __call__(self, keys) -> np.ndarray:
        return self._hash(keys) * 2 - 1

    def word_count(self) -> int:
        """Words needed to broadcast this hash."""
        return self._hash.word_count()


class SubsampleHash:
    """The subsampling hash ``g`` of Algorithm 3.

    ``g`` maps coordinates to ``[0, domain_scale)`` with high independence;
    level ``j`` keeps coordinates with ``g(i) < domain_scale / 2^j``, i.e.
    each level subsamples at rate ``2^{-j}``.  ``g`` doubles as the
    tie-breaking min-hash used by Algorithm 4 to pick one member of the
    chosen class uniformly.
    """

    def __init__(
        self,
        domain_scale: int,
        independence: int = 16,
        seed: RandomState = None,
    ) -> None:
        if domain_scale < 2:
            raise ValueError(f"domain_scale must be >= 2, got {domain_scale}")
        self.domain_scale = int(domain_scale)
        self._hash = KWiseHash(independence, self.domain_scale, seed)

    def __call__(self, keys) -> np.ndarray:
        return self._hash(keys)

    def level_predicate(self, level: int):
        """Return a vectorised predicate keeping coordinates at subsample level ``level``.

        Level 0 keeps everything; level ``j`` keeps a ``2^{-j}`` fraction.
        """
        if level < 0:
            raise ValueError(f"level must be >= 0, got {level}")
        threshold = max(1, self.domain_scale >> level)

        def keep(indices: np.ndarray) -> np.ndarray:
            return self(indices) < threshold

        return keep

    def word_count(self) -> int:
        """Words needed to broadcast this hash."""
        return self._hash.word_count()
