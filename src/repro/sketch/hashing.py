"""k-wise independent hash families over the Mersenne prime field 2^31 - 1.

All hash functions here are *seeded objects*: a hash is fully determined by
its coefficient vector, which is what a coordinator would broadcast to the
servers (a handful of words).  Evaluation is vectorised over numpy arrays of
keys using 64-bit arithmetic: with the prime ``p = 2^31 - 1`` every
intermediate product fits in an unsigned 64-bit word, so hashing millions of
coordinates is a handful of vectorised passes.
"""

from __future__ import annotations

import numpy as np

from repro.sketch import engine
from repro.sketch.kernels import active_provider
from repro.sketch.kernels.numpy_provider import (
    MERSENNE_PRIME,
    mersenne_exact as _mersenne_exact,
    mersenne_fold as _mersenne_fold,
    range_reduce,
)
from repro.utils.rng import RandomState, ensure_rng

__all__ = [
    "MERSENNE_PRIME",
    "HASH_BLOCK",
    "range_reduce",
    "stacked_polynomial_hash",
    "gathered_polynomial_hash",
    "KWiseHash",
    "PairwiseHash",
    "SignHash",
    "SubsampleHash",
]


def _polynomial_hash(keys: np.ndarray, coefficients: np.ndarray) -> np.ndarray:
    """Evaluate ``sum_j c_j x^j mod p`` (Horner's rule) with vectorised uint64 arithmetic."""
    keys_mod = (np.asarray(keys, dtype=np.uint64) % np.uint64(MERSENNE_PRIME))
    result = np.zeros(keys_mod.shape, dtype=np.uint64)
    prime = np.uint64(MERSENNE_PRIME)
    for coefficient in coefficients[::-1]:
        result = (result * keys_mod + np.uint64(int(coefficient))) % prime
    return result


def _reduced_keys(keys: np.ndarray) -> np.ndarray:
    """Return ``keys mod p`` as a ``(1, n)`` uint64 row using fold reduction."""
    flat = np.asarray(keys, dtype=np.uint64).reshape(1, -1)
    return _mersenne_exact(_mersenne_fold(flat))


#: Keys per block of the stacked/gathered evaluators.  High-degree
#: power-basis evaluation keeps several ``x^j`` arrays live; blocks of ~32k
#: keys hold them all in L2, where a single full-length pass over hundreds of
#: thousands of keys would stream every intermediate through DRAM and lose
#: to the naive per-step ``%`` Horner loop.
HASH_BLOCK = 1 << 15


def stacked_polynomial_hash(keys: np.ndarray, coefficients: np.ndarray) -> np.ndarray:
    """Evaluate a whole *family* of polynomial hashes over ``keys`` in one pass.

    ``coefficients`` has shape ``(num_hashes, k)`` -- one degree-``(k-1)``
    polynomial per row -- and the result has shape ``(num_hashes, len(keys))``.
    The power basis ``x^j`` is computed once and shared by every hash in the
    family, with the modulus computed by Mersenne fold reduction, so the
    result of every ``(hash, key)`` pair is bit-for-bit identical to the
    per-hash :func:`_polynomial_hash` evaluation while avoiding both the
    per-hash Python loop and the hardware division of ``%``.  Long key
    arrays are processed in cache-resident blocks (an elementwise function
    commutes with slicing, so outputs are unchanged); the per-block kernel
    comes from the active :mod:`repro.sketch.kernels` provider, every one
    of which is bit-identical by contract.
    """
    coeffs = np.asarray(coefficients, dtype=np.uint64)
    if coeffs.ndim != 2:
        raise ValueError("coefficients must have shape (num_hashes, k)")
    keys_mod = _reduced_keys(keys)
    k = coeffs.shape[1]
    if k == 1:
        constants = _mersenne_exact(_mersenne_fold(coeffs[:, :1]))
        return np.broadcast_to(
            constants, (coeffs.shape[0], keys_mod.shape[1])
        ).copy()
    provider = active_provider()
    count = keys_mod.shape[1]
    if count <= HASH_BLOCK:
        return provider.stacked_hash_block(keys_mod, coeffs)
    out = np.empty((coeffs.shape[0], count), dtype=np.uint64)
    for start in range(0, count, HASH_BLOCK):
        stop = min(start + HASH_BLOCK, count)
        out[:, start:stop] = provider.stacked_hash_block(
            keys_mod[:, start:stop], coeffs
        )
    return out


def gathered_polynomial_hash(
    keys: np.ndarray, coefficients: np.ndarray, selector: np.ndarray
) -> np.ndarray:
    """Evaluate per-key-*selected* hash families over ``keys`` in one pass.

    ``coefficients`` has shape ``(num_families, num_hashes, k)`` and
    ``selector`` assigns each key to one family; key ``i`` is hashed by all
    ``num_hashes`` polynomials of family ``selector[i]``.  Returns an array of
    shape ``(num_hashes, len(keys))``.  This is the batched-bucket primitive:
    Algorithm 2 sketches every bucket's sub-vector with that bucket's own
    CountSketch hashes, and the gather lets one Horner pass serve all buckets
    without a Python loop over them.
    """
    coeffs = np.asarray(coefficients, dtype=np.uint64)
    if coeffs.ndim != 3:
        raise ValueError("coefficients must have shape (num_families, num_hashes, k)")
    sel = np.asarray(selector, dtype=np.int64)
    keys_mod = _reduced_keys(keys)
    k = coeffs.shape[2]
    if k == 1:
        return _mersenne_exact(_mersenne_fold(np.ascontiguousarray(coeffs[sel, :, 0].T)))
    provider = active_provider()
    count = keys_mod.shape[1]
    if count <= HASH_BLOCK:
        return provider.gathered_hash_block(keys_mod, coeffs, sel)
    out = np.empty((coeffs.shape[1], count), dtype=np.uint64)
    for start in range(0, count, HASH_BLOCK):
        stop = min(start + HASH_BLOCK, count)
        out[:, start:stop] = provider.gathered_hash_block(
            keys_mod[:, start:stop], coeffs, sel[start:stop]
        )
    return out


class KWiseHash:
    """A k-wise independent hash ``h: [domain] -> [range_size]``.

    Implemented as a random degree-``(k-1)`` polynomial over the field
    ``GF(2^31 - 1)`` reduced modulo ``range_size``.

    Parameters
    ----------
    independence:
        The independence parameter ``k`` (>= 1).
    range_size:
        Size of the output range; outputs are in ``[0, range_size)``.
    seed:
        Seed or generator used to draw the coefficients.
    """

    def __init__(self, independence: int, range_size: int, seed: RandomState = None) -> None:
        if independence < 1:
            raise ValueError(f"independence must be >= 1, got {independence}")
        if range_size < 1:
            raise ValueError(f"range_size must be >= 1, got {range_size}")
        rng = ensure_rng(seed)
        self.independence = int(independence)
        self.range_size = int(range_size)
        coefficients = rng.integers(0, MERSENNE_PRIME, size=self.independence, dtype=np.int64)
        # Ensure the leading coefficient is nonzero so the polynomial has full degree.
        if self.independence > 1 and coefficients[-1] == 0:
            coefficients[-1] = 1
        self.coefficients = coefficients

    @classmethod
    def from_coefficients(cls, coefficients: np.ndarray, range_size: int) -> "KWiseHash":
        """Rebuild a hash from an explicit coefficient vector.

        This is the receiving side of a seed broadcast: a worker that was
        handed the coefficient words reconstructs a hash that evaluates
        bit-for-bit identically to the coordinator's original.
        """
        coeffs = np.asarray(coefficients, dtype=np.int64)
        if coeffs.ndim != 1 or coeffs.size < 1:
            raise ValueError("coefficients must be a non-empty 1-D array")
        if coeffs.min() < 0 or coeffs.max() >= MERSENNE_PRIME:
            raise ValueError(f"coefficients must lie in [0, {MERSENNE_PRIME - 1}]")
        hash_fn = cls.__new__(cls)
        hash_fn.independence = int(coeffs.size)
        hash_fn.range_size = int(range_size)
        hash_fn.coefficients = coeffs.copy()
        return hash_fn

    def __call__(self, keys) -> np.ndarray:
        keys_arr = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        if engine.fused_enabled():
            # Same polynomial, evaluated with Mersenne fold reduction instead
            # of hardware division -- bit-for-bit identical outputs.
            hashed = stacked_polynomial_hash(keys_arr, self.coefficients[None, :])[0]
            return range_reduce(hashed, self.range_size).astype(np.int64)
        hashed = _polynomial_hash(keys_arr, self.coefficients)
        return (hashed % np.uint64(self.range_size)).astype(np.int64)

    def word_count(self) -> int:
        """Words needed to broadcast this hash (its coefficient vector)."""
        return self.independence

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"KWiseHash(k={self.independence}, range={self.range_size})"


class PairwiseHash(KWiseHash):
    """Convenience subclass: a pairwise (2-wise) independent hash."""

    def __init__(self, range_size: int, seed: RandomState = None) -> None:
        super().__init__(2, range_size, seed)


class SignHash:
    """A 4-wise independent sign hash ``sigma: [domain] -> {-1, +1}`` (CountSketch signs)."""

    def __init__(self, seed: RandomState = None) -> None:
        self._hash = KWiseHash(4, 2, seed)

    @classmethod
    def from_coefficients(cls, coefficients: np.ndarray) -> "SignHash":
        """Rebuild a sign hash from its broadcast coefficient vector."""
        sign = cls.__new__(cls)
        sign._hash = KWiseHash.from_coefficients(coefficients, 2)
        return sign

    def __call__(self, keys) -> np.ndarray:
        return self._hash(keys) * 2 - 1

    def word_count(self) -> int:
        """Words needed to broadcast this hash."""
        return self._hash.word_count()


class SubsampleHash:
    """The subsampling hash ``g`` of Algorithm 3.

    ``g`` maps coordinates to ``[0, domain_scale)`` with high independence;
    level ``j`` keeps coordinates with ``g(i) < domain_scale / 2^j``, i.e.
    each level subsamples at rate ``2^{-j}``.  ``g`` doubles as the
    tie-breaking min-hash used by Algorithm 4 to pick one member of the
    chosen class uniformly.
    """

    def __init__(
        self,
        domain_scale: int,
        independence: int = 16,
        seed: RandomState = None,
    ) -> None:
        if domain_scale < 2:
            raise ValueError(f"domain_scale must be >= 2, got {domain_scale}")
        self.domain_scale = int(domain_scale)
        self._hash = KWiseHash(independence, self.domain_scale, seed)

    @classmethod
    def from_coefficients(
        cls, domain_scale: int, coefficients: np.ndarray
    ) -> "SubsampleHash":
        """Rebuild ``g`` worker-side from the broadcast coefficient vector."""
        if domain_scale < 2:
            raise ValueError(f"domain_scale must be >= 2, got {domain_scale}")
        subsample = cls.__new__(cls)
        subsample.domain_scale = int(domain_scale)
        subsample._hash = KWiseHash.from_coefficients(coefficients, domain_scale)
        return subsample

    @property
    def coefficients(self) -> np.ndarray:
        """The polynomial coefficients a coordinator broadcasts for ``g``."""
        return self._hash.coefficients

    def __call__(self, keys) -> np.ndarray:
        return self._hash(keys)

    def level_threshold(self, level: int) -> int:
        """Return the survival threshold of level ``level``.

        A coordinate survives level ``j`` iff ``g(i) < domain_scale / 2^j``;
        exposing the threshold lets callers that cached ``g`` over their
        coordinates derive *every* level's survivor mask by comparing the
        cached values, instead of re-evaluating the degree-16 polynomial
        once per level.
        """
        if level < 0:
            raise ValueError(f"level must be >= 0, got {level}")
        return max(1, self.domain_scale >> level)

    def level_predicate(self, level: int):
        """Return a vectorised predicate keeping coordinates at subsample level ``level``.

        Level 0 keeps everything; level ``j`` keeps a ``2^{-j}`` fraction.
        """
        threshold = self.level_threshold(level)

        def keep(indices: np.ndarray) -> np.ndarray:
            return self(indices) < threshold

        return keep

    def word_count(self) -> int:
        """Words needed to broadcast this hash."""
        return self._hash.word_count()
