"""Global switch between the fused (vectorized) and naive sketch engines.

The sketch layer has two numerically *identical* implementations of every
hot primitive:

* the **fused** engine (the default): hash evaluations batched across
  CountSketch rows and buckets, tables built with a single scatter-add
  over flattened cell keys, subsample-hash values cached across levels,
  draws vectorised;
* the **naive** engine: the original per-row / per-bucket / per-level
  Python loops, retained as an executable reference.

Both engines consume randomness only while *constructing* hash objects --
evaluation never touches an RNG -- so for a fixed seed they build the same
hash functions, produce bit-for-bit identical tables, candidates and
estimates, and therefore charge exactly the same communication per tag.
The equivalence tests in ``tests/test_vectorized_equivalence.py`` assert
this; the benchmarks use the naive engine as the speedup baseline.
"""

from __future__ import annotations

from contextlib import contextmanager

_FUSED_ENABLED = True


def fused_enabled() -> bool:
    """Return True when the fused (vectorized) engine is active."""
    return _FUSED_ENABLED


def set_fused(enabled: bool) -> None:
    """Globally enable or disable the fused engine."""
    global _FUSED_ENABLED
    _FUSED_ENABLED = bool(enabled)


@contextmanager
def naive_reference():
    """Context manager running the enclosed code on the naive reference engine."""
    previous = _FUSED_ENABLED
    set_fused(False)
    try:
        yield
    finally:
        set_fused(previous)
