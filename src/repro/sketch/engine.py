"""Global switch between the fused (vectorized) and naive sketch engines.

The sketch layer has two numerically *identical* implementations of every
hot primitive:

* the **fused** engine (the default): hash evaluations batched across
  CountSketch rows and buckets, tables built with a single scatter-add
  over flattened cell keys, subsample-hash values cached across levels,
  draws vectorised;
* the **naive** engine: the original per-row / per-bucket / per-level
  Python loops, retained as an executable reference.

Both engines consume randomness only while *constructing* hash objects --
evaluation never touches an RNG -- so for a fixed seed they build the same
hash functions, produce bit-for-bit identical tables, candidates and
estimates, and therefore charge exactly the same communication per tag.
The equivalence tests in ``tests/test_vectorized_equivalence.py`` assert
this; the benchmarks use the naive engine as the speedup baseline.
"""

from __future__ import annotations

from contextlib import contextmanager

_FUSED_ENABLED = True


def fused_enabled() -> bool:
    """Return True when the fused (vectorized) engine is active."""
    return _FUSED_ENABLED


def set_fused(enabled: bool) -> None:
    """Globally enable or disable the fused engine."""
    global _FUSED_ENABLED
    _FUSED_ENABLED = bool(enabled)


@contextmanager
def naive_reference():
    """Context manager running the enclosed code on the naive reference engine."""
    previous = _FUSED_ENABLED
    set_fused(False)
    try:
        yield
    finally:
        set_fused(previous)


# --------------------------------------------------------------------------- #
# kernel-provider selection (see repro.sketch.kernels)
# --------------------------------------------------------------------------- #
def kernel_provider() -> str:
    """Name of the active kernel provider (``numpy`` or ``numba``).

    Orthogonal to the fused/naive engine switch: the naive engine never
    touches a provider (it is the provider-independent oracle), while the
    fused engine runs its three hot kernels -- blocked polynomial hashing,
    the scatter-add table build, and the domain-cache gather -- on the
    active provider.  Every provider is bit-identical by contract, so this
    switch changes speed only, never results.
    """
    from repro.sketch import kernels

    return kernels.active_provider_name()


def set_kernel_provider(name: str):
    """Globally select the named kernel provider (raises on unavailable).

    Selection precedence is env var (``REPRO_KERNEL_PROVIDER``, read once
    at import) < this API < the CLI ``--kernel`` flag (which calls this
    last).
    """
    from repro.sketch import kernels

    return kernels.set_kernel_provider(name)


def kernel_provider_override(name: str):
    """Context manager running the enclosed code on the named provider."""
    from repro.sketch import kernels

    return kernels.provider_override(name)


# --------------------------------------------------------------------------- #
# opt-in multiprocessing execution
# --------------------------------------------------------------------------- #
_PARALLEL_POOL = None


def parallel_pool():
    """Return the active :class:`~repro.distributed.mp_backend.SketchProcessPool`.

    ``None`` (the default) means all per-server local computation runs in the
    current process.  When a pool is active, the fused protocols dispatch
    per-server sketching and hash evaluation to worker processes; results and
    communication accounting are bit-for-bit identical to the in-process
    engine because workers rebuild the hash functions from the exact
    coefficient arrays the coordinator would broadcast.
    """
    return _PARALLEL_POOL


def set_parallel_pool(pool) -> None:
    """Install (or with ``None`` remove) the per-server worker pool."""
    global _PARALLEL_POOL
    _PARALLEL_POOL = pool


@contextmanager
def multiprocess_execution(processes: int | None = None):
    """Run the enclosed code with per-server work in worker processes.

    The pool is created on entry and torn down on exit; nesting restores the
    previous pool.  Results are identical to single-process execution (the
    engine selection -- fused or naive -- is orthogonal and untouched), but
    note the workers recompute hash values rather than sharing the
    coordinator's domain caches, so this pays off once per-server components
    are large enough to dominate the fork/pickle overhead.
    """
    from repro.distributed.mp_backend import SketchProcessPool

    previous = _PARALLEL_POOL
    pool = SketchProcessPool(processes)
    set_parallel_pool(pool)
    try:
        yield pool
    finally:
        set_parallel_pool(previous)
        pool.close()
