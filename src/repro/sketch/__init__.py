"""Sketching and sampling substrate (Algorithms 2-4 of the paper).

The generalized sampler is assembled bottom-up:

* :mod:`repro.sketch.hashing` -- k-wise independent hash families over a
  Mersenne-prime field (pairwise hashing for bucketing, 4-wise for
  CountSketch signs, higher independence for the subsampling hash ``g``).
* :mod:`repro.sketch.countsketch` -- the mergeable linear CountSketch of
  Charikar, Chen and Farach-Colton, used as the ``HeavyHitters`` primitive.
* :mod:`repro.sketch.heavy_hitters` -- the distributed ``HeavyHitters``
  protocol: every server sketches its local component, the Central Processor
  merges the (linear) sketches and extracts candidates.
* :mod:`repro.sketch.z_heavy_hitters` -- Algorithm 2 (``Z-HeavyHitters``):
  pairwise-independent bucketing so that coordinates heavy in ``Z(v)`` become
  heavy in ``F_2`` within their bucket.
* :mod:`repro.sketch.z_estimator` -- Algorithm 3 (``Z-estimator``):
  level-set size estimation via geometric subsampling, yielding an estimate
  of ``Z(a)`` and of every contributing class size.
* :mod:`repro.sketch.z_sampler` -- Algorithm 4 (``Z-sampler``): samples a
  coordinate with probability approximately ``z(a_i)/Z(a)``, including the
  coordinate-injection step for "growing" classes.
* :mod:`repro.sketch.exact` -- centralized reference samplers used by tests
  and ablations.
* :mod:`repro.sketch.engine` -- switch between the fused (vectorized,
  default) execution engine and the retained naive reference engine; both
  produce bit-for-bit identical results and communication.
"""

from repro.sketch.countsketch import BatchedCountSketch, CountSketch
from repro.sketch.engine import fused_enabled, naive_reference, set_fused
from repro.sketch.exact import exact_z_distribution, exact_z_sample
from repro.sketch.hashing import KWiseHash, PairwiseHash, SignHash, SubsampleHash
from repro.sketch.heavy_hitters import (
    HeavyHittersResult,
    distributed_heavy_hitters,
    heavy_hitters_from_tables,
)
from repro.sketch.z_estimator import ZEstimate, ZEstimator
from repro.sketch.z_heavy_hitters import z_heavy_hitters
from repro.sketch.z_sampler import ZSampler, ZSamplerConfig

__all__ = [
    "PairwiseHash",
    "KWiseHash",
    "SignHash",
    "SubsampleHash",
    "CountSketch",
    "BatchedCountSketch",
    "distributed_heavy_hitters",
    "heavy_hitters_from_tables",
    "HeavyHittersResult",
    "z_heavy_hitters",
    "ZEstimator",
    "ZEstimate",
    "ZSampler",
    "ZSamplerConfig",
    "exact_z_distribution",
    "exact_z_sample",
    "fused_enabled",
    "naive_reference",
    "set_fused",
]
