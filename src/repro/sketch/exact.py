"""Centralized reference samplers (evaluation only).

These helpers materialise the summed vector and compute the exact
``z``-sampling distribution.  They are used by tests to measure how close the
distributed :class:`~repro.sketch.z_sampler.ZSampler` comes to the ideal
distribution, and by ablation benchmarks as the "perfect sampler" baseline.
They never touch the network.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.distributed.vector import DistributedVector
from repro.utils.rng import RandomState, ensure_rng

WeightFunction = Callable[[np.ndarray], np.ndarray]


def exact_z_distribution(
    vector: DistributedVector, weight_fn: WeightFunction
) -> np.ndarray:
    """Return the exact distribution ``p_i = z(a_i) / Z(a)`` over all coordinates.

    Raises
    ------
    ValueError
        If all weights are zero (the distribution is undefined).
    """
    summed = vector.exact_sum()
    weights = np.asarray(weight_fn(summed), dtype=float)
    if np.any(weights < 0):
        raise ValueError("weight function returned negative weights")
    total = weights.sum()
    if total <= 0:
        raise ValueError("all z-weights are zero; the sampling distribution is undefined")
    return weights / total


def exact_z_sample(
    vector: DistributedVector,
    weight_fn: WeightFunction,
    count: int,
    seed: RandomState = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw ``count`` coordinates from the exact z-distribution.

    Returns
    -------
    (indices, probabilities)
        Coordinates drawn with replacement and their exact probabilities.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    rng = ensure_rng(seed)
    distribution = exact_z_distribution(vector, weight_fn)
    indices = rng.choice(distribution.size, size=count, p=distribution)
    return indices.astype(np.int64), distribution[indices]


def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Return the total variation distance between two distributions."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError("distributions must have the same shape")
    return float(0.5 * np.abs(p - q).sum())


def empirical_distribution(indices: np.ndarray, dimension: int) -> np.ndarray:
    """Return the empirical distribution of drawn ``indices`` over ``[0, dimension)``."""
    idx = np.asarray(indices, dtype=np.int64)
    if idx.size == 0:
        raise ValueError("need at least one drawn index")
    counts = np.bincount(idx, minlength=dimension).astype(float)
    return counts / counts.sum()
