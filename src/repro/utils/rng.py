"""Random number generator management.

All stochastic components of the library accept either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` (fresh entropy).  Protocol code
frequently needs several *independent* streams -- e.g. one per simulated
server -- which :func:`spawn_rngs` provides deterministically from a parent
generator.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

#: Anything acceptable as a source of randomness.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an integer seed, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators.

    The streams are derived from a single :class:`numpy.random.SeedSequence`
    so the whole family is reproducible from one seed.

    Parameters
    ----------
    seed:
        Parent seed; see :func:`ensure_rng`.
    count:
        Number of independent generators to produce.

    Returns
    -------
    list of numpy.random.Generator
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing fresh seed material from the generator.
        seeds = seed.integers(0, 2**63 - 1, size=count, dtype=np.int64)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def random_signs(rng: np.random.Generator, size: int) -> np.ndarray:
    """Return a vector of ``size`` independent Rademacher (+/-1) signs."""
    return rng.integers(0, 2, size=size) * 2 - 1


def sample_without_replacement(
    rng: np.random.Generator, population: int, count: int
) -> np.ndarray:
    """Sample ``count`` distinct indices from ``range(population)``."""
    if count > population:
        raise ValueError(
            f"cannot sample {count} items from a population of {population} without replacement"
        )
    return rng.choice(population, size=count, replace=False)


def choice_from_weights(
    rng: np.random.Generator,
    weights: Sequence[float],
    size: Optional[int] = None,
) -> Union[int, np.ndarray]:
    """Draw indices with probability proportional to non-negative ``weights``.

    Raises
    ------
    ValueError
        If the weights are all zero or any weight is negative.
    """
    w = np.asarray(weights, dtype=float)
    if w.ndim != 1:
        raise ValueError("weights must be one-dimensional")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must not all be zero")
    p = w / total
    if size is None:
        return int(rng.choice(len(w), p=p))
    return rng.choice(len(w), size=size, p=p)
