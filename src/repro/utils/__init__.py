"""Utility helpers shared across the :mod:`repro` package.

The utilities are intentionally small and dependency free: seeded random
number generator management (:mod:`repro.utils.rng`), argument validation
(:mod:`repro.utils.validation`), a tiny structured logger
(:mod:`repro.utils.logging`) and dense linear-algebra helpers
(:mod:`repro.utils.linalg`).
"""

from repro.utils.linalg import (
    best_rank_k,
    column_space_projector,
    frobenius_norm_squared,
    projection_from_basis,
    row_norms_squared,
    top_k_right_singular_vectors,
)
from repro.utils.logging import get_logger
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_matrix,
    check_positive,
    check_probability_vector,
    check_rank,
    check_vector,
)

__all__ = [
    "RandomState",
    "ensure_rng",
    "spawn_rngs",
    "get_logger",
    "check_matrix",
    "check_vector",
    "check_positive",
    "check_rank",
    "check_probability_vector",
    "best_rank_k",
    "frobenius_norm_squared",
    "row_norms_squared",
    "top_k_right_singular_vectors",
    "projection_from_basis",
    "column_space_projector",
]
