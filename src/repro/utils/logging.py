"""Minimal logging helpers.

The library uses the standard :mod:`logging` module; this wrapper only
centralises the logger name prefix and a library-wide default format so that
examples and benchmark harnesses produce uniform output.
"""

from __future__ import annotations

import logging

_PREFIX = "repro"
_DEFAULT_FORMAT = "%(asctime)s %(name)s %(levelname)s: %(message)s"


def get_logger(name: str) -> logging.Logger:
    """Return a library logger named ``repro.<name>``.

    The logger is not configured with handlers; applications control output
    via :func:`configure_logging` or the standard logging API.
    """
    if name.startswith(_PREFIX):
        return logging.getLogger(name)
    return logging.getLogger(f"{_PREFIX}.{name}")


def configure_logging(level: int = logging.INFO) -> None:
    """Attach a basic stream handler to the library root logger.

    Safe to call multiple times; subsequent calls adjust the level of the
    root logger *and* of every previously attached handler, so lowering the
    level after an initial ``configure_logging(logging.WARNING)`` actually
    lets the more verbose records through.
    """
    root = logging.getLogger(_PREFIX)
    root.setLevel(level)
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_DEFAULT_FORMAT))
        handler.setLevel(level)
        root.addHandler(handler)
    else:
        for handler in root.handlers:
            handler.setLevel(level)
