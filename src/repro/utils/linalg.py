"""Dense linear-algebra helpers used throughout the library.

These are thin, well-tested wrappers around :mod:`numpy.linalg` /
:mod:`scipy.linalg` that encode the conventions used in the paper:

* ``[A]_k`` -- the best rank-``k`` approximation given by the truncated SVD;
* ``P = V V^T`` -- a ``d x d`` projection matrix onto the span of the top
  ``k`` right singular vectors;
* squared Frobenius norms and squared row norms, which drive the sampling
  distributions.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.validation import check_matrix, check_rank


def frobenius_norm_squared(matrix: np.ndarray) -> float:
    """Return ``||matrix||_F^2``."""
    arr = np.asarray(matrix, dtype=float)
    return float(np.sum(arr * arr))


def row_norms_squared(matrix: np.ndarray) -> np.ndarray:
    """Return the vector of squared Euclidean row norms ``|A_i|_2^2``."""
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"matrix must be 2-dimensional, got ndim={arr.ndim}")
    return np.einsum("ij,ij->i", arr, arr)


def top_k_right_singular_vectors(matrix: np.ndarray, k: int) -> np.ndarray:
    """Return a ``d x k`` orthonormal basis of the top-``k`` right singular space.

    Parameters
    ----------
    matrix:
        An ``n x d`` matrix.
    k:
        Number of singular vectors, ``1 <= k <= d``.
    """
    arr = check_matrix(matrix, "matrix")
    k = check_rank(k, arr.shape[1], "k")
    # Full (thin) SVD is adequate at the sizes used in the experiments and
    # avoids convergence issues of iterative solvers on nearly-degenerate
    # spectra.
    _, _, vt = np.linalg.svd(arr, full_matrices=False)
    return vt[:k].T.copy()


def projection_from_basis(basis: np.ndarray) -> np.ndarray:
    """Return the projection matrix ``V V^T`` for an orthonormal basis ``V`` (d x k)."""
    v = np.asarray(basis, dtype=float)
    if v.ndim != 2:
        raise ValueError("basis must be 2-dimensional (d x k)")
    return v @ v.T


def best_rank_k(matrix: np.ndarray, k: int) -> np.ndarray:
    """Return ``[A]_k``, the best rank-``k`` approximation of ``matrix``.

    Computed through the truncated SVD: ``[A]_k = U_k diag(s_k) V_k^T``.
    """
    arr = check_matrix(matrix, "matrix")
    k = check_rank(k, min(arr.shape), "k")
    u, s, vt = np.linalg.svd(arr, full_matrices=False)
    return (u[:, :k] * s[:k]) @ vt[:k]


def best_rank_k_error(matrix: np.ndarray, k: int) -> float:
    """Return ``||A - [A]_k||_F^2`` directly from the singular values.

    Faster and numerically cleaner than materialising ``[A]_k``.
    """
    arr = check_matrix(matrix, "matrix")
    k = check_rank(k, None, "k")
    s = np.linalg.svd(arr, compute_uv=False)
    if k >= s.size:
        return 0.0
    tail = s[k:]
    return float(np.sum(tail * tail))


def column_space_projector(matrix: np.ndarray) -> np.ndarray:
    """Return the orthogonal projector onto the column space of ``matrix``."""
    arr = check_matrix(matrix, "matrix")
    q, _ = np.linalg.qr(arr)
    return q @ q.T


def is_projection_matrix(p: np.ndarray, *, atol: float = 1e-8) -> bool:
    """Return True if ``p`` is (numerically) a symmetric idempotent matrix."""
    arr = np.asarray(p, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        return False
    symmetric = np.allclose(arr, arr.T, atol=atol)
    idempotent = np.allclose(arr @ arr, arr, atol=atol)
    return bool(symmetric and idempotent)


def projection_rank(p: np.ndarray, *, atol: float = 1e-6) -> int:
    """Return the rank of a projection matrix (the number of unit eigenvalues)."""
    arr = np.asarray(p, dtype=float)
    eigvals = np.linalg.eigvalsh((arr + arr.T) / 2.0)
    return int(np.sum(eigvals > 0.5))


def orthonormal_columns(matrix: np.ndarray, *, atol: float = 1e-8) -> bool:
    """Return True if the columns of ``matrix`` are orthonormal."""
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2:
        return False
    gram = arr.T @ arr
    return bool(np.allclose(gram, np.eye(arr.shape[1]), atol=atol))


def scaled_row_sample_matrix(
    rows: np.ndarray, probabilities: np.ndarray
) -> np.ndarray:
    """Build the FKV estimator matrix ``B`` from sampled rows and probabilities.

    Row ``i`` of the result is ``rows[i] / sqrt(r * probabilities[i])`` where
    ``r`` is the number of sampled rows, so that ``E[B^T B] = A^T A`` when the
    rows were drawn with probabilities ``probabilities``.
    """
    rows = check_matrix(rows, "rows")
    probs = np.asarray(probabilities, dtype=float)
    if probs.ndim != 1 or probs.shape[0] != rows.shape[0]:
        raise ValueError("probabilities must be a vector with one entry per sampled row")
    if np.any(probs <= 0):
        raise ValueError("sampling probabilities must be strictly positive")
    r = rows.shape[0]
    scale = 1.0 / np.sqrt(r * probs)
    return rows * scale[:, None]


def spectral_norm(matrix: np.ndarray) -> float:
    """Return the spectral (operator 2-) norm of ``matrix``."""
    arr = np.asarray(matrix, dtype=float)
    if arr.size == 0:
        return 0.0
    return float(np.linalg.norm(arr, ord=2))


def gram_difference_norm(a: np.ndarray, b: np.ndarray) -> float:
    """Return ``||A^T A - B^T B||_F`` (the quantity controlled by Lemma 3)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape[1] != b.shape[1]:
        raise ValueError("a and b must have the same number of columns")
    diff = a.T @ a - b.T @ b
    return float(np.linalg.norm(diff, ord="fro"))


def svd_rank_k_projection(matrix: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(V, P)`` where ``V`` is the top-``k`` right singular basis and ``P = V V^T``."""
    v = top_k_right_singular_vectors(matrix, k)
    return v, projection_from_basis(v)
