"""Argument validation helpers.

Each helper raises :class:`ValueError` (or :class:`TypeError`) with a message
naming the offending argument, and returns the validated / converted value so
callers can write ``x = check_matrix(x, "x")``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def check_matrix(
    value,
    name: str = "matrix",
    *,
    allow_empty: bool = False,
    dtype=float,
) -> np.ndarray:
    """Validate that ``value`` is a finite 2-D array and return it as ndarray."""
    arr = np.asarray(value, dtype=dtype)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got ndim={arr.ndim}")
    if not allow_empty and arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite values")
    return arr


def check_vector(
    value,
    name: str = "vector",
    *,
    allow_empty: bool = False,
    dtype=float,
) -> np.ndarray:
    """Validate that ``value`` is a finite 1-D array and return it as ndarray."""
    arr = np.asarray(value, dtype=dtype)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got ndim={arr.ndim}")
    if not allow_empty and arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite values")
    return arr


def check_positive(value, name: str = "value", *, strict: bool = True) -> float:
    """Validate that ``value`` is a positive (or non-negative) real number."""
    if not np.isscalar(value) or isinstance(value, (bool, np.bool_)):
        raise TypeError(f"{name} must be a real scalar, got {value!r}")
    val = float(value)
    if not np.isfinite(val):
        raise ValueError(f"{name} must be finite, got {val}")
    if strict and val <= 0:
        raise ValueError(f"{name} must be > 0, got {val}")
    if not strict and val < 0:
        raise ValueError(f"{name} must be >= 0, got {val}")
    return val


def check_rank(k, d: Optional[int] = None, name: str = "k") -> int:
    """Validate a target rank ``k`` (positive integer, at most ``d`` if given)."""
    if isinstance(k, (bool, np.bool_)):
        raise TypeError(f"{name} must be an integer, got bool")
    if not float(k).is_integer():
        raise TypeError(f"{name} must be an integer, got {k!r}")
    k_int = int(k)
    if k_int < 1:
        raise ValueError(f"{name} must be >= 1, got {k_int}")
    if d is not None and k_int > d:
        raise ValueError(f"{name} must be <= {d} (matrix width), got {k_int}")
    return k_int


def check_probability_vector(value, name: str = "probabilities") -> np.ndarray:
    """Validate a vector of probabilities summing (approximately) to one."""
    p = check_vector(value, name)
    if np.any(p < 0):
        raise ValueError(f"{name} must be non-negative")
    total = p.sum()
    if not np.isclose(total, 1.0, rtol=1e-6, atol=1e-8):
        raise ValueError(f"{name} must sum to 1, got {total}")
    return p


def check_same_shape(a: np.ndarray, b: np.ndarray, name_a: str = "a", name_b: str = "b") -> None:
    """Raise if two arrays differ in shape."""
    if a.shape != b.shape:
        raise ValueError(
            f"{name_a} and {name_b} must have the same shape, got {a.shape} vs {b.shape}"
        )


def check_fraction(value, name: str = "fraction") -> float:
    """Validate a number in the open interval (0, 1]."""
    val = check_positive(value, name)
    if val > 1:
        raise ValueError(f"{name} must be in (0, 1], got {val}")
    return val
