"""repro: Distributed low-rank approximation of implicit functions of a matrix.

A reference reproduction of Woodruff & Zhong, *Distributed Low Rank
Approximation of Implicit Functions of a Matrix* (ICDE 2016,
arXiv:1601.07721).

The public API is re-exported here; see the README for a quickstart and
``DESIGN.md`` for the full system inventory.

Typical usage::

    import numpy as np
    from repro import LocalCluster, DistributedPCA, arbitrary_partition

    data = np.random.default_rng(0).normal(size=(500, 40))
    cluster = LocalCluster(arbitrary_partition(data, num_servers=8, seed=1))
    result = DistributedPCA(k=5, epsilon=0.25, seed=2).fit(cluster)
    print(result.communication_ratio, result.evaluate(cluster.materialize_global()))
"""

from repro.core import (
    DistributedPCA,
    ExactNormSampler,
    GeneralizedZRowSampler,
    PCAResult,
    RowSample,
    RowSampler,
    UniformRowSampler,
    additive_error,
    approximation_report,
    practical_sample_count,
    predicted_additive_error,
    relative_error,
    softmax_row_sampler,
    theoretical_sample_count,
)
from repro.distributed import (
    LocalCluster,
    Network,
    Server,
    arbitrary_partition,
    duplicate_records_partition,
    entrywise_partition,
    row_partition,
)
from repro.functions import (
    FairPsi,
    GeneralizedMeanFunction,
    HuberPsi,
    Identity,
    L1L2Psi,
    make_function,
)
from repro.kernels import RandomFourierFeatures, distributed_rff_cluster

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # distributed substrate
    "LocalCluster",
    "Server",
    "Network",
    "row_partition",
    "arbitrary_partition",
    "entrywise_partition",
    "duplicate_records_partition",
    # core framework
    "DistributedPCA",
    "PCAResult",
    "RowSampler",
    "RowSample",
    "UniformRowSampler",
    "ExactNormSampler",
    "GeneralizedZRowSampler",
    "softmax_row_sampler",
    "additive_error",
    "relative_error",
    "approximation_report",
    "predicted_additive_error",
    "practical_sample_count",
    "theoretical_sample_count",
    # functions
    "Identity",
    "GeneralizedMeanFunction",
    "HuberPsi",
    "L1L2Psi",
    "FairPsi",
    "make_function",
    # kernels
    "RandomFourierFeatures",
    "distributed_rff_cluster",
]
