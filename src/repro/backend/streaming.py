"""Incrementally maintained sketch state for streaming delta ingestion.

A :class:`StreamingSketchState` pairs one sparse component with its exported
:class:`~repro.runtime.state.CountSketchState` and keeps the state current
under a stream of coordinate deltas *without resketching the component*:
each delta batch is sketched alone (cost proportional to the batch, not the
component) and folded in through the merge layer's coefficient-checked
table addition.

Because the sketch is linear and the merge is plain table addition, the
maintained state equals the state of resketching the appended component
from scratch up to float-addition associativity -- and for integer-weighted
streams (every value and delta an integer, the classic frequency-sketch
setting) the two are **bit-identical**.  This is the worker-side engine of
the runtime's ``update`` / ``stream_sketch`` ops and the session-side
engine of :meth:`repro.backend.base.ExecutionSession.sketch_state`; the
backend-matrix tests assert the bit-identity on every backend.
"""

from __future__ import annotations

import numpy as np


class StreamingSketchState:
    """One component's exported CountSketch state, maintained under deltas.

    Parameters
    ----------
    sketch:
        The broadcast :class:`~repro.sketch.countsketch.CountSketch` (hash
        coefficients shared by every shard of the stream).
    indices, values:
        The component's initial sparse ``(indices, values)`` pair; sketched
        once, from scratch, at construction.
    """

    def __init__(self, sketch, indices: np.ndarray, values: np.ndarray) -> None:
        self._sketch = sketch
        idx = np.asarray(indices, dtype=np.int64)
        val = np.asarray(values, dtype=float)
        table = sketch.sketch(idx, val) if idx.size else sketch.empty_table()
        self._state = sketch.export_state(table)
        self._updates = 0

    @classmethod
    def from_state(cls, sketch, state) -> "StreamingSketchState":
        """Adopt an exported state verbatim, without resketching anything.

        The checkpoint-restore constructor: a recovered worker installs the
        checkpointed :class:`~repro.runtime.state.CountSketchState` directly
        (its table already covers every update folded in before the
        checkpoint) and future :meth:`ingest` calls continue from there --
        bit-identical to the lost worker's uninterrupted state for
        integer-weighted streams.  ``state`` must have been exported by a
        sketch with ``sketch``'s coefficients and geometry.
        """
        from repro.core.errors import SketchCompatibilityError

        if not state.compatible_with(sketch.export_state()):
            raise SketchCompatibilityError(
                "checkpointed state was exported by a different sketch "
                "family; cannot adopt it"
            )
        restored = cls.__new__(cls)
        restored._sketch = sketch
        restored._state = state
        restored._updates = 0
        return restored

    @property
    def state(self):
        """The current :class:`~repro.runtime.state.CountSketchState`."""
        return self._state

    @property
    def updates_applied(self) -> int:
        """Number of delta batches folded in since construction."""
        return self._updates

    def matches(self, sketch) -> bool:
        """True when ``sketch`` has this state's coefficients and geometry.

        Used by the stream caches (worker- and session-side) to decide
        whether a cached state can serve a ``sketch_state`` call or must be
        rebuilt from scratch.
        """
        return self._state.compatible_with(sketch.export_state())

    def ingest(self, delta_indices: np.ndarray, delta_values: np.ndarray) -> None:
        """Fold one delta batch into the state (sketch the batch, add tables).

        The incremental refresh: only ``len(delta_indices)`` coordinates are
        hashed and scattered, and the merge layer verifies the coefficients
        before adding -- exactly the contract of
        :meth:`repro.runtime.state.CountSketchState.merge`.
        """
        d_idx = np.asarray(delta_indices, dtype=np.int64)
        d_val = np.asarray(delta_values, dtype=float)
        if d_idx.size == 0:
            return
        delta_state = self._sketch.export_state(self._sketch.sketch(d_idx, d_val))
        self._state = self._state.merge(delta_state)
        self._updates += 1
