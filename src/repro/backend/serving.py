"""Always-on serving: warm stream-keyed session reuse with admission control.

One-shot execution (the rest of :mod:`repro.backend`) opens a session,
runs a protocol, and tears everything down -- every ``submit`` pays the
handshake and a full sketch pass.  A serving deployment answers the same
query over the same data again and again; this module makes the N-th
identical submit cost a cache hit:

* :func:`stream_fingerprint` names a dataset by content -- one SHA-256
  over the dimension and every server's sparse component -- so "the same
  stream" is decided by bytes, not by who connected;
* :class:`ServingSession` wraps any
  :class:`~repro.backend.base.ExecutionSession` with a result cache keyed
  by the full query signature (function, draw count, seed, config): a
  warm submit returns the cached result without a single wave, charging
  **zero** words to the ledger, while a cold submit runs the unmodified
  protocol -- so warm and cold results are bit-identical by construction;
* :class:`ServingPool` holds the sessions, keyed by
  ``(tenant, fingerprint)``, LRU-bounded by ``max_sessions``, with
  per-tenant admission quotas (``max_tenants``,
  ``max_sessions_per_tenant``) that refuse -- typed
  :class:`~repro.core.errors.AdmissionError`, CLI exit code 9 -- before
  anything is opened, so a rejected tenant cannot perturb a neighbour's
  warm cache.

Streaming updates stay correct: :meth:`ServingSession.apply_deltas`
forwards to the backend session (whose workers refresh their sketch
states incrementally), drops every cached result, and re-fingerprints the
appended components so the pool re-keys the session under the stream it
now serves.

Everything here is coordinator-side bookkeeping over *references*: no RNG
state is touched and no words are charged by the cache itself, so the
accounting audit holds on warm, cold and rejected paths alike.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.errors import AdmissionError
from repro.distributed.vector import LocalComponent

__all__ = ["ServingPool", "ServingSession", "stream_fingerprint"]


def stream_fingerprint(components: Sequence[LocalComponent], dimension: int) -> str:
    """Content hash naming a dataset: dimension plus every server's component.

    Two submits hit the same warm session exactly when their per-server
    ``(indices, values)`` bytes agree -- the serving pool's key is the data
    itself, never the connection or the caller.
    """
    digest = hashlib.sha256()
    digest.update(f"dim={int(dimension)};servers={len(components)}".encode())
    for idx, val in components:
        idx = np.ascontiguousarray(np.asarray(idx, dtype=np.int64))
        val = np.ascontiguousarray(np.asarray(val, dtype=float))
        digest.update(b"|")
        digest.update(idx.tobytes())
        digest.update(val.tobytes())
    return digest.hexdigest()


class ServingSession:
    """One warm, reusable protocol session over a fingerprinted stream.

    Wraps an open :class:`~repro.backend.base.ExecutionSession`: the first
    :meth:`submit` of a query signature runs the protocol cold (charged,
    traced, audited as always); every later identical submit is answered
    from the result cache -- zero waves, zero charged words, the *same*
    result object.  Deltas invalidate the cache and re-fingerprint the
    stream, so a warm answer is never served across a data change.
    """

    def __init__(
        self,
        session,
        components: Sequence[LocalComponent],
        dimension: int,
        *,
        tenant: str = "",
        pool: Optional["ServingPool"] = None,
    ) -> None:
        self._session = session
        self._components = [
            (
                np.asarray(idx, dtype=np.int64),
                np.asarray(val, dtype=float),
            )
            for idx, val in components
        ]
        self._dimension = int(dimension)
        self._tenant = str(tenant)
        self._pool = pool
        self._fingerprint = stream_fingerprint(self._components, self._dimension)
        self._results: Dict[Tuple, object] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    # identity
    # ------------------------------------------------------------------ #
    @property
    def fingerprint(self) -> str:
        """Current content hash of the stream this session serves."""
        return self._fingerprint

    @property
    def tenant(self) -> str:
        """Tenant that opened (and is charged quota for) this session."""
        return self._tenant

    @property
    def session(self):
        """The wrapped backend session (cold path, ledger, lifecycle)."""
        return self._session

    @property
    def network(self):
        """The wrapped session's accounting network."""
        return self._session.network

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def submit(self, function: str = "identity", draws: int = 16, *, seed=0, config=None):
        """Answer one Z-sampling query, warm when the signature repeats.

        The cache key is the full query signature -- ``function`` (a
        :mod:`repro.functions` registry name), ``draws``, ``seed`` and the
        config's repr -- over the *current* stream contents; anything else
        runs cold.  Warm or cold, the returned draws/probabilities/estimate
        are bit-identical: the warm path just skips re-deriving them.
        """
        from repro.functions import make_function

        key = ("sample", str(function), int(draws), seed, repr(config))
        with self._lock:
            cached = self._results.get(key)
        telemetry = obs.active()
        warm = cached is not None
        if telemetry is not None:
            telemetry.metrics.counter(
                "serving.hits" if warm else "serving.misses"
            ).add(1)
        with obs.span(
            "serving:submit",
            warm=warm,
            function=str(function),
            draws=int(draws),
            tenant=self._tenant,
            stream=self._fingerprint[:12],
        ) as span:
            if warm:
                result = cached
            else:
                weight_fn = make_function(str(function)).sampling_weight
                result = self._session.sample(
                    weight_fn, int(draws), config=config, seed=seed
                )
                with self._lock:
                    self._results[key] = result
        if telemetry is not None and span is not None:
            telemetry.metrics.histogram("serving.submit.seconds").observe(
                span.duration_seconds
            )
        if warm:
            self.hits += 1
        else:
            self.misses += 1
        return result

    def apply_deltas(self, deltas: Sequence[LocalComponent]) -> None:
        """Ingest a delta batch; every cached result is dropped, the stream
        re-fingerprinted, and the owning pool (if any) re-keyed."""
        self._session.apply_deltas(deltas)
        folded = []
        for (idx, val), (d_idx, d_val) in zip(self._components, deltas):
            d_idx = np.asarray(d_idx, dtype=np.int64)
            d_val = np.asarray(d_val, dtype=float)
            folded.append(
                (np.concatenate((idx, d_idx)), np.concatenate((val, d_val)))
                if d_idx.size
                else (idx, val)
            )
        old = self._fingerprint
        with self._lock:
            self._components = folded
            self._results.clear()
            self._fingerprint = stream_fingerprint(folded, self._dimension)
        telemetry = obs.active()
        if telemetry is not None:
            telemetry.metrics.counter("serving.invalidations").add(1)
        if self._pool is not None:
            self._pool._rekey(self, old, self._fingerprint)

    # ------------------------------------------------------------------ #
    # audit and lifecycle (delegated)
    # ------------------------------------------------------------------ #
    def verify_accounting(self):
        """The wrapped session's ledger audit (warm submits added nothing)."""
        return self._session.verify_accounting()

    def close(self) -> None:
        self._results.clear()
        self._session.close()

    def __enter__(self) -> "ServingSession":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ServingSession(stream={self._fingerprint[:12]}, "
            f"tenant={self._tenant!r}, hits={self.hits}, misses={self.misses})"
        )


class ServingPool:
    """The always-on session pool of one serving coordinator process.

    ``open()`` with data a tenant has served before returns that tenant's
    live session -- warm handshake, warm caches, warm results; new data
    opens a cold session through ``backend.session()`` after admission
    control.  Capacity is bounded twice: the global ``max_sessions`` LRU
    evicts (closing the victim's backend session), while the per-tenant
    quotas *refuse* with a typed :class:`~repro.core.errors.AdmissionError`
    before anything is spawned -- an over-quota tenant cannot evict a
    neighbour.
    """

    def __init__(
        self,
        backend,
        *,
        max_sessions: int = 8,
        max_tenants: Optional[int] = None,
        max_sessions_per_tenant: Optional[int] = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        if max_tenants is not None and max_tenants < 1:
            raise ValueError(f"max_tenants must be >= 1, got {max_tenants}")
        if max_sessions_per_tenant is not None and max_sessions_per_tenant < 1:
            raise ValueError(
                f"max_sessions_per_tenant must be >= 1, got {max_sessions_per_tenant}"
            )
        self._backend = backend
        self._max_sessions = int(max_sessions)
        self._max_tenants = max_tenants
        self._max_sessions_per_tenant = max_sessions_per_tenant
        self._sessions: "OrderedDict[Tuple[str, str], ServingSession]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def open(
        self,
        components: Sequence[LocalComponent],
        dimension: int,
        *,
        tenant: str = "",
    ) -> ServingSession:
        """Return the tenant's live session for this stream, opening if admitted."""
        tenant = str(tenant)
        fingerprint = stream_fingerprint(components, dimension)
        key = (tenant, fingerprint)
        with self._lock:
            existing = self._sessions.get(key)
            if existing is not None:
                self._sessions.move_to_end(key)
                self._note("serving.sessions.hits")
                return existing
            self._admit(tenant)
        # Spawning runs outside the lock (it may bind sockets); the session
        # is inserted -- and capacity re-checked -- once it is live.
        with obs.span(
            "serving:open", tenant=tenant, stream=fingerprint[:12]
        ):
            session = self._backend.session(components, dimension)
        serving = ServingSession(
            session, components, dimension, tenant=tenant, pool=self
        )
        evicted = []
        with self._lock:
            racer = self._sessions.get(key)
            if racer is not None:  # pragma: no cover - concurrent same-key open
                self._sessions.move_to_end(key)
                evicted.append(serving)
                serving = racer
            else:
                self._sessions[key] = serving
                self._note("serving.sessions.misses")
                while len(self._sessions) > self._max_sessions:
                    _, victim = self._sessions.popitem(last=False)
                    evicted.append(victim)
                    self._note("serving.sessions.evictions")
        for victim in evicted:
            victim.close()
        return serving

    def _admit(self, tenant: str) -> None:
        """Quota check (pool lock held); raises before any resource exists."""
        if self._max_tenants is None and self._max_sessions_per_tenant is None:
            return
        tenants: Dict[str, int] = {}
        for (owner, _), _session in self._sessions.items():
            tenants[owner] = tenants.get(owner, 0) + 1
        if (
            self._max_tenants is not None
            and tenant not in tenants
            and len(tenants) >= self._max_tenants
        ):
            self._note("serving.admission.rejected")
            raise AdmissionError(
                f"tenant {tenant!r} refused: the pool already serves "
                f"{len(tenants)} tenants (max_tenants={self._max_tenants})"
            )
        if (
            self._max_sessions_per_tenant is not None
            and tenants.get(tenant, 0) >= self._max_sessions_per_tenant
        ):
            self._note("serving.admission.rejected")
            raise AdmissionError(
                f"tenant {tenant!r} refused: it already holds "
                f"{tenants[tenant]} sessions "
                f"(max_sessions_per_tenant={self._max_sessions_per_tenant})"
            )

    @staticmethod
    def _note(counter: str) -> None:
        telemetry = obs.active()
        if telemetry is not None:
            telemetry.metrics.counter(counter).add(1)

    def _rekey(self, serving: ServingSession, old: str, new: str) -> None:
        """Move a session under its post-delta fingerprint (freshly used)."""
        with self._lock:
            key = (serving.tenant, old)
            if self._sessions.get(key) is serving:
                del self._sessions[key]
                self._sessions[(serving.tenant, new)] = serving

    def close(self) -> None:
        """Close every pooled session (idempotent)."""
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.close()

    def __enter__(self) -> "ServingPool":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ServingPool(sessions={len(self)}, max_sessions={self._max_sessions}, "
            f"max_tenants={self._max_tenants}, "
            f"max_sessions_per_tenant={self._max_sessions_per_tenant})"
        )
