"""The execution-backend layer: one seam contract, many engines.

Algorithms 2/3/4 never touch a server's raw data directly -- all per-server
work flows through the seams of
:class:`~repro.distributed.vector.DistributedVector`
(``batched_sketch_tables``, ``subsample_restrictor``, ``collect``) plus a
handshake/shutdown lifecycle and per-tag word/byte accounting.  Before this
layer existed, each execution path (in-process simulation, shared-memory
worker pool, TCP coordinator) re-implemented that plumbing with its own
setup, accounting and teardown.  This module owns the contract once:

* an :class:`ExecutionBackend` is a named factory (``local``, ``mp``,
  ``loopback``, ``tcp`` -- see :mod:`repro.backend`) that opens sessions
  over a set of per-server sparse components;
* an :class:`ExecutionSession` is one open run: it hands out protocol
  vectors whose seams route to that backend's executors, runs the
  *unmodified* protocol code (:meth:`z_heavy_hitters`, :meth:`estimate`,
  :meth:`sample` live here, shared by every backend), ingests streaming
  deltas (:meth:`apply_deltas`), and exports incrementally maintained
  sketch state (:meth:`sketch_state`).

The load-bearing invariant, asserted by ``tests/test_backend_matrix.py``:
for a fixed seed, **every** backend produces bit-identical draws,
probabilities, estimates and per-tag word counts, and transport-backed
backends additionally move exactly ``BYTES_PER_WORD`` data bytes per
charged word.  A fourth backend only has to implement the four abstract
methods below to inherit the whole protocol surface and the accounting
contract (see the README's *Execution backends* section).
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.distributed.network import BYTES_PER_WORD, Network
from repro.distributed.vector import DistributedVector, LocalComponent


class ExecutionSession(abc.ABC):
    """One open protocol run against a backend's per-server executors.

    Subclasses provide the seam plumbing (how a vector's per-server work is
    executed, how deltas reach the servers, how stream-sketch states are
    produced); the protocol entry points, the streaming accounting and the
    word/byte audit live here, once.
    """

    #: Maximum per-session (and per-worker) cached stream-sketch states;
    #: least recently used streams are evicted beyond it.  Shared by every
    #: backend so cache behaviour -- hence float-stream results -- cannot
    #: diverge between them.
    MAX_STREAM_STATES = 4

    # ------------------------------------------------------------------ #
    # abstract seam surface
    # ------------------------------------------------------------------ #
    @property
    @abc.abstractmethod
    def dimension(self) -> int:
        """Length of the implicitly summed vector."""

    @property
    @abc.abstractmethod
    def network(self) -> Network:
        """The accounting network every protocol run charges into."""

    @abc.abstractmethod
    def vector(self) -> DistributedVector:
        """A protocol view of the summed vector, seams routed to this backend."""

    @abc.abstractmethod
    def apply_deltas(self, deltas: Sequence[LocalComponent]) -> None:
        """Apply per-server coordinate deltas to the session's base vector.

        ``deltas`` holds one sparse ``(indices, values)`` shard per server
        (the stream slice that arrived at that server).  Ingestion is free
        local work -- like the initial data placement, it charges no words
        -- and incrementally refreshes every cached stream-sketch state
        through the merge layer instead of resketching.  For
        integer-weighted streams the refreshed states and all subsequent
        protocol results are bit-identical to a from-scratch session over
        the appended components (asserted per backend by the matrix suite).
        """

    @abc.abstractmethod
    def _stream_sketch_states(self, sketch, stream: str, tag: str) -> List:
        """Per-server :class:`~repro.runtime.state.CountSketchState` list.

        Backend hook of :meth:`sketch_state`: produce (or refresh from the
        stream cache keyed by ``stream``) every server's exported state for
        the broadcast ``sketch``, server 0 first.  Accounting is handled by
        the caller; transport backends additionally ship the coefficients /
        tables as tagged wire sections under ``tag``.
        """

    # ------------------------------------------------------------------ #
    # shared protocol entry points (formerly re-implemented per path)
    # ------------------------------------------------------------------ #
    def _check_protocol_ready(self) -> None:
        """Hook: backends veto protocol runs they cannot serve (default: none)."""

    def z_heavy_hitters(self, params=None, *, seed=None, tag: str = "z_heavy_hitters"):
        """Run Algorithm 2 on this backend (same-seed identical everywhere)."""
        from repro.sketch.z_heavy_hitters import z_heavy_hitters

        self._check_protocol_ready()
        with obs.span("protocol:z_heavy_hitters", tag=tag):
            return z_heavy_hitters(self.vector(), params, seed=seed, tag=tag)

    def estimate(self, weight_fn, *, config=None, seed=None, stale_ok: bool = False):
        """Run Algorithm 3 (the Z-estimator) on this backend.

        With ``stale_ok`` on a supervised transport session, losing a worker
        for good (:class:`~repro.core.errors.WorkerLostError`) degrades
        instead of raising: the estimate is answered locally from the last
        worker checkpoints and returned as a
        :class:`~repro.runtime.supervisor.DegradedEstimate` whose ``stale``
        flag is explicit.  Backends without checkpoints ignore the flag and
        let the error surface.
        """
        from repro.core.errors import WorkerLostError
        from repro.sketch.z_estimator import ZEstimator
        from repro.sketch.z_sampler import ZSamplerConfig

        self._check_protocol_ready()
        config = config or ZSamplerConfig()
        estimator = ZEstimator(
            weight_fn,
            epsilon=config.epsilon,
            hh_params=config.hh_params,
            num_levels=config.num_levels,
            max_levels=config.max_levels,
            min_level_count=config.min_level_count,
            seed=seed,
        )
        try:
            with obs.span("protocol:estimate"):
                return estimator.estimate(self.vector())
        except WorkerLostError as exc:
            if not stale_ok:
                raise
            with obs.span("protocol:degraded_estimate", cause=type(exc).__name__):
                degraded = self._degraded_estimate(
                    weight_fn, config=config, seed=seed, cause=exc
                )
            if degraded is None:
                raise
            return degraded

    def _degraded_estimate(self, weight_fn, *, config, seed, cause):
        """Hook: answer ``estimate(..., stale_ok=True)`` from checkpointed state.

        Returning ``None`` (the default) re-raises the original
        :class:`~repro.core.errors.WorkerLostError`; supervised transport
        sessions override this to compute the estimate locally over the
        last checkpoints, flagged stale.
        """
        return None

    def sample(self, weight_fn, count: int, *, config=None, seed=None):
        """Run Algorithm 4 (Z-sampling) end-to-end on this backend."""
        from repro.sketch.z_sampler import ZSampler

        self._check_protocol_ready()
        sampler = ZSampler(weight_fn, config, seed=seed)
        with obs.span("protocol:sample", count=int(count)):
            return sampler.sample(self.vector(), count)

    # ------------------------------------------------------------------ #
    # streaming sketch export
    # ------------------------------------------------------------------ #
    def sketch_state(
        self,
        depth: int,
        width: int,
        *,
        seed=None,
        stream: str = "stream",
        tag: Optional[str] = None,
    ):
        """Export the merged CountSketch state of the implicit vector.

        The coordinator draws one sketch from ``seed``, broadcasts its
        coefficients (charged, like every seed broadcast), and every server
        ships back its component's table (charged); the merge layer adds
        the per-server states into the state of the summed vector.  States
        are cached per ``stream``: after :meth:`apply_deltas`, a repeated
        call with the same ``stream`` and coefficients serves the
        *incrementally refreshed* state -- only the deltas were sketched --
        bit-identical to a from-scratch export for integer-weighted
        streams.  Per-tag words (``<tag>:seeds``, ``<tag>:tables``) are
        identical on every backend; transport backends carry exactly
        ``BYTES_PER_WORD`` data bytes per charged word.
        """
        from repro.runtime.state import CountSketchState
        from repro.sketch.countsketch import CountSketch

        self._check_protocol_ready()
        tag = tag or f"stream_sketch:{stream}"
        sketch = CountSketch(int(depth), int(width), self.dimension, seed=seed)
        network = self.network
        with obs.span("protocol:sketch_state", stream=str(stream), tag=tag):
            for server in range(1, network.num_servers):
                network.charge(0, server, sketch.seed_word_count(), tag=f"{tag}:seeds")
            states = self._stream_sketch_states(sketch, str(stream), tag)
            for server in range(1, network.num_servers):
                network.charge(server, 0, sketch.table_word_count(), tag=f"{tag}:tables")
            return CountSketchState.merge_all(states)

    # ------------------------------------------------------------------ #
    # accounting and lifecycle
    # ------------------------------------------------------------------ #
    def verify_accounting(self) -> Dict[str, int]:
        """Return the per-tag data-byte ledger, auditing it where one exists.

        In-process backends never serialise, so their ledger is *defined*
        as ``BYTES_PER_WORD`` bytes per charged word; transport backends
        override this with the real wire audit
        (:meth:`~repro.distributed.network.TransportNetwork.verify_wire_accounting`),
        raising :class:`~repro.core.errors.WireAccountingError` on any
        mismatch.  Either way the returned mapping is comparable across
        backends -- the matrix suite asserts it is *equal* across them.
        """
        snapshot = self.network.snapshot()
        return {
            sketch_tag: words * BYTES_PER_WORD
            for sketch_tag, words in snapshot.words_by_tag.items()
        }

    def shutdown_workers(self) -> None:
        """Ask remote executors to stop serving (no-op for in-process backends)."""

    def close(self) -> None:
        """Release executors, pools and transports (idempotent)."""

    def __enter__(self) -> "ExecutionSession":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        self.close()


class ExecutionBackend(abc.ABC):
    """A named factory of :class:`ExecutionSession` runs.

    Backends are registered by name in :mod:`repro.backend` and selected
    from the experiments runner and the CLI (``--backend local|mp|tcp``).
    """

    #: Registry name (``local``, ``mp``, ``loopback``, ``tcp``).
    name: str = "abstract"
    #: True when :meth:`session` can charge into an existing
    #: :class:`~repro.distributed.network.Network` (in-process backends);
    #: transport backends own a byte-audited twin network instead, and
    #: callers embedding them bridge the per-tag words afterwards.
    reuses_network: bool = False

    @abc.abstractmethod
    def session(
        self,
        components: Sequence[LocalComponent],
        dimension: int,
        *,
        network: Optional[Network] = None,
        keep_messages: bool = False,
    ) -> ExecutionSession:
        """Open a session over one sparse ``(indices, values)`` pair per server."""

    def serving(
        self,
        *,
        max_sessions: int = 8,
        max_tenants: Optional[int] = None,
        max_sessions_per_tenant: Optional[int] = None,
    ):
        """An always-on :class:`~repro.backend.serving.ServingPool` over this backend.

        The pool keys live sessions by ``(tenant, stream fingerprint)`` so
        repeated submits over the same data are warm (zero waves, zero
        charged words), LRU-bounds them at ``max_sessions``, and enforces
        the per-tenant admission quotas with a typed
        :class:`~repro.core.errors.AdmissionError`.  Works for every
        registered backend -- serving is coordinator-side bookkeeping over
        the session contract, not a transport feature.
        """
        from repro.backend.serving import ServingPool

        return ServingPool(
            self,
            max_sessions=max_sessions,
            max_tenants=max_tenants,
            max_sessions_per_tenant=max_sessions_per_tenant,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"
