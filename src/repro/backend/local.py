"""The in-process execution backend (the simulation, behind the one contract).

``LocalSession`` is the reference implementation of the seam contract: the
per-server components live in this process, seams execute directly (or in a
bound worker pool -- see :class:`repro.backend.mp.MultiprocessSketchBackend`,
which reuses this session wholesale), communication is accounted on a plain
:class:`~repro.distributed.network.Network`, and streaming deltas append to
the components while the cached stream-sketch states refresh incrementally
through the merge layer.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Sequence

from repro.backend.base import ExecutionBackend, ExecutionSession
from repro.backend.streaming import StreamingSketchState
from repro.distributed.network import Network
from repro.distributed.vector import DistributedVector, LocalComponent


class LocalSession(ExecutionSession):
    """In-process session: components held locally, seams executed directly."""

    def __init__(
        self,
        components: Sequence[LocalComponent],
        dimension: int,
        *,
        network: Optional[Network] = None,
        keep_messages: bool = False,
        pool=None,
    ) -> None:
        self._network = (
            network
            if network is not None
            else Network(len(components), keep_messages=keep_messages)
        )
        self._pool = pool
        self._dimension = int(dimension)
        # Construction validates the components eagerly (shapes, ranges,
        # server count against the network).
        self._base = self._make_vector(components)
        #: stream name -> one StreamingSketchState per server (LRU-capped).
        self._streams: "OrderedDict[str, List[StreamingSketchState]]" = OrderedDict()

    def _make_vector(self, components: Sequence[LocalComponent]) -> DistributedVector:
        vector = DistributedVector(components, self._dimension, self._network)
        if self._pool is not None:
            vector.bind_worker_pool(self._pool)
        return vector

    # ------------------------------------------------------------------ #
    # seam surface
    # ------------------------------------------------------------------ #
    @property
    def dimension(self) -> int:
        """Length of the implicitly summed vector."""
        return self._dimension

    @property
    def network(self) -> Network:
        """The accounting network of this session."""
        return self._network

    def vector(self) -> DistributedVector:
        """The current base vector (replaced by :meth:`apply_deltas`)."""
        return self._base

    def apply_deltas(self, deltas: Sequence[LocalComponent]) -> None:
        """Append per-server deltas and refresh cached stream states in place.

        :meth:`DistributedVector.apply_deltas` validates the whole batch
        (and raises) *before* any state changes, so a rejected batch leaves
        the session untouched.
        """
        self._base = self._base.apply_deltas(deltas)
        for states in self._streams.values():
            for state, (d_idx, d_val) in zip(states, deltas):
                state.ingest(d_idx, d_val)

    def _stream_sketch_states(self, sketch, stream: str, tag: str) -> List:
        states = self._streams.get(stream)
        if states is not None and states and states[0].matches(sketch):
            self._streams.move_to_end(stream)
        else:
            if stream not in self._streams:
                while len(self._streams) >= self.MAX_STREAM_STATES:
                    self._streams.popitem(last=False)
            states = [
                StreamingSketchState(
                    sketch, *self._base.local_component(server)
                )
                for server in range(self._base.num_servers)
            ]
            self._streams[stream] = states
            self._streams.move_to_end(stream)
        return [state.state for state in states]

    def close(self) -> None:
        """Release the bound worker pool, if this session owns one."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None


class LocalBackend(ExecutionBackend):
    """In-process simulation backend (``--backend local``, the default)."""

    name = "local"
    reuses_network = True

    def session(
        self,
        components: Sequence[LocalComponent],
        dimension: int,
        *,
        network: Optional[Network] = None,
        keep_messages: bool = False,
    ) -> LocalSession:
        """Open an in-process session (optionally charging an existing network)."""
        return LocalSession(
            components, dimension, network=network, keep_messages=keep_messages
        )
