"""Execution backends: one seam contract, selectable by name.

The protocols of this library (Algorithms 2/3/4 and the streaming delta
workload) run unmodified over any :class:`~repro.backend.base.ExecutionBackend`;
the backend owns the per-server seam contract -- ``batched_sketch_tables``,
``subsample_restrictor``, ``collect``, the handshake/shutdown lifecycle and
the per-tag word/byte accounting.  Four engines are registered:

========== ==================================================================
``local``   in-process simulation (the default; fastest, exact accounting)
``mp``      per-server seam work in OS worker processes (shared-memory pool)
``loopback`` the coordinator/worker services over in-memory frames (full
            codec + byte audit, zero I/O)
``tcp``     the same services over real asyncio sockets
``sharded`` one logical server = K worker shards behind a merging facade,
            with live support rebalancing (``rebalance(plan)``)
========== ==================================================================

All five are **bit-identical** for a fixed seed -- draws, probabilities,
estimates, per-tag words -- and the transport-framed ones additionally
audit ``data bytes == 8 x words`` per tag (``tests/test_backend_matrix.py``).

Select one by name::

    from repro.backend import create_backend

    with create_backend("tcp").session(components, dimension) as session:
        draws = session.sample(weight_fn, 16, seed=7)
        session.apply_deltas(per_server_deltas)      # streaming ingestion
        state = session.sketch_state(5, 256, seed=1)  # incremental export

or from the CLI: ``python -m repro figure1 --backend mp``.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.backend.base import ExecutionBackend, ExecutionSession
from repro.backend.local import LocalBackend, LocalSession
from repro.backend.mp import MultiprocessSketchBackend
from repro.backend.streaming import StreamingSketchState

#: Registered backend factories, keyed by CLI name.
_BACKENDS: Dict[str, Callable[..., ExecutionBackend]] = {}


def register_backend(name: str, factory: Callable[..., ExecutionBackend]) -> None:
    """Register a backend factory under ``name`` (latest registration wins)."""
    _BACKENDS[str(name)] = factory


def available_backends() -> tuple:
    """Names accepted by :func:`create_backend` (and every ``--backend`` flag)."""
    return tuple(sorted(_BACKENDS))


def create_backend(name: str, *, kernel: str = None, **options) -> ExecutionBackend:
    """Instantiate a registered backend by name.

    ``options`` are forwarded to the backend factory (e.g.
    ``create_backend("mp", processes=4)`` or
    ``create_backend("tcp", concurrency=1)``).  ``kernel`` selects the
    compiled-kernel provider (``"numpy"``/``"numba"``; see
    :mod:`repro.sketch.kernels`) before the backend is constructed --
    the provider is an engine-global switch like fused/naive, orthogonal
    to the backend choice and bit-identical across providers, so every
    backend runs its sketch hot paths on whichever provider is active.
    Raises ``ValueError`` for an unknown backend or an unavailable
    provider.
    """
    try:
        factory = _BACKENDS[str(name)]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {name!r}; available: "
            + ", ".join(available_backends())
        ) from None
    if kernel is not None:
        from repro.sketch import engine

        engine.set_kernel_provider(kernel)
    return factory(**options)


def resolve_backend(backend) -> ExecutionBackend:
    """Coerce a backend name / instance / ``None`` into an :class:`ExecutionBackend`.

    ``None`` resolves to the default ``local`` backend -- the one choice
    that reproduces the pre-backend-layer behaviour exactly.
    """
    if backend is None:
        return create_backend("local")
    if isinstance(backend, ExecutionBackend):
        return backend
    return create_backend(str(backend))


def _transport_factory(kind: str) -> Callable[..., ExecutionBackend]:
    """Deferred transport-backend factory.

    :mod:`repro.backend.transport` imports :mod:`repro.runtime.service`,
    which itself builds on this package's base layer -- importing it lazily
    keeps the layering acyclic (base -> runtime services -> transport
    backend).
    """

    def make(**options) -> ExecutionBackend:
        from repro.backend.transport import TransportBackend

        return TransportBackend(kind, **options)

    return make


def _sharded_factory(**options) -> ExecutionBackend:
    """Deferred sharded-backend factory (same layering note as above)."""
    from repro.backend.sharded import ShardedBackend

    return ShardedBackend(**options)


register_backend("local", LocalBackend)
register_backend("mp", MultiprocessSketchBackend)
register_backend("loopback", _transport_factory("loopback"))
register_backend("tcp", _transport_factory("tcp"))
register_backend("sharded", _sharded_factory)


def __getattr__(name: str):
    """Lazy exports of the transport classes (same acyclicity note as above)."""
    if name in ("TransportBackend", "HostedTransportSession"):
        from repro.backend import transport

        return getattr(transport, name)
    if name in ("ShardedBackend", "ShardedSession", "ShardGroupTransport"):
        from repro.backend import sharded

        return getattr(sharded, name)
    if name in ("ServingPool", "ServingSession", "stream_fingerprint"):
        from repro.backend import serving

        return getattr(serving, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ExecutionBackend",
    "ExecutionSession",
    "LocalBackend",
    "LocalSession",
    "MultiprocessSketchBackend",
    "TransportBackend",
    "HostedTransportSession",
    "ShardedBackend",
    "ShardedSession",
    "ShardGroupTransport",
    "ServingPool",
    "ServingSession",
    "StreamingSketchState",
    "stream_fingerprint",
    "available_backends",
    "create_backend",
    "register_backend",
    "resolve_backend",
]
