"""Transport-backed execution backends (loopback frames and real TCP).

Both backends run the coordinator/worker services of
:mod:`repro.runtime.service` -- the session *is* a
:class:`~repro.runtime.service.CoordinatorService` -- but are
**self-hosting**: :meth:`TransportBackend.session` spawns one
:class:`~repro.runtime.service.WorkerService` per worker component in this
process and wires the coordinator to them through

* ``loopback`` -- in-memory frame delivery (zero I/O; encoding, decoding
  and the byte ledger are identical to TCP), or
* ``tcp`` -- real asyncio sockets (:class:`~repro.runtime.transport.WorkerServer`
  per worker, one :class:`~repro.runtime.transport.TcpTransport` each).

For deployments whose workers already run elsewhere (``python -m repro
serve``), construct a :class:`~repro.runtime.service.CoordinatorService`
over your own transports instead -- it implements the same session
contract; these backends exist so the *same* experiment/test/benchmark
code can select any execution engine by name.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.backend.base import ExecutionBackend
from repro.distributed.network import Network
from repro.distributed.vector import LocalComponent
from repro.runtime.service import CoordinatorService, WorkerService
from repro.runtime.transport import (
    LoopbackTransport,
    TcpTransport,
    WorkerServer,
)


class HostedTransportSession(CoordinatorService):
    """A coordinator session that also owns its in-process worker servers."""

    def __init__(self, *args, servers: Sequence[WorkerServer] = (), **kwargs) -> None:
        self._servers = list(servers)
        try:
            super().__init__(*args, **kwargs)
        except Exception:
            for server in self._servers:
                server.stop()
            raise

    def close(self) -> None:
        """Shut the hosted workers down, then release the transports."""
        if self._servers:
            try:
                self.shutdown_workers()
            except Exception:  # noqa: BLE001 - teardown must not mask the run
                pass
        super().close()
        for server in self._servers:
            server.stop()
        self._servers = []


class TransportBackend(ExecutionBackend):
    """Self-hosting transport backend (``--backend loopback`` / ``tcp``).

    Parameters
    ----------
    transport:
        ``"loopback"`` (in-memory frames) or ``"tcp"`` (real sockets).
    concurrency:
        Scatter-wave width of the coordinator (default: all workers).
    timeout, retries:
        Per-request deadline and reconnect budget of each
        :class:`~repro.runtime.transport.TcpTransport` (TCP only).
    subsample_cache_size:
        Worker-side subsample-cache LRU capacity
        (:class:`~repro.runtime.service.WorkerService`'s knob).
    """

    name = "tcp"
    reuses_network = False

    def __init__(
        self,
        transport: str = "tcp",
        *,
        concurrency: Optional[int] = None,
        timeout: float = 30.0,
        retries: int = 0,
        subsample_cache_size: Optional[int] = None,
    ) -> None:
        if transport not in ("loopback", "tcp"):
            raise ValueError(f"unknown transport kind {transport!r}")
        self._kind = transport
        self.name = transport
        self._concurrency = concurrency
        self._timeout = float(timeout)
        self._retries = int(retries)
        self._subsample_cache_size = subsample_cache_size

    def session(
        self,
        components: Sequence[LocalComponent],
        dimension: int,
        *,
        network: Optional[Network] = None,
        keep_messages: bool = False,
    ) -> HostedTransportSession:
        """Spawn the workers, connect the transports, return the coordinator."""
        if network is not None:
            raise ValueError(
                "transport backends own a byte-audited TransportNetwork; "
                "bridge per-tag words into an outer network after the run "
                "instead of sharing one"
            )
        if len(components) < 1:
            raise ValueError("need at least the coordinator's component")
        workers = [
            WorkerService(
                np.asarray(idx, dtype=np.int64),
                np.asarray(val, dtype=float),
                dimension,
                name=f"server-{server + 1}",
                max_subsample_caches=self._subsample_cache_size,
            )
            for server, (idx, val) in enumerate(components[1:])
        ]
        servers: List[WorkerServer] = []
        transports = []
        try:
            if self._kind == "tcp":
                for worker in workers:
                    server = WorkerServer(
                        worker.handle_frame,
                        stop_check=lambda worker=worker: worker.shutdown_requested,
                    )
                    servers.append(server)
                    host, port = server.start()
                    transports.append(
                        TcpTransport(
                            host, port, timeout=self._timeout, retries=self._retries
                        )
                    )
            else:
                transports = [
                    LoopbackTransport(worker.handle_frame) for worker in workers
                ]
            return HostedTransportSession(
                transports,
                dimension,
                components[0],
                keep_messages=keep_messages,
                concurrency=self._concurrency,
                servers=servers,
            )
        except Exception:
            for transport in transports:
                transport.close()
            for server in servers:
                server.stop()
            raise
