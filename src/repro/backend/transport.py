"""Transport-backed execution backends (loopback frames and real TCP).

Both backends run the coordinator/worker services of
:mod:`repro.runtime.service` -- the session *is* a
:class:`~repro.runtime.service.CoordinatorService` -- but are
**self-hosting**: :meth:`TransportBackend.session` spawns one
:class:`~repro.runtime.service.WorkerService` per worker component in this
process and wires the coordinator to them through

* ``loopback`` -- in-memory frame delivery (zero I/O; encoding, decoding
  and the byte ledger are identical to TCP), or
* ``tcp`` -- real asyncio sockets (:class:`~repro.runtime.transport.WorkerServer`
  per worker, one :class:`~repro.runtime.transport.TcpTransport` each).

With ``supervise=True`` the session carries a
:class:`~repro.runtime.supervisor.WorkerSupervisor` whose respawner re-runs
the same spawning closure the session was built with: a worker that dies
mid-protocol is replaced by a fresh hosted service, restored from its last
checkpoint, and the failed wave is re-issued -- same-seed results stay
bit-identical to an uninterrupted run, and the wire audit stays exact.

For deployments whose workers already run elsewhere (``python -m repro
serve``), construct a :class:`~repro.runtime.service.CoordinatorService`
over your own transports instead -- it implements the same session
contract; these backends exist so the *same* experiment/test/benchmark
code can select any execution engine by name.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.backend.base import ExecutionBackend
from repro.distributed.network import Network
from repro.distributed.vector import LocalComponent
from repro.runtime.service import CoordinatorService, WorkerService
from repro.runtime.supervisor import WorkerSupervisor
from repro.runtime.transport import (
    AsyncLoopbackTransport,
    AsyncTcpTransport,
    EventLoopThread,
    LoopbackTransport,
    RetryPolicy,
    TcpTransport,
    Transport,
    WorkerServer,
)
from repro.utils.logging import get_logger

logger = get_logger("backend.transport")


class HostedTransportSession(CoordinatorService):
    """A coordinator session that also owns its in-process worker servers.

    ``servers`` is kept **by reference**: a supervising backend's respawner
    appends each replacement server to the same list, so :meth:`close`
    tears down every server the session ever hosted, not just the originals.
    """

    def __init__(self, *args, servers: Sequence[WorkerServer] = (), **kwargs) -> None:
        self._servers = servers if isinstance(servers, list) else list(servers)
        try:
            super().__init__(*args, **kwargs)
        except Exception:
            for server in self._servers:
                server.stop()
            raise

    def close(self) -> None:
        """Shut the hosted workers down, then release the transports."""
        if self._servers:
            try:
                self.shutdown_workers()
            except Exception as exc:  # noqa: BLE001 - must not mask the run
                logger.debug(
                    "shutdown broadcast of session %s failed (workers are "
                    "stopped directly instead): %s: %s",
                    self._session, type(exc).__name__, exc,
                )
        super().close()
        for server in self._servers:
            server.stop()
        self._servers = []


class TransportBackend(ExecutionBackend):
    """Self-hosting transport backend (``--backend loopback`` / ``tcp``).

    Parameters
    ----------
    transport:
        ``"loopback"`` (in-memory frames) or ``"tcp"`` (real sockets).
    concurrency:
        Scatter-wave width of the coordinator (default: all workers).
    timeout, retries:
        Per-request deadline and reconnect budget of each
        :class:`~repro.runtime.transport.TcpTransport` (TCP only).
    backoff:
        First reconnect pause in seconds; grows exponentially per attempt
        (jittered :class:`~repro.runtime.transport.RetryPolicy`).  The
        default ``0.0`` reproduces the old immediate-resend behaviour.
    subsample_cache_size:
        Worker-side subsample-cache LRU capacity
        (:class:`~repro.runtime.service.WorkerService`'s knob).
    max_sessions, max_tenants, max_sessions_per_tenant:
        Worker-side session-LRU capacity and per-tenant admission quotas
        (:class:`~repro.runtime.service.WorkerService` knobs; ``None``
        keeps the defaults / disables the quota).
    tenant:
        Tenant id stamped on this session's cache-opening frames so the
        workers can enforce per-tenant quotas; empty (the default) leaves
        the frames -- and therefore the byte ledger -- unchanged.
    async_scatter:
        Drive every worker connection from one shared
        :class:`~repro.runtime.transport.EventLoopThread` instead of a
        per-session thread pool: a scatter wave is a single
        ``asyncio.gather``, so one process can hold many concurrent serving
        sessions at the cost of sockets, not threads.  Same frames, same
        ledger -- only the scheduling changes.
    supervise:
        Attach a :class:`~repro.runtime.supervisor.WorkerSupervisor` whose
        respawner re-spawns hosted workers in-process; sessions then survive
        worker kills mid-protocol (checkpoint restore + journal replay +
        wave re-issue) with bit-identical results.
    checkpoint_every, max_worker_restarts, heartbeat_interval:
        Supervisor knobs: checkpoint cadence in delta waves, per-worker
        restart budget, and the optional background heartbeat period in
        seconds (None disables the monitor thread).
    """

    name = "tcp"
    reuses_network = False

    def __init__(
        self,
        transport: str = "tcp",
        *,
        concurrency: Optional[int] = None,
        timeout: float = 30.0,
        retries: int = 0,
        backoff: float = 0.0,
        subsample_cache_size: Optional[int] = None,
        max_sessions: Optional[int] = None,
        max_tenants: Optional[int] = None,
        max_sessions_per_tenant: Optional[int] = None,
        tenant: str = "",
        async_scatter: bool = False,
        supervise: bool = False,
        checkpoint_every: int = 1,
        max_worker_restarts: int = 2,
        heartbeat_interval: Optional[float] = None,
    ) -> None:
        if transport not in ("loopback", "tcp"):
            raise ValueError(f"unknown transport kind {transport!r}")
        self._kind = transport
        self.name = transport
        self._concurrency = concurrency
        self._timeout = float(timeout)
        self._policy = RetryPolicy(retries=max(0, int(retries)), backoff=float(backoff))
        self._subsample_cache_size = subsample_cache_size
        self._max_sessions = max_sessions
        self._max_tenants = max_tenants
        self._max_sessions_per_tenant = max_sessions_per_tenant
        self._tenant = str(tenant)
        self._async_scatter = bool(async_scatter)
        self._supervise = bool(supervise)
        if self._supervise and self._async_scatter:
            raise ValueError(
                "async_scatter and supervise are mutually exclusive for now: "
                "the supervisor's respawner swaps blocking transports in"
            )
        self._checkpoint_every = int(checkpoint_every)
        self._max_worker_restarts = int(max_worker_restarts)
        self._heartbeat_interval = heartbeat_interval

    def session(
        self,
        components: Sequence[LocalComponent],
        dimension: int,
        *,
        network: Optional[Network] = None,
        keep_messages: bool = False,
    ) -> HostedTransportSession:
        """Spawn the workers, connect the transports, return the coordinator."""
        if network is not None:
            raise ValueError(
                "transport backends own a byte-audited TransportNetwork; "
                "bridge per-tag words into an outer network after the run "
                "instead of sharing one"
            )
        if len(components) < 1:
            raise ValueError("need at least the coordinator's component")
        worker_components = [
            (np.asarray(idx, dtype=np.int64), np.asarray(val, dtype=float))
            for idx, val in components[1:]
        ]
        servers: List[WorkerServer] = []
        endpoints: Dict[int, Tuple[str, int]] = {}
        handlers: Dict[int, Callable[[bytes], bytes]] = {}
        loop_thread = EventLoopThread() if self._async_scatter else None

        def spawn_transport(worker_index: int) -> Transport:
            # One closure for construction AND respawning: a replacement
            # worker is a fresh service over the *original* component (the
            # supervisor's restore overwrites it with the checkpoint anyway),
            # hosted exactly like the one it replaces.
            with obs.span(
                "backend:spawn_worker", worker=worker_index, transport=self._kind
            ):
                return spawn(worker_index)

        def spawn(worker_index: int) -> Transport:
            idx, val = worker_components[worker_index]
            service = WorkerService(
                idx,
                val,
                dimension,
                name=f"server-{worker_index + 1}",
                max_subsample_caches=self._subsample_cache_size,
                max_sessions=self._max_sessions,
                max_tenants=self._max_tenants,
                max_sessions_per_tenant=self._max_sessions_per_tenant,
            )
            if self._kind == "tcp":
                server = WorkerServer(
                    service.handle_frame,
                    stop_check=lambda: service.shutdown_requested,
                )
                servers.append(server)
                host, port = server.start()
                endpoints[worker_index] = (host, port)
                if loop_thread is not None:
                    return AsyncTcpTransport(
                        host, port, loop_thread, timeout=self._timeout
                    )
                return TcpTransport(
                    host, port, timeout=self._timeout, retry_policy=self._policy
                )
            handlers[worker_index] = service.handle_frame
            if loop_thread is not None:
                return AsyncLoopbackTransport(service.handle_frame, loop_thread)
            return LoopbackTransport(service.handle_frame)

        def probe_factory(worker_index: int) -> Transport:
            if self._kind == "tcp":
                host, port = endpoints[worker_index]
                return TcpTransport(host, port, timeout=self._timeout)
            return LoopbackTransport(handlers[worker_index])

        supervisor = None
        if self._supervise:
            supervisor = WorkerSupervisor(
                respawner=spawn_transport,
                max_worker_restarts=self._max_worker_restarts,
                checkpoint_every=self._checkpoint_every,
                heartbeat_interval=self._heartbeat_interval,
                probe_factory=(
                    probe_factory if self._heartbeat_interval is not None else None
                ),
            )
        transports: List[Transport] = []
        try:
            for worker_index in range(len(worker_components)):
                transports.append(spawn_transport(worker_index))
            return HostedTransportSession(
                transports,
                dimension,
                components[0],
                keep_messages=keep_messages,
                concurrency=self._concurrency,
                supervisor=supervisor,
                servers=servers,
                tenant=self._tenant,
                scatter_loop=loop_thread,
            )
        except Exception:
            for transport in transports:
                transport.close()
            for server in servers:
                server.stop()
            if loop_thread is not None:
                loop_thread.close()
            raise
