"""The shared-memory multiprocessing execution backend.

The session *is* a :class:`~repro.backend.local.LocalSession` -- the mp
path shares the in-process orchestration wholesale -- with one difference:
a :class:`~repro.distributed.mp_backend.SketchProcessPool` is bound to the
session's vectors, so the per-server seam work (batched sketching,
subsample-hash evaluation) runs in worker processes served from
shared-memory domain caches and published components.  Results, draws and
per-tag accounting are bit-for-bit identical to the ``local`` backend
(asserted by the backend-matrix suite); binding per session replaces the
old engine-global ``parallel_pool`` plumbing for backend users while
:func:`repro.sketch.engine.multiprocess_execution` keeps working for
direct opt-in.

Streaming note: delta ingestion and stream-sketch export run in the
coordinator process (they are not per-server hot seams); only the protocol
seams dispatch to the pool.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.backend.base import ExecutionBackend
from repro.backend.local import LocalSession
from repro.distributed.network import Network
from repro.distributed.vector import LocalComponent


class MultiprocessSketchBackend(ExecutionBackend):
    """Per-server seam work in OS worker processes (``--backend mp``).

    Parameters
    ----------
    processes:
        Worker process count; defaults to ``os.cpu_count()``.
    """

    name = "mp"
    reuses_network = True

    def __init__(self, processes: Optional[int] = None) -> None:
        if processes is not None and processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        self._processes = processes

    def session(
        self,
        components: Sequence[LocalComponent],
        dimension: int,
        *,
        network: Optional[Network] = None,
        keep_messages: bool = False,
    ) -> LocalSession:
        """Open a session whose vectors dispatch seam work to a fresh pool.

        The session owns the pool: :meth:`LocalSession.close` shuts the
        worker processes down.
        """
        from repro.distributed.mp_backend import SketchProcessPool

        return LocalSession(
            components,
            dimension,
            network=network,
            keep_messages=keep_messages,
            pool=SketchProcessPool(self._processes),
        )
