"""Sharded execution backend: one logical server = K worker shards.

The paper's protocol treats each server as one machine; this backend breaks
that equation for components bigger than any machine.  Each *logical*
server's sparse component is split by a contiguous-range
:class:`~repro.distributed.partition.ShardAssignment` across ``shards``
in-process :class:`~repro.runtime.service.WorkerService` shards, and a
:class:`ShardGroupTransport` facade presents the group to an unmodified
:class:`~repro.runtime.service.CoordinatorService` as ONE worker:

* every protocol op (``subsample`` / ``sketch`` / ``stream_sketch`` /
  ``collect`` / ``update`` / ``checkpoint`` / ``restore`` ...) fans out to
  the shards and the per-shard replies are merged *at the seam* -- sketch
  table stacks add (CountSketch is linear; the merge contract of
  :mod:`repro.runtime.state`), collected values add (each coordinate lives
  in exactly one shard, the others contribute exact zeros), supports sum;
* the merged reply is re-encoded as one frame with the same tagged-section
  structure an unsharded worker would produce, so the coordinator's per-tag
  word accounting and the byte audit
  (:meth:`~repro.distributed.network.TransportNetwork.verify_wire_accounting`)
  charge the logical server **exactly** as the unsharded run would -- the
  shard fan-out is invisible to the ledger;
* ``checkpoint`` bundles the per-shard snapshots plus the live assignment
  into one :class:`~repro.runtime.state.ShardedWorkerCheckpoint`, so the
  existing :class:`~repro.runtime.supervisor.WorkerSupervisor` machinery
  (restore + journal replay + wave re-issue) heals a killed shard group
  with bit-identical results and a rebalanced layout intact.

**Live rebalancing.**  :meth:`ShardGroupTransport.rebalance` migrates
support between shards *while a session is live*, built entirely from the
existing ``checkpoint`` / ``restore`` / ``update`` ops: snapshot every
shard, restore each source to its kept-only component, ship every moved
piece to its target as a seq-less ``update`` (ingested incrementally into
the target's cached stream states), then atomically swap the assignment
map.  :meth:`ShardedSession.rebalance` wraps that per logical worker with
the supervisor's checkpoint/rollback protocol, so a shard killed *during*
migration rolls back to the pre-migration snapshot and retries -- draws,
estimates and per-tag charged words stay bit-identical throughout.

Migration is pure control plane: like delta ingestion and supervision
frames it moves zero charged words, so a rebalanced run's ledger matches
an unsharded run's to the byte.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.backend.base import ExecutionBackend
from repro.core.errors import WorkerProtocolError
from repro.distributed.network import Network
from repro.distributed.partition import ShardAssignment
from repro.distributed.vector import LocalComponent
from repro.runtime import wire
from repro.runtime.service import CoordinatorService, WorkerService
from repro.runtime.state import (
    ShardedWorkerCheckpoint,
    WorkerCheckpoint,
    checkpoint_from_payload,
)
from repro.runtime.supervisor import FATAL, WorkerSupervisor, classify_failure
from repro.runtime.transport import LoopbackTransport, Transport
from repro.utils.logging import get_logger

logger = get_logger("backend.sharded")


class ShardGroupTransport(Transport):
    """A :class:`~repro.runtime.transport.Transport` facade over K shards.

    Decodes each coordinator frame once, fans the op out to the shard
    transports, merges the replies, and re-encodes ONE reply frame carrying
    the same tagged data sections an unsharded worker would have sent.
    Broadcast-shaped ops forward the original frame bytes verbatim; only
    ``update`` (deltas split by the assignment) and ``restore`` (per-shard
    checkpoints) are re-cut per shard.  Shard-level sub-frames never touch
    the coordinator's network object, so accounting sees one logical worker.

    A re-entrant lock serialises all shard traffic: the facade is exactly
    as thread-safe as any other single transport (the coordinator's scatter
    waves issue one in-flight request per transport, but probes and
    rebalancing may arrive from other threads).

    ``shard_busy_seconds`` accumulates each shard's busy time; on a real
    deployment the shards run on separate machines, so
    :meth:`critical_path_seconds` (the max, not the sum) models the
    logical server's latency -- the quantity the skew benchmark gates on.
    """

    def __init__(
        self,
        shard_transports: Sequence[Transport],
        assignment: ShardAssignment,
        *,
        name: str = "",
    ) -> None:
        if len(shard_transports) != assignment.num_shards:
            raise ValueError(
                f"assignment maps {assignment.num_shards} shards, "
                f"got {len(shard_transports)} transports"
            )
        self._shards = list(shard_transports)
        self._assignment = assignment
        self._name = name
        self._lock = threading.RLock()
        self.shard_busy_seconds: List[float] = [0.0] * len(self._shards)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def assignment(self) -> ShardAssignment:
        """The live coordinate -> shard map (swapped by :meth:`rebalance`)."""
        with self._lock:
            return self._assignment

    def reset_busy(self) -> None:
        """Zero the per-shard busy-time accumulators (benchmark hook)."""
        with self._lock:
            self.shard_busy_seconds = [0.0] * len(self._shards)

    def critical_path_seconds(self) -> float:
        """The slowest shard's accumulated busy time (modeled latency)."""
        with self._lock:
            return max(self.shard_busy_seconds)

    def shard_supports(self) -> List[int]:
        """Per-shard stored-pair counts, via direct (uncharged) pings."""
        ping = wire.encode_frame("ping", {"session": ""})
        with self._lock:
            return [
                int(self._ask(shard, ping).meta.get("support", 0))
                for shard in range(len(self._shards))
            ]

    # ------------------------------------------------------------------ #
    # shard rpc
    # ------------------------------------------------------------------ #
    def _ask(self, shard: int, frame_bytes: bytes) -> wire.DecodedFrame:
        """One shard round-trip; shard ``error`` replies become typed raises."""
        start = time.perf_counter()
        try:
            raw = self._shards[shard].request(frame_bytes)
        finally:
            self.shard_busy_seconds[shard] += time.perf_counter() - start
        reply = wire.decode_frame(raw)
        if reply.op == "error":
            raise WorkerProtocolError(
                f"shard {shard + 1}/{len(self._shards)} of "
                f"{self._name or 'worker'} failed: "
                f"{reply.meta.get('type', 'Error')}: {reply.meta.get('message', '')}"
            )
        return reply

    def _broadcast(self, frame_bytes: bytes) -> List[wire.DecodedFrame]:
        return [self._ask(shard, frame_bytes) for shard in range(len(self._shards))]

    # ------------------------------------------------------------------ #
    # transport contract
    # ------------------------------------------------------------------ #
    def request(self, frame: bytes) -> bytes:
        request_id = 0
        with self._lock:
            try:
                decoded = wire.decode_frame(frame)
                request_id = decoded.request_id
                merger = getattr(self, f"_merge_{decoded.op}", None)
                if merger is None:
                    raise WorkerProtocolError(f"unknown op {decoded.op!r}")
                op, meta, entries = merger(decoded, bytes(frame))
            except Exception as exc:  # noqa: BLE001 - classified below
                if classify_failure(exc) != FATAL:
                    # Connection-shaped: a dead shard means the logical
                    # worker is dead; surface it so the supervisor respawns
                    # the whole group (the checkpoint restores every shard).
                    raise
                return wire.encode_frame(
                    "error",
                    {"type": type(exc).__name__, "message": str(exc)},
                    request_id=request_id,
                )
        return wire.encode_frame(op, meta, entries, request_id=request_id)

    def probe(self, frame: bytes) -> bool:
        try:
            with self._lock:
                return all(shard.probe(frame) for shard in self._shards)
        except Exception:  # noqa: BLE001 - a probe must never raise
            return False

    def close(self) -> None:
        for shard, transport in enumerate(self._shards):
            try:
                transport.close()
            except Exception as exc:  # noqa: BLE001 - teardown must not mask
                logger.debug(
                    "closing shard %d/%d of %s failed: %s: %s",
                    shard + 1, len(self._shards), self._name or "worker",
                    type(exc).__name__, exc,
                )

    # ------------------------------------------------------------------ #
    # per-op merges (each returns the merged reply's op, meta, entries)
    # ------------------------------------------------------------------ #
    def _merge_hello(self, frame, raw):
        replies = self._broadcast(raw)
        dims = {int(reply.meta.get("dimension", -1)) for reply in replies}
        if len(dims) != 1:
            raise WorkerProtocolError(
                f"shards of {self._name or 'worker'} disagree on the "
                f"dimension: {sorted(dims)}"
            )
        support = sum(int(reply.meta.get("support", 0)) for reply in replies)
        return "hello", {
            "dimension": dims.pop(), "support": support, "name": self._name,
        }, []

    def _merge_ping(self, frame, raw):
        replies = self._broadcast(raw)
        return "pong", {
            "support": sum(int(reply.meta.get("support", 0)) for reply in replies),
            "seq": max(int(reply.meta.get("seq", 0)) for reply in replies),
            "name": self._name,
        }, []

    def _merge_subsample(self, frame, raw):
        # Every shard caches g over its own piece; the cached-entry count a
        # worker reports is its support, so the logical total is the sum.
        replies = self._broadcast(raw)
        cached = sum(int(reply.meta.get("cached", 0)) for reply in replies)
        return "ack", {"cached": cached}, []

    def _merge_sketch(self, frame, raw):
        stacks = [
            np.asarray(reply.entry(0), dtype=float)
            for reply in self._broadcast(raw)
        ]
        return "tables", {}, [
            (frame.meta["tables_tag"], self._sum_tables(stacks, "sketch"))
        ]

    def _merge_stream_sketch(self, frame, raw):
        tables = [
            np.asarray(reply.entry(0), dtype=float)
            for reply in self._broadcast(raw)
        ]
        return "state", {}, [
            (frame.meta["tables_tag"], self._sum_tables(tables, "stream_sketch"))
        ]

    def _sum_tables(self, tables: List[np.ndarray], op: str) -> np.ndarray:
        for table in tables[1:]:
            if table.shape != tables[0].shape:
                raise WorkerProtocolError(
                    f"shards of {self._name or 'worker'} answered {op!r} with "
                    f"mismatched table shapes {tables[0].shape} vs {table.shape}"
                )
        # Left-fold addition, the exact merge order of CountSketchState.merge_all.
        merged = tables[0]
        for table in tables[1:]:
            merged = merged + table
        return merged

    def _merge_collect(self, frame, raw):
        query = np.asarray(frame.entry(0), dtype=np.int64)
        total = np.zeros(query.shape, dtype=float)
        for shard, reply in enumerate(self._broadcast(raw)):
            values = np.asarray(reply.entry(0), dtype=float)
            if values.shape != query.shape:
                raise WorkerProtocolError(
                    f"shard {shard + 1} of {self._name or 'worker'} answered "
                    f"collect with {values.shape} values for {query.shape} queries"
                )
            # Exact even for floats: every stored duplicate of a coordinate
            # lives in one shard, the other shards contribute exactly 0.0.
            total = total + values
        return "values", {}, [(frame.meta["tag"], total)]

    def _merge_update(self, frame, raw):
        d_idx, d_val = frame.entry(0)
        pieces = self._assignment.split(d_idx, d_val)
        support = 0
        applied = False
        for shard, piece in enumerate(pieces):
            # Empty pieces are sent too: every shard's exactly-once seq
            # ledger must advance in lockstep, or a later retry of this seq
            # would be deduped on some shards and fresh on others.
            reply = self._ask(
                shard, wire.encode_frame("update", frame.meta, [(None, piece)])
            )
            support += int(reply.meta.get("support", 0))
            applied = applied or bool(reply.meta.get("applied", False))
        return "ack", {"support": support, "applied": applied}, []

    def _merge_checkpoint(self, frame, raw):
        shards = [
            WorkerCheckpoint.from_payload(reply.entry(0))
            for reply in self._broadcast(raw)
        ]
        checkpoint = ShardedWorkerCheckpoint(
            assignment=self._assignment, shards=shards
        )
        return "checkpoint", {
            "support": checkpoint.support, "words": checkpoint.word_count(),
        }, [(None, checkpoint._as_payload())]

    def _merge_restore(self, frame, raw):
        checkpoint = checkpoint_from_payload(frame.entry(0))
        if not isinstance(checkpoint, ShardedWorkerCheckpoint):
            raise WorkerProtocolError(
                f"{self._name or 'worker'} is a shard group; it restores "
                "sharded checkpoints only"
            )
        if checkpoint.assignment.num_shards != len(self._shards):
            raise WorkerProtocolError(
                f"checkpoint maps {checkpoint.assignment.num_shards} shards, "
                f"{self._name or 'worker'} runs {len(self._shards)}"
            )
        support = 0
        for shard, piece in enumerate(checkpoint.shards):
            reply = self._ask(
                shard,
                wire.encode_frame("restore", frame.meta, [(None, piece._as_payload())]),
            )
            support += int(reply.meta.get("support", 0))
        # Adopt the checkpointed map last: a rebalanced layout survives a
        # group respawn, and a failed per-shard restore leaves the old map.
        self._assignment = checkpoint.assignment
        return "ack", {"restored": True, "support": support}, []

    def _merge_shutdown(self, frame, raw):
        self._broadcast(raw)
        return "ack", {"shutdown": True}, []

    # ------------------------------------------------------------------ #
    # live migration
    # ------------------------------------------------------------------ #
    def rebalance(self, assignment: ShardAssignment, *, session: str = "") -> None:
        """Migrate stored support between shards to match ``assignment``.

        Built from the ops the shards already serve, in an order that is
        safe when a shard is both a source and a target:

        1. snapshot every shard (``checkpoint``);
        2. restore each *source* to its kept-only component (``restore``
           with the snapshot minus the moved entries -- the ledger entry is
           preserved, the shard-local stream states are dropped and rebuilt
           incrementally on demand, bit-identical for integer streams);
        3. ship every moved piece to its target as a seq-less ``update``
           (ingested into the target's cached stream states);
        4. swap the assignment map.

        A failure anywhere leaves the map unswapped; the supervising caller
        (:meth:`ShardedSession.rebalance`) rolls the whole group back to
        its pre-migration checkpoint and retries.
        """
        with self._lock:
            if assignment.num_shards != len(self._shards):
                raise ValueError(
                    f"new assignment maps {assignment.num_shards} shards, "
                    f"this group runs {len(self._shards)}"
                )
            if assignment.dimension != self._assignment.dimension:
                raise ValueError(
                    f"new assignment covers dimension {assignment.dimension}, "
                    f"this group serves {self._assignment.dimension}"
                )
            if assignment.same_as(self._assignment):
                return
            with obs.span(
                "rebalance:migrate",
                group=self._name or "worker",
                shards=len(self._shards),
                session=session,
            ) as migrate_span:
                meta = {"session": session}
                checkpoint_frame = wire.encode_frame("checkpoint", meta)
                snapshots = [
                    WorkerCheckpoint.from_payload(
                        self._ask(shard, checkpoint_frame).entry(0)
                    )
                    for shard in range(len(self._shards))
                ]
                moves = []
                for source, snapshot in enumerate(snapshots):
                    dest = assignment.shard_of(snapshot.indices)
                    keep = dest == source
                    if not bool(keep.all()):
                        kept = WorkerCheckpoint(
                            dimension=snapshot.dimension,
                            indices=snapshot.indices[keep],
                            values=snapshot.values[keep],
                            session=snapshot.session,
                            applied_update=snapshot.applied_update,
                            stream_states={},
                        )
                        self._ask(
                            source,
                            wire.encode_frame(
                                "restore", meta, [(None, kept._as_payload())]
                            ),
                        )
                    for target in range(len(self._shards)):
                        if target == source:
                            continue
                        mask = dest == target
                        if mask.any():
                            moves.append(
                                (target, snapshot.indices[mask], snapshot.values[mask])
                            )
                for target, moved_idx, moved_val in moves:
                    self._ask(
                        target,
                        wire.encode_frame(
                            "update", meta, [(None, (moved_idx, moved_val))]
                        ),
                    )
                moved_entries = sum(len(moved_idx) for _, moved_idx, _ in moves)
                migrate_span.set_attribute("moves", len(moves))
                migrate_span.set_attribute("moved_entries", moved_entries)
                telemetry = obs.active()
                if telemetry is not None:
                    telemetry.metrics.counter("rebalance.migrations").add(1)
                    telemetry.metrics.counter("rebalance.moved_entries").add(
                        moved_entries
                    )
                self._assignment = assignment


class ShardedSession(CoordinatorService):
    """A coordinator session over shard-group workers, with live rebalancing."""

    def _group(self, worker: int) -> ShardGroupTransport:
        transport = self._transports[worker]
        if not isinstance(transport, ShardGroupTransport):
            raise TypeError(
                f"worker {worker + 1}'s transport is {type(transport).__name__}, "
                "not a shard group"
            )
        return transport

    @property
    def assignments(self) -> Dict[int, ShardAssignment]:
        """The live shard map of every logical worker."""
        return {
            worker: self._group(worker).assignment
            for worker in range(len(self._transports))
        }

    def shard_supports(self) -> Dict[int, List[int]]:
        """Per-shard stored-pair counts of every logical worker (uncharged)."""
        return {
            worker: self._group(worker).shard_supports()
            for worker in range(len(self._transports))
        }

    def reset_shard_busy(self) -> None:
        """Zero every group's per-shard busy-time accumulators."""
        for worker in range(len(self._transports)):
            self._group(worker).reset_busy()

    def critical_path_seconds(self) -> float:
        """Modeled shard-layer wall-clock: every shard is its own machine,
        so the slowest shard's accumulated busy time bounds the run (the
        quantity the skewed-support rebalancing benchmark gates on)."""
        return max(
            self._group(worker).critical_path_seconds()
            for worker in range(len(self._transports))
        )

    def rebalance(self, plan: Dict[int, ShardAssignment]) -> None:
        """Migrate support inside each planned worker while the session is live.

        Per worker: take a pre-migration supervisor checkpoint (the rollback
        anchor, carrying the *old* map), run the group's migration, and on a
        transient failure let the supervisor respawn-and-restore the whole
        group from that anchor and retry until the restart budget runs out.
        After a worker migrates, the supervisor's journaled ``subsample``
        broadcasts are replayed so in-flight restricted-sketch tokens keep
        resolving.  Finishes with a full ``checkpoint_all``: the new layout
        becomes the recovery baseline and the superseded update journal --
        whose frames were split by the *old* map -- is dropped.

        Without a supervisor the migration still runs, but a mid-migration
        failure surfaces instead of rolling back.

        Pure control plane: no charged words, no recorded bytes -- a
        rebalanced run's ledger is byte-identical to an unmoved one.
        """
        with obs.span(
            "rebalance:plan", workers=len(plan), session=self._session
        ):
            for worker in sorted(plan):
                assignment = plan[worker]
                if not 0 <= worker < len(self._transports):
                    raise ValueError(f"no worker {worker}")
                while True:
                    if self._supervisor is not None:
                        self._supervisor.checkpoint(worker)
                    try:
                        self._group(worker).rebalance(
                            assignment, session=self._session
                        )
                        break
                    except Exception as exc:  # noqa: BLE001 - classified below
                        if self._supervisor is None or classify_failure(exc) == FATAL:
                            raise
                        # Roll back to the pre-migration snapshot (restore +
                        # journal replay) and retry; recover_worker raises a
                        # typed error once the restart budget is exhausted.
                        telemetry = obs.active()
                        if telemetry is not None:
                            telemetry.metrics.counter("rebalance.rollbacks").add(1)
                        self._supervisor.recover_worker(worker, cause=exc)
                if self._supervisor is not None:
                    self._supervisor.replay_subsamples(worker)
            if self._supervisor is not None:
                self._supervisor.checkpoint_all()


class ShardedBackend(ExecutionBackend):
    """Self-hosting sharded backend (``--backend sharded``).

    Parameters
    ----------
    shards:
        Worker shards per logical server (K >= 1; K=1 degenerates to the
        loopback backend plus the facade).
    assignments:
        Optional ``{worker_index: ShardAssignment}`` initial maps; workers
        not named fall back to ``ShardAssignment.uniform``.
    concurrency:
        Scatter-wave width of the coordinator (default: all workers).
    subsample_cache_size / stream_cache_size:
        Per-shard :class:`~repro.runtime.service.WorkerService` cache knobs.
    supervise / checkpoint_every / max_worker_restarts / heartbeat_interval:
        Supervisor knobs, as on the transport backends; supervision operates
        at logical-server granularity (a dead shard fails its whole group,
        which respawns and restores as one unit).
    """

    name = "sharded"
    reuses_network = False

    def __init__(
        self,
        shards: int = 2,
        *,
        assignments: Optional[Dict[int, ShardAssignment]] = None,
        concurrency: Optional[int] = None,
        subsample_cache_size: Optional[int] = None,
        stream_cache_size: Optional[int] = None,
        supervise: bool = False,
        checkpoint_every: int = 1,
        max_worker_restarts: int = 2,
        heartbeat_interval: Optional[float] = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self._shards = int(shards)
        self._assignments = dict(assignments) if assignments else {}
        self._concurrency = concurrency
        self._subsample_cache_size = subsample_cache_size
        self._stream_cache_size = stream_cache_size
        self._supervise = bool(supervise)
        self._checkpoint_every = int(checkpoint_every)
        self._max_worker_restarts = int(max_worker_restarts)
        self._heartbeat_interval = heartbeat_interval

    def session(
        self,
        components: Sequence[LocalComponent],
        dimension: int,
        *,
        network: Optional[Network] = None,
        keep_messages: bool = False,
    ) -> ShardedSession:
        """Spawn K shards per worker behind facades, return the coordinator."""
        if network is not None:
            raise ValueError(
                "transport backends own a byte-audited TransportNetwork; "
                "bridge per-tag words into an outer network after the run "
                "instead of sharing one"
            )
        if len(components) < 1:
            raise ValueError("need at least the coordinator's component")
        worker_components = [
            (np.asarray(idx, dtype=np.int64), np.asarray(val, dtype=float))
            for idx, val in components[1:]
        ]
        handlers: Dict[int, List[Callable[[bytes], bytes]]] = {}

        def initial_assignment(worker_index: int) -> ShardAssignment:
            assignment = self._assignments.get(worker_index)
            if assignment is None:
                return ShardAssignment.uniform(dimension, self._shards)
            if assignment.dimension != dimension or assignment.num_shards != self._shards:
                raise ValueError(
                    f"worker {worker_index}'s assignment must map {self._shards} "
                    f"shards of dimension {dimension}"
                )
            return assignment

        def spawn_group(worker_index: int) -> Transport:
            # One closure for construction AND respawning: a replacement
            # group re-splits the *original* component by the spawn-time map
            # (the supervisor's restore overwrites both the shard states and
            # the map with the checkpointed, possibly rebalanced, ones).
            idx, val = worker_components[worker_index]
            assignment = initial_assignment(worker_index)
            shard_transports: List[Transport] = []
            shard_handlers: List[Callable[[bytes], bytes]] = []
            for shard, (piece_idx, piece_val) in enumerate(assignment.split(idx, val)):
                service = WorkerService(
                    piece_idx,
                    piece_val,
                    dimension,
                    name=f"server-{worker_index + 1}:shard-{shard}",
                    max_subsample_caches=self._subsample_cache_size,
                    max_stream_states=self._stream_cache_size,
                )
                shard_handlers.append(service.handle_frame)
                shard_transports.append(LoopbackTransport(service.handle_frame))
            handlers[worker_index] = shard_handlers
            return ShardGroupTransport(
                shard_transports, assignment, name=f"server-{worker_index + 1}"
            )

        def probe_factory(worker_index: int) -> Transport:
            # A throwaway facade over the live shard handlers; the map is
            # irrelevant for probes (pings broadcast, nothing is split).
            return ShardGroupTransport(
                [LoopbackTransport(handler) for handler in handlers[worker_index]],
                ShardAssignment.uniform(dimension, self._shards),
                name=f"server-{worker_index + 1}",
            )

        supervisor = None
        if self._supervise:
            supervisor = WorkerSupervisor(
                respawner=spawn_group,
                max_worker_restarts=self._max_worker_restarts,
                checkpoint_every=self._checkpoint_every,
                heartbeat_interval=self._heartbeat_interval,
                probe_factory=(
                    probe_factory if self._heartbeat_interval is not None else None
                ),
            )
        transports: List[Transport] = []
        try:
            for worker_index in range(len(worker_components)):
                transports.append(spawn_group(worker_index))
            return ShardedSession(
                transports,
                dimension,
                components[0],
                keep_messages=keep_messages,
                concurrency=self._concurrency,
                supervisor=supervisor,
            )
        except Exception:
            for transport in transports:
                transport.close()
            raise
