"""Constructive reductions behind the lower bounds of Section VII.

Each reduction builds the gadget matrices of the corresponding proof and
runs the decision procedure with a pluggable rank-``k`` "protocol" (by
default the exact truncated SVD, i.e. a perfect relative-error solver).
Tests and the ``bench_lowerbounds`` benchmark verify empirically that the
decision procedures solve the underlying hard communication problems, which
is precisely the content of Theorems 4, 6 and 8: any low-communication
relative-error protocol would violate the known lower bounds for
``L_infinity``, 2-DISJ and Gap-Hamming-Distance.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Tuple

import numpy as np

from repro.lowerbounds.problems import (
    disjointness_instance,
    gap_hamming_instance,
    linf_instance,
)
from repro.utils.linalg import svd_rank_k_projection
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs
from repro.utils.validation import check_positive, check_rank

#: A rank-k solver: maps (matrix, k) to a d x d projection matrix.
RankKSolver = Callable[[np.ndarray, int], np.ndarray]


def exact_rank_k_solver(matrix: np.ndarray, k: int) -> np.ndarray:
    """The default "protocol": an exact relative-error rank-``k`` projection."""
    _, projection = svd_rank_k_projection(matrix, k)
    return projection


# --------------------------------------------------------------------------- #
# closed-form lower bound magnitudes
# --------------------------------------------------------------------------- #
def theorem4_bound_bits(n: int, d: int, p: float, epsilon: float) -> float:
    """Theorem 4: ``Omega~((1+eps)^{-2/p} n^{1-1/p} d^{1-4/p})`` bits for ``f = Omega(|x|^p)``."""
    n = check_rank(n, None, "n")
    d = check_rank(d, None, "d")
    p = check_positive(p, "p")
    epsilon = check_positive(epsilon, "epsilon")
    return (1.0 + epsilon) ** (-2.0 / p) * n ** (1.0 - 1.0 / p) * d ** (1.0 - 4.0 / p)


def theorem6_bound_bits(n: int, d: int) -> float:
    """Theorem 6: ``Omega~(n d)`` bits for ``f = max`` or the Huber ψ-function."""
    return float(check_rank(n, None, "n") * check_rank(d, None, "d"))


def theorem8_bound_bits(epsilon: float) -> float:
    """Theorem 8: ``Omega(1/eps^2)`` bits for ``f(x) = x^p``."""
    epsilon = check_positive(epsilon, "epsilon")
    return 1.0 / (epsilon * epsilon)


# --------------------------------------------------------------------------- #
# Theorem 8: Gap-Hamming-Distance reduction
# --------------------------------------------------------------------------- #
class GapHammingReduction:
    """The reduction of Theorem 8: relative-error PCA decides Gap-Hamming.

    Alice and Bob hold ``x, y in {-1,+1}^{1/eps^2}`` with the promise
    ``<x,y> > 2/eps`` or ``<x,y> < -2/eps``.  They build the
    ``(1/eps^2 + k) x (k+1)`` gadgets of the proof, obtain a relative-error
    rank-``k`` projection ``P`` of ``A = A^1 + A^2`` and look at
    ``v = u/|u|`` where ``u`` is the first row of ``I - P``: the proof shows
    ``v_1^2 < (1+eps)/2`` exactly in the positively correlated case.

    Parameters
    ----------
    epsilon:
        The gap parameter (vector length is ``~ 1/eps^2``).
    k:
        Rank used by the gadget (>= 1).
    solver:
        Rank-``k`` solver standing in for the hypothetical low-communication
        protocol; defaults to the exact SVD.
    """

    def __init__(
        self,
        epsilon: float = 0.1,
        k: int = 2,
        solver: Optional[RankKSolver] = None,
    ) -> None:
        self.epsilon = check_positive(epsilon, "epsilon")
        if self.epsilon >= 1:
            raise ValueError("epsilon must be < 1")
        self.k = check_rank(k, None, "k")
        self.solver = solver if solver is not None else exact_rank_k_solver

    def build_matrices(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return Alice's and Bob's gadget matrices ``A^1`` and ``A^2``."""
        x = np.asarray(x, dtype=float).ravel()
        y = np.asarray(y, dtype=float).ravel()
        if x.shape != y.shape:
            raise ValueError("x and y must have the same length")
        m = x.size
        eps = self.epsilon
        k = self.k
        a1 = np.zeros((m + k, k + 1))
        a2 = np.zeros((m + k, k + 1))
        a1[:m, 0] = x * eps
        a2[:m, 0] = y * eps
        a1[m, 1] = math.sqrt(2.0)
        for j in range(2, k + 1):
            a1[m + j - 1, j] = math.sqrt(2.0 * (1.0 + eps)) / eps
        return a1, a2

    def decide(self, x: np.ndarray, y: np.ndarray) -> bool:
        """Return ``True`` when the protocol concludes ``<x,y> > 2/eps``."""
        a1, a2 = self.build_matrices(x, y)
        a = a1 + a2
        projection = self.solver(a, self.k)
        identity = np.eye(a.shape[1])
        u = (identity - projection)[0]
        norm = np.linalg.norm(u)
        if norm <= 1e-12:
            # P did not remove the first direction at all: the x+y column is
            # entirely captured, which only happens when it is large.
            return True
        v = u / norm
        return bool(v[0] ** 2 < 0.5 * (1.0 + self.epsilon))

    def verify(self, trials: int = 20, seed: RandomState = None) -> float:
        """Return the empirical decision accuracy over random promise instances."""
        if trials < 1:
            raise ValueError("trials must be >= 1")
        rng = ensure_rng(seed)
        rngs = spawn_rngs(rng, trials)
        correct = 0
        for trial in range(trials):
            positive = trial % 2 == 0
            x, y = gap_hamming_instance(
                self.epsilon, positive_correlation=positive, seed=rngs[trial]
            )
            if self.decide(x, y) == positive:
                correct += 1
        return correct / trials


# --------------------------------------------------------------------------- #
# Theorem 6: 2-DISJ reduction (f = max or the Huber psi)
# --------------------------------------------------------------------------- #
class DisjointnessReduction:
    """The reduction of Theorem 6: relative-error PCA for ``max``/Huber decides 2-DISJ.

    The players hold binary vectors of length ``n * d`` with the promise
    that the supports either intersect in exactly one coordinate or not at
    all.  Bits are flipped and arranged into ``n x d`` matrices; the global
    gadget has rank at most ``k`` and the *unique* zero entry (if any) marks
    the intersection, so an exact (relative-error) rank-``k`` projection
    reveals its column and the players recurse on that column until the
    intersection is pinned down.

    Parameters
    ----------
    num_rows, num_cols:
        Shape ``n x d`` of the arranged bit matrix (instance length is
        ``n * d``).
    k:
        Gadget rank (>= 3 so the identity block is non-empty).
    aggregation:
        ``"max"`` for ``A_{ij} = max(A^1_{ij}, A^2_{ij})`` or ``"huber"``
        for ``A_{ij} = psi(A^1_{ij} + A^2_{ij})`` with the Huber psi
        normalised as in the proof (``psi(0)=0, psi(1)=psi(2)=1``).
    solver:
        Rank-``k`` solver; defaults to the exact SVD.
    """

    def __init__(
        self,
        num_rows: int,
        num_cols: int,
        k: int = 3,
        aggregation: str = "max",
        solver: Optional[RankKSolver] = None,
        max_rounds: int = 32,
    ) -> None:
        self.num_rows = check_rank(num_rows, None, "num_rows")
        self.num_cols = check_rank(num_cols, None, "num_cols")
        self.k = check_rank(k, None, "k")
        if self.k < 3:
            raise ValueError("the disjointness gadget needs k >= 3")
        if aggregation not in ("max", "huber"):
            raise ValueError("aggregation must be 'max' or 'huber'")
        self.aggregation = aggregation
        self.solver = solver if solver is not None else exact_rank_k_solver
        self.max_rounds = int(max_rounds)

    @property
    def instance_length(self) -> int:
        """Length ``n * d`` of the binary instance this reduction expects."""
        return self.num_rows * self.num_cols

    def _aggregate(self, a1: np.ndarray, a2: np.ndarray) -> np.ndarray:
        if self.aggregation == "max":
            return np.maximum(a1, a2)
        # Huber psi with threshold 1 on the sum: psi(0)=0, psi(1)=psi(2)=1.
        return np.clip(a1 + a2, 0.0, 1.0)

    def build_matrices(
        self, block1: np.ndarray, block2: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Embed the (flipped) bit blocks into the rank-``k`` gadget of the proof."""
        rows, cols = block1.shape
        k = self.k
        total_rows = rows + 1 + (k - 2)
        total_cols = cols + (k - 2)
        a1 = np.zeros((total_rows, total_cols))
        a2 = np.zeros((total_rows, total_cols))
        a1[:rows, :cols] = block1
        a2[:rows, :cols] = block2
        a1[rows, :cols] = 1.0
        a1[rows + 1:, cols:] = np.eye(k - 2)
        return a1, a2

    def _find_marked_column(self, projection: np.ndarray, cols: int, atol: float) -> Optional[int]:
        """Return ``l`` such that the complement indicator ``(e-bar_l, 0)`` is fixed by ``P``."""
        total_cols = projection.shape[0]
        for col in range(cols):
            vector = np.ones(total_cols)
            vector[col] = 0.0
            vector[cols:] = 0.0
            if np.allclose(vector @ projection, vector, atol=atol):
                return col
        return None

    def decide(self, x: np.ndarray, y: np.ndarray, *, atol: float = 1e-6) -> bool:
        """Return ``True`` when the protocol concludes the supports intersect."""
        x = np.asarray(x, dtype=float).ravel()
        y = np.asarray(y, dtype=float).ravel()
        if x.size != self.instance_length or y.size != self.instance_length:
            raise ValueError(
                f"instances must have length {self.instance_length}, got {x.size}"
            )
        # Flip the bits: the unique "both 1" coordinate becomes the unique
        # "both 0" coordinate, which is the only zero of the aggregated gadget.
        block1 = (1.0 - x).reshape(self.num_rows, self.num_cols)
        block2 = (1.0 - y).reshape(self.num_rows, self.num_cols)
        d = self.num_cols
        for _ in range(self.max_rounds):
            a1, a2 = self.build_matrices(block1, block2)
            aggregated = self._aggregate(a1, a2)
            projection = self.solver(aggregated, self.k)
            marked = self._find_marked_column(projection, d, atol)
            if marked is None:
                return False
            # Recurse on the marked column, rearranged into a ceil(nr/d) x d
            # block.  Padding uses 1 (the flipped value of an original 0) so
            # no spurious intersection is introduced.
            column1 = block1[:, marked]
            column2 = block2[:, marked]
            new_rows = int(math.ceil(column1.size / d))
            padded1 = np.ones(new_rows * d)
            padded2 = np.ones(new_rows * d)
            padded1[: column1.size] = column1
            padded2[: column2.size] = column2
            block1 = padded1.reshape(new_rows, d)
            block2 = padded2.reshape(new_rows, d)
            zeros2 = np.argwhere(block2 == 0.0)
            if zeros2.shape[0] == 1:
                i, j = zeros2[0]
                return bool(block1[i, j] == 0.0)
            if zeros2.shape[0] == 0:
                return False
            if block1.size <= d:
                # Nothing left to split: check directly for a joint zero.
                return bool(np.any((block1 == 0.0) & (block2 == 0.0)))
        raise RuntimeError("disjointness reduction did not terminate; increase max_rounds")

    def verify(self, trials: int = 10, seed: RandomState = None) -> float:
        """Return the empirical decision accuracy over random promise instances."""
        if trials < 1:
            raise ValueError("trials must be >= 1")
        rng = ensure_rng(seed)
        rngs = spawn_rngs(rng, trials)
        correct = 0
        for trial in range(trials):
            intersecting = trial % 2 == 0
            x, y = disjointness_instance(
                self.instance_length, intersecting=intersecting, seed=rngs[trial]
            )
            if self.decide(x, y) == intersecting:
                correct += 1
        return correct / trials


# --------------------------------------------------------------------------- #
# Theorem 4: L-infinity reduction (f = |x|^p, p > 1)
# --------------------------------------------------------------------------- #
class LInfinityReduction:
    """The reduction of Theorem 4: relative-error PCA for ``|x|^p`` decides ``L_infinity``.

    Alice holds ``x`` and Bob ``-y`` arranged as ``n x d`` blocks; the gadget
    appends a ``B I_{k-1}`` block so that a coordinate with
    ``|x_i - y_i| = B`` produces an entry ``B^p`` that forces its column into
    the top-``k`` row space.  Ranking the coordinate directions by
    ``|e_j P|_2`` therefore reveals the column of the far coordinate; the
    players recurse on that column until a single candidate entry remains
    and check it directly.

    Parameters
    ----------
    num_rows, num_cols:
        Shape of the arranged instance (length is ``n * d``).
    k:
        Gadget rank (>= 2).
    p:
        Growth exponent of ``f(x) = |x|^p`` (must be > 1).
    epsilon:
        Relative-error parameter of the hypothetical protocol.
    solver:
        Rank-``k`` solver; defaults to the exact SVD.
    """

    def __init__(
        self,
        num_rows: int,
        num_cols: int,
        k: int = 3,
        p: float = 2.0,
        epsilon: float = 0.1,
        solver: Optional[RankKSolver] = None,
        max_rounds: int = 32,
    ) -> None:
        self.num_rows = check_rank(num_rows, None, "num_rows")
        self.num_cols = check_rank(num_cols, None, "num_cols")
        self.k = check_rank(k, None, "k")
        if self.k < 2:
            raise ValueError("the L-infinity gadget needs k >= 2")
        self.p = check_positive(p, "p")
        if self.p <= 1:
            raise ValueError("Theorem 4 requires p > 1")
        self.epsilon = check_positive(epsilon, "epsilon")
        self.solver = solver if solver is not None else exact_rank_k_solver
        self.max_rounds = int(max_rounds)

    @property
    def instance_length(self) -> int:
        """Length ``n * d`` of the instances this reduction expects."""
        return self.num_rows * self.num_cols

    def gap_bound(self) -> int:
        """The promise gap ``B = ceil((2 (1+eps)^2 n d^4)^{1/(2p)})`` of the proof."""
        value = 2.0 * (1.0 + self.epsilon) ** 2 * self.num_rows * self.num_cols**4
        return max(2, int(math.ceil(value ** (1.0 / (2.0 * self.p)))))

    def build_matrices(
        self, block1: np.ndarray, block2: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Embed Alice's and Bob's blocks into the gadget with the ``B I_{k-1}`` tail."""
        rows, cols = block1.shape
        k = self.k
        bound = self.gap_bound()
        a1 = np.zeros((rows + k - 1, cols + k - 1))
        a2 = np.zeros((rows + k - 1, cols + k - 1))
        a1[:rows, :cols] = block1
        a2[:rows, :cols] = block2
        a1[rows:, cols:] = bound * np.eye(k - 1)
        return a1, a2

    def _marked_column(self, projection: np.ndarray, cols: int) -> Optional[int]:
        """Return the first-``d`` column ranked among the top-``k`` by ``|e_j P|_2``."""
        norms = np.linalg.norm(projection, axis=1)  # |e_j P|_2 for every direction j
        order = np.argsort(-norms)
        for rank, direction in enumerate(order):
            if rank >= self.k:
                break
            if direction < cols:
                return int(direction)
        return None

    def decide(self, x: np.ndarray, y: np.ndarray) -> bool:
        """Return ``True`` when the protocol concludes a far coordinate exists."""
        x = np.asarray(x, dtype=float).ravel()
        y = np.asarray(y, dtype=float).ravel()
        if x.size != self.instance_length or y.size != self.instance_length:
            raise ValueError(
                f"instances must have length {self.instance_length}, got {x.size}"
            )
        bound = self.gap_bound()
        block1 = x.reshape(self.num_rows, self.num_cols)
        block2 = (-y).reshape(self.num_rows, self.num_cols)
        d = self.num_cols
        for _ in range(self.max_rounds):
            a1, a2 = self.build_matrices(block1, block2)
            aggregated = np.abs(a1 + a2) ** self.p
            projection = self.solver(aggregated, self.k)
            marked = self._marked_column(projection, d)
            if marked is None:
                return False
            column1 = block1[:, marked]
            column2 = block2[:, marked]
            if column1.size == 1:
                return bool(abs(column1[0] + column2[0]) >= bound)
            new_rows = int(math.ceil(column1.size / d))
            padded1 = np.zeros(new_rows * d)
            padded2 = np.zeros(new_rows * d)
            padded1[: column1.size] = column1
            padded2[: column2.size] = column2
            block1 = padded1.reshape(new_rows, d)
            block2 = padded2.reshape(new_rows, d)
            if block1.size <= d:
                # Single row left: check the candidate entries directly.
                diffs = np.abs(block1 + block2)
                return bool(np.any(diffs >= bound))
        raise RuntimeError("L-infinity reduction did not terminate; increase max_rounds")

    def verify(self, trials: int = 10, seed: RandomState = None) -> float:
        """Return the empirical decision accuracy over random promise instances."""
        if trials < 1:
            raise ValueError("trials must be >= 1")
        rng = ensure_rng(seed)
        rngs = spawn_rngs(rng, trials)
        correct = 0
        for trial in range(trials):
            far = trial % 2 == 0
            x, y = linf_instance(
                self.instance_length,
                self.gap_bound(),
                has_far_coordinate=far,
                seed=rngs[trial],
            )
            if self.decide(x, y) == far:
                correct += 1
        return correct / trials
