"""Instance generators for the hard two-party promise problems of Section VII."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_rank


def linf_instance(
    length: int,
    bound: int,
    *,
    has_far_coordinate: bool,
    seed: RandomState = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return an instance of the ``L_infinity`` promise problem (Theorem 5 of [23]).

    Alice gets ``x`` and Bob gets ``y``, both with entries in ``{0, ..., B}``;
    either ``|x_i - y_i| <= 1`` everywhere, or there is exactly one
    coordinate with ``|x_i - y_i| = B``.

    Parameters
    ----------
    length:
        Vector length ``m``.
    bound:
        The gap ``B`` (>= 2).
    has_far_coordinate:
        Which side of the promise to generate.
    """
    length = check_rank(length, None, "length")
    if bound < 2:
        raise ValueError(f"bound must be >= 2, got {bound}")
    rng = ensure_rng(seed)
    x = rng.integers(0, bound + 1, size=length)
    offsets = rng.integers(-1, 2, size=length)
    y = np.clip(x + offsets, 0, bound)
    if has_far_coordinate:
        position = int(rng.integers(0, length))
        if rng.random() < 0.5:
            x[position], y[position] = bound, 0
        else:
            x[position], y[position] = 0, bound
    return x.astype(np.int64), y.astype(np.int64)


def disjointness_instance(
    length: int,
    *,
    intersecting: bool,
    density: float = 0.25,
    seed: RandomState = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return a 2-DISJ promise instance (Theorem 7 / Razborov).

    Either there is exactly one coordinate where both binary vectors are 1,
    or the supports are disjoint.
    """
    length = check_rank(length, None, "length")
    if not 0 < density < 1:
        raise ValueError(f"density must be in (0, 1), got {density}")
    rng = ensure_rng(seed)
    x = (rng.random(length) < density).astype(np.int64)
    y = (rng.random(length) < density).astype(np.int64)
    # Remove all accidental intersections to satisfy the promise.
    both = np.nonzero(x & y)[0]
    y[both] = 0
    if intersecting:
        position = int(rng.integers(0, length))
        x[position] = 1
        y[position] = 1
    return x, y


def gap_hamming_instance(
    epsilon: float,
    *,
    positive_correlation: bool,
    seed: RandomState = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return a Gap-Hamming-style promise instance used by Theorem 8.

    The vectors live in ``{-1, +1}^{1/eps^2}`` and their inner product is
    promised to be either ``> 2/eps`` (``positive_correlation=True``) or
    ``< -2/eps``.

    Notes
    -----
    The construction flips just enough coordinates of a random ``x`` to
    guarantee the promised inner-product gap exactly.
    """
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    length = max(4, int(round(1.0 / (epsilon * epsilon))))
    rng = ensure_rng(seed)
    x = (rng.integers(0, 2, size=length) * 2 - 1).astype(np.int64)
    threshold = 2.0 / epsilon
    # <x, y> = length - 2 * (#disagreements), so the inner product always has
    # the same parity as ``length``; pick the closest achievable value that
    # strictly clears the promised gap.
    target = int(np.floor(threshold)) + 1
    if (length - target) % 2 != 0:
        target += 1
    target = min(target, length)
    if not positive_correlation:
        target = -target
    disagreements = (length - target) // 2
    disagreements = int(np.clip(disagreements, 0, length))
    y = x.copy()
    flip = rng.choice(length, size=disagreements, replace=False)
    y[flip] *= -1
    return x, y
