"""Communication lower bounds for relative-error protocols (Section VII).

The paper shows that *relative*-error approximate PCA of an implicit
``f``-transformed matrix is communication-expensive through reductions from
three classical two-party problems:

* ``L_infinity`` promise problem -> Theorem 4: ``f(x) = Omega(|x|^p)``,
  ``p > 1`` needs ``~ n^{1-1/p} d^{1-4/p}`` bits;
* two-party set disjointness (2-DISJ) -> Theorem 6: ``f = max`` or the
  Huber ψ needs ``~ n d`` bits;
* Gap-Hamming-Distance (GHD) -> Theorem 8: ``f(x) = x^p`` needs
  ``Omega(1/eps^2)`` bits.

This package contains instance generators for the three promise problems
(:mod:`~repro.lowerbounds.problems`) and *constructive* implementations of
the reductions (:mod:`~repro.lowerbounds.reductions`): the gadget matrices
are built exactly as in the proofs and the decision procedures are run
against an exact rank-``k`` solver, so tests and benchmarks can verify
empirically that solving relative-error PCA on the gadgets solves the
underlying hard problem.
"""

from repro.lowerbounds.problems import (
    disjointness_instance,
    gap_hamming_instance,
    linf_instance,
)
from repro.lowerbounds.reductions import (
    DisjointnessReduction,
    GapHammingReduction,
    LInfinityReduction,
    theorem4_bound_bits,
    theorem6_bound_bits,
    theorem8_bound_bits,
)

__all__ = [
    "linf_instance",
    "disjointness_instance",
    "gap_hamming_instance",
    "LInfinityReduction",
    "DisjointnessReduction",
    "GapHammingReduction",
    "theorem4_bound_bits",
    "theorem6_bound_bits",
    "theorem8_bound_bits",
]
