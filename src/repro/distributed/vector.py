"""Distributed vectors: ``a = sum_t a^t`` with each ``a^t`` held by one server.

The generalized sampler of Section V operates on a vector that is only
implicitly represented as the sum of per-server local vectors.  The class
here stores each local vector sparsely as ``(indices, values)`` pairs,
charges the shared :class:`~repro.distributed.network.Network` whenever data
moves to the Central Processor, and supports the two operations the
sketching protocols need:

* *restriction* to a subset of coordinates (a free local operation, used for
  the subsampling levels of Algorithm 3);
* *collection* of exact summed values at a few coordinates (charged: every
  server reports its local value).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.distributed.cluster import LocalCluster
from repro.distributed.network import Network

LocalComponent = Tuple[np.ndarray, np.ndarray]


def lookup_sorted(
    sorted_idx: np.ndarray, sorted_val: np.ndarray, query: np.ndarray
) -> np.ndarray:
    """Values of a sorted, coalesced sparse component at ``query`` (0 on miss).

    The one binary-search lookup shared by every point-collection path:
    the in-process :meth:`DistributedVector.collect`, the runtime worker's
    ``collect`` op and the coordinator's own component.
    """
    values = np.zeros(query.size, dtype=float)
    if sorted_idx.size and query.size:
        positions = np.searchsorted(sorted_idx, query)
        np.clip(positions, 0, sorted_idx.size - 1, out=positions)
        hit = sorted_idx[positions] == query
        values[hit] = sorted_val[positions[hit]]
    return values


class SubsampleRestrictor:
    """Per-server cache of the subsample hash ``g`` with level restriction.

    Built by :meth:`DistributedVector.subsample_restrictor`; holding the
    cached ``g`` values next to the vector keeps the "evaluate once,
    threshold per level" contract of Algorithm 3 in one place, and gives
    transport-backed vectors a seam where the cache lives *worker-side*
    instead of being shipped to the coordinator.
    """

    def __init__(self, vector: "DistributedVector", subsample, cached_g) -> None:
        self._vector = vector
        self._subsample = subsample
        self._cached_g = cached_g

    def restrict(self, level: int) -> "DistributedVector":
        """Return the restriction to level-``level`` survivors (free local work)."""
        threshold = self._subsample.level_threshold(level)
        return self._vector.restrict_by_masks([g < threshold for g in self._cached_g])


def _dimension_error(message: str) -> Exception:
    """Build a :class:`repro.core.errors.DimensionMismatchError` lazily.

    Imported at raise time because ``repro.core`` transitively imports this
    module.
    """
    from repro.core.errors import DimensionMismatchError

    return DimensionMismatchError(message)


def _fused_enabled() -> bool:
    """Whether the fused engine is active (deferred import: the sketch
    package transitively imports this module)."""
    from repro.sketch import engine

    return engine.fused_enabled()


def check_delta_components(
    deltas: Sequence[LocalComponent], num_servers: int, dimension: int
) -> List[LocalComponent]:
    """Validate one ``(indices, values)`` delta pair per server and return it cleaned.

    The shared validation of the streaming delta contract: every execution
    backend (in-process, worker pool, transport coordinator *and* the remote
    worker validating its own shard) funnels deltas through this one check,
    so malformed streams fail identically everywhere with a
    :class:`~repro.core.errors.DimensionMismatchError`.
    """
    if len(deltas) != num_servers:
        raise _dimension_error(
            f"need exactly one delta component per server ({len(deltas)} "
            f"deltas for {num_servers} servers)"
        )
    cleaned: List[LocalComponent] = []
    for server, (indices, values) in enumerate(deltas):
        idx = np.asarray(indices, dtype=np.int64)
        val = np.asarray(values, dtype=float)
        if idx.shape != val.shape or idx.ndim != 1:
            raise _dimension_error(
                f"server {server}: delta indices and values must be matching "
                f"1-D arrays, got shapes {idx.shape} and {val.shape}"
            )
        if idx.size and (idx.min() < 0 or idx.max() >= dimension):
            raise _dimension_error(
                f"server {server}: delta coordinates must lie in "
                f"[0, {dimension - 1}]"
            )
        cleaned.append((idx, val))
    return cleaned


class DistributedVector:
    """A length-``l`` vector implicitly represented as a sum of local vectors.

    Parameters
    ----------
    local_components:
        One ``(indices, values)`` pair per server; indices are positions in
        ``[0, dimension)`` and may be empty.
    dimension:
        Length ``l`` of the global vector.
    network:
        Accounting network shared with the owning cluster.
    """

    def __init__(
        self,
        local_components: Sequence[LocalComponent],
        dimension: int,
        network: Network,
    ) -> None:
        if dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {dimension}")
        if len(local_components) != network.num_servers:
            raise _dimension_error(
                "number of local components must equal the number of servers "
                f"({len(local_components)} != {network.num_servers})"
            )
        cleaned: List[LocalComponent] = []
        for server, (indices, values) in enumerate(local_components):
            idx = np.asarray(indices, dtype=np.int64)
            val = np.asarray(values, dtype=float)
            if idx.shape != val.shape or idx.ndim != 1:
                raise _dimension_error(
                    f"server {server}: indices and values must be matching 1-D "
                    f"arrays, got shapes {idx.shape} and {val.shape}"
                )
            if idx.size and (idx.min() < 0 or idx.max() >= dimension):
                raise _dimension_error(
                    f"server {server} holds coordinates outside the declared "
                    f"dimension: indices must lie in [0, {dimension - 1}]"
                )
            cleaned.append((idx, val))
        self._components = cleaned
        self._dimension = int(dimension)
        self._network = network
        # Lazy cross-server caches for the fused collect/restrict paths; the
        # components are immutable, so these are built at most once.
        self._concat_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._lookup_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        # Optional per-vector worker pool (bound by the mp execution
        # backend); when unset, the engine-global pool applies.
        self._worker_pool = None

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_cluster_entries(cls, cluster: LocalCluster) -> "DistributedVector":
        """Flatten every server's local matrix (row-major) into a distributed vector.

        The resulting vector has dimension ``n * d`` and its implicit sum is
        ``sum_t A^t`` flattened; applying the cluster's ``f`` entrywise to it
        yields the flattened global matrix.
        """
        n, d = cluster.shape
        components = [server.flat_nonzero() for server in cluster.servers]
        return cls(components, n * d, cluster.network)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def dimension(self) -> int:
        """Length ``l`` of the global vector."""
        return self._dimension

    @property
    def num_servers(self) -> int:
        """Number of servers holding a component."""
        return len(self._components)

    @property
    def network(self) -> Network:
        """The shared accounting network."""
        return self._network

    def local_component(self, server: int) -> LocalComponent:
        """Return server ``server``'s local ``(indices, values)`` pair."""
        return self._components[server]

    # ------------------------------------------------------------------ #
    # execution binding
    # ------------------------------------------------------------------ #
    def bind_worker_pool(self, pool) -> "DistributedVector":
        """Attach a per-server worker pool to this vector (returns ``self``).

        Bound by the ``mp`` execution backend so per-server seam work runs
        in its :class:`~repro.distributed.mp_backend.SketchProcessPool`
        without touching the engine-global pool; restrictions and delta
        updates derived from this vector inherit the binding.
        """
        self._worker_pool = pool
        return self

    def _active_pool(self):
        """The worker pool serving this vector's per-server seams (or None).

        One resolution point for every seam: the vector-bound pool (the mp
        backend) wins over the engine-global opt-in pool
        (:func:`repro.sketch.engine.multiprocess_execution`).
        """
        if self._worker_pool is not None:
            return self._worker_pool
        from repro.sketch import engine

        return engine.parallel_pool()

    def _derived(self, components: Sequence[LocalComponent]) -> "DistributedVector":
        """Build a sibling vector (same dimension/network/pool binding)."""
        derived = DistributedVector(components, self._dimension, self._network)
        derived._worker_pool = self._worker_pool
        return derived

    def apply_deltas(self, deltas: Sequence[LocalComponent]) -> "DistributedVector":
        """Return the vector after applying per-server coordinate deltas.

        ``deltas`` holds one sparse ``(indices, values)`` pair per server --
        the shard of the stream that arrived *at that server*.  Appending is
        the update: a coordinate present several times in one component
        contributes the **sum** of its values to every operation (sketches
        scatter-add, ``collect`` coalesces by addition, ``exact_sum`` adds),
        so the returned vector implicitly represents ``v + delta``.  Like
        the initial data placement, delta ingestion is free local work --
        no communication is charged.

        The returned vector is fresh (components are immutable, caches are
        per-vector); transport-backed vectors override this with the
        session-level ingestion that ships each worker its own shard.
        """
        cleaned = check_delta_components(deltas, self.num_servers, self._dimension)
        updated: List[LocalComponent] = []
        for (idx, val), (d_idx, d_val) in zip(self._components, cleaned):
            if d_idx.size == 0:
                updated.append((idx, val))
            else:
                updated.append(
                    (np.concatenate((idx, d_idx)), np.concatenate((val, d_val)))
                )
        return self._derived(updated)

    def support_size(self) -> int:
        """Number of coordinates that are nonzero in at least one component."""
        all_indices = [idx for idx, _ in self._components if idx.size]
        if not all_indices:
            return 0
        return int(np.unique(np.concatenate(all_indices)).size)

    # ------------------------------------------------------------------ #
    # free local operations
    # ------------------------------------------------------------------ #
    def _concat_indices(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return (all components' indices concatenated, per-server offsets)."""
        if self._concat_cache is None:
            sizes = [idx.size for idx, _ in self._components]
            offsets = np.concatenate(
                ([0], np.cumsum(np.asarray(sizes, dtype=np.int64)))
            )
            nonempty_idx = [idx for idx, _ in self._components if idx.size]
            nonempty_val = [val for idx, val in self._components if idx.size]
            concat = (
                np.concatenate(nonempty_idx)
                if nonempty_idx
                else np.zeros(0, dtype=np.int64)
            )
            concat_val = (
                np.concatenate(nonempty_val) if nonempty_val else np.zeros(0, dtype=float)
            )
            self._concat_cache = (concat, offsets, concat_val)
        return self._concat_cache[0], self._concat_cache[1]

    def _split_by_mask(self, mask: np.ndarray) -> "DistributedVector":
        """Build the restriction from one concatenated boolean keep-mask.

        The kept indices/values of *all* servers are compressed into two
        preallocated arrays in one boolean-mask pass each; per-server
        components are then zero-copy views at the mask-count boundaries.
        The old implementation sliced the mask per server and fancy-indexed
        each component separately, allocating ``2s`` arrays and touching the
        mask twice -- the restriction step was allocation-bound (ROADMAP
        noted ~1.2x on `restrict`).
        """
        concat_idx, offsets = self._concat_indices()
        concat_val = self._concat_cache[2]
        # Per-server output sizes from the mask counts (SIMD popcounts over
        # mask slices), then one compress pass into each preallocated buffer.
        bounds = np.zeros(self.num_servers + 1, dtype=np.int64)
        for server in range(self.num_servers):
            bounds[server + 1] = bounds[server] + np.count_nonzero(
                mask[offsets[server] : offsets[server + 1]]
            )
        kept_idx = np.empty(int(bounds[-1]), dtype=np.int64)
        kept_val = np.empty(int(bounds[-1]), dtype=float)
        np.compress(mask, concat_idx, out=kept_idx)
        np.compress(mask, concat_val, out=kept_val)
        restricted: List[LocalComponent] = []
        for server, (idx, val) in enumerate(self._components):
            if idx.size == 0:
                restricted.append((idx, val))
                continue
            restricted.append(
                (kept_idx[bounds[server] : bounds[server + 1]],
                 kept_val[bounds[server] : bounds[server + 1]])
            )
        return self._derived(restricted)

    def restrict(self, keep: Callable[[np.ndarray], np.ndarray]) -> "DistributedVector":
        """Return the restriction ``v(S)`` of the vector to a coordinate subset.

        ``keep`` is a vectorised *elementwise* predicate over coordinate
        indices (e.g. a hash-based subsampling rule); restriction is free
        local work, so no communication is charged.  The fused engine
        evaluates the predicate once over every server's indices
        concatenated -- one hash pass instead of one per server -- and the
        naive reference evaluates it per server; both produce identical
        components because the predicate is elementwise.
        """
        if _fused_enabled():
            concat, _ = self._concat_indices()
            mask = np.asarray(keep(concat), dtype=bool)
            if mask.shape != concat.shape:
                raise _dimension_error(
                    "keep predicate must return one boolean per coordinate, "
                    f"got shape {mask.shape} for {concat.shape[0]} coordinates"
                )
            return self._split_by_mask(mask)
        restricted: List[LocalComponent] = []
        for idx, val in self._components:
            if idx.size == 0:
                restricted.append((idx, val))
                continue
            mask = np.asarray(keep(idx), dtype=bool)
            restricted.append((idx[mask], val[mask]))
        return self._derived(restricted)

    def restrict_by_masks(self, masks: Sequence[np.ndarray]) -> "DistributedVector":
        """Return the restriction given one precomputed boolean mask per server.

        Equivalent to :meth:`restrict` with a predicate, but lets callers
        that already evaluated an expensive hash over every server's indices
        (e.g. the subsample hash ``g`` of Algorithm 3, shared across all
        levels) derive the restriction without re-evaluating it.
        """
        if len(masks) != self.num_servers:
            raise _dimension_error(
                f"need exactly one mask per server ({len(masks)} masks for "
                f"{self.num_servers} servers)"
            )
        cleaned_masks: List[np.ndarray] = []
        for server, ((idx, _), mask) in enumerate(zip(self._components, masks)):
            keep_mask = np.asarray(mask, dtype=bool)
            if keep_mask.shape != idx.shape:
                raise _dimension_error(
                    f"server {server}: mask shape {keep_mask.shape} must match "
                    f"the server's index array shape {idx.shape}"
                )
            if idx.size:
                cleaned_masks.append(keep_mask)
        concat_mask = (
            np.concatenate(cleaned_masks)
            if cleaned_masks
            else np.zeros(0, dtype=bool)
        )
        return self._split_by_mask(concat_mask)

    def local_sketch_tables(self, sketcher) -> List[np.ndarray]:
        """Have every server sketch its local component (free local computation)."""
        return [
            sketcher.sketch(idx, val) for idx, val in self._components
        ]

    def batched_sketch_tables(
        self,
        batched,
        domain_assignment: np.ndarray,
        *,
        bucket_hash=None,
        nonempty_buckets: Optional[Sequence[int]] = None,
        tag: str = "",
    ) -> List[np.ndarray]:
        """Every server's ``(num_buckets, depth, width)`` table stack (free local work).

        This is the per-server execution seam of Algorithm 2: the in-process
        vector runs each server's batched sketch locally (dispatching to the
        opt-in worker pool when one is installed), while transport-backed
        vectors (:class:`repro.runtime.service.RemoteVector`) override it to
        ship the broadcast coefficients to real workers and receive the
        stacks back over the wire.  ``bucket_hash``, ``nonempty_buckets``
        and ``tag`` describe the broadcast a real coordinator would make;
        the local implementation does not need them because it already holds
        every component.
        """
        pool = self._active_pool()
        if pool is not None and self.num_servers > 1:
            return pool.batched_sketches(
                self, batched, domain_assignment, bucket_hash=bucket_hash
            )
        tables: List[np.ndarray] = []
        for idx, val in self._components:
            if idx.size == 0:
                tables.append(batched.empty_tables())
            else:
                tables.append(batched.sketch_assigned(idx, val, domain_assignment[idx]))
        return tables

    def subsample_restrictor(self, subsample, *, tag: str = "") -> "SubsampleRestrictor":
        """Cache the subsample hash ``g`` per server and return a level restrictor.

        Algorithm 3 evaluates the degree-16 polynomial ``g`` once per server
        and derives every level's survivor mask by thresholding the cached
        values.  The returned object's :meth:`SubsampleRestrictor.restrict`
        yields the level-``j`` restriction without re-evaluating ``g``.
        Transport-backed vectors override this to broadcast the coefficients
        so each worker caches its own values locally.
        """
        pool = self._active_pool()
        if pool is not None and self.num_servers > 1:
            cached_g = pool.subsample_values(self, subsample)
        else:
            cached_g = [
                subsample(idx) if idx.size else np.zeros(0, dtype=np.int64)
                for idx, _ in self._components
            ]
        return SubsampleRestrictor(self, subsample, cached_g)

    # ------------------------------------------------------------------ #
    # accounted operations
    # ------------------------------------------------------------------ #
    def merged_sketch(self, sketcher, tag: str = "sketch") -> np.ndarray:
        """Sketch every local component and merge at the CP (charged).

        Each worker sends its table (``depth * width`` words); the CP's own
        table never crosses the network.  Because the sketch is linear, the
        merged table is exactly the sketch of the summed vector.
        """
        tables = self.local_sketch_tables(sketcher)
        for server in range(1, self.num_servers):
            self._network.send(server, 0, tables[server], tag=tag)
        return np.sum(tables, axis=0)

    @staticmethod
    def _sorted_coalesced(idx: np.ndarray, val: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return the component sorted by coordinate, duplicates summed.

        A coordinate repeated within one component contributes the *sum* of
        its values everywhere else (``exact_sum``, every sketch's
        scatter-add), so point lookups must see the same.
        """
        order = np.argsort(idx)
        sorted_idx = idx[order]
        sorted_val = val[order]
        if sorted_idx.size > 1 and np.any(sorted_idx[1:] == sorted_idx[:-1]):
            sorted_idx, starts = np.unique(sorted_idx, return_index=True)
            sorted_val = np.add.reduceat(sorted_val, starts)
        return sorted_idx, sorted_val

    def _lookup_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the composite-key lookup table ``(keys, values)``.

        ``keys[k] = server * dimension + coordinate`` over every server's
        indices sorted within the server (duplicates coalesced by addition);
        because segments are ordered by server the concatenation is globally
        sorted, so one ``np.searchsorted`` resolves all servers' point
        lookups at once.  Built lazily once per vector (the components are
        immutable).
        """
        if self._lookup_cache is None:
            key_parts: List[np.ndarray] = []
            value_parts: List[np.ndarray] = []
            for server, (idx, val) in enumerate(self._components):
                if idx.size == 0:
                    continue
                sorted_idx, sorted_val = self._sorted_coalesced(idx, val)
                key_parts.append(server * self._dimension + sorted_idx)
                value_parts.append(sorted_val)
            if key_parts:
                self._lookup_cache = (
                    np.concatenate(key_parts), np.concatenate(value_parts)
                )
            else:
                self._lookup_cache = (
                    np.zeros(0, dtype=np.int64), np.zeros(0, dtype=float)
                )
        return self._lookup_cache

    def collect(self, indices: Sequence[int], tag: str = "collect_entries") -> np.ndarray:
        """Return the exact summed values at ``indices`` (charged: one word per server per index).

        The fused engine resolves every server's sparse lookups with a single
        binary search against a cached composite-key table (coordinate keys
        offset by ``server * dimension``); the naive reference re-sorts and
        searches each component per call.  Values, charged words and the
        payload per server are bit-for-bit identical.
        """
        query = np.asarray(indices, dtype=np.int64)
        if query.ndim != 1:
            raise ValueError("indices must be one-dimensional")
        if query.size == 0:
            return np.zeros(0)
        if query.min() < 0 or query.max() >= self._dimension:
            raise _dimension_error(
                f"indices must lie in [0, {self._dimension - 1}]"
            )
        if _fused_enabled():
            keys, values = self._lookup_arrays()
            local = np.zeros((self.num_servers, query.size), dtype=float)
            if keys.size:
                query_keys = (
                    np.arange(self.num_servers, dtype=np.int64)[:, None]
                    * self._dimension
                    + query[None, :]
                )
                positions = np.searchsorted(keys, query_keys)
                np.minimum(positions, keys.size - 1, out=positions)
                hit = keys[positions] == query_keys
                local[hit] = values[positions[hit]]
            total = np.zeros(query.size, dtype=float)
            for server in range(self.num_servers):
                if server != 0:
                    self._network.send(server, 0, local[server], tag=tag)
                total += local[server]
            return total
        total = np.zeros(query.size, dtype=float)
        for server, (idx, val) in enumerate(self._components):
            # Local lookup of the requested positions in the sparse component.
            local = lookup_sorted(*self._sorted_coalesced(idx, val), query)
            if server != 0:
                self._network.send(server, 0, local, tag=tag)
            total += local
        return total

    # ------------------------------------------------------------------ #
    # evaluation-only operations
    # ------------------------------------------------------------------ #
    def exact_sum(self) -> np.ndarray:
        """Materialise the dense summed vector (evaluation only, never charged)."""
        dense = np.zeros(self._dimension, dtype=float)
        for idx, val in self._components:
            np.add.at(dense, idx, val)
        return dense

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DistributedVector(dimension={self._dimension}, servers={self.num_servers}, "
            f"support={self.support_size()})"
        )
