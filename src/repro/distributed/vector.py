"""Distributed vectors: ``a = sum_t a^t`` with each ``a^t`` held by one server.

The generalized sampler of Section V operates on a vector that is only
implicitly represented as the sum of per-server local vectors.  The class
here stores each local vector sparsely as ``(indices, values)`` pairs,
charges the shared :class:`~repro.distributed.network.Network` whenever data
moves to the Central Processor, and supports the two operations the
sketching protocols need:

* *restriction* to a subset of coordinates (a free local operation, used for
  the subsampling levels of Algorithm 3);
* *collection* of exact summed values at a few coordinates (charged: every
  server reports its local value).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.distributed.cluster import LocalCluster
from repro.distributed.network import Network

LocalComponent = Tuple[np.ndarray, np.ndarray]


class DistributedVector:
    """A length-``l`` vector implicitly represented as a sum of local vectors.

    Parameters
    ----------
    local_components:
        One ``(indices, values)`` pair per server; indices are positions in
        ``[0, dimension)`` and may be empty.
    dimension:
        Length ``l`` of the global vector.
    network:
        Accounting network shared with the owning cluster.
    """

    def __init__(
        self,
        local_components: Sequence[LocalComponent],
        dimension: int,
        network: Network,
    ) -> None:
        if dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {dimension}")
        if len(local_components) != network.num_servers:
            raise ValueError(
                "number of local components must equal the number of servers "
                f"({len(local_components)} != {network.num_servers})"
            )
        cleaned: List[LocalComponent] = []
        for indices, values in local_components:
            idx = np.asarray(indices, dtype=np.int64)
            val = np.asarray(values, dtype=float)
            if idx.shape != val.shape or idx.ndim != 1:
                raise ValueError("indices and values must be matching 1-D arrays")
            if idx.size and (idx.min() < 0 or idx.max() >= dimension):
                raise IndexError(f"indices must lie in [0, {dimension - 1}]")
            cleaned.append((idx, val))
        self._components = cleaned
        self._dimension = int(dimension)
        self._network = network

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_cluster_entries(cls, cluster: LocalCluster) -> "DistributedVector":
        """Flatten every server's local matrix (row-major) into a distributed vector.

        The resulting vector has dimension ``n * d`` and its implicit sum is
        ``sum_t A^t`` flattened; applying the cluster's ``f`` entrywise to it
        yields the flattened global matrix.
        """
        n, d = cluster.shape
        components = [server.flat_nonzero() for server in cluster.servers]
        return cls(components, n * d, cluster.network)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def dimension(self) -> int:
        """Length ``l`` of the global vector."""
        return self._dimension

    @property
    def num_servers(self) -> int:
        """Number of servers holding a component."""
        return len(self._components)

    @property
    def network(self) -> Network:
        """The shared accounting network."""
        return self._network

    def local_component(self, server: int) -> LocalComponent:
        """Return server ``server``'s local ``(indices, values)`` pair."""
        return self._components[server]

    def support_size(self) -> int:
        """Number of coordinates that are nonzero in at least one component."""
        all_indices = [idx for idx, _ in self._components if idx.size]
        if not all_indices:
            return 0
        return int(np.unique(np.concatenate(all_indices)).size)

    # ------------------------------------------------------------------ #
    # free local operations
    # ------------------------------------------------------------------ #
    def restrict(self, keep: Callable[[np.ndarray], np.ndarray]) -> "DistributedVector":
        """Return the restriction ``v(S)`` of the vector to a coordinate subset.

        ``keep`` is a vectorised predicate over coordinate indices
        (e.g. a hash-based subsampling rule); every server applies it locally
        to its own indices, so no communication is charged.
        """
        restricted: List[LocalComponent] = []
        for idx, val in self._components:
            if idx.size == 0:
                restricted.append((idx, val))
                continue
            mask = np.asarray(keep(idx), dtype=bool)
            restricted.append((idx[mask], val[mask]))
        return DistributedVector(restricted, self._dimension, self._network)

    def restrict_by_masks(self, masks: Sequence[np.ndarray]) -> "DistributedVector":
        """Return the restriction given one precomputed boolean mask per server.

        Equivalent to :meth:`restrict` with a predicate, but lets callers
        that already evaluated an expensive hash over every server's indices
        (e.g. the subsample hash ``g`` of Algorithm 3, shared across all
        levels) derive the restriction without re-evaluating it.
        """
        if len(masks) != self.num_servers:
            raise ValueError("need exactly one mask per server")
        restricted: List[LocalComponent] = []
        for (idx, val), mask in zip(self._components, masks):
            if idx.size == 0:
                restricted.append((idx, val))
                continue
            keep_mask = np.asarray(mask, dtype=bool)
            if keep_mask.shape != idx.shape:
                raise ValueError("mask shape must match the server's index array")
            restricted.append((idx[keep_mask], val[keep_mask]))
        return DistributedVector(restricted, self._dimension, self._network)

    def local_sketch_tables(self, sketcher) -> List[np.ndarray]:
        """Have every server sketch its local component (free local computation)."""
        return [
            sketcher.sketch(idx, val) for idx, val in self._components
        ]

    # ------------------------------------------------------------------ #
    # accounted operations
    # ------------------------------------------------------------------ #
    def merged_sketch(self, sketcher, tag: str = "sketch") -> np.ndarray:
        """Sketch every local component and merge at the CP (charged).

        Each worker sends its table (``depth * width`` words); the CP's own
        table never crosses the network.  Because the sketch is linear, the
        merged table is exactly the sketch of the summed vector.
        """
        tables = self.local_sketch_tables(sketcher)
        for server in range(1, self.num_servers):
            self._network.send(server, 0, tables[server], tag=tag)
        return np.sum(tables, axis=0)

    def collect(self, indices: Sequence[int], tag: str = "collect_entries") -> np.ndarray:
        """Return the exact summed values at ``indices`` (charged: one word per server per index)."""
        query = np.asarray(indices, dtype=np.int64)
        if query.ndim != 1:
            raise ValueError("indices must be one-dimensional")
        if query.size == 0:
            return np.zeros(0)
        if query.min() < 0 or query.max() >= self._dimension:
            raise IndexError(f"indices must lie in [0, {self._dimension - 1}]")
        total = np.zeros(query.size, dtype=float)
        for server, (idx, val) in enumerate(self._components):
            local = np.zeros(query.size, dtype=float)
            if idx.size:
                # Local lookup of the requested positions in the sparse component.
                order = np.argsort(idx)
                sorted_idx = idx[order]
                positions = np.searchsorted(sorted_idx, query)
                positions = np.clip(positions, 0, sorted_idx.size - 1)
                hit = sorted_idx[positions] == query
                local[hit] = val[order][positions[hit]]
            if server != 0:
                self._network.send(server, 0, local, tag=tag)
            total += local
        return total

    # ------------------------------------------------------------------ #
    # evaluation-only operations
    # ------------------------------------------------------------------ #
    def exact_sum(self) -> np.ndarray:
        """Materialise the dense summed vector (evaluation only, never charged)."""
        dense = np.zeros(self._dimension, dtype=float)
        for idx, val in self._components:
            np.add.at(dense, idx, val)
        return dense

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DistributedVector(dimension={self._dimension}, servers={self.num_servers}, "
            f"support={self.support_size()})"
        )
