"""A single simulated server holding one local matrix ``A^t``.

Servers never see each other's data; everything a server exposes is a
*local* computation over its own matrix (allowed to take polynomial time and
linear space per the model).  Data only moves between servers through the
:class:`~repro.distributed.network.Network`, which is owned by the cluster.

Local matrices may be dense :class:`numpy.ndarray` or any
:mod:`scipy.sparse` matrix; sparse storage is the natural representation for
row-partitioned and entrywise-partitioned data.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple, Union

import numpy as np
from scipy import sparse

LocalMatrix = Union[np.ndarray, sparse.spmatrix]


class Server:
    """One of the ``s`` servers in the generalized partition model.

    Parameters
    ----------
    server_id:
        Index of the server; ``0`` denotes the Central Processor.
    local_matrix:
        The ``n x d`` local matrix ``A^t`` (dense or scipy sparse).
    """

    def __init__(self, server_id: int, local_matrix: LocalMatrix) -> None:
        if server_id < 0:
            raise ValueError(f"server_id must be non-negative, got {server_id}")
        if sparse.issparse(local_matrix):
            local = local_matrix.tocsr()
        else:
            local = np.asarray(local_matrix, dtype=float)
            if local.ndim != 2:
                raise ValueError(
                    f"local_matrix must be 2-dimensional, got ndim={local.ndim}"
                )
        self._server_id = server_id
        self._local = local

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def server_id(self) -> int:
        """Index of this server (0 is the Central Processor)."""
        return self._server_id

    @property
    def is_coordinator(self) -> bool:
        """True for server 0, the Central Processor."""
        return self._server_id == 0

    @property
    def shape(self) -> Tuple[int, int]:
        """Shape ``(n, d)`` of the local matrix."""
        return tuple(self._local.shape)

    @property
    def local_matrix(self) -> LocalMatrix:
        """The raw local matrix ``A^t`` (dense ndarray or CSR matrix)."""
        return self._local

    @property
    def is_sparse(self) -> bool:
        """True if the local matrix is stored in a sparse format."""
        return sparse.issparse(self._local)

    def stored_words(self) -> int:
        """Number of machine words this server uses to store its local data.

        Dense matrices cost one word per entry; sparse matrices cost two
        words per stored nonzero (index + value) plus one for the shape.
        The sum of this quantity over all servers is the denominator of the
        communication ratio reported in the experiments.
        """
        if self.is_sparse:
            return int(2 * self._local.nnz + 1)
        return int(self._local.size)

    # ------------------------------------------------------------------ #
    # local computations (free: no communication)
    # ------------------------------------------------------------------ #
    def local_rows(self, indices: Sequence[int]) -> np.ndarray:
        """Return the local rows ``A^t_{i}`` for ``i`` in ``indices`` as a dense array."""
        idx = np.asarray(indices, dtype=int)
        if idx.ndim != 1:
            raise ValueError("indices must be one-dimensional")
        n = self._local.shape[0]
        if idx.size and (idx.min() < 0 or idx.max() >= n):
            raise IndexError(f"row indices must be in [0, {n - 1}]")
        rows = self._local[idx]
        if sparse.issparse(rows):
            return np.asarray(rows.todense(), dtype=float)
        return np.asarray(rows, dtype=float)

    def local_entries(self, flat_indices: Sequence[int]) -> np.ndarray:
        """Return local entries at flattened (row-major) positions ``flat_indices``."""
        idx = np.asarray(flat_indices, dtype=int)
        n, d = self._local.shape
        if idx.size and (idx.min() < 0 or idx.max() >= n * d):
            raise IndexError(f"flat indices must be in [0, {n * d - 1}]")
        rows, cols = np.divmod(idx, d)
        if self.is_sparse:
            values = np.asarray(self._local[rows, cols]).ravel()
        else:
            values = self._local[rows, cols]
        return np.asarray(values, dtype=float)

    def flat_dense(self) -> np.ndarray:
        """Return the local matrix flattened row-major into a dense vector of length ``n*d``."""
        if self.is_sparse:
            return np.asarray(self._local.todense(), dtype=float).ravel()
        return self._local.ravel().copy()

    def flat_nonzero(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(flat_indices, values)`` of the nonzero local entries.

        This is the natural iteration order for linear sketches: a sketch of
        the flattened local vector only needs to touch the nonzeros.
        """
        if self.is_sparse:
            coo = self._local.tocoo()
            flat = coo.row.astype(np.int64) * self._local.shape[1] + coo.col.astype(np.int64)
            order = np.argsort(flat)
            return flat[order], coo.data[order].astype(float)
        flat = self._local.ravel()
        idx = np.nonzero(flat)[0]
        return idx.astype(np.int64), flat[idx].astype(float)

    def local_row_norms_squared(self) -> np.ndarray:
        """Return the squared Euclidean norms of the local rows (a local statistic)."""
        if self.is_sparse:
            squared = self._local.multiply(self._local)
            return np.asarray(squared.sum(axis=1)).ravel()
        return np.einsum("ij,ij->i", self._local, self._local)

    def transform(self, fn: Callable[[np.ndarray], np.ndarray]) -> "Server":
        """Return a new server whose local matrix is ``fn`` applied entrywise.

        ``fn`` must be a vectorised function (it receives either the dense
        matrix or the sparse data array).  This models the local
        preprocessing steps of the paper's applications, e.g. each server
        raising its entries to the ``p``-th power for the softmax sampler.
        Transforms of sparse matrices must satisfy ``fn(0) == 0``.
        """
        if self.is_sparse:
            transformed = self._local.copy()
            transformed.data = np.asarray(fn(transformed.data), dtype=float)
            zero_image = float(np.asarray(fn(np.zeros(1)))[0])
            if abs(zero_image) > 1e-12:
                raise ValueError(
                    "transform of a sparse local matrix must map 0 to 0; "
                    f"got fn(0)={zero_image}"
                )
            return Server(self._server_id, transformed)
        return Server(self._server_id, np.asarray(fn(self._local), dtype=float))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        kind = "sparse" if self.is_sparse else "dense"
        return f"Server(id={self._server_id}, shape={self.shape}, {kind})"
