"""Simulated distributed substrate (servers, network, communication accounting).

The paper's *generalized partition model* has ``s`` servers, each holding a
local matrix ``A^t``, all communicating with server 1 (the Central
Processor).  This package simulates that star topology in-process while
keeping an exact account of every word exchanged, so experiments can bound
the ratio of total communication to total input size exactly as the paper
does.

Main entry points
-----------------
:class:`~repro.distributed.cluster.LocalCluster`
    Holds the ``s`` local matrices, the entrywise function ``f`` and the
    accounting :class:`~repro.distributed.network.Network`; exposes the
    primitive operations protocols need (gather rows, merge sketches,
    request entries).
:mod:`~repro.distributed.partition`
    Ways to split a logically global matrix across servers (row partition,
    arbitrary/linear partition, entrywise partition, duplicate records).
"""

from repro.distributed.cluster import LocalCluster
from repro.distributed.message import Message, payload_word_count
from repro.distributed.network import CommunicationLog, Network
from repro.distributed.partition import (
    ShardAssignment,
    arbitrary_partition,
    duplicate_records_partition,
    entrywise_partition,
    row_partition,
)
from repro.distributed.server import Server

__all__ = [
    "LocalCluster",
    "Server",
    "Network",
    "CommunicationLog",
    "Message",
    "payload_word_count",
    "row_partition",
    "arbitrary_partition",
    "entrywise_partition",
    "duplicate_records_partition",
    "ShardAssignment",
]
